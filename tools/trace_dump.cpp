// Offline summarizer for Chrome trace-event JSON written by the runtime's
// TraceRecorder (BatchRunnerOptions::trace_sink, bench --trace,
// calibrate_host --trace).  The trace file itself loads in Perfetto /
// chrome://tracing; this tool answers the questions a timeline makes you
// scroll for:
//
//   * per-phase width occupancy — how many seconds each ADMM phase spent
//     forked at each width (the live mixed-workload version of the paper's
//     per-phase scaling tables),
//   * decision counts — every governor shrink/grow/boost, admission
//     verdict, pool steal/help, and job lifecycle event by name,
//   * the top-K tail jobs by end-to-end latency, with queue wait and
//     outcome, straight from the "finish" events.
//
//   ./trace_dump --in trace.json --top 10
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/json.hpp"

using namespace paradmm;

namespace {

struct FinishRecord {
  std::string job;
  std::string outcome;
  double e2e = 0.0;
  double queue_wait = -1.0;  // negative: unmeasured (never ran)
};

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "trace_dump: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const JsonValue* find(const JsonValue& object, const std::string& key) {
  if (object.kind != JsonValue::Kind::kObject) return nullptr;
  const auto it = object.object.find(key);
  return it == object.object.end() ? nullptr : &it->second;
}

double number_or(const JsonValue* value, double fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kNumber
             ? value->number
             : fallback;
}

std::string string_or(const JsonValue* value, const std::string& fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kString
             ? value->string
             : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("trace_dump");
  flags.add_string("in", "trace.json", "Chrome trace-event JSON to summarize");
  flags.add_int("top", 10, "tail jobs to list (by end-to-end latency)");
  flags.parse(argc, argv);

  const std::string text = load_file(flags.get_string("in"));
  JsonParser parser(text, "trace JSON");
  const JsonValue root = parser.parse();
  const JsonValue* events = find(root, "traceEvents");
  require(events != nullptr && events->kind == JsonValue::Kind::kArray,
          "trace_dump: input has no traceEvents array");

  // (phase name, width) -> accumulated seconds, from "phase"-category
  // complete spans; (category, name) -> count for every event.
  std::map<std::string, std::map<long long, double>> occupancy;
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  std::vector<FinishRecord> finishes;

  for (const JsonValue& event : events->array) {
    const std::string name = string_or(find(event, "name"), "?");
    const std::string category = string_or(find(event, "cat"), "?");
    ++counts[{category, name}];

    if (category == "phase" &&
        string_or(find(event, "ph"), "") == "X") {
      const JsonValue* args = find(event, "args");
      const double dur_us = number_or(find(event, "dur"), 0.0);
      const long long width = static_cast<long long>(
          number_or(args != nullptr ? find(*args, "width") : nullptr, 0.0));
      occupancy[name][width] += dur_us / 1e6;
    }

    if (category == "job" && name == "finish") {
      const JsonValue* args = find(event, "args");
      if (args == nullptr) continue;
      FinishRecord record;
      record.job = string_or(find(*args, "job"), "?");
      record.outcome = string_or(find(*args, "outcome"), "?");
      record.e2e = number_or(find(*args, "e2e"), 0.0);
      record.queue_wait = number_or(find(*args, "queue_wait"), -1.0);
      finishes.push_back(std::move(record));
    }
  }

  std::printf("%zu events in %s\n\n", events->array.size(),
              flags.get_string("in").c_str());

  if (!occupancy.empty()) {
    std::printf("phase occupancy (seconds by fork width):\n");
    for (const auto& [phase, widths] : occupancy) {
      std::printf("  %s:", phase.c_str());
      for (const auto& [width, seconds] : widths) {
        std::printf("  w%lld %s", width, format_duration(seconds).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("event counts:\n");
  for (const auto& [key, count] : counts) {
    std::printf("  %s %s\n",
                pad_right(key.first + "/" + key.second, 24).c_str(),
                format_thousands(static_cast<long long>(count)).c_str());
  }

  if (!finishes.empty()) {
    const std::size_t top =
        std::min(finishes.size(),
                 static_cast<std::size_t>(std::max(flags.get_int("top"),
                                                   static_cast<long long>(0))));
    std::partial_sort(finishes.begin(), finishes.begin() + top, finishes.end(),
                      [](const FinishRecord& a, const FinishRecord& b) {
                        return a.e2e > b.e2e;
                      });
    std::printf("\ntop %zu jobs by end-to-end latency:\n", top);
    for (std::size_t i = 0; i < top; ++i) {
      const FinishRecord& record = finishes[i];
      std::printf("  %s %s e2e %s",
                  pad_right(record.job, 20).c_str(),
                  pad_right(record.outcome, 10).c_str(),
                  format_duration(record.e2e).c_str());
      if (record.queue_wait >= 0.0) {
        std::printf("  queue %s", format_duration(record.queue_wait).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
