#!/usr/bin/env python3
"""Repo-wide invariant lints that clang-tidy cannot express.

Run from anywhere inside the repository:

    python3 tools/lint_invariants.py

Exit status 0 means every invariant holds; violations print one
GCC-style `file:line: error:` diagnostic each and exit 1.

Invariants enforced (each with a short rationale — see README
"Static analysis"):

 1. No wall-clock reads outside the timer.  Every call site that reads
    std::chrono::{steady,system,high_resolution}_clock under src/ must
    live in src/support/timer.hpp (the WallTimer abstraction and the
    default-clock factory built on it).  Everything else takes time as
    an injected `std::function<double()>` clock, which is what keeps
    virtual-clock tests deterministic — a stray ::now() breaks that
    silently.

 2. No naked standard mutexes.  Under src/, members or locals of
    std::mutex / std::recursive_mutex / std::shared_mutex /
    std::condition_variable{,_any} may only appear in
    src/support/lockdep.{hpp,cpp} — the annotated paradmm::Mutex /
    CondVar wrapper and the validator's own self-exempt internals.
    A naked std::mutex is invisible to both the Clang thread-safety
    analysis and the lock-order validator.

 3. Runtime and kernel headers carry file-level doc comments.  Every
    public header under src/runtime/ plus the kernel seam
    (src/math/kernels.hpp) must open with a `//` comment block before
    any code — these are the subsystem's API surface, and docs/
    links into them by contract.  A header that starts with code has
    lost its contract statement.

 4. docs/ links resolve.  Every relative link target in docs/*.md
    (and the README) must exist, and a `#fragment` into a markdown
    file must match one of its headings (GitHub anchor slugs).  Dead
    internal links rot silently; external http(s) links are not
    checked.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

CLOCK_PATTERN = re.compile(
    r"\b(?:std::chrono::)?"
    r"(?:steady_clock|system_clock|high_resolution_clock)\b"
)
CLOCK_ALLOWLIST = {SRC / "support" / "timer.hpp"}

MUTEX_PATTERN = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|recursive_timed_mutex|timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\b"
)
MUTEX_ALLOWLIST = {
    SRC / "support" / "lockdep.hpp",
    SRC / "support" / "lockdep.cpp",
}

LINE_COMMENT = re.compile(r"//.*$")

# Headers that must open with a file-level doc comment (invariant 3).
DOC_COMMENT_DIRS = [SRC / "runtime"]
DOC_COMMENT_FILES = [SRC / "math" / "kernels.hpp"]

# Markdown files whose relative links must resolve (invariant 4).
DOCS = REPO_ROOT / "docs"
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
MARKDOWN_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def strip_comments(text: str) -> list[str]:
    """Source lines with // and /* */ comment text blanked out
    (line structure preserved so reported line numbers stay true)."""
    # Blank block comments, keeping newlines.
    def blank(match: re.Match[str]) -> str:
        return "".join("\n" if c == "\n" else " " for c in match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)
    return [LINE_COMMENT.sub("", line) for line in text.splitlines()]


def check_file(path: Path) -> list[str]:
    errors = []
    lines = strip_comments(path.read_text(encoding="utf-8"))
    rel = path.relative_to(REPO_ROOT)
    for number, line in enumerate(lines, start=1):
        if path not in CLOCK_ALLOWLIST and CLOCK_PATTERN.search(line):
            errors.append(
                f"{rel}:{number}: error: wall-clock read outside "
                f"src/support/timer.hpp — inject a clock "
                f"(std::function<double()>) instead"
            )
        if path not in MUTEX_ALLOWLIST and MUTEX_PATTERN.search(line):
            errors.append(
                f"{rel}:{number}: error: naked standard mutex/condvar "
                f"outside src/support/lockdep.* — use paradmm::Mutex / "
                f"paradmm::CondVar so the thread-safety analysis and the "
                f"lock-order validator can see it"
            )
    return errors


def check_doc_comment(path: Path) -> list[str]:
    """Invariant 3: the first non-blank line must start a // comment."""
    rel = path.relative_to(REPO_ROOT)
    for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("//"):
            return []
        return [
            f"{rel}:{number}: error: public header lacks a file-level "
            f"doc comment — state the subsystem contract before any code"
        ]
    return []


def github_slug(heading: str) -> str:
    """GitHub's heading-anchor slug: lowercase, drop punctuation,
    spaces to hyphens (backtick/emphasis markers stripped first)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_anchors(path: Path) -> set[str]:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = MARKDOWN_HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def check_markdown_links(path: Path) -> list[str]:
    """Invariant 4: relative link targets exist; #fragments match a
    heading of the target markdown file."""
    errors = []
    rel = path.relative_to(REPO_ROOT)
    in_fence = False
    for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in MARKDOWN_LINK.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            base, _, fragment = target.partition("#")
            dest = path if not base else (path.parent / base).resolve()
            if base and not dest.exists():
                errors.append(
                    f"{rel}:{number}: error: dead link target "
                    f"'{target}' — {base} does not exist")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in markdown_anchors(dest):
                    errors.append(
                        f"{rel}:{number}: error: dead anchor "
                        f"'{target}' — no heading slugs to "
                        f"'#{fragment}' in {dest.name}")
    return errors


def main() -> int:
    if not SRC.is_dir():
        print(f"error: {SRC} not found", file=sys.stderr)
        return 2
    errors: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            errors.extend(check_file(path))
    doc_headers = list(DOC_COMMENT_FILES)
    for directory in DOC_COMMENT_DIRS:
        doc_headers.extend(sorted(directory.glob("*.hpp")))
    for path in doc_headers:
        if path.is_file():
            errors.extend(check_doc_comment(path))
    markdown = sorted(DOCS.glob("*.md")) if DOCS.is_dir() else []
    markdown.append(REPO_ROOT / "README.md")
    for path in markdown:
        if path.is_file():
            errors.extend(check_markdown_links(path))
    for error in errors:
        print(error)
    if errors:
        print(f"\nlint_invariants: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
