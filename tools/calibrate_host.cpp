// Host calibration driver: micro-benchmarks the four seed problems' ADMM
// phases at widths {1, 2, 4, ..., pool} on this machine, fits the per-phase
// serial-fraction/overhead model, and writes the versioned profile JSON the
// runtime consumes (PARADMM_CALIBRATION_FILE, or the committed default at
// calibration/default_profile.json).
//
//   ./calibrate_host --out calibration/default_profile.json
//   PARADMM_CALIBRATION_FILE=$PWD/profile.json ctest ...
//
// --devsim skips the measurements and fits the same functional form to the
// devsim Opteron model's *predicted* phase times instead — the synthetic
// profile committed as the repo's default fallback, so profile-driven code
// paths behave identically on hosts that never ran a real calibration.
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "devsim/cost_model.hpp"
#include "devsim/cpu_model.hpp"
#include "runtime/calibration.hpp"
#include "runtime/trace.hpp"
#include "support/cli.hpp"

using namespace paradmm;
using namespace paradmm::runtime;

namespace {

// Measurement hook for --devsim: per-phase seconds the Opteron model
// predicts for `iterations` iterations of `graph` at `width`, in place of
// wall-clock measurement.
HostCalibrator::MeasureFn devsim_measure() {
  return [](FactorGraph& graph, std::size_t width, int iterations) {
    const devsim::IterationCosts costs = devsim::extract_iteration_costs(graph);
    const devsim::MulticoreSpec spec;
    std::vector<double> seconds;
    seconds.reserve(costs.phases.size());
    for (const auto& phase : costs.phases) {
      const devsim::MulticorePhaseEstimate estimate =
          devsim::simulate_multicore_phase(phase, spec,
                                           static_cast<int>(width));
      seconds.push_back(estimate.seconds * iterations);
    }
    return seconds;
  };
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("calibrate_host");
  flags.add_int("threads", 0, "width ladder ceiling (0 = hardware threads)");
  flags.add_int("iterations", 20, "timed ADMM iterations per sample");
  flags.add_int("warmup", 4, "untimed warmup iterations per sample");
  flags.add_string("out", "host_profile.json", "output profile path");
  flags.add_string("host", "", "host tag stored in the profile");
  flags.add_string("trace", "",
                   "write a Chrome trace of the measurement ladder here "
                   "(one span per problem/width sample; empty = off)");
  flags.add_string("refit-out", "",
                   "replay the measured samples through the runtime's "
                   "online re-fit path (OnlineRecalibrator, seeded with "
                   "the fitted profile) and write the re-fit profile here "
                   "(empty = off)");
  flags.add_bool("devsim", false,
                 "fit the devsim Opteron predictions instead of measuring "
                 "(produces the synthetic committed-default profile)");
  flags.parse(argc, argv);

  HostCalibrator::Options options;
  options.pool_threads = static_cast<std::size_t>(flags.get_int("threads"));
  options.iterations = static_cast<int>(flags.get_int("iterations"));
  options.warmup_iterations = static_cast<int>(flags.get_int("warmup"));
  options.host = flags.get_string("host");
  if (flags.get_bool("devsim")) {
    options.measure = devsim_measure();
    if (options.host.empty()) options.host = "devsim-opteron-32c (synthetic)";
    if (options.pool_threads == 0) options.pool_threads = 32;
  }
  if (options.host.empty()) {
    options.host = "hw" + std::to_string(std::thread::hardware_concurrency()) +
                   "t";
  }

  const std::string trace_path = flags.get_string("trace");
  TraceRecorder trace;
  if (!trace_path.empty()) options.trace = &trace;

  // --refit-out: buffer every measured sample during the single calibrate()
  // run, then replay the buffer through the runtime's online re-fit path —
  // the exact code the BatchRunner runs live — and persist its re-fit
  // profile.  Exercises the offline-fit / online-refit round trip without
  // measuring twice.
  struct RefitSample {
    std::size_t phase, count, width;
    double seconds;
  };
  std::vector<RefitSample> refit_samples;
  const std::string refit_out = flags.get_string("refit-out");
  if (!refit_out.empty()) {
    options.sample_sink = [&refit_samples](std::size_t phase,
                                           std::size_t count,
                                           std::size_t width, double seconds) {
      refit_samples.push_back({phase, count, width, seconds});
    };
  }

  const HostCalibrator calibrator(options);
  const CalibrationProfile profile = calibrator.calibrate();
  const std::string out = flags.get_string("out");
  profile.save(out);

  if (!refit_out.empty()) {
    RecalibrationOptions recal;
    recal.enabled = true;
    recal.baseline = profile;
    OnlineRecalibrator recalibrator(recal);
    for (const RefitSample& sample : refit_samples) {
      recalibrator.record_sample(sample.phase, sample.count, sample.width,
                                 sample.seconds);
    }
    recalibrator.refit_now();
    const RecalibrationStats stats = recalibrator.stats();
    CalibrationProfile refit = recalibrator.current_profile();
    if (refit.host.empty() || refit.host == "online-refit") {
      refit.host = profile.host;
    }
    if (refit.host.find("online re-fit") == std::string::npos) {
      refit.host += " (online re-fit)";
    }
    refit.save(refit_out);
    std::printf(
        "wrote online re-fit profile %s (%zu samples, %zu refits, drift "
        "%.2f%% vs offline fit)\n",
        refit_out.c_str(), stats.samples, stats.refits,
        100.0 * stats.last_drift);
  }
  if (!trace_path.empty()) {
    trace.write_chrome_trace(trace_path);
    std::printf("wrote measurement trace %s\n", trace_path.c_str());
  }

  std::printf("calibrated %zu-lane profile (%s):\n", profile.pool_threads,
              profile.host.c_str());
  for (const auto& phase : profile.phases) {
    std::printf(
        "  %s: %.3e s/element serial, serial fraction %.4f, fork overhead "
        "%.3e s/lane\n",
        phase.name.c_str(), phase.per_element_seconds, phase.serial_fraction,
        phase.fork_overhead_seconds);
  }
  std::printf("wrote %s\n", out.c_str());
  std::printf("use it: %s=%s ctest ...\n", kCalibrationFileEnv, out.c_str());
  return 0;
}
