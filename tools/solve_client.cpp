// Test/demo client for solve_server: submits a mixed batch of jobs over
// the AF_UNIX socket, reads the verdict stream, and verifies it.
//
//   ./solve_client --socket /tmp/paradmm.sock --problem lasso
//       --iterations 40 --tenants "alpha:6:0,beta:2:4"
//       --expect "alpha:done=6,rejected=0;beta:done=2,rejected=4" --shutdown
//
// --tenants here is the *submission plan* (unlike the server flag):
// name:feasible[:doomed] submits `feasible` jobs with no deadline and
// `doomed` jobs with deadline 0.0 for that tenant — under a server running
// --admission reject, a 0.0 deadline is deterministically infeasible (any
// projected finish is > 0), so the doomed jobs are exact admission
// rejections whatever the host's speed.  An empty --tenants submits the
// plan "":feasible:doomed on the implicit tenant.
//
// The client then drains, checks conservation (exactly one terminal event
// per submission, ids matching), checks every event's tenant tag, and —
// when --expect is given — checks exact per-(tenant, state) tallies
// ("tenant:state=count,...;tenant:..."; states not named are expected 0).
// Exit code 0 only if every check passes, so a CI step can gate on it.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

using namespace paradmm;

namespace {

struct TenantPlan {
  std::string name;
  int feasible = 0;
  int doomed = 0;
};

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(separator, begin);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

int parse_count(const std::string& text, const std::string& what) {
  try {
    const int value = std::stoi(text);
    require(value >= 0, "solve_client: " + what + " must be >= 0");
    return value;
  } catch (const PreconditionError&) {
    throw;
  } catch (const std::exception&) {
    require(false, "solve_client: bad count \"" + text + "\" in " + what);
  }
  return 0;
}

// "alpha:6:0,beta:2:4" -> submission plans; "" -> one implicit-tenant plan.
std::vector<TenantPlan> parse_plans(const std::string& spec, int feasible,
                                    int doomed) {
  std::vector<TenantPlan> plans;
  if (spec.empty()) {
    plans.push_back({"", feasible, doomed});
    return plans;
  }
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    const std::vector<std::string> parts = split(entry, ':');
    require(parts.size() >= 2 && parts.size() <= 3 && !parts[0].empty(),
            "solve_client: --tenants entries are name:feasible[:doomed] "
            "(got \"" +
                entry + "\")");
    TenantPlan plan;
    plan.name = parts[0];
    plan.feasible = parse_count(parts[1], "--tenants feasible count");
    plan.doomed =
        parts.size() > 2 ? parse_count(parts[2], "--tenants doomed count") : 0;
    plans.push_back(plan);
  }
  return plans;
}

// "alpha:done=6,rejected=4;beta:done=2" -> expected[tenant][state] = count.
std::map<std::string, std::map<std::string, int>> parse_expect(
    const std::string& spec) {
  std::map<std::string, std::map<std::string, int>> expected;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    require(colon != std::string::npos,
            "solve_client: --expect entries are tenant:state=count,... "
            "(got \"" +
                entry + "\")");
    const std::string tenant = entry.substr(0, colon);
    for (const std::string& pair :
         split(entry.substr(colon + 1), ',')) {
      if (pair.empty()) continue;
      const std::size_t equals = pair.find('=');
      require(equals != std::string::npos,
              "solve_client: --expect tallies are state=count (got \"" +
                  pair + "\")");
      expected[tenant][pair.substr(0, equals)] =
          parse_count(pair.substr(equals + 1), "--expect count");
    }
  }
  return expected;
}

bool write_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool next(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

const JsonValue* find(const JsonValue& object, const std::string& key) {
  if (object.kind != JsonValue::Kind::kObject) return nullptr;
  const auto it = object.object.find(key);
  return it == object.object.end() ? nullptr : &it->second;
}

std::string string_or(const JsonValue* value, const std::string& fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kString
             ? value->string
             : fallback;
}

// The "job" object on the wire: the SubmitRequest schema
// (runtime/submit_request.hpp).
std::string submit_line(long long id, const std::string& problem,
                        int iterations, const std::string& tenant,
                        bool doomed) {
  std::string job = "{\"problem\": " + json_quote(problem) +
                    ", \"max_iterations\": " +
                    json_number(static_cast<double>(iterations));
  if (!tenant.empty()) job += ", \"tenant\": " + json_quote(tenant);
  // Deadline 0.0 is already in the past on the runner clock: under
  // --admission reject the projection can only land strictly later, so
  // the verdict is an exact, host-independent rejection.
  if (doomed) job += ", \"deadline\": 0";
  job += "}";
  return "{\"op\": \"submit\", \"id\": " + std::to_string(id) +
         ", \"job\": " + job + "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("solve_client");
  flags.add_string("socket", "", "AF_UNIX socket path to connect to (required)");
  flags.add_string("problem", "lasso", "registered problem to submit");
  flags.add_int("iterations", 40, "max_iterations per job");
  flags.add_string("tenants", "",
                   "submission plan: name:feasible[:doomed],... (empty = one "
                   "implicit-tenant plan from --feasible/--doomed)");
  flags.add_int("feasible", 4, "implicit-tenant feasible jobs (no --tenants)");
  flags.add_int("doomed", 0, "implicit-tenant doomed jobs (no --tenants)");
  flags.add_string("expect", "",
                   "exact verdict tallies: tenant:state=count,...;tenant:... "
                   "(unnamed states expected 0; empty = skip)");
  flags.add_bool("shutdown", false, "send shutdown (instead of drain) at end");

  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::cerr << "solve_client: FAIL: " << what << std::endl;
    }
  };

  try {
    flags.parse(argc, argv);
    const std::string socket_path = flags.get_string("socket");
    require(!socket_path.empty(), "solve_client: --socket is required");
    const std::vector<TenantPlan> plans =
        parse_plans(flags.get_string("tenants"), flags.get_int("feasible"),
                    flags.get_int("doomed"));
    const auto expected = parse_expect(flags.get_string("expect"));

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(fd >= 0, "solve_client: socket() failed");
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    require(socket_path.size() < sizeof address.sun_path,
            "solve_client: socket path too long");
    std::strncpy(address.sun_path, socket_path.c_str(),
                 sizeof address.sun_path - 1);
    require(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof address) == 0,
            "solve_client: connect(" + socket_path + ") failed: " +
                std::strerror(errno));

    // Submit the whole plan, interleaving tenants round-robin so the
    // server sees mixed arrival order (the fairness-relevant shape), then
    // drain.  id -> (tenant, doomed) remembers what each id was.
    std::map<long long, std::pair<std::string, bool>> submitted;
    long long next_id = 0;
    std::string batch;
    bool remaining = true;
    for (int round = 0; remaining; ++round) {
      remaining = false;
      for (const TenantPlan& plan : plans) {
        const int total = plan.feasible + plan.doomed;
        if (round >= total) continue;
        remaining = true;
        const bool doomed = round >= plan.feasible;
        batch += submit_line(next_id, flags.get_string("problem"),
                             flags.get_int("iterations"), plan.name, doomed);
        submitted[next_id] = {plan.name, doomed};
        ++next_id;
      }
    }
    batch += flags.get_bool("shutdown") ? "{\"op\": \"shutdown\"}\n"
                                        : "{\"op\": \"drain\"}\n";
    require(write_all(fd, batch), "solve_client: write failed");

    // Read events until the drained/bye marker; tally terminal verdicts.
    LineReader reader(fd);
    std::map<std::string, std::map<std::string, int>> tallies;
    std::set<long long> settled;
    std::string line;
    bool finished = false;
    while (!finished && reader.next(&line)) {
      const JsonValue event =
          JsonParser(line, "solve_client event").parse();
      const std::string kind = string_or(find(event, "event"), "");
      if (kind == "drained" || kind == "bye") {
        finished = true;
      } else if (kind == "error") {
        check(false, "server error event: " + line);
      } else if (kind == "terminal") {
        const JsonValue* id_field = find(event, "id");
        check(id_field != nullptr &&
                  id_field->kind == JsonValue::Kind::kNumber,
              "terminal event without numeric id: " + line);
        if (id_field == nullptr) continue;
        const long long id = static_cast<long long>(id_field->number);
        const auto it = submitted.find(id);
        check(it != submitted.end(),
              "terminal event for unknown id " + std::to_string(id));
        check(settled.insert(id).second,
              "duplicate terminal event for id " + std::to_string(id));
        const std::string tenant = string_or(find(event, "tenant"), "");
        if (it != submitted.end()) {
          check(tenant == it->second.first,
                "id " + std::to_string(id) + " submitted as tenant \"" +
                    it->second.first + "\" but settled as \"" + tenant +
                    "\"");
        }
        const std::string state = string_or(find(event, "state"), "?");
        ++tallies[tenant][state];
        std::cout << line << std::endl;
      }
    }
    check(finished, "connection closed before drained/bye");

    // Conservation: exactly one verdict per submission (duplicates were
    // already checked at insert).
    check(settled.size() == submitted.size(),
          "conservation: " + std::to_string(submitted.size()) +
              " submissions but " + std::to_string(settled.size()) +
              " terminal events");

    // Exact per-(tenant, state) tallies.  "done"/"rejected" shorthand maps
    // to the wire states; any state seen but not named in --expect must be
    // 0, and vice versa.
    if (!expected.empty()) {
      const auto canonical = [](const std::string& state) {
        if (state == "done") return std::string("done");
        if (state == "rejected") return std::string("rejected");
        return state;
      };
      for (const auto& [tenant, states] : expected) {
        for (const auto& [state, count] : states) {
          const auto tenant_it = tallies.find(tenant);
          const int seen =
              tenant_it == tallies.end()
                  ? 0
                  : [&] {
                      const auto state_it =
                          tenant_it->second.find(canonical(state));
                      return state_it == tenant_it->second.end()
                                 ? 0
                                 : state_it->second;
                    }();
          check(seen == count, "tenant \"" + tenant + "\" expected " +
                                   std::to_string(count) + " " + state +
                                   " but saw " + std::to_string(seen));
        }
      }
      for (const auto& [tenant, states] : tallies) {
        for (const auto& [state, count] : states) {
          const auto tenant_it = expected.find(tenant);
          const bool named = tenant_it != expected.end() &&
                             tenant_it->second.count(state) > 0;
          if (!named) {
            check(count == 0, "tenant \"" + tenant + "\" saw " +
                                  std::to_string(count) + " unexpected " +
                                  state + " verdicts");
          }
        }
      }
    }

    ::close(fd);
  } catch (const std::exception& error) {
    std::cerr << error.what() << std::endl;
    return 1;
  }
  if (failures == 0) {
    std::cout << "solve_client: OK (" << "all checks passed)" << std::endl;
  }
  return failures == 0 ? 0 : 1;
}
