// Long-lived solver service: newline-delimited JSON over a local (AF_UNIX)
// stream socket, streaming submissions into one persistent BatchRunner and
// streaming terminal verdicts back.
//
// Wire protocol — one JSON object per line, in both directions.
// Client -> server ops:
//
//   {"op": "submit", "id": 7, "job": {"problem": "lasso", "tenant": "alpha",
//                                     "priority": 2, "deadline": 1.5,
//                                     "max_iterations": 200}}
//   {"op": "metrics"}        one-line runner counter snapshot
//   {"op": "drain"}          block until every accepted job is terminal
//   {"op": "shutdown"}       drain, say bye, and stop the server
//
// The "job" object is exactly the SubmitRequest wire schema
// (runtime/submit_request.hpp) — the same schema the C++ API submits, so a
// socket job and an in-process job are the same request.  Server -> client
// events:
//
//   {"event": "terminal", "id": 7, "label": ..., "tenant": ..., "state":
//    "done" | "cancelled" | "failed" | "rejected" | "shed-late" |
//    "quota-rejected", "verdict": ..., "e2e": ..., "wall": ...,
//    "iterations": ..., evidence fields when they exist}
//   {"event": "metrics", ...}   {"event": "drained", "jobs": N}
//   {"event": "error", "message": ...}   {"event": "bye"}
//
// Every accepted submission gets exactly one "terminal" event, in
// submission order (a verdict is written as soon as its job is terminal
// and every earlier verdict is out), with its latency evidence read off
// the handle: end-to-end and executed wall seconds on the runner clock.
// Malformed lines get an "error" event and the connection keeps going —
// one bad request must not kill a batch.
//
// Tenancy: --tenants "alpha:3,beta:1:8:2" defines per-tenant weights and
// quotas as name:weight[:max_queued[:max_in_flight]] (0 = unlimited); see
// runtime/tenant_registry.hpp for the fairness and quota semantics.
//
//   ./solve_server --socket /tmp/paradmm.sock --threads 4
//       --admission reject --tenants "alpha:3,beta:1:8:2"
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/batch_runner.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

using namespace paradmm;
using namespace paradmm::runtime;

namespace {

AdmissionPolicy parse_policy(const std::string& text,
                             const std::string& flag) {
  if (text == "accept") return AdmissionPolicy::kAccept;
  if (text == "reject") return AdmissionPolicy::kRejectInfeasible;
  if (text == "degrade") return AdmissionPolicy::kDegradeToBestEffort;
  require(false, "solve_server: --" + flag +
                     " must be accept, reject, or degrade (got \"" + text +
                     "\")");
  return AdmissionPolicy::kAccept;
}

// "alpha:3,beta:1:8:2" -> define(name, {weight[, max_queued[, max_in_flight]]})
TenantRegistry parse_tenants(const std::string& spec) {
  TenantRegistry registry;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    std::vector<std::string> parts;
    std::size_t part_begin = 0;
    while (true) {
      const std::size_t colon = entry.find(':', part_begin);
      if (colon == std::string::npos) {
        parts.push_back(entry.substr(part_begin));
        break;
      }
      parts.push_back(entry.substr(part_begin, colon - part_begin));
      part_begin = colon + 1;
    }
    require(!parts[0].empty() && parts.size() <= 4,
            "solve_server: --tenants entries are "
            "name:weight[:max_queued[:max_in_flight]] (got \"" +
                entry + "\")");
    TenantQuota quota;
    try {
      if (parts.size() > 1) quota.weight = std::stod(parts[1]);
      if (parts.size() > 2) {
        quota.max_queued = static_cast<std::size_t>(std::stoul(parts[2]));
      }
      if (parts.size() > 3) {
        quota.max_in_flight = static_cast<std::size_t>(std::stoul(parts[3]));
      }
    } catch (const std::exception&) {
      require(false, "solve_server: bad number in --tenants entry \"" +
                         entry + "\"");
    }
    registry.define(parts[0], quota);
  }
  return registry;
}

// Blocking full write; false when the peer went away (the reader will see
// EOF and wind the connection down).
bool write_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Both the reader (errors, drained, metrics) and the settler (verdicts)
// write to the socket; the lock keeps their lines whole.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}
  bool write_line(const std::string& json) {
    std::lock_guard<std::mutex> lock(mutex_);
    return write_all(fd_, json + "\n");
  }

 private:
  int fd_;
  std::mutex mutex_;
};

// Incremental reader splitting the byte stream into lines.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // False on EOF / error with no buffered line left.
  bool next(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

struct Pending {
  long long id = 0;
  JobHandle handle;
};

// Submissions flow reader -> settler through this queue; the settler waits
// each handle in submission order and streams its verdict line.
struct VerdictStream {
  std::mutex mutex;
  std::condition_variable changed;
  std::deque<Pending> pending;
  bool closing = false;
  std::size_t settled = 0;
};

std::string verdict_line(long long id, const JobHandle& handle) {
  const TerminalReason reason = handle.terminal_reason();
  std::string out = "{\"event\": \"terminal\", \"id\": " +
                    std::to_string(id) +
                    ", \"label\": " + json_quote(handle.label()) +
                    ", \"tenant\": " + json_quote(reason.tenant) +
                    ", \"state\": " +
                    json_quote(std::string(to_string(reason.state)));
  out += ", \"verdict\": " +
         json_quote(std::string(to_string(reason.verdict)));
  // Latency evidence on the runner clock: submit -> terminal, plus the
  // executed solve wall seconds (0 for jobs that never ran).
  out += ", \"e2e\": " +
         json_number(handle.finished_at() - handle.submitted_at());
  out += ", \"wall\": " + json_number(handle.wall_seconds());
  if (reason.state == JobState::kDone ||
      reason.state == JobState::kCancelled ||
      reason.state == JobState::kShedLate) {
    out += ", \"iterations\": " +
           json_number(static_cast<double>(handle.report().iterations));
  }
  if (reason.state == JobState::kFailed) {
    out += ", \"error\": " + json_quote(handle.error());
  }
  if (std::isfinite(reason.deadline)) {
    out += ", \"deadline\": " + json_number(reason.deadline);
  }
  if (!std::isnan(reason.projected_finish)) {
    out += ", \"projected_finish\": " + json_number(reason.projected_finish);
  }
  if (!std::isnan(reason.queued_ahead_seconds)) {
    out += ", \"queued_ahead_seconds\": " +
           json_number(reason.queued_ahead_seconds);
  }
  if (reason.state == JobState::kQuotaRejected) {
    out += ", \"quota_queued\": " +
           json_number(static_cast<double>(reason.quota_queued));
    out += ", \"quota_limit\": " +
           json_number(static_cast<double>(reason.quota_limit));
  }
  out += "}";
  return out;
}

std::string metrics_line(const RuntimeMetrics& metrics) {
  const auto field = [](const char* name, std::size_t value) {
    return std::string("\"") + name +
           "\": " + json_number(static_cast<double>(value));
  };
  std::string out = "{\"event\": \"metrics\", " +
                    field("submitted", metrics.submitted) + ", " +
                    field("completed", metrics.completed) + ", " +
                    field("cancelled", metrics.cancelled) + ", " +
                    field("failed", metrics.failed) + ", " +
                    field("rejected", metrics.rejected) + ", " +
                    field("shed_late", metrics.shed_late) + ", " +
                    field("quota_rejected", metrics.quota_rejected) + ", " +
                    field("queue_depth", metrics.queue_depth);
  for (const auto& [name, tenant] : metrics.tenants) {
    out += ", \"tenant_" + name + "_submitted\": " +
           json_number(static_cast<double>(tenant.submitted));
    out += ", \"tenant_" + name + "_completed\": " +
           json_number(static_cast<double>(tenant.completed));
  }
  out += "}";
  return out;
}

void settler_loop(VerdictStream* stream, LineWriter* writer) {
  for (;;) {
    Pending next;
    {
      std::unique_lock<std::mutex> lock(stream->mutex);
      stream->changed.wait(lock, [stream] {
        return !stream->pending.empty() || stream->closing;
      });
      if (stream->pending.empty()) return;  // closing and fully settled
      next = stream->pending.front();
    }
    next.handle.wait();
    writer->write_line(verdict_line(next.id, next.handle));
    {
      std::lock_guard<std::mutex> lock(stream->mutex);
      stream->pending.pop_front();
      ++stream->settled;
    }
    stream->changed.notify_all();
  }
}

const JsonValue* find(const JsonValue& object, const std::string& key) {
  if (object.kind != JsonValue::Kind::kObject) return nullptr;
  const auto it = object.object.find(key);
  return it == object.object.end() ? nullptr : &it->second;
}

// Handles one connection; returns true when the client asked the whole
// server to shut down.
bool serve_connection(int fd, BatchRunner* runner) {
  LineReader reader(fd);
  LineWriter writer(fd);
  VerdictStream stream;
  std::thread settler(settler_loop, &stream, &writer);
  long long next_id = 0;
  bool shutdown_requested = false;

  const auto drain = [&] {
    std::unique_lock<std::mutex> lock(stream.mutex);
    stream.changed.wait(lock, [&stream] { return stream.pending.empty(); });
    return stream.settled;
  };

  std::string line;
  while (!shutdown_requested && reader.next(&line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string op;
    long long id = 0;
    JobHandle handle;
    try {
      JsonParser parser(line, "solve_server request");
      const JsonValue request = parser.parse();
      const JsonValue* op_field = find(request, "op");
      require(op_field != nullptr &&
                  op_field->kind == JsonValue::Kind::kString,
              "solve_server request: field \"op\" (string) is required");
      op = op_field->string;
      if (op == "submit") {
        const JsonValue* id_field = find(request, "id");
        id = id_field != nullptr &&
                     id_field->kind == JsonValue::Kind::kNumber
                 ? static_cast<long long>(id_field->number)
                 : next_id;
        const JsonValue* job = find(request, "job");
        require(job != nullptr,
                "solve_server request: field \"job\" is required for submit");
        handle = runner->submit(SubmitRequest::from_json(*job, "submit job"));
        next_id = id + 1;
      } else {
        require(op == "drain" || op == "metrics" || op == "shutdown",
                "solve_server request: unknown op \"" + op + "\"");
      }
    } catch (const std::exception& error) {
      writer.write_line("{\"event\": \"error\", \"message\": " +
                        json_quote(error.what()) + "}");
      continue;
    }
    if (op == "submit") {
      std::lock_guard<std::mutex> lock(stream.mutex);
      stream.pending.push_back({id, handle});
      stream.changed.notify_all();
    } else if (op == "metrics") {
      writer.write_line(metrics_line(runner->metrics()));
    } else if (op == "drain") {
      const std::size_t settled = drain();
      writer.write_line("{\"event\": \"drained\", \"jobs\": " +
                        json_number(static_cast<double>(settled)) + "}");
    } else {  // shutdown
      drain();
      writer.write_line("{\"event\": \"bye\"}");
      shutdown_requested = true;
    }
  }

  {
    std::lock_guard<std::mutex> lock(stream.mutex);
    stream.closing = true;
  }
  stream.changed.notify_all();
  settler.join();
  return shutdown_requested;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("solve_server");
  flags.add_string("socket", "", "AF_UNIX socket path to listen on (required)");
  flags.add_int("threads", 0, "runner pool threads (0 = hardware)");
  flags.add_double("aging-rate", 0.0, "priority aging rate (see BatchRunner)");
  flags.add_string("admission", "accept",
                   "deadline admission policy: accept | reject | degrade");
  flags.add_string("reprojection", "accept",
                   "continuous admission policy: accept | reject | degrade");
  flags.add_string("tenants", "",
                   "per-tenant quotas: name:weight[:max_queued[:max_in_flight"
                   "]],... (0 = unlimited)");

  int exit_code = 0;
  try {
    flags.parse(argc, argv);
    const std::string socket_path = flags.get_string("socket");
    require(!socket_path.empty(), "solve_server: --socket is required");

    // A client that disconnects mid-verdict must surface as a write error,
    // not a process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    BatchRunnerOptions options;
    options.threads = static_cast<std::size_t>(flags.get_int("threads"));
    options.aging_rate = flags.get_double("aging-rate");
    options.admission = parse_policy(flags.get_string("admission"),
                                     "admission");
    options.reprojection = parse_policy(flags.get_string("reprojection"),
                                        "reprojection");
    options.tenants = parse_tenants(flags.get_string("tenants"));
    BatchRunner runner(options);

    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(listener >= 0, "solve_server: socket() failed");
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    require(socket_path.size() < sizeof address.sun_path,
            "solve_server: socket path too long");
    std::strncpy(address.sun_path, socket_path.c_str(),
                 sizeof address.sun_path - 1);
    ::unlink(socket_path.c_str());
    require(::bind(listener, reinterpret_cast<const sockaddr*>(&address),
                   sizeof address) == 0,
            "solve_server: bind(" + socket_path + ") failed: " +
                std::strerror(errno));
    require(::listen(listener, 8) == 0, "solve_server: listen() failed");
    std::cout << "solve_server: listening on " << socket_path << std::endl;

    // Connections are served one at a time: the service's concurrency
    // story is the runner's (many jobs in flight), not the socket's — and
    // a single ordered verdict stream per client stays exact.
    bool shutdown_requested = false;
    while (!shutdown_requested) {
      const int connection = ::accept(listener, nullptr, nullptr);
      if (connection < 0) {
        if (errno == EINTR) continue;
        require(false, std::string("solve_server: accept() failed: ") +
                           std::strerror(errno));
      }
      shutdown_requested = serve_connection(connection, &runner);
      ::close(connection);
    }
    ::close(listener);
    ::unlink(socket_path.c_str());
    runner.wait_all();
    runner.metrics().print(std::cout);
  } catch (const std::exception& error) {
    std::cerr << error.what() << std::endl;
    exit_code = 1;
  }
  return exit_code;
}
