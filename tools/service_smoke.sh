#!/bin/sh
# Loopback smoke test of the solver service (registered in CTest as
# ServiceLoopback.Smoke): start solve_server on a private AF_UNIX socket
# with two weighted tenants and the reject admission policy, submit a
# mixed batch through solve_client — per tenant, N feasible jobs (no
# deadline) and M doomed jobs (deadline 0.0, deterministically infeasible
# under the reject policy) — and assert the exact per-tenant verdict
# stream: conservation (one terminal event per submission) plus exact
# done / rejected tallies per tenant.  The client exits nonzero on any
# mismatch, which fails the test.
#
# Usage: service_smoke.sh <solve_server-binary> <solve_client-binary>
set -eu

SERVER=$1
CLIENT=$2
SOCKET="${TMPDIR:-/tmp}/paradmm_smoke_$$.sock"

"$SERVER" --socket "$SOCKET" --threads 2 --admission reject \
    --tenants "alpha:3,beta:1" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$SOCKET"' EXIT

# The server unlinks any stale socket and binds before accepting, so the
# path appearing means connect() will be served.
tries=0
while [ ! -S "$SOCKET" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "service_smoke: server socket never appeared" >&2
        exit 1
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "service_smoke: server exited before binding its socket" >&2
        exit 1
    fi
    sleep 0.1
done

"$CLIENT" --socket "$SOCKET" --problem lasso --iterations 40 \
    --tenants "alpha:5:3,beta:4:2" \
    --expect "alpha:done=5,rejected=3;beta:done=4,rejected=2" \
    --shutdown

# Shutdown must be clean: the server drains, says bye, and exits 0 (its
# final metrics table goes to the test log).
wait "$SERVER_PID"
echo "service_smoke: OK"
