#include <gtest/gtest.h>

#include <cmath>

#include "math/minimize.hpp"

namespace paradmm {
namespace {

TEST(GoldenSectionTest, FindsQuadraticMinimum) {
  const double argmin = golden_section_minimize(
      [](double x) { return (x - 2.5) * (x - 2.5); }, -10.0, 10.0);
  EXPECT_NEAR(argmin, 2.5, 1e-8);
}

TEST(GoldenSectionTest, FindsAbsoluteValueKink) {
  const double argmin = golden_section_minimize(
      [](double x) { return std::fabs(x - 1.0) + 0.1 * x; }, -5.0, 5.0);
  EXPECT_NEAR(argmin, 1.0, 1e-7);
}

TEST(GoldenSectionTest, RespectsBoundary) {
  // Monotone decreasing on the interval: min at the right edge.
  const double argmin =
      golden_section_minimize([](double x) { return -x; }, 0.0, 3.0);
  EXPECT_NEAR(argmin, 3.0, 1e-7);
}

TEST(ProjectedGradientTest, UnconstrainedQuadratic) {
  auto objective = [](std::span<const double> s) {
    return (s[0] - 1.0) * (s[0] - 1.0) + 2.0 * (s[1] + 2.0) * (s[1] + 2.0);
  };
  auto identity = [](std::span<double>) {};
  const MinimizeResult result =
      projected_gradient_minimize(objective, identity, {0.0, 0.0});
  EXPECT_NEAR(result.argmin[0], 1.0, 1e-4);
  EXPECT_NEAR(result.argmin[1], -2.0, 1e-4);
  EXPECT_NEAR(result.value, 0.0, 1e-7);
}

TEST(ProjectedGradientTest, BoxConstrainedQuadratic) {
  // min (x-2)^2 s.t. x in [0, 1]  ->  x = 1.
  auto objective = [](std::span<const double> s) {
    return (s[0] - 2.0) * (s[0] - 2.0);
  };
  auto project = [](std::span<double> s) {
    s[0] = std::min(1.0, std::max(0.0, s[0]));
  };
  const MinimizeResult result =
      projected_gradient_minimize(objective, project, {0.5});
  EXPECT_NEAR(result.argmin[0], 1.0, 1e-6);
}

TEST(ProjectedGradientTest, ReportsIterations) {
  auto objective = [](std::span<const double> s) { return s[0] * s[0]; };
  auto identity = [](std::span<double>) {};
  const MinimizeResult result =
      projected_gradient_minimize(objective, identity, {4.0});
  EXPECT_GT(result.iterations, 0);
}

}  // namespace
}  // namespace paradmm
