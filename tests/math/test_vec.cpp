#include <gtest/gtest.h>

#include <vector>

#include "math/vec.hpp"

namespace paradmm {
namespace {

TEST(VecTest, FillAndCopy) {
  std::vector<double> a(4);
  vec::fill(a, 2.5);
  for (const double v : a) EXPECT_DOUBLE_EQ(v, 2.5);
  std::vector<double> b(4);
  vec::copy(a, b);
  EXPECT_EQ(a, b);
}

TEST(VecTest, Axpy) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  vec::axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VecTest, AddSubScale) {
  std::vector<double> x = {1.0, -2.0};
  std::vector<double> y = {0.5, 0.5};
  std::vector<double> out(2);
  vec::add(x, y, out);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  vec::sub(x, y, out);
  EXPECT_DOUBLE_EQ(out[1], -2.5);
  vec::scale(out, 2.0);
  EXPECT_DOUBLE_EQ(out[1], -5.0);
}

TEST(VecTest, DotAndNorms) {
  std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(vec::dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(vec::norm2_squared(x), 25.0);
  EXPECT_DOUBLE_EQ(vec::norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(vec::norm_inf(x), 4.0);
}

TEST(VecTest, Distances) {
  std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {4.0, 5.0};
  EXPECT_DOUBLE_EQ(vec::distance_squared(x, y), 25.0);
  EXPECT_DOUBLE_EQ(vec::distance(x, y), 5.0);
}

TEST(VecTest, Clamp) {
  std::vector<double> x = {-2.0, 0.5, 3.0};
  vec::clamp(x, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(VecTest, EmptySpansAreFine) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(vec::norm2(empty), 0.0);
  EXPECT_DOUBLE_EQ(vec::norm_inf(empty), 0.0);
  vec::fill(empty, 1.0);
  vec::scale(empty, 2.0);
}

}  // namespace
}  // namespace paradmm
