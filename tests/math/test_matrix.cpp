#include <gtest/gtest.h>

#include "math/matrix.hpp"
#include "support/rng.hpp"

namespace paradmm {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  m(1, 0) = -5.0;
  EXPECT_DOUBLE_EQ(m(1, 0), -5.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
  const std::vector<double> d = {2.0, 5.0};
  const Matrix diag = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(MatrixTest, MatVec) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x = {1.0, -1.0};
  std::vector<double> out(2);
  m.multiply(x, out);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(MatrixTest, ProductMatchesHand) {
  const Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  const Matrix b{{3.0, 0.0}, {1.0, 4.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix round = t.transposed();
  EXPECT_DOUBLE_EQ((round - a).frobenius_norm(), 0.0);
}

TEST(MatrixTest, CholeskyReconstructs) {
  const Matrix a{{4.0, 2.0, 0.0}, {2.0, 5.0, 1.0}, {0.0, 1.0, 3.0}};
  const Matrix l = cholesky_factor(a);
  const Matrix reconstructed = l * l.transposed();
  EXPECT_LT((reconstructed - a).frobenius_norm(), 1e-12);
}

TEST(MatrixTest, CholeskyRejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_factor(a), NumericalError);
}

TEST(MatrixTest, SolveSpdRecoversSolution) {
  Rng rng(11);
  const std::size_t n = 8;
  Matrix basis(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) basis(r, c) = rng.gaussian();
  Matrix spd = basis * basis.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);

  std::vector<double> truth(n);
  for (auto& v : truth) v = rng.uniform(-2.0, 2.0);
  std::vector<double> rhs(n);
  spd.multiply(truth, rhs);

  const std::vector<double> solved = solve_spd(spd, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(solved[i], truth[i], 1e-9);
}

TEST(MatrixTest, LuSolvesGeneralSystem) {
  const Matrix a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  const std::vector<double> b = {-8.0, 0.0, 3.0};
  const std::vector<double> x = solve_lu(a, b);
  std::vector<double> check(3);
  a.multiply(x, check);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(check[i], b[i], 1e-10);
}

TEST(MatrixTest, LuRejectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_lu(a, {1.0, 2.0}), NumericalError);
}

TEST(MatrixTest, InverseTimesSelfIsIdentity) {
  const Matrix a{{2.0, 1.0}, {7.0, 4.0}};
  const Matrix inv = inverse(a);
  const Matrix eye = a * inv;
  EXPECT_LT((eye - Matrix::identity(2)).frobenius_norm(), 1e-12);
}

TEST(MatrixTest, DimensionMismatchThrows) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.0, 2.0}};
  EXPECT_THROW(a * b, PreconditionError);
  std::vector<double> out(1);
  EXPECT_THROW(a.multiply(std::vector<double>{1.0}, out), PreconditionError);
}

}  // namespace
}  // namespace paradmm
