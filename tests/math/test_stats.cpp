#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/stats.hpp"
#include "support/error.hpp"

namespace paradmm {
namespace {

TEST(StatsTest, SumAndMean) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(stats::sum(v), 12.0);
  EXPECT_DOUBLE_EQ(stats::mean(v), 3.0);
}

TEST(StatsTest, VarianceUnbiased) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(stats::variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats::stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, DegenerateVariance) {
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(stats::variance(one), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(stats::min(v), -1.0);
  EXPECT_DOUBLE_EQ(stats::max(v), 7.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(stats::percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 1.0 / 3.0), 2.0);
}

TEST(StatsTest, EmptyRangesThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(stats::mean(empty), PreconditionError);
  EXPECT_THROW(stats::min(empty), PreconditionError);
  EXPECT_THROW(stats::max(empty), PreconditionError);
  EXPECT_THROW(stats::percentile(empty, 0.5), PreconditionError);
}

TEST(StatsTest, PercentileRejectsBadQ) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(stats::percentile(v, -0.1), PreconditionError);
  EXPECT_THROW(stats::percentile(v, 1.1), PreconditionError);
}

}  // namespace
}  // namespace paradmm
