#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "support/rng.hpp"

namespace paradmm {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) differing += a.next() != b.next();
  EXPECT_GT(differing, 28);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(9);
  const auto first = rng.next();
  rng.next();
  rng.reseed(9);
  EXPECT_EQ(rng.next(), first);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(5);
  const auto values = rng.uniform_vector(200000, 0.0, 1.0);
  EXPECT_NEAR(stats::mean(values), 0.5, 5e-3);
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(17);
  std::vector<int> histogram(7, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++histogram[idx];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / 7.0, kDraws * 0.01);
  }
}

TEST(RngTest, UniformIndexRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(31);
  const auto values = rng.gaussian_vector(200000, 1.5, 2.0);
  EXPECT_NEAR(stats::mean(values), 1.5, 0.02);
  EXPECT_NEAR(stats::stddev(values), 2.0, 0.02);
}

TEST(RngTest, GaussianRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), PreconditionError);
}

TEST(RngTest, SplitStreamsAreIndependentButDeterministic) {
  Rng parent_a(77);
  Rng parent_b(77);
  Rng child_a = parent_a.split();
  Rng child_b = parent_b.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a.next(), child_b.next());
  // Child differs from a fresh parent stream.
  Rng parent_c(77);
  Rng child_c = parent_c.split();
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += child_c.next() != parent_c.next();
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UsableWithStdShuffleConcept) {
  // UniformRandomBitGenerator requirements.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(3);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace paradmm
