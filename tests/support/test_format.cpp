#include <gtest/gtest.h>

#include "support/format.hpp"

namespace paradmm {
namespace {

TEST(FormatTest, FixedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatTest, Scientific) {
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_sci(0.00042, 1), "4.2e-04");
}

TEST(FormatTest, SiSuffixes) {
  EXPECT_EQ(format_si(950.0, 1), "950.0");
  EXPECT_EQ(format_si(12345.0, 1), "12.3k");
  EXPECT_EQ(format_si(5e6, 1), "5.0M");
  EXPECT_EQ(format_si(2.5e9, 1), "2.5G");
  EXPECT_EQ(format_si(-12345.0, 1), "-12.3k");
}

TEST(FormatTest, ThousandsSeparators) {
  EXPECT_EQ(format_thousands(0), "0");
  EXPECT_EQ(format_thousands(999), "999");
  EXPECT_EQ(format_thousands(1000), "1,000");
  EXPECT_EQ(format_thousands(1234567), "1,234,567");
  EXPECT_EQ(format_thousands(-45000), "-45,000");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(FormatTest, Durations) {
  EXPECT_EQ(format_duration(2.5), "2.50s");
  EXPECT_EQ(format_duration(0.012), "12.00ms");
  EXPECT_EQ(format_duration(42e-6), "42.0us");
  EXPECT_EQ(format_duration(1.5e-8), "15ns");
}

}  // namespace
}  // namespace paradmm
