// The lock-order validator's contracts (support/lockdep.hpp):
//
//  * an ABBA order across two threads is detected deterministically — at
//    the first acquisition that creates the cycle, no unlucky
//    interleaving required — and the diagnostic names BOTH lock
//    sequences (the acquiring thread's held stack and the recorded
//    sequence that established the conflicting order);
//  * consistent nesting never false-positives, however many threads
//    repeat it;
//  * re-entrant acquisition of a held instance is rejected;
//  * with the validator compiled out (or switched off) the same call
//    sites compile and behave identically — the bitwise on/off property
//    is pinned against a full BatchRunner scenario, mirroring the
//    trace layer's null-sink test;
//  * the default handler aborts, naming both sequences (death test).
//
// Every runtime-violation test skips cleanly in non-lockdep builds: this
// file compiles and links in both, which is itself the compile-parity
// half of the wrapper-off contract.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "support/lockdep.hpp"

namespace paradmm {
namespace {

// Installs a capturing failure handler for one test, restoring the
// previous handler (usually none: report+abort) on destruction.
class CaptureViolations {
 public:
  CaptureViolations() {
    previous_ = lockdep::set_failure_handler(
        [this](const lockdep::Violation& violation) {
          violations_.push_back(violation);
        });
  }
  ~CaptureViolations() { lockdep::set_failure_handler(std::move(previous_)); }

  const std::vector<lockdep::Violation>& violations() const {
    return violations_;
  }

 private:
  lockdep::Handler previous_;
  std::vector<lockdep::Violation> violations_;
};

// A handler that throws instead of returning, for sites where letting
// the acquisition proceed would genuinely deadlock (re-entrant locking
// of a non-recursive mutex).
struct ViolationError : std::runtime_error {
  explicit ViolationError(lockdep::Violation violation)
      : std::runtime_error(violation.message),
        violation(std::move(violation)) {}
  lockdep::Violation violation;
};

class ThrowOnViolation {
 public:
  ThrowOnViolation() {
    previous_ = lockdep::set_failure_handler(
        [](const lockdep::Violation& violation) {
          throw ViolationError(violation);
        });
  }
  ~ThrowOnViolation() { lockdep::set_failure_handler(std::move(previous_)); }

 private:
  lockdep::Handler previous_;
};

// ---------------------------------------------------------------------------
// Wrapper semantics that hold in EVERY build (validator on or off): these
// are the call sites whose compile-and-run parity the wrapper-off build
// must keep.

TEST(LockdepWrapper, MutexLockAndUniqueLockCallSitesBehave) {
  Mutex mutex("test-wrapper");
  EXPECT_STREQ(mutex.name(), "test-wrapper");
  int guarded = 0;
  {
    MutexLock lock(mutex);
    guarded = 1;
  }
  {
    UniqueLock lock(mutex);
    EXPECT_TRUE(lock.owns_lock());
    guarded = 2;
    lock.unlock();
    EXPECT_FALSE(lock.owns_lock());
    lock.lock();
    EXPECT_TRUE(lock.owns_lock());
    EXPECT_EQ(lock.mutex(), &mutex);
  }
  EXPECT_EQ(guarded, 2);
}

TEST(LockdepWrapper, TryLockFailsWhileHeldElsewhere) {
  Mutex mutex("test-trylock");
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    MutexLock lock(mutex);
    held.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_FALSE(mutex.try_lock());
  release.store(true);
  holder.join();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(LockdepWrapper, CondVarWaitAndNotifyRoundTrip) {
  Mutex mutex("test-condvar");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lock(mutex);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(LockdepApi, DisabledBuildReportsDisabled) {
  if (lockdep::build_enabled()) {
    EXPECT_TRUE(lockdep::enabled());
    return;
  }
  // Non-lockdep build: the switch is pinned off and the toggles are
  // no-ops through the exact same entry points lockdep builds use.
  EXPECT_FALSE(lockdep::enabled());
  lockdep::set_enabled(true);
  EXPECT_FALSE(lockdep::enabled());
  lockdep::reset_order_graph();
}

// ---------------------------------------------------------------------------
// Validator behavior (lockdep builds only).

TEST(Lockdep, ConsistentNestingAcrossThreadsRaisesNoViolation) {
  if (!lockdep::build_enabled()) GTEST_SKIP() << "PARADMM_LOCKDEP is off";
  lockdep::reset_order_graph();
  CaptureViolations capture;
  Mutex outer("nest-outer");
  Mutex inner("nest-inner");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock first(outer);
        MutexLock second(inner);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(capture.violations().empty());
}

TEST(Lockdep, AbbaAcrossTwoThreadsIsDetectedAtTheClosingAcquisition) {
  if (!lockdep::build_enabled()) GTEST_SKIP() << "PARADMM_LOCKDEP is off";
  lockdep::reset_order_graph();
  CaptureViolations capture;
  Mutex a("abba-A");
  Mutex b("abba-B");

  // Thread 1 records the order A -> B and finishes.  No violation: the
  // graph merely learns the edge.
  std::thread first([&] {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  });
  first.join();
  ASSERT_TRUE(capture.violations().empty());

  // Thread 2 then acquires B -> A.  Nobody holds anything concurrently —
  // there is no actual deadlock on this run — but the mere order closes
  // the cycle and must be reported at this exact acquisition.
  std::thread second([&] {
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // the closing acquisition
  });
  second.join();

  ASSERT_EQ(capture.violations().size(), 1u);
  const lockdep::Violation& violation = capture.violations()[0];
  EXPECT_EQ(violation.kind, "cycle");
  // The diagnostic names both sequences: this thread's held stack...
  EXPECT_NE(violation.message.find("\"abba-B\" -> \"abba-A\""),
            std::string::npos)
      << violation.message;
  // ...and the recorded sequence that established the reverse order.
  EXPECT_NE(violation.message.find("\"abba-A\" -> \"abba-B\""),
            std::string::npos)
      << violation.message;
  EXPECT_NE(violation.message.find("cycle"), std::string::npos);
}

TEST(Lockdep, SameNameDistinctInstancesNestingIsACycle) {
  if (!lockdep::build_enabled()) GTEST_SKIP() << "PARADMM_LOCKDEP is off";
  // The graph is keyed by lock *class* (name), like kernel lockdep:
  // nesting two instances of one class is the classic per-object ABBA
  // waiting to happen (thread 1 nests j1 -> j2 while thread 2 nests
  // j2 -> j1), so it is flagged on the first occurrence.
  lockdep::reset_order_graph();
  CaptureViolations capture;
  Mutex first_instance("job-lock");
  Mutex second_instance("job-lock");
  {
    MutexLock outer(first_instance);
    MutexLock inner(second_instance);
  }
  ASSERT_EQ(capture.violations().size(), 1u);
  EXPECT_EQ(capture.violations()[0].kind, "cycle");
  EXPECT_NE(capture.violations()[0].message.find("\"job-lock\""),
            std::string::npos);
}

TEST(Lockdep, ReentrantAcquisitionIsRejected) {
  if (!lockdep::build_enabled()) GTEST_SKIP() << "PARADMM_LOCKDEP is off";
  lockdep::reset_order_graph();
  ThrowOnViolation thrower;
  Mutex mutex("reentrant-lock");
  UniqueLock lock(mutex);
  try {
    mutex.lock();  // would self-deadlock; the validator fires first
    FAIL() << "re-entrant acquisition was not rejected";
  } catch (const ViolationError& error) {
    EXPECT_EQ(error.violation.kind, "re-entrant");
    EXPECT_NE(error.violation.message.find("\"reentrant-lock\""),
              std::string::npos)
        << error.violation.message;
  }
}

TEST(Lockdep, ResetOrderGraphForgetsRecordedEdges) {
  if (!lockdep::build_enabled()) GTEST_SKIP() << "PARADMM_LOCKDEP is off";
  lockdep::reset_order_graph();
  CaptureViolations capture;
  Mutex a("reset-A");
  Mutex b("reset-B");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // records A -> B
  }
  lockdep::reset_order_graph();
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // would close the cycle, but the edge is gone
  }
  EXPECT_TRUE(capture.violations().empty());
  lockdep::reset_order_graph();  // drop the B -> A edge recorded just now
}

TEST(LockdepDeath, DefaultHandlerAbortsNamingBothSequences) {
  if (!lockdep::build_enabled()) GTEST_SKIP() << "PARADMM_LOCKDEP is off";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto abba = [] {
    lockdep::reset_order_graph();
    Mutex a("death-A");
    Mutex b("death-B");
    {
      MutexLock lock_a(a);
      MutexLock lock_b(b);
    }
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // no handler installed: report + abort
  };
  // The report must carry both named sequences.  Death-test regexes are
  // line-oriented, so each sequence is asserted by its own child run.
  EXPECT_DEATH(abba(), "lock-order cycle detected");
  EXPECT_DEATH(abba(), "while holding: \"death-B\" -> \"death-A\"");
  EXPECT_DEATH(abba(), "\"death-A\" -> \"death-B\"");
}

// ---------------------------------------------------------------------------
// The zero-interference property: with the validator switched off at
// runtime, a full BatchRunner scenario is bitwise identical to the
// checked run — same dispatch order, same solver trajectories, same
// metrics.  Mirrors TraceNoOp.DetachedSinkLeavesRunBitwiseIdentical
// (tests/runtime/test_trace.cpp).  In non-lockdep builds set_enabled is
// a no-op and both runs are trivially the plain-mutex runtime; the test
// still runs, pinning the call-site parity.

runtime::RuntimeMetrics lockdep_scenario(bool validate,
                                         std::vector<std::size_t>* start_order,
                                         std::vector<double>* z_values) {
  using namespace paradmm::runtime;
  lockdep::set_enabled(validate);
  auto vclock = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions options;
  options.threads = 1;
  options.clock = [vclock] { return vclock->load(); };

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<char> recorded(3, 0);
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  RuntimeMetrics metrics;
  {
    BatchRunner runner(options);

    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FactorGraph blocker_graph;
    const VariableId blocker_w = blocker_graph.add_variable(1);
    blocker_graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{0.0}),
        {blocker_w});
    blocker_graph.set_uniform_parameters(1.0, 1.0);
    SolveJob blocker;
    blocker.graph = &blocker_graph;
    blocker.label = "blocker";
    blocker.options.max_iterations = 20;
    blocker.options.check_interval = 10;
    blocker.progress = [&](const IterationStatus&) {
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    };
    runner.submit(std::move(blocker));
    while (!parked.load()) std::this_thread::yield();

    const int priorities[] = {0, 5, 2};
    for (std::size_t i = 0; i < 3; ++i) {
      auto graph = std::make_unique<FactorGraph>();
      const VariableId w = graph->add_variable(1);
      graph->add_factor(
          std::make_shared<SumSquaresProx>(
              1.0, std::vector<double>{static_cast<double>(i + 1)}),
          {w});
      graph->set_uniform_parameters(1.0, 1.0);
      graphs.push_back(std::move(graph));
      vclock->store(static_cast<double>(i + 1));
      SolveJob job;
      job.graph = graphs.back().get();
      job.label = "job-" + std::to_string(i);
      job.priority = priorities[i];
      job.options.max_iterations = 20;
      job.options.check_interval = 10;
      job.progress = [&, i](const IterationStatus&) {
        std::lock_guard lock(order_mutex);
        if (!recorded[i]) {
          recorded[i] = 1;
          order.push_back(i);
        }
      };
      runner.submit(std::move(job));
    }

    vclock->store(4.0);
    release.store(true);
    runner.wait_all();
    metrics = runner.metrics();
  }
  lockdep::set_enabled(true);

  if (start_order != nullptr) *start_order = order;
  if (z_values != nullptr) {
    z_values->clear();
    for (const auto& graph : graphs) {
      for (const double z : graph->z_values()) z_values->push_back(z);
    }
  }
  return metrics;
}

TEST(LockdepNoOp, DisabledValidatorLeavesRunBitwiseIdentical) {
  std::vector<std::size_t> order_checked;
  std::vector<std::size_t> order_plain;
  std::vector<double> z_checked;
  std::vector<double> z_plain;
  const runtime::RuntimeMetrics metrics_checked =
      lockdep_scenario(/*validate=*/true, &order_checked, &z_checked);
  const runtime::RuntimeMetrics metrics_plain =
      lockdep_scenario(/*validate=*/false, &order_plain, &z_plain);

  // Priority order: job-1 (5), job-2 (2), job-0 (0) — and identical
  // between the checked and unchecked runs.
  const std::vector<std::size_t> expected{1, 2, 0};
  EXPECT_EQ(order_checked, expected);
  EXPECT_EQ(order_plain, expected);

  ASSERT_EQ(z_checked.size(), z_plain.size());
  for (std::size_t i = 0; i < z_checked.size(); ++i) {
    EXPECT_EQ(z_checked[i], z_plain[i]) << "z diverged at " << i;
  }

  EXPECT_EQ(metrics_checked.submitted, metrics_plain.submitted);
  EXPECT_EQ(metrics_checked.completed, metrics_plain.completed);
  EXPECT_EQ(metrics_checked.cancelled, metrics_plain.cancelled);
  EXPECT_EQ(metrics_checked.failed, metrics_plain.failed);
  EXPECT_EQ(metrics_checked.dispatcher_preemptions,
            metrics_plain.dispatcher_preemptions);
  EXPECT_EQ(metrics_checked.finished_by_width, metrics_plain.finished_by_width);
  EXPECT_EQ(metrics_checked.queue_wait.count(),
            metrics_plain.queue_wait.count());
  EXPECT_EQ(metrics_checked.end_to_end.count(),
            metrics_plain.end_to_end.count());
  // Latencies run on the virtual clock, so the percentile values are
  // deterministic and must agree exactly.
  EXPECT_DOUBLE_EQ(metrics_checked.queue_wait.p99(),
                   metrics_plain.queue_wait.p99());
  EXPECT_DOUBLE_EQ(metrics_checked.end_to_end.p99(),
                   metrics_plain.end_to_end.p99());
}

}  // namespace
}  // namespace paradmm
