#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace paradmm {
namespace {

TEST(TableTest, AlignsColumns) {
  Table table({"N", "speedup"});
  table.add_row({"100", "1.5"});
  table.add_row({"100000", "17.25"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("     N  speedup"), std::string::npos);
  EXPECT_NE(text.find("100000    17.25"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableTest, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

}  // namespace
}  // namespace paradmm
