#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/error.hpp"

namespace paradmm {
namespace {

CliFlags make_flags() {
  CliFlags flags("test_program");
  flags.add_int("iters", 100, "iteration count");
  flags.add_double("rho", 1.5, "admm rho");
  flags.add_string("mode", "gpu", "device kind");
  flags.add_bool("quick", false, "reduced sweep");
  return flags;
}

TEST(CliTest, DefaultsApply) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_EQ(flags.get_int("iters"), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("rho"), 1.5);
  EXPECT_EQ(flags.get_string("mode"), "gpu");
  EXPECT_FALSE(flags.get_bool("quick"));
}

TEST(CliTest, SpaceSeparatedValues) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--iters", "42", "--mode", "cpu"};
  flags.parse(5, argv);
  EXPECT_EQ(flags.get_int("iters"), 42);
  EXPECT_EQ(flags.get_string("mode"), "cpu");
}

TEST(CliTest, EqualsSeparatedValues) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--rho=0.25", "--quick=true"};
  flags.parse(3, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("rho"), 0.25);
  EXPECT_TRUE(flags.get_bool("quick"));
}

TEST(CliTest, BareBooleanFlag) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--quick"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.get_bool("quick"));
}

TEST(CliTest, UnknownFlagThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(flags.parse(3, argv), PreconditionError);
}

TEST(CliTest, MissingValueThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--iters"};
  EXPECT_THROW(flags.parse(2, argv), PreconditionError);
}

TEST(CliTest, WrongTypeAccessThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_THROW(flags.get_int("rho"), PreconditionError);
  EXPECT_THROW(flags.get_bool("mode"), PreconditionError);
}

TEST(CliTest, DuplicateRegistrationThrows) {
  CliFlags flags("prog");
  flags.add_int("n", 1, "x");
  EXPECT_THROW(flags.add_double("n", 2.0, "y"), PreconditionError);
}

TEST(CliTest, UsageListsFlagsInOrder) {
  CliFlags flags = make_flags();
  const std::string usage = flags.usage();
  const auto iters_at = usage.find("--iters");
  const auto quick_at = usage.find("--quick");
  EXPECT_NE(iters_at, std::string::npos);
  EXPECT_NE(quick_at, std::string::npos);
  EXPECT_LT(iters_at, quick_at);
}

}  // namespace
}  // namespace paradmm
