// The trace layer's contracts: histogram percentile exactness, virtual-
// clock determinism (byte-identical export run to run), Chrome trace-event
// schema (parseable by the shared JSON parser, loadable in Perfetto), and
// the bitwise no-op property — with no sink attached, dispatch order,
// solve results, and RuntimeMetrics are identical to the traced run.
//
// Determinism technique (same as test_priority.cpp): a single-lane runner
// on a virtual clock whose first job parks inside its progress callback;
// everything submitted while it is parked queues up together, and after
// release the execution order is exactly the dispatch policy's order.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/trace.hpp"
#include "support/json.hpp"

namespace paradmm::runtime {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(50.0), 0.0);
  EXPECT_EQ(histogram.p99(), 0.0);
}

TEST(LatencyHistogram, BoundarySamplesAreExact) {
  // Samples on a bucket boundary (kMinSeconds * 2^k) come back exactly:
  // the promise that makes percentile assertions in other tests crisp.
  for (int k = 0; k <= 20; ++k) {
    LatencyHistogram histogram;
    const double sample = LatencyHistogram::kMinSeconds * std::exp2(k);
    histogram.record(sample);
    EXPECT_DOUBLE_EQ(histogram.percentile(100.0), sample) << "k=" << k;
    EXPECT_DOUBLE_EQ(histogram.p50(), sample) << "k=" << k;
  }
}

TEST(LatencyHistogram, InBucketSamplesOverestimateByAtMostOneBucket) {
  const double samples[] = {3.7e-6, 0.00042, 0.0371, 1.31, 47.0, 1234.5};
  for (const double sample : samples) {
    LatencyHistogram histogram;
    histogram.record(sample);
    const double reported = histogram.percentile(100.0);
    EXPECT_GE(reported, sample);
    EXPECT_LE(reported, sample * std::exp2(0.25) * (1.0 + 1e-12));
  }
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndRankCorrect) {
  LatencyHistogram histogram;
  // 80 boundary samples from ~1 ms up: kMin * 2^(10 + j/4) walks the
  // bucket ladder one sample per bucket (index 40 + j stays below the
  // 127-bucket saturation point), so rank arithmetic is exact.
  for (int j = 0; j < 80; ++j) {
    histogram.record(LatencyHistogram::kMinSeconds * std::exp2(10 + j / 4.0));
  }
  EXPECT_EQ(histogram.count(), 80u);
  EXPECT_LE(histogram.p50(), histogram.p95());
  EXPECT_LE(histogram.p95(), histogram.p99());
  // With one sample per bucket, rank r (= ceil(p/100 * 80)) lands on
  // sample j = r - 1.
  EXPECT_DOUBLE_EQ(histogram.p50(),
                   LatencyHistogram::kMinSeconds * std::exp2(10 + 39 / 4.0));
  EXPECT_DOUBLE_EQ(histogram.p95(),
                   LatencyHistogram::kMinSeconds * std::exp2(10 + 75 / 4.0));
  EXPECT_DOUBLE_EQ(histogram.p99(),
                   LatencyHistogram::kMinSeconds * std::exp2(10 + 79 / 4.0));
  EXPECT_DOUBLE_EQ(histogram.percentile(100.0),
                   LatencyHistogram::kMinSeconds * std::exp2(10 + 79 / 4.0));
}

TEST(LatencyHistogram, SaturatesAtTheTopBucketForHugeSamples) {
  LatencyHistogram histogram;
  histogram.record(1e9);  // ~31 years: clamps to the last bucket
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(
      histogram.percentile(100.0),
      LatencyHistogram::bucket_upper_bound(LatencyHistogram::kBuckets - 1));
}

TEST(LatencyHistogram, DropsGarbageSamples) {
  LatencyHistogram histogram;
  histogram.record(-1.0);
  histogram.record(std::nan(""));
  histogram.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.count(), 0u);
  histogram.record(0.5);
  EXPECT_EQ(histogram.count(), 1u);
}

// ---------------------------------------------------------------------------
// TraceRecorder primitives

TEST(TraceRecorder, RecordsAndSortsOnInjectedClock) {
  TraceRecorder recorder;
  auto vclock = std::make_shared<std::atomic<double>>(0.0);
  recorder.set_clock([vclock] { return vclock->load(); });

  vclock->store(2.0);
  recorder.instant("late", "test");
  vclock->store(1.0);
  recorder.instant("early", "test");
  recorder.complete("span", "test", 0.5, 1.5,
                    {TraceRecorder::arg("width", std::size_t{4})});

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "span");    // start 0.5
  EXPECT_EQ(events[1].name, "early");   // start 1.0
  EXPECT_EQ(events[2].name, "late");    // start 2.0
  EXPECT_DOUBLE_EQ(events[0].duration, 1.5);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "width");
  EXPECT_EQ(events[0].args[0].value, "4");
}

TEST(TraceRecorder, ThreadsGetStableTidsAndLoseNoEvents) {
  TraceRecorder recorder;
  auto vclock = std::make_shared<std::atomic<double>>(1.0);
  recorder.set_clock([vclock] { return vclock->load(); });

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        recorder.instant("tick", "test");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::set<std::uint64_t> tids;
  for (const auto& event : events) tids.insert(event.tid);
  EXPECT_EQ(tids.size(), kThreads);
  for (const std::uint64_t tid : tids) EXPECT_LT(tid, kThreads);
}

// ---------------------------------------------------------------------------
// Export schema

TEST(TraceExport, ChromeJsonRoundTripsThroughTheSharedParser) {
  TraceRecorder recorder;
  auto vclock = std::make_shared<std::atomic<double>>(0.25);
  recorder.set_clock([vclock] { return vclock->load(); });

  recorder.async_begin("job-0", "job", 7);
  recorder.instant("submit", "job",
                   {TraceRecorder::arg("priority", 3),
                    TraceRecorder::arg("label", std::string("a\"b\\c"))});
  recorder.complete("queued", "job", 0.25, 0.5,
                    {TraceRecorder::arg("deadline", 12.5),
                     TraceRecorder::arg("projected",
                                        std::nan(""))});  // null, not NaN
  vclock->store(0.75);
  recorder.async_end("job-0", "job", 7);

  std::ostringstream out;
  recorder.export_chrome_trace(out);
  const std::string text = out.str();

  JsonParser parser(text, "trace JSON");
  const JsonValue root = parser.parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const auto& events = root.object.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events.array.size(), 4u);

  for (const auto& event : events.array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    // The fields Perfetto requires on every record.
    for (const char* field : {"name", "cat", "ph", "ts", "pid", "tid"}) {
      EXPECT_TRUE(event.object.count(field)) << "missing " << field;
    }
    const std::string& ph = event.object.at("ph").string;
    if (ph == "X") {
      EXPECT_TRUE(event.object.count("dur"));
    }
    if (ph == "b" || ph == "e") {
      EXPECT_TRUE(event.object.count("id"));
    }
    if (ph == "i") {
      EXPECT_EQ(event.object.at("s").string, "t");
    }
  }

  // Timestamps are microseconds on the injected clock.
  const auto& begin = events.array[0];
  EXPECT_EQ(begin.object.at("ph").string, "b");
  EXPECT_DOUBLE_EQ(begin.object.at("ts").number, 0.25 * 1e6);
  const auto& queued = events.array[2];
  EXPECT_DOUBLE_EQ(queued.object.at("dur").number, 0.5 * 1e6);
  // A NaN arg renders as JSON null; an embedded quote/backslash survives.
  const auto& submit = events.array[1];
  EXPECT_EQ(submit.object.at("args").object.at("label").string, "a\"b\\c");
  EXPECT_EQ(queued.object.at("args").object.at("projected").kind,
            JsonValue::Kind::kNull);
}

// ---------------------------------------------------------------------------
// Runner integration: deterministic traces and the bitwise no-op property

FactorGraph make_tiny_graph(double target) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{target}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

/// One run of the canonical parked-dispatcher scenario: a blocker job
/// parks the single-lane dispatcher, three prioritized jobs queue behind
/// it on a stepped virtual clock, release, drain.  Returns the exported
/// trace and (via out-params) the observed start order and final z values.
std::string traced_scenario_export(std::vector<std::size_t>* start_order,
                                   std::vector<double>* z_values,
                                   RuntimeMetrics* metrics_out,
                                   bool with_sink) {
  auto vclock = std::make_shared<std::atomic<double>>(0.0);
  auto sink = std::make_shared<TraceRecorder>();
  BatchRunnerOptions options;
  options.threads = 1;
  options.clock = [vclock] { return vclock->load(); };
  if (with_sink) options.trace_sink = sink;

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<char> recorded(3, 0);
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  {
    BatchRunner runner(options);

    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FactorGraph blocker_graph = make_tiny_graph(0.0);
    SolveJob blocker;
    blocker.graph = &blocker_graph;
    blocker.label = "blocker";
    blocker.options.max_iterations = 20;
    blocker.options.check_interval = 10;
    blocker.progress = [&](const IterationStatus&) {
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    };
    runner.submit(std::move(blocker));
    while (!parked.load()) std::this_thread::yield();

    const int priorities[] = {0, 5, 2};
    for (std::size_t i = 0; i < 3; ++i) {
      graphs.push_back(std::make_unique<FactorGraph>(
          make_tiny_graph(static_cast<double>(i + 1))));
      vclock->store(static_cast<double>(i + 1));
      SolveJob job;
      job.graph = graphs.back().get();
      job.label = "job-" + std::to_string(i);
      job.priority = priorities[i];
      job.deadline = i == 2 ? 30.0 : kNoDeadline;
      job.options.max_iterations = 20;
      job.options.check_interval = 10;
      job.progress = [&, i](const IterationStatus&) {
        std::lock_guard lock(order_mutex);
        if (!recorded[i]) {
          recorded[i] = 1;
          order.push_back(i);
        }
      };
      runner.submit(std::move(job));
    }

    vclock->store(4.0);
    release.store(true);
    runner.wait_all();
    if (metrics_out != nullptr) *metrics_out = runner.metrics();
  }

  if (start_order != nullptr) *start_order = order;
  if (z_values != nullptr) {
    z_values->clear();
    for (const auto& graph : graphs) {
      for (const double z : graph->z_values()) z_values->push_back(z);
    }
  }
  std::ostringstream out;
  sink->export_chrome_trace(out);
  return out.str();
}

TEST(TraceExport, VirtualClockRunsExportByteIdenticalTraces) {
  std::vector<std::size_t> order_a;
  std::vector<std::size_t> order_b;
  const std::string run_a = traced_scenario_export(&order_a, nullptr, nullptr,
                                                   /*with_sink=*/true);
  const std::string run_b = traced_scenario_export(&order_b, nullptr, nullptr,
                                                   /*with_sink=*/true);
  // Priority order: job-1 (5), job-2 (2), job-0 (0).
  const std::vector<std::size_t> expected{1, 2, 0};
  EXPECT_EQ(order_a, expected);
  EXPECT_EQ(order_b, expected);
  EXPECT_EQ(run_a, run_b) << "trace export is not deterministic";
  EXPECT_NE(run_a.find("\"submit\""), std::string::npos);
  EXPECT_NE(run_a.find("\"queued\""), std::string::npos);
  EXPECT_NE(run_a.find("\"residuals\""), std::string::npos);
  EXPECT_NE(run_a.find("\"finish\""), std::string::npos);
}

TEST(TraceExport, RunnerTraceParsesAndPairsEveryAsyncSpan) {
  const std::string text = traced_scenario_export(nullptr, nullptr, nullptr,
                                                  /*with_sink=*/true);
  JsonParser parser(text, "trace JSON");
  const JsonValue root = parser.parse();
  const auto& events = root.object.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events.array.empty());

  // Every job's async span must pair begin/end on (cat, name, id) —
  // unpaired spans render as broken bars in Perfetto.
  std::map<std::string, int> balance;
  for (const auto& event : events.array) {
    const std::string& ph = event.object.at("ph").string;
    if (ph != "b" && ph != "e") continue;
    std::ostringstream key;
    key << event.object.at("cat").string << '/'
        << event.object.at("name").string << '/'
        << event.object.at("id").number;
    balance[key.str()] += ph == "b" ? 1 : -1;
  }
  EXPECT_EQ(balance.size(), 4u);  // blocker + three jobs
  for (const auto& [key, count] : balance) {
    EXPECT_EQ(count, 0) << "unpaired async span: " << key;
  }
}

TEST(TraceNoOp, DetachedSinkLeavesRunBitwiseIdentical) {
  std::vector<std::size_t> order_traced;
  std::vector<std::size_t> order_plain;
  std::vector<double> z_traced;
  std::vector<double> z_plain;
  RuntimeMetrics metrics_traced;
  RuntimeMetrics metrics_plain;
  const std::string traced = traced_scenario_export(
      &order_traced, &z_traced, &metrics_traced, /*with_sink=*/true);
  const std::string plain = traced_scenario_export(
      &order_plain, &z_plain, &metrics_plain, /*with_sink=*/false);

  // The untraced run records nothing...
  EXPECT_EQ(plain, "{\"traceEvents\":[\n]}\n");
  EXPECT_GT(traced.size(), plain.size());

  // ...and behaves identically: same dispatch order, bitwise-equal solver
  // trajectories, equal metrics counters and latency tallies.
  EXPECT_EQ(order_traced, order_plain);
  ASSERT_EQ(z_traced.size(), z_plain.size());
  for (std::size_t i = 0; i < z_traced.size(); ++i) {
    EXPECT_EQ(z_traced[i], z_plain[i]) << "z diverged at " << i;
  }
  EXPECT_EQ(metrics_traced.submitted, metrics_plain.submitted);
  EXPECT_EQ(metrics_traced.completed, metrics_plain.completed);
  EXPECT_EQ(metrics_traced.cancelled, metrics_plain.cancelled);
  EXPECT_EQ(metrics_traced.failed, metrics_plain.failed);
  EXPECT_EQ(metrics_traced.dispatcher_preemptions,
            metrics_plain.dispatcher_preemptions);
  EXPECT_EQ(metrics_traced.queue_wait.count(),
            metrics_plain.queue_wait.count());
  EXPECT_EQ(metrics_traced.solve_wall.count(),
            metrics_plain.solve_wall.count());
  EXPECT_EQ(metrics_traced.end_to_end.count(),
            metrics_plain.end_to_end.count());
  // Queue-wait and end-to-end run on the virtual clock, so the percentile
  // values themselves are deterministic and must agree too.
  EXPECT_DOUBLE_EQ(metrics_traced.queue_wait.p99(),
                   metrics_plain.queue_wait.p99());
  EXPECT_DOUBLE_EQ(metrics_traced.end_to_end.p99(),
                   metrics_plain.end_to_end.p99());
}

}  // namespace
}  // namespace paradmm::runtime
