// Scheduler policy: graph size decides serial-per-worker vs fine-grained.
#include <gtest/gtest.h>

#include <memory>

#include "core/prox_library.hpp"
#include "runtime/scheduler.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_consensus_graph(std::size_t factors) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  const auto op =
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0});
  for (std::size_t i = 0; i < factors; ++i) graph.add_factor(op, {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

TEST(Scheduler, SmallGraphRunsWholeSolvePerWorker) {
  const FactorGraph graph = make_consensus_graph(4);
  const Scheduler scheduler(SchedulerOptions{}, 8);
  const JobPlan plan = scheduler.plan(graph);
  EXPECT_EQ(plan.intra_threads, 1u);
  EXPECT_FALSE(plan.fine_grained());
  EXPECT_EQ(plan.elements, graph.elements());
}

TEST(Scheduler, LargeGraphGetsFineGrainedParallelism) {
  const FactorGraph graph = make_consensus_graph(64);
  SchedulerOptions options;
  options.fine_grained_threshold = 10;  // well below 64 factors' elements
  const Scheduler scheduler(options, 8);
  const JobPlan plan = scheduler.plan(graph);
  EXPECT_EQ(plan.intra_threads, 8u);
  EXPECT_TRUE(plan.fine_grained());
}

TEST(Scheduler, SingleThreadPoolNeverGoesFineGrained) {
  const FactorGraph graph = make_consensus_graph(64);
  SchedulerOptions options;
  options.fine_grained_threshold = 10;
  const Scheduler scheduler(options, 1);
  EXPECT_EQ(scheduler.plan(graph).intra_threads, 1u);
}

TEST(Scheduler, DisableFineGrainedForcesSerialJobs) {
  const FactorGraph graph = make_consensus_graph(64);
  SchedulerOptions options;
  options.fine_grained_threshold = 10;
  options.disable_fine_grained = true;
  const Scheduler scheduler(options, 8);
  EXPECT_EQ(scheduler.plan(graph).intra_threads, 1u);
}

TEST(Scheduler, ThresholdIsInclusive) {
  const FactorGraph graph = make_consensus_graph(8);
  SchedulerOptions options;
  options.fine_grained_threshold = graph.elements();
  const Scheduler scheduler(options, 4);
  EXPECT_TRUE(scheduler.plan(graph).fine_grained());
}

}  // namespace
}  // namespace paradmm::runtime
