// Scheduler policy: graph size decides serial-per-worker vs fine-grained,
// and how wide a fine-grained job's slice of the pool is.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/scheduler.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_consensus_graph(std::size_t factors) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  const auto op =
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0});
  for (std::size_t i = 0; i < factors; ++i) graph.add_factor(op, {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

TEST(Scheduler, SmallGraphRunsWholeSolvePerWorker) {
  const FactorGraph graph = make_consensus_graph(4);
  const Scheduler scheduler(SchedulerOptions{}, 8);
  const JobPlan plan = scheduler.plan(graph);
  EXPECT_EQ(plan.intra_threads, 1u);
  EXPECT_FALSE(plan.fine_grained());
  EXPECT_EQ(plan.elements, graph.elements());
}

TEST(Scheduler, LargeGraphGetsFineGrainedParallelism) {
  const FactorGraph graph = make_consensus_graph(64);
  SchedulerOptions options;
  options.fine_grained_threshold = 10;  // well below 64 factors' elements
  const Scheduler scheduler(options, 8);
  const JobPlan plan = scheduler.plan(graph);
  EXPECT_EQ(plan.intra_threads, 8u);
  EXPECT_TRUE(plan.fine_grained());
}

TEST(Scheduler, SingleThreadPoolNeverGoesFineGrained) {
  const FactorGraph graph = make_consensus_graph(64);
  SchedulerOptions options;
  options.fine_grained_threshold = 10;
  const Scheduler scheduler(options, 1);
  EXPECT_EQ(scheduler.plan(graph).intra_threads, 1u);
}

TEST(Scheduler, DisableFineGrainedForcesSerialJobs) {
  const FactorGraph graph = make_consensus_graph(64);
  SchedulerOptions options;
  options.fine_grained_threshold = 10;
  options.disable_fine_grained = true;
  const Scheduler scheduler(options, 8);
  EXPECT_EQ(scheduler.plan(graph).intra_threads, 1u);
}

TEST(Scheduler, ThresholdIsInclusive) {
  const FactorGraph graph = make_consensus_graph(8);
  SchedulerOptions options;
  options.fine_grained_threshold = graph.elements();
  const Scheduler scheduler(options, 4);
  EXPECT_TRUE(scheduler.plan(graph).fine_grained());
}

TEST(Scheduler, ZeroThresholdIsRejected) {
  // threshold == 0 would classify every job (even an empty graph) as
  // fine-grained and serialize the whole batch behind wide solves.
  SchedulerOptions options;
  options.fine_grained_threshold = 0;
  EXPECT_THROW(Scheduler(options, 4), PreconditionError);
}

TEST(Scheduler, WidthScalesWithElements) {
  // Size-proportional policy: one thread per threshold's worth of
  // elements, floor 2, capped by the pool.  A consensus graph of f factors
  // has 4f + 1 elements.
  SchedulerOptions options;
  options.fine_grained_threshold = 65;  // == elements of the 16-factor graph
  const Scheduler scheduler(options, 8);

  EXPECT_EQ(scheduler.plan(make_consensus_graph(16)).intra_threads, 2u);
  EXPECT_EQ(scheduler.plan(make_consensus_graph(64)).intra_threads, 3u);
  EXPECT_EQ(scheduler.plan(make_consensus_graph(256)).intra_threads, 8u);
}

TEST(Scheduler, MaxIntraThreadsCapsWidth) {
  SchedulerOptions options;
  options.fine_grained_threshold = 10;
  options.max_intra_threads = 4;
  const Scheduler scheduler(options, 8);
  EXPECT_EQ(scheduler.plan(make_consensus_graph(256)).intra_threads, 4u);
}

TEST(Scheduler, CostModelPicksTheKneeOfTheSpeedupCurve) {
  // Fake model: perfect scaling to 4 threads, flat beyond — the scheduler
  // must stop doubling at 4 even though the pool has 16.
  SchedulerOptions options;
  options.fine_grained_threshold = 1;
  options.cost_model = make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        std::vector<double> seconds;
        for (const std::size_t threads : widths) {
          seconds.push_back(
              1.0 / static_cast<double>(std::min<std::size_t>(threads, 4)));
        }
        return seconds;
      });
  const Scheduler scheduler(options, 16);
  EXPECT_EQ(scheduler.plan(make_consensus_graph(64)).intra_threads, 4u);
}

TEST(Scheduler, CostModelCanKeepALargeJobSerial) {
  // A model that predicts no benefit from 2 threads keeps the job
  // whole-solve-per-worker despite crossing the size threshold.
  SchedulerOptions options;
  options.fine_grained_threshold = 1;
  options.cost_model = make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        std::vector<double> seconds;  // parallelism only hurts
        for (const std::size_t threads : widths) {
          seconds.push_back(static_cast<double>(threads));
        }
        return seconds;
      });
  const Scheduler scheduler(options, 8);
  EXPECT_FALSE(scheduler.plan(make_consensus_graph(64)).fine_grained());
}

TEST(Scheduler, DevsimWidthModelFeedsTheScheduler) {
  // The analytic multicore model must produce positive, eventually
  // improving times for a large graph, and a width within the pool when
  // plugged into the scheduler.
  const FactorGraph graph = make_consensus_graph(4096);
  const CostModelPtr model = devsim_width_model();
  const std::vector<std::size_t> probe = {1, 8};
  const std::vector<double> seconds = model->iteration_seconds(graph, probe);
  ASSERT_EQ(seconds.size(), probe.size());
  EXPECT_GT(seconds[0], 0.0);
  EXPECT_LT(seconds[1], seconds[0]);  // 8 cores beat 1 on a large graph

  SchedulerOptions options;
  options.fine_grained_threshold = 1;
  options.cost_model = model;
  const Scheduler scheduler(options, 8);
  const JobPlan plan = scheduler.plan(graph);
  EXPECT_GE(plan.intra_threads, 1u);
  EXPECT_LE(plan.intra_threads, 8u);
}

}  // namespace
}  // namespace paradmm::runtime
