// WidthGovernor policy and width-renegotiation determinism.
//
// The advise() policy is pure arithmetic over the waiting-job count, so it
// is unit-tested exactly; the determinism tests pin the contract that
// renegotiation never changes numerics (the phase chunk partition only
// selects which thread runs which index — every index's arithmetic is
// independent), so a renegotiated solve equals the serial solve bit for
// bit, and a runner with renegotiation disabled reproduces the fixed-width
// behavior exactly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/width_governor.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {
namespace {

SolverOptions short_solve_options() {
  SolverOptions options;
  options.max_iterations = 80;
  options.check_interval = 20;
  return options;
}

std::vector<double> z_copy(const FactorGraph& graph) {
  const auto z = graph.z_values();
  return {z.begin(), z.end()};
}

TEST(WidthGovernor, ShrinksOneLanePerWaitingJobAndGrowsBack) {
  WidthGovernor governor;
  EXPECT_EQ(governor.advise(4, 4), 4u);  // empty queue: planned width

  governor.job_waiting();
  governor.job_waiting();
  EXPECT_EQ(governor.advise(4, 4), 2u);  // two waiting jobs reclaim 2 lanes
  EXPECT_EQ(governor.advise(4, 2), 2u);  // steady state: no new transition

  governor.job_done_waiting();
  EXPECT_EQ(governor.advise(4, 2), 3u);  // queue draining: grow back
  governor.job_done_waiting();
  EXPECT_EQ(governor.advise(4, 3), 4u);  // drained: full planned width

  const WidthGovernorStats stats = governor.stats();
  EXPECT_EQ(stats.shrinks, 1u);
  EXPECT_EQ(stats.grows, 2u);
  EXPECT_EQ(stats.waiting_jobs, 0u);
}

TEST(WidthGovernor, MinWidthFloorsTheShrink) {
  WidthGovernorOptions options;
  options.min_width = 2;
  WidthGovernor governor(options);
  for (int i = 0; i < 10; ++i) governor.job_waiting();
  EXPECT_EQ(governor.advise(4, 4), 2u);  // never below the floor
  EXPECT_EQ(governor.advise(2, 2), 2u);  // planned at the floor: unchanged
}

TEST(WidthGovernor, DisabledGovernorPinsThePlannedWidth) {
  WidthGovernorOptions options;
  options.enabled = false;
  WidthGovernor governor(options);
  for (int i = 0; i < 5; ++i) governor.job_waiting();
  EXPECT_EQ(governor.advise(4, 4), 4u);
  EXPECT_EQ(governor.stats().shrinks, 0u);
  EXPECT_EQ(governor.stats().grows, 0u);
}

TEST(WidthGovernor, ZeroMinWidthIsRejected) {
  WidthGovernorOptions options;
  options.min_width = 0;
  EXPECT_THROW(WidthGovernor{options}, PreconditionError);
}

TEST(WidthGovernor, GovernedBackendTracksTheBacklogAndStaysBitwise) {
  // A governed solve under a synthetic backlog (two waiting jobs for its
  // whole run) shrinks exactly once, and its trajectory equals the serial
  // solve bit for bit; a second solve after the backlog drains grows back.
  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());
  const auto expected = z_copy(*reference.graph);

  ThreadPool pool(4);
  WidthGovernor governor;
  governor.job_waiting();
  governor.job_waiting();

  BuiltProblem governed = ProblemRegistry::global().build("svm");
  const auto backend = make_governed_pool_backend(pool, 3, governor);
  EXPECT_EQ(backend->concurrency(), 3u);  // reports the planned width
  {
    AdmmSolver solver(*governed.graph, short_solve_options(), *backend);
    solver.run();
  }
  EXPECT_EQ(governor.stats().shrinks, 1u);  // 3 -> 1 at the first barrier
  EXPECT_EQ(governor.stats().grows, 0u);

  const auto actual = z_copy(*governed.graph);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }

  // Backlog drains: the next governed solve opens back at planned width.
  governor.job_done_waiting();
  governor.job_done_waiting();
  BuiltProblem regrown = ProblemRegistry::global().build("svm");
  {
    AdmmSolver solver(*regrown.graph, short_solve_options(), *backend);
    solver.run();
  }
  EXPECT_EQ(governor.stats().grows, 1u);  // 1 -> 3 at the first barrier
}

TEST(WidthGovernor, RunnerWithRenegotiationDisabledIsBitwiseFixedWidth) {
  // governor.enabled = false reproduces the fixed-width runtime exactly:
  // the fine-grained solve matches the serial trajectory bit for bit and
  // no renegotiation is ever recorded.
  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());
  const auto expected = z_copy(*reference.graph);

  BatchRunnerOptions options;
  options.threads = 3;
  options.scheduler.fine_grained_threshold = 1;
  options.governor.enabled = false;
  BatchRunner runner(options);
  JobHandle handle = runner.submit("svm", {}, short_solve_options());
  ASSERT_EQ(handle.wait(), JobState::kDone);
  EXPECT_TRUE(handle.plan().fine_grained());

  const auto actual = z_copy(handle.graph());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }
  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.width_shrinks, 0u);
  EXPECT_EQ(metrics.width_grows, 0u);
}

TEST(WidthGovernor, RenegotiatedMixedBatchMatchesSequentialSolves) {
  // With renegotiation enabled, a mixed batch (fine-grained jobs racing
  // small ones, widths shrinking and growing with the backlog) still
  // reproduces every sequential solve: on top of the guaranteed bitwise
  // equality, this is the end-to-end "matches the sequential solve"
  // gate for the adaptive runtime.
  std::vector<std::vector<double>> expected;
  for (int i = 0; i < 6; ++i) {
    BuiltProblem reference = ProblemRegistry::global().build("svm");
    solve(*reference.graph, short_solve_options());
    expected.push_back(z_copy(*reference.graph));
  }

  BatchRunnerOptions options;
  options.threads = 4;
  options.scheduler.fine_grained_threshold = 1;  // everything forks
  BatchRunner runner(options);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    SolveJob job = BatchRunner::make_job("svm", {}, short_solve_options());
    job.priority = i % 3;
    handles.push_back(runner.submit(std::move(job)));
  }
  runner.wait_all();

  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(handles[i].state(), JobState::kDone) << "job " << i;
    const auto actual = z_copy(handles[i].graph());
    ASSERT_EQ(actual.size(), expected[i].size());
    for (std::size_t s = 0; s < actual.size(); ++s) {
      ASSERT_NEAR(actual[s], expected[i][s], 1e-12)
          << "job " << i << " z scalar " << s;
      EXPECT_EQ(actual[s], expected[i][s])
          << "job " << i << " z scalar " << s;
    }
  }
}

}  // namespace
}  // namespace paradmm::runtime
