// WidthGovernor policy and width-renegotiation determinism.
//
// The advise() policy is pure arithmetic over the waiting-job count, so it
// is unit-tested exactly; the determinism tests pin the contract that
// renegotiation never changes numerics (the phase chunk partition only
// selects which thread runs which index — every index's arithmetic is
// independent), so a renegotiated solve equals the serial solve bit for
// bit, and a runner with renegotiation disabled reproduces the fixed-width
// behavior exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <vector>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/calibration.hpp"
#include "runtime/width_governor.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {
namespace {

SolverOptions short_solve_options() {
  SolverOptions options;
  options.max_iterations = 80;
  options.check_interval = 20;
  return options;
}

std::vector<double> z_copy(const FactorGraph& graph) {
  const auto z = graph.z_values();
  return {z.begin(), z.end()};
}

TEST(WidthGovernor, ShrinksOneLanePerWaitingJobAndGrowsBack) {
  WidthGovernor governor;
  EXPECT_EQ(governor.advise(4, 4), 4u);  // empty queue: planned width

  governor.job_waiting();
  governor.job_waiting();
  EXPECT_EQ(governor.advise(4, 4), 2u);  // two waiting jobs reclaim 2 lanes
  EXPECT_EQ(governor.advise(4, 2), 2u);  // steady state: no new transition

  governor.job_done_waiting();
  EXPECT_EQ(governor.advise(4, 2), 3u);  // queue draining: grow back
  governor.job_done_waiting();
  EXPECT_EQ(governor.advise(4, 3), 4u);  // drained: full planned width

  const WidthGovernorStats stats = governor.stats();
  EXPECT_EQ(stats.shrinks, 1u);
  EXPECT_EQ(stats.grows, 2u);
  EXPECT_EQ(stats.waiting_jobs, 0u);
}

TEST(WidthGovernor, MinWidthFloorsTheShrink) {
  WidthGovernorOptions options;
  options.min_width = 2;
  WidthGovernor governor(options);
  for (int i = 0; i < 10; ++i) governor.job_waiting();
  EXPECT_EQ(governor.advise(4, 4), 2u);  // never below the floor
  EXPECT_EQ(governor.advise(2, 2), 2u);  // planned at the floor: unchanged
}

TEST(WidthGovernor, DisabledGovernorPinsThePlannedWidth) {
  WidthGovernorOptions options;
  options.enabled = false;
  WidthGovernor governor(options);
  for (int i = 0; i < 5; ++i) governor.job_waiting();
  EXPECT_EQ(governor.advise(4, 4), 4u);
  EXPECT_EQ(governor.stats().shrinks, 0u);
  EXPECT_EQ(governor.stats().grows, 0u);
}

TEST(WidthGovernor, ZeroMinWidthIsRejected) {
  WidthGovernorOptions options;
  options.min_width = 0;
  EXPECT_THROW(WidthGovernor{options}, PreconditionError);
}

TEST(WidthGovernor, DeadlineRacingLeaseClaimsLanesInsteadOfYielding) {
  // A lease whose projected finish (from its own measured per-phase cost)
  // lands past its deadline claims the smallest width projected to meet
  // it.  Virtual clock: one phase takes 1s at width 2, so per-phase cost
  // is 2 lane-seconds; 9 phases remain against 4s of slack, needing
  // ceil(9 * 2 / 4) = 5 of the 8 pool lanes.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto lease = governor.open_lease(2, /*deadline=*/5.0,
                                         /*total_phases=*/10);
  EXPECT_EQ(governor.advise(*lease, 2), 2u);  // first barrier: no sample yet
  now->store(1.0);
  EXPECT_EQ(governor.advise(*lease, 2), 5u);  // claims 3 lanes above planned

  const WidthGovernorStats stats = governor.stats();
  EXPECT_EQ(stats.boosts, 1u);
  EXPECT_EQ(stats.boosted_lanes, 3u);
  EXPECT_EQ(stats.shrinks, 0u);
  EXPECT_EQ(stats.grows, 0u);

  governor.close_lease(lease);
  EXPECT_EQ(governor.stats().boosted_lanes, 0u);
  // The solve's measured cost seeds the cross-job estimate.
  EXPECT_DOUBLE_EQ(governor.stats().learned_phase_seconds, 2.0);
}

TEST(WidthGovernor, BoostIsBoundedByTheLaneLedger) {
  // A boost may only claim lanes no other governed solve holds: with 5 of
  // 8 lanes leased elsewhere, a racer past its deadline (wants the whole
  // pool) gets 3; once the other lease closes, the full claim goes
  // through.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto other = governor.open_lease(
      5, std::numeric_limits<double>::infinity(), 0);
  const auto racer = governor.open_lease(2, /*deadline=*/1.0,
                                         /*total_phases=*/100);
  EXPECT_EQ(governor.advise(*racer, 2), 2u);
  now->store(2.0);  // already past the deadline: wants every lane
  EXPECT_EQ(governor.advise(*racer, 2), 3u);

  governor.close_lease(other);
  now->store(3.0);
  EXPECT_EQ(governor.advise(*racer, 3), 8u);
  EXPECT_EQ(governor.stats().boosted_lanes, 6u);
  governor.close_lease(racer);
  EXPECT_EQ(governor.stats().boosted_lanes, 0u);
}

TEST(WidthGovernor, BoostAccountsForBusySerialLanes) {
  // Serial whole-solves hold no lease but pin a lane each; a boost must
  // not claim capacity they occupy.  5 of 8 lanes busy serial: a racer
  // planned at 2 that wants the whole pool gets 3; once they finish, the
  // full claim goes through.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });
  for (int i = 0; i < 5; ++i) governor.serial_started();

  const auto racer = governor.open_lease(2, /*deadline=*/1.0,
                                         /*total_phases=*/100);
  EXPECT_EQ(governor.advise(*racer, 2), 2u);
  now->store(2.0);  // past the deadline: wants every lane
  EXPECT_EQ(governor.advise(*racer, 2), 3u);

  for (int i = 0; i < 5; ++i) governor.serial_finished();
  now->store(3.0);
  EXPECT_EQ(governor.advise(*racer, 3), 8u);
  governor.close_lease(racer);
}

TEST(WidthGovernor, CostModelPriorBoostsBeforeTheFirstSample) {
  // A lease opened with a cost-model prior (lane-seconds per phase, priced
  // by the runner's CostModel) projects at its *first* timed barrier — no
  // warm-up sample needed.  Prior 2 lane-seconds/phase, 10 phases, 4s of
  // slack: ceil(10 * 2 / 4) = 5 of 8 lanes, before any clock movement.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto lease = governor.open_lease(2, /*deadline=*/4.0,
                                         /*total_phases=*/10,
                                         /*prior_phase_seconds=*/2.0);
  EXPECT_EQ(governor.advise(*lease, 2), 5u);  // first barrier, prior-driven
  EXPECT_EQ(governor.stats().boosts, 1u);
  governor.close_lease(lease);
  // A prior is a projection input, not a measurement: with no timed phase
  // samples the cross-job estimate stays unseeded.
  EXPECT_DOUBLE_EQ(governor.stats().learned_phase_seconds, 0.0);
}

TEST(WidthGovernor, ProjectionUsesTheInjectedModelNotTheDefault) {
  // The satellite contract: the deadline projection prices with whatever
  // model the lease was opened under.  Two identical solves under two fake
  // calibrated models — a cheap one (0.5 lane-s/phase) and an expensive
  // one (4 lane-s/phase) — must project differently at the same barrier:
  // 8 phases against 4s of slack need ceil(8*0.5/4) = 1 (no boost past
  // planned 2) vs ceil(8*4/4) = 8 lanes.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto cheap = governor.open_lease(2, 4.0, 8, 0.5);
  EXPECT_EQ(governor.advise(*cheap, 2), 2u);  // projected to make it: no boost
  governor.close_lease(cheap);

  const auto expensive = governor.open_lease(2, 4.0, 8, 4.0);
  EXPECT_EQ(governor.advise(*expensive, 2), 8u);  // needs every lane
  governor.close_lease(expensive);

  const WidthGovernorStats stats = governor.stats();
  EXPECT_EQ(stats.boosts, 1u);  // only the expensive-model lease boosted
}

TEST(WidthGovernor, MeasuredSamplesOverrideThePrior) {
  // Once the solve produces a timed sample of its own, the measurement
  // wins over the model: a lease whose pessimistic prior (50 lane-s/phase)
  // claimed the whole pool at its first barrier re-projects from its first
  // measured phase (0.08 lane-s) and releases the boost — a wrong
  // calibration can only mis-plan a solve until its first barrier pair.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto lease = governor.open_lease(2, /*deadline=*/100.0,
                                         /*total_phases=*/20,
                                         /*prior_phase_seconds=*/50.0);
  // First barrier: the prior projects 20 * 50 / 2 lanes = 500s into a
  // 100s deadline -> claim every lane.
  EXPECT_EQ(governor.advise(*lease, 2), 8u);
  // The measured phase (0.01s at width 8 = 0.08 lane-s) replaces the
  // prior: 19 phases * 0.08 / 2 lanes clears the deadline easily, so the
  // solve returns to its planned width.
  now->store(0.01);
  EXPECT_EQ(governor.advise(*lease, 8), 2u);
  governor.close_lease(lease);
  // And the cross-job estimate learned the measurement, not the prior.
  EXPECT_NEAR(governor.stats().learned_phase_seconds, 0.08, 1e-12);
}

TEST(WidthGovernor, OpenLeaseRejectsInvalidPriorsLoudly) {
  // A negative or non-finite prior means the cost model that priced the
  // solve is broken; the old behavior clamped it to "no prior", silently
  // disarming the first-barrier boost for exactly the solves that asked
  // for it.  Now it throws at the door.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  EXPECT_THROW(governor.open_lease(2, 4.0, 10, -1.0), PreconditionError);
  EXPECT_THROW(governor.open_lease(2, 4.0, 10, -1e-300), PreconditionError);
  EXPECT_THROW(
      governor.open_lease(2, 4.0, 10,
                          std::numeric_limits<double>::quiet_NaN()),
      PreconditionError);
  EXPECT_THROW(governor.open_lease(2, 4.0, 10,
                                   std::numeric_limits<double>::infinity()),
               PreconditionError);
  // A throwing open_lease must not leak ledger width.
  EXPECT_EQ(governor.stats().boosted_lanes, 0u);
  // Zero stays the documented "no prior" sentinel.
  const auto lease = governor.open_lease(2, 4.0, 10, 0.0);
  EXPECT_EQ(governor.advise(*lease, 2), 2u);  // no prior: no boost yet
  governor.close_lease(lease);
}

TEST(WidthGovernor, TinyPositivePriorStillArmsTheFirstBarrierBoost) {
  // The other half of the fix: a genuinely tiny positive prior passes
  // through untouched and still drives the first-barrier projection.
  // Prior 1e-3 lane-seconds over 10 phases against 2 ms of slack:
  // ceil(10 * 1e-3 / 0.002) = 5 of 8 lanes, before any clock movement.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto lease = governor.open_lease(2, /*deadline=*/0.002,
                                         /*total_phases=*/10,
                                         /*prior_phase_seconds=*/1e-3);
  EXPECT_EQ(governor.advise(*lease, 2), 5u);
  EXPECT_EQ(governor.stats().boosts, 1u);
  governor.close_lease(lease);
}

TEST(WidthGovernor, TimedBarriersFeedTheOnlineRecalibrator) {
  // With a recalibrator bound and per-phase task counts on the lease,
  // every timed barrier becomes one (phase, count, width, seconds) sample:
  // barrier k closes phase (k-1) mod 5, and the untimed first barrier and
  // frozen-clock barriers produce nothing.
  RecalibrationOptions recal_options;
  recal_options.enabled = true;
  recal_options.refit_interval = 100;  // no auto-refit mid-test
  OnlineRecalibrator recalibrator(recal_options);

  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });
  governor.bind_recalibration(&recalibrator);

  const std::array<std::size_t, 5> counts = {10, 20, 30, 20, 20};
  const auto lease = governor.open_lease(
      2, std::numeric_limits<double>::infinity(), 0, 0.0, counts);
  governor.advise(*lease, 2);  // first barrier: arms the timer, no sample
  EXPECT_EQ(recalibrator.stats().samples, 0u);

  now->store(1.0);
  governor.advise(*lease, 2);  // closes phase 0 (x): 1.0 s over count 10
  EXPECT_EQ(recalibrator.stats().samples, 1u);

  now->store(1.5);
  governor.advise(*lease, 2);  // closes phase 1 (m): 0.5 s over count 20
  EXPECT_EQ(recalibrator.stats().samples, 2u);

  governor.advise(*lease, 2);  // frozen clock: delta 0, no sample
  EXPECT_EQ(recalibrator.stats().samples, 2u);
  governor.close_lease(lease);

  // All-zero counts (the default) keep sample capture off entirely.
  const auto plain = governor.open_lease(
      2, std::numeric_limits<double>::infinity(), 0, 0.0);
  governor.advise(*plain, 2);
  now->store(3.0);
  governor.advise(*plain, 2);
  EXPECT_EQ(recalibrator.stats().samples, 2u);
  governor.close_lease(plain);
}

TEST(WidthGovernor, DeadlineBoostCanBeDisabled) {
  // deadline_boost = false keeps the yield policy but never exceeds the
  // planned width, however badly the projection misses.
  WidthGovernorOptions options;
  options.deadline_boost = false;
  WidthGovernor governor(options);
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(8, [now] { return now->load(); });

  const auto lease = governor.open_lease(2, /*deadline=*/1.0,
                                         /*total_phases=*/100);
  EXPECT_EQ(governor.advise(*lease, 2), 2u);
  now->store(5.0);
  EXPECT_EQ(governor.advise(*lease, 2), 2u);
  EXPECT_EQ(governor.stats().boosts, 0u);
  governor.close_lease(lease);
}

TEST(WidthGovernor, RacingLeaseStopsYieldingToTheBacklog) {
  // The arbitration the ledger promises: the backlog policy would shrink
  // a width-4 solve with two jobs waiting, but a deadline-racing lease
  // claims lanes instead of yielding them.
  WidthGovernor governor;
  auto now = std::make_shared<std::atomic<double>>(0.0);
  governor.bind(4, [now] { return now->load(); });
  governor.job_waiting();
  governor.job_waiting();

  const auto lease = governor.open_lease(4, /*deadline=*/1.0,
                                         /*total_phases=*/100);
  EXPECT_EQ(governor.advise(*lease, 4), 2u);  // no sample yet: pure yield
  now->store(2.0);                            // past the deadline
  EXPECT_EQ(governor.advise(*lease, 2), 4u);  // claims the planned lanes back
  governor.close_lease(lease);
  governor.job_done_waiting();
  governor.job_done_waiting();
}

TEST(WidthGovernor, GovernedBackendTracksTheBacklogAndStaysBitwise) {
  // A governed solve under a synthetic backlog (two waiting jobs for its
  // whole run) shrinks exactly once, and its trajectory equals the serial
  // solve bit for bit; a second solve after the backlog drains grows back.
  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());
  const auto expected = z_copy(*reference.graph);

  ThreadPool pool(4);
  WidthGovernor governor;
  governor.job_waiting();
  governor.job_waiting();

  BuiltProblem governed = ProblemRegistry::global().build("svm");
  const auto backend = make_governed_pool_backend(pool, 3, governor);
  EXPECT_EQ(backend->concurrency(), 3u);  // reports the planned width
  {
    AdmmSolver solver(*governed.graph, short_solve_options(), *backend);
    solver.run();
  }
  EXPECT_EQ(governor.stats().shrinks, 1u);  // 3 -> 1 at the first barrier
  EXPECT_EQ(governor.stats().grows, 0u);

  const auto actual = z_copy(*governed.graph);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }

  // Backlog drains: the next governed solve opens back at planned width.
  governor.job_done_waiting();
  governor.job_done_waiting();
  BuiltProblem regrown = ProblemRegistry::global().build("svm");
  {
    AdmmSolver solver(*regrown.graph, short_solve_options(), *backend);
    solver.run();
  }
  EXPECT_EQ(governor.stats().grows, 1u);  // 1 -> 3 at the first barrier
}

TEST(WidthGovernor, RunnerWithRenegotiationDisabledIsBitwiseFixedWidth) {
  // governor.enabled = false reproduces the fixed-width runtime exactly:
  // the fine-grained solve matches the serial trajectory bit for bit and
  // no renegotiation is ever recorded.
  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());
  const auto expected = z_copy(*reference.graph);

  BatchRunnerOptions options;
  options.threads = 3;
  options.scheduler.fine_grained_threshold = 1;
  options.governor.enabled = false;
  BatchRunner runner(options);
  JobHandle handle = runner.submit("svm", {}, short_solve_options());
  ASSERT_EQ(handle.wait(), JobState::kDone);
  EXPECT_TRUE(handle.plan().fine_grained());

  const auto actual = z_copy(handle.graph());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }
  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.width_shrinks, 0u);
  EXPECT_EQ(metrics.width_grows, 0u);
}

TEST(WidthGovernor, RenegotiatedMixedBatchMatchesSequentialSolves) {
  // With renegotiation enabled, a mixed batch (fine-grained jobs racing
  // small ones, widths shrinking and growing with the backlog) still
  // reproduces every sequential solve: on top of the guaranteed bitwise
  // equality, this is the end-to-end "matches the sequential solve"
  // gate for the adaptive runtime.
  std::vector<std::vector<double>> expected;
  for (int i = 0; i < 6; ++i) {
    BuiltProblem reference = ProblemRegistry::global().build("svm");
    solve(*reference.graph, short_solve_options());
    expected.push_back(z_copy(*reference.graph));
  }

  BatchRunnerOptions options;
  options.threads = 4;
  options.scheduler.fine_grained_threshold = 1;  // everything forks
  BatchRunner runner(options);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    SolveJob job = BatchRunner::make_job("svm", {}, short_solve_options());
    job.priority = i % 3;
    handles.push_back(runner.submit(std::move(job)));
  }
  runner.wait_all();

  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(handles[i].state(), JobState::kDone) << "job " << i;
    const auto actual = z_copy(handles[i].graph());
    ASSERT_EQ(actual.size(), expected[i].size());
    for (std::size_t s = 0; s < actual.size(); ++s) {
      ASSERT_NEAR(actual[s], expected[i][s], 1e-12)
          << "job " << i << " z scalar " << s;
      EXPECT_EQ(actual[s], expected[i][s])
          << "job " << i << " z scalar " << s;
    }
  }
}

}  // namespace
}  // namespace paradmm::runtime
