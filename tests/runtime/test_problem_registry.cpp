// ProblemRegistry: the four seed problems are buildable by string name and
// solve to results bit-for-bit identical to hand-built problems.
#include <gtest/gtest.h>

#include <vector>

#include "core/solver.hpp"
#include "problems/lasso/registry.hpp"
#include "problems/mpc/registry.hpp"
#include "problems/packing/registry.hpp"
#include "problems/svm/registry.hpp"
#include "runtime/problem_registry.hpp"

namespace paradmm::runtime {
namespace {

SolverOptions short_solve_options() {
  SolverOptions options;
  options.max_iterations = 60;
  options.check_interval = 20;
  return options;
}

std::vector<double> z_copy(const FactorGraph& graph) {
  const auto z = graph.z_values();
  return {z.begin(), z.end()};
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "z scalar " << i;
  }
}

TEST(ProblemRegistry, GlobalRegistersTheFourSeedProblems) {
  const auto names = ProblemRegistry::global().names();
  EXPECT_EQ(names,
            (std::vector<std::string>{"lasso", "mpc", "packing", "svm"}));
  for (const auto& name : names) {
    EXPECT_TRUE(ProblemRegistry::global().contains(name));
    EXPECT_FALSE(ProblemRegistry::global().description(name).empty());
  }
}

TEST(ProblemRegistry, EveryProblemBuildsAndSolvesByName) {
  for (const auto& name : ProblemRegistry::global().names()) {
    BuiltProblem built = ProblemRegistry::global().build(name);
    ASSERT_NE(built.graph, nullptr) << name;
    ASSERT_NE(built.owner, nullptr) << name;
    EXPECT_GT(built.graph->num_factors(), 0u) << name;
    const SolverReport report = solve(*built.graph, short_solve_options());
    EXPECT_GT(report.iterations, 0) << name;
  }
}

TEST(ProblemRegistry, BuildsAreDeterministic) {
  for (const auto& name : ProblemRegistry::global().names()) {
    BuiltProblem first = ProblemRegistry::global().build(name);
    BuiltProblem second = ProblemRegistry::global().build(name);
    solve(*first.graph, short_solve_options());
    solve(*second.graph, short_solve_options());
    expect_bitwise_equal(z_copy(*first.graph), z_copy(*second.graph));
  }
}

TEST(ProblemRegistry, SvmMatchesHandBuiltProblemBitForBit) {
  svm::SvmJobParams params;
  params.points = 32;
  params.config.lambda = 0.5;
  BuiltProblem built = ProblemRegistry::global().build("svm", params);

  svm::SvmProblem direct(
      svm::make_gaussian_blobs(params.points, params.dimension,
                               params.separation, params.data_seed),
      params.config);

  ASSERT_EQ(built.graph->num_edges(), direct.graph().num_edges());
  solve(*built.graph, short_solve_options());
  solve(direct.graph(), short_solve_options());
  expect_bitwise_equal(z_copy(*built.graph), z_copy(direct.graph()));
}

TEST(ProblemRegistry, LassoMatchesHandBuiltProblemBitForBit) {
  lasso::LassoJobParams params;
  params.rows = 30;
  params.cols = 6;
  BuiltProblem built = ProblemRegistry::global().build("lasso", params);

  const auto instance = lasso::make_lasso_instance(
      params.rows, params.cols, params.sparsity, params.noise, params.seed);
  lasso::LassoProblem direct(instance, params.config);

  solve(*built.graph, short_solve_options());
  solve(direct.graph(), short_solve_options());
  expect_bitwise_equal(z_copy(*built.graph), z_copy(direct.graph()));
}

TEST(ProblemRegistry, MpcMatchesHandBuiltProblemBitForBit) {
  mpc::MpcJobParams params;
  params.config.horizon = 12;
  BuiltProblem built = ProblemRegistry::global().build("mpc", params);

  mpc::MpcProblem direct(params.config);
  solve(*built.graph, short_solve_options());
  solve(direct.graph(), short_solve_options());
  expect_bitwise_equal(z_copy(*built.graph), z_copy(direct.graph()));
}

TEST(ProblemRegistry, PackingMatchesHandBuiltProblemBitForBit) {
  packing::PackingJobParams params;
  params.config.circles = 6;
  BuiltProblem built = ProblemRegistry::global().build("packing", params);

  packing::PackingProblem direct(params.config);
  solve(*built.graph, short_solve_options());
  solve(direct.graph(), short_solve_options());
  expect_bitwise_equal(z_copy(*built.graph), z_copy(direct.graph()));
}

TEST(ProblemRegistry, OwnerKeepsReadoutHelpersReachable) {
  svm::SvmJobParams params;
  params.points = 16;
  BuiltProblem built = ProblemRegistry::global().build("svm", params);
  solve(*built.graph, short_solve_options());
  const auto problem = std::static_pointer_cast<svm::SvmProblem>(built.owner);
  EXPECT_EQ(problem->plane_w().size(), params.dimension);
}

TEST(ProblemRegistry, UnknownNameListsRegisteredProblems) {
  try {
    ProblemRegistry::global().build("no-such-problem");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("svm"), std::string::npos);
  }
}

TEST(ProblemRegistry, WrongParamsTypeThrows) {
  EXPECT_THROW(ProblemRegistry::global().build("svm", std::any(42)),
               PreconditionError);
}

TEST(ProblemRegistry, DuplicateRegistrationThrows) {
  ProblemRegistry registry = ProblemRegistry::with_builtin();
  EXPECT_THROW(svm::register_problem(registry), PreconditionError);
}

}  // namespace
}  // namespace paradmm::runtime
