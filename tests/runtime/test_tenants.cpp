// Per-tenant weighted-fair dispatch and quota enforcement
// (runtime/tenant_registry.hpp), plus the unified submission /
// terminal-evidence API (SubmitRequest, TerminalReason) the tenancy work
// redesigned.
//
// Dispatch-order tests reuse the parked-dispatcher technique of
// test_priority.cpp: a single-lane runner whose first job parks inside its
// progress callback, so everything submitted meanwhile lands in the ready
// queue together and execution order *is* dispatch order.  The expected
// order is computed in-test from the same start-time-fair-queuing model
// the registry implements — vstart = max(V, tenant virtual finish),
// virtual finish advances by 1/weight per job — so observed and expected
// orders must agree exactly, not statistically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "support/rng.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_tiny_graph(double target) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{target}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

struct Arrival {
  std::string tenant;
  int priority = 0;
  double deadline = kNoDeadline;
};

/// Submits `arrivals` while the dispatcher is parked inside a blocker job
/// (tenant "blocker", so it never perturbs the arrivals' virtual clocks),
/// releases it, and returns the order (arrival indices) in which the jobs
/// started executing.
std::vector<std::size_t> dispatch_order(
    const std::map<std::string, TenantQuota>& tenants,
    const std::vector<Arrival>& arrivals) {
  BatchRunnerOptions options;
  options.threads = 1;
  for (const auto& [name, quota] : tenants) {
    options.tenants.define(name, quota);
  }
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph blocker_graph = make_tiny_graph(0.0);
  SolveJob blocker;
  blocker.graph = &blocker_graph;
  blocker.options.max_iterations = 20;
  blocker.options.check_interval = 10;
  blocker.tenant = "blocker";
  blocker.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  runner.submit(std::move(blocker));
  while (!parked.load()) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  std::vector<char> recorded(arrivals.size(), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    graphs.push_back(std::make_unique<FactorGraph>(
        make_tiny_graph(static_cast<double>(i))));
    SolveJob job;
    job.graph = graphs.back().get();
    job.options.max_iterations = 20;
    job.options.check_interval = 10;
    job.tenant = arrivals[i].tenant;
    job.priority = arrivals[i].priority;
    job.deadline = arrivals[i].deadline;
    job.progress = [&, i](const IterationStatus&) {
      std::lock_guard lock(order_mutex);
      if (!recorded[i]) {
        recorded[i] = 1;
        order.push_back(i);
      }
    };
    runner.submit(std::move(job));
  }

  release.store(true);
  runner.wait_all();
  return order;
}

/// The registry's SFQ model, replayed in-test: every arrival is tagged
/// vstart = max(V, tenant virtual finish) at submit, the tenant's virtual
/// finish advances by 1/weight, and V is still 0 while the dispatcher is
/// parked (it only advances at dispatch).  Expected dispatch order is then
/// (priority desc, vstart asc, deadline asc, submit order asc) — the
/// runner's JobOrder with the same tags, so agreement is exact.
std::vector<std::size_t> expected_sfq_order(
    const std::map<std::string, TenantQuota>& tenants,
    const std::vector<Arrival>& arrivals) {
  std::map<std::string, double> virtual_finish;
  std::vector<double> vstart(arrivals.size(), 0.0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto it = tenants.find(arrivals[i].tenant);
    const double weight = it != tenants.end() ? it->second.weight : 1.0;
    double& finish = virtual_finish[arrivals[i].tenant];
    vstart[i] = std::max(0.0, finish);
    finish = vstart[i] + 1.0 / weight;
  }
  std::vector<std::size_t> expected(arrivals.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(),
            [&](std::size_t a, std::size_t b) {
              if (arrivals[a].priority != arrivals[b].priority) {
                return arrivals[a].priority > arrivals[b].priority;
              }
              if (vstart[a] != vstart[b]) return vstart[a] < vstart[b];
              if (arrivals[a].deadline != arrivals[b].deadline) {
                return arrivals[a].deadline < arrivals[b].deadline;
              }
              return a < b;
            });
  return expected;
}

/// The tenant-free policy order (priority desc, deadline asc, submit order
/// asc) — the PR-8 dispatch contract.
std::vector<std::size_t> tenant_free_order(
    const std::vector<Arrival>& arrivals) {
  std::vector<std::size_t> expected(arrivals.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(),
            [&](std::size_t a, std::size_t b) {
              if (arrivals[a].priority != arrivals[b].priority) {
                return arrivals[a].priority > arrivals[b].priority;
              }
              if (arrivals[a].deadline != arrivals[b].deadline) {
                return arrivals[a].deadline < arrivals[b].deadline;
              }
              return a < b;
            });
  return expected;
}

TEST(TenantDispatch, SeededArrivalsMatchTheWeightedFairModelExactly) {
  // Property: for any seeded multi-tenant arrival set queued together, the
  // observed start order equals the SFQ model order exactly — weighted-
  // fair interleaving is deterministic, not statistical.
  const std::map<std::string, TenantQuota> tenants{
      {"alpha", {3.0, 0, 0}}, {"beta", {2.0, 0, 0}}, {"gamma", {1.0, 0, 0}}};
  const std::vector<std::string> names{"alpha", "beta", "gamma"};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const std::size_t jobs = 18 + rng.uniform_index(13);  // 18..30
    std::vector<Arrival> arrivals(jobs);
    for (auto& arrival : arrivals) {
      arrival.tenant = names[rng.uniform_index(names.size())];
      arrival.priority = static_cast<int>(rng.uniform_index(3));
      if (rng.uniform() < 0.4) arrival.deadline = rng.uniform(0.0, 100.0);
    }
    EXPECT_EQ(dispatch_order(tenants, arrivals),
              expected_sfq_order(tenants, arrivals))
        << "seed " << seed;
  }
}

TEST(TenantDispatch, BackloggedTenantsInterleaveInWeightProportion) {
  // Two same-priority backlogs at weights 3:1: the weight-3 tenant lands 3
  // dispatches per weight-1 dispatch.  Exact check against the model, plus
  // the headline ratio: 6 of the first 8 dispatches are alpha's.
  const std::map<std::string, TenantQuota> tenants{{"alpha", {3.0, 0, 0}},
                                                   {"beta", {1.0, 0, 0}}};
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 12; ++i) arrivals.push_back({"alpha"});
  for (int i = 0; i < 4; ++i) arrivals.push_back({"beta"});

  const std::vector<std::size_t> order = dispatch_order(tenants, arrivals);
  EXPECT_EQ(order, expected_sfq_order(tenants, arrivals));

  ASSERT_GE(order.size(), 8u);
  const std::size_t alpha_in_first_8 = static_cast<std::size_t>(
      std::count_if(order.begin(), order.begin() + 8,
                    [&](std::size_t i) { return arrivals[i].tenant == "alpha"; }));
  EXPECT_EQ(alpha_in_first_8, 6u);
}

TEST(TenantDispatch, PriorityClassesStillDominateWeights) {
  // Fairness orders *within* a priority class: a priority-5 job of a
  // weight-1 tenant dispatches before every priority-0 job of a weight-100
  // tenant.
  const std::map<std::string, TenantQuota> tenants{{"small", {1.0, 0, 0}},
                                                   {"huge", {100.0, 0, 0}}};
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 5; ++i) arrivals.push_back({"huge", 0});
  arrivals.push_back({"small", 5});

  const std::vector<std::size_t> order = dispatch_order(tenants, arrivals);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), 5u);
  EXPECT_EQ(order, expected_sfq_order(tenants, arrivals));
}

TEST(TenantDispatch, ZeroConfigKeepsTheTenantFreeOrderBitwise) {
  // The bitwise-compatibility contract of the default: with no tenants
  // defined on the runner, tenant tags on jobs are inert and the observed
  // order is exactly the PR-8 (priority, deadline, submit order) policy —
  // even for jobs that *carry* tenant names.
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    Rng rng(seed);
    std::vector<Arrival> arrivals(20);
    for (auto& arrival : arrivals) {
      arrival.tenant = rng.uniform() < 0.5 ? "alpha" : "beta";
      arrival.priority = static_cast<int>(rng.uniform_index(3));
      if (rng.uniform() < 0.5) arrival.deadline = rng.uniform(0.0, 50.0);
    }
    EXPECT_EQ(dispatch_order({}, arrivals), tenant_free_order(arrivals))
        << "seed " << seed;
  }
}

TEST(TenantDispatch, UndefinedTenantsGetTheDefaultWeight) {
  // With the registry active, a tenant never define()d dispatches at the
  // default weight 1 and unlimited quotas — submitting as an unknown
  // tenant is not an error.
  const std::map<std::string, TenantQuota> tenants{{"alpha", {2.0, 0, 0}}};
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 6; ++i) arrivals.push_back({"alpha"});
  for (int i = 0; i < 3; ++i) arrivals.push_back({"mystery"});
  // Model must use weight 1.0 for "mystery" — expected_sfq_order's
  // tenants.find falls back to exactly that.
  EXPECT_EQ(dispatch_order(tenants, arrivals),
            expected_sfq_order(tenants, arrivals));
}

TEST(TenantRegistryUnit, RejectsBadWeightsAndTracksAccounting) {
  TenantRegistry registry;
  EXPECT_FALSE(registry.active());
  EXPECT_THROW(registry.define("bad", {0.0, 0, 0}), PreconditionError);
  EXPECT_THROW(registry.define("bad", {-1.0, 0, 0}), PreconditionError);
  EXPECT_THROW(
      registry.define("bad",
                      {std::numeric_limits<double>::infinity(), 0, 0}),
      PreconditionError);

  registry.define("alpha", {2.0, 2, 1});
  EXPECT_TRUE(registry.active());

  // SFQ bookkeeping: two submissions space virtual starts by 1/weight.
  const double first = registry.on_submit("alpha");
  const double second = registry.on_submit("alpha");
  EXPECT_DOUBLE_EQ(first, 0.0);
  EXPECT_DOUBLE_EQ(second, 0.5);
  EXPECT_EQ(registry.queued("alpha"), 2u);
  EXPECT_TRUE(registry.queue_full("alpha"));

  // Dispatch moves queued -> in-flight and the max_in_flight quota bites.
  EXPECT_TRUE(registry.dispatchable("alpha"));
  registry.on_dispatch("alpha", first);
  EXPECT_EQ(registry.queued("alpha"), 1u);
  EXPECT_FALSE(registry.dispatchable("alpha"));
  // A requeue (dispatcher preemption) releases the slot again.
  registry.on_requeue("alpha");
  EXPECT_TRUE(registry.dispatchable("alpha"));
  registry.on_dispatch("alpha", second);
  registry.on_finalize("alpha");
  registry.on_shed("alpha");
  EXPECT_EQ(registry.queued("alpha"), 0u);
  EXPECT_FALSE(registry.queue_full("alpha"));

  // An idle tenant re-enters at the current virtual time, not at its stale
  // virtual finish — no banked credit, but no penalty either.
  const double third = registry.on_submit("alpha");
  EXPECT_GE(third, second);
}

TEST(TenantQuota, MaxQueuedRefusesAtSubmitWithEvidence) {
  BatchRunnerOptions options;
  options.threads = 1;
  options.tenants.define("alpha", {1.0, /*max_queued=*/2, 0});
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph blocker_graph = make_tiny_graph(0.0);
  SolveJob blocker;
  blocker.graph = &blocker_graph;
  blocker.options.max_iterations = 20;
  blocker.options.check_interval = 10;
  blocker.tenant = "blocker";
  blocker.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  runner.submit(std::move(blocker));
  while (!parked.load()) std::this_thread::yield();

  std::vector<std::unique_ptr<FactorGraph>> graphs;
  const auto submit_alpha = [&] {
    graphs.push_back(std::make_unique<FactorGraph>(make_tiny_graph(1.0)));
    SolveJob job;
    job.graph = graphs.back().get();
    job.options.max_iterations = 20;
    job.tenant = "alpha";
    return runner.submit(std::move(job));
  };
  JobHandle first = submit_alpha();
  JobHandle second = submit_alpha();
  JobHandle refused = submit_alpha();  // alpha is at max_queued == 2

  // The refusal is terminal at submit — no release needed to observe it.
  EXPECT_EQ(refused.wait(), JobState::kQuotaRejected);
  const TerminalReason reason = refused.terminal_reason();
  EXPECT_EQ(reason.state, JobState::kQuotaRejected);
  EXPECT_EQ(reason.tenant, "alpha");
  EXPECT_EQ(reason.quota_queued, 2u);
  EXPECT_EQ(reason.quota_limit, 2u);
  EXPECT_THROW(refused.report(), PreconditionError);

  release.store(true);
  runner.wait_all();
  EXPECT_EQ(first.state(), JobState::kDone);
  EXPECT_EQ(second.state(), JobState::kDone);

  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.quota_rejected, 1u);
  ASSERT_EQ(metrics.tenants.count("alpha"), 1u);
  EXPECT_EQ(metrics.tenants.at("alpha").submitted, 3u);
  EXPECT_EQ(metrics.tenants.at("alpha").completed, 2u);
  EXPECT_EQ(metrics.tenants.at("alpha").quota_rejected, 1u);
  // Conservation: every submission reached exactly one terminal tally.
  EXPECT_EQ(metrics.finished(), metrics.submitted);
}

TEST(TenantQuota, MaxInFlightHoldsJobsWhileOtherTenantsDispatchPast) {
  // alpha at max_in_flight 1: while its first job is parked mid-solve, its
  // second must stay queued — but beta's job dispatches straight past the
  // held one and completes.  When the parked job finishes, the held job is
  // released and completes too.
  BatchRunnerOptions options;
  options.threads = 4;
  options.tenants.define("alpha", {1.0, 0, /*max_in_flight=*/1});
  options.tenants.define("beta", {1.0, 0, 0});
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph parked_graph = make_tiny_graph(0.0);
  SolveJob holder;
  holder.graph = &parked_graph;
  holder.options.max_iterations = 20;
  holder.options.check_interval = 10;
  holder.tenant = "alpha";
  holder.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  JobHandle held_open = runner.submit(std::move(holder));
  while (!parked.load()) std::this_thread::yield();

  FactorGraph blocked_graph = make_tiny_graph(1.0);
  SolveJob blocked;
  blocked.graph = &blocked_graph;
  blocked.options.max_iterations = 20;
  blocked.tenant = "alpha";
  JobHandle held = runner.submit(std::move(blocked));

  FactorGraph beta_graph = make_tiny_graph(2.0);
  SolveJob passing;
  passing.graph = &beta_graph;
  passing.options.max_iterations = 20;
  passing.tenant = "beta";
  JobHandle passed = runner.submit(std::move(passing));

  // beta completes while alpha's second job is still held at the quota —
  // the dispatcher scanned past the blocked head of the queue.
  EXPECT_EQ(passed.wait(), JobState::kDone);
  EXPECT_EQ(held.state(), JobState::kQueued);

  release.store(true);
  runner.wait_all();
  EXPECT_EQ(held_open.state(), JobState::kDone);
  EXPECT_EQ(held.state(), JobState::kDone);
  EXPECT_EQ(runner.metrics().completed, 3u);
}

TEST(TenantTerminalReason, ReportsEvidencePerTerminalKind) {
  // kDone under the accept policy: admitted, no projection, tenant tag.
  {
    BatchRunnerOptions options;
    options.threads = 2;
    options.tenants.define("alpha", {1.0, 0, 0});
    BatchRunner runner(options);
    JobHandle done = runner.submit(
        SubmitRequest("lasso").tenant("alpha").max_iterations(10));
    done.wait();
    const TerminalReason reason = done.terminal_reason();
    EXPECT_EQ(reason.state, JobState::kDone);
    EXPECT_EQ(reason.verdict, AdmissionVerdict::kAdmitted);
    EXPECT_EQ(reason.tenant, "alpha");
    EXPECT_TRUE(std::isnan(reason.projected_finish));
    EXPECT_EQ(reason.deadline, kNoDeadline);
    EXPECT_EQ(reason.quota_limit, 0u);
  }
  // kRejected under the reject policy: a deadline already in the past is
  // provably infeasible, and the projection that proved it is on the
  // handle.
  {
    BatchRunnerOptions options;
    options.threads = 2;
    options.admission = AdmissionPolicy::kRejectInfeasible;
    BatchRunner runner(options);
    JobHandle rejected = runner.submit(
        SubmitRequest("lasso").deadline(0.0).max_iterations(10));
    EXPECT_EQ(rejected.wait(), JobState::kRejected);
    const TerminalReason reason = rejected.terminal_reason();
    EXPECT_EQ(reason.state, JobState::kRejected);
    EXPECT_EQ(reason.verdict, AdmissionVerdict::kRejected);
    EXPECT_EQ(reason.deadline, 0.0);
    EXPECT_FALSE(std::isnan(reason.projected_finish));
    EXPECT_GT(reason.projected_finish, 0.0);
    // The deprecated per-field getters read the same evidence.
    EXPECT_EQ(rejected.admission_verdict(), AdmissionVerdict::kRejected);
  }
  // A non-terminal job refuses the accessor: the evidence record is a
  // statement about why the job *ended*.
  {
    BatchRunnerOptions options;
    options.threads = 1;
    BatchRunner runner(options);
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FactorGraph graph = make_tiny_graph(0.0);
    SolveJob job;
    job.graph = &graph;
    job.options.max_iterations = 20;
    job.options.check_interval = 10;
    job.progress = [&](const IterationStatus&) {
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    };
    JobHandle running = runner.submit(std::move(job));
    while (!parked.load()) std::this_thread::yield();
    EXPECT_THROW(running.terminal_reason(), PreconditionError);
    release.store(true);
    runner.wait_all();
    EXPECT_EQ(running.terminal_reason().state, JobState::kDone);
  }
}

TEST(SubmitRequestApi, BuilderCarriesEveryFieldOntoTheHandle) {
  BatchRunnerOptions options;
  options.threads = 2;
  options.tenants.define("alpha", {1.0, 0, 0});
  BatchRunner runner(options);
  std::atomic<int> progress_calls{0};
  JobHandle handle = runner.submit(SubmitRequest("lasso")
                                       .tenant("alpha")
                                       .priority(7)
                                       .deadline(250.0)
                                       .label("my-job")
                                       .max_iterations(30)
                                       .check_interval(10)
                                       .progress([&](const IterationStatus&) {
                                         progress_calls.fetch_add(1);
                                       }));
  handle.wait();
  EXPECT_EQ(handle.priority(), 7);
  EXPECT_EQ(handle.deadline(), 250.0);
  EXPECT_EQ(handle.tenant(), "alpha");
  EXPECT_EQ(handle.label(), "my-job");
  EXPECT_EQ(handle.state(), JobState::kDone);
  EXPECT_LE(handle.report().iterations, 30);
  EXPECT_GT(progress_calls.load(), 0);
}

TEST(SubmitRequestApi, ClassicOverloadDelegatesToTheBuilderPath) {
  // submit(problem, params, options) is a thin wrapper over
  // submit(SubmitRequest): the two paths must produce identical reports
  // for the same deterministic problem.
  SolverOptions solver_options;
  solver_options.max_iterations = 25;

  BatchRunnerOptions options;
  options.threads = 1;
  BatchRunner classic_runner(options);
  JobHandle classic = classic_runner.submit("lasso", {}, solver_options);
  classic.wait();

  BatchRunner builder_runner(options);
  JobHandle built = builder_runner.submit(
      SubmitRequest("lasso").max_iterations(25));
  built.wait();

  ASSERT_EQ(classic.state(), JobState::kDone);
  ASSERT_EQ(built.state(), JobState::kDone);
  EXPECT_EQ(classic.report().iterations, built.report().iterations);
  EXPECT_EQ(classic.report().converged, built.report().converged);
  EXPECT_DOUBLE_EQ(classic.report().final_residuals.primal,
                   built.report().final_residuals.primal);
  EXPECT_EQ(classic.label(), built.label());  // both default to the problem
}

TEST(SubmitRequestApi, JsonRoundTripPreservesEveryField) {
  const SubmitRequest request = SubmitRequest("lasso")
                                    .tenant("alpha")
                                    .priority(3)
                                    .deadline(1.5)
                                    .label("wire-job")
                                    .max_iterations(200)
                                    .check_interval(25);
  const std::string json = request.to_json();
  const SubmitRequest parsed =
      SubmitRequest::from_json_text(json, "round trip");
  EXPECT_EQ(parsed.problem(), "lasso");
  EXPECT_EQ(parsed.tenant(), "alpha");
  EXPECT_EQ(parsed.priority(), 3);
  EXPECT_DOUBLE_EQ(parsed.deadline(), 1.5);
  EXPECT_EQ(parsed.label(), "wire-job");
  EXPECT_EQ(parsed.max_iterations(), 200);
  EXPECT_EQ(parsed.check_interval(), 25);
  // Defaults stay off the wire and come back as defaults.
  const SubmitRequest minimal = SubmitRequest::from_json_text(
      SubmitRequest("svm").to_json(), "round trip");
  EXPECT_EQ(minimal.problem(), "svm");
  EXPECT_EQ(minimal.priority(), 0);
  EXPECT_EQ(minimal.deadline(), kNoDeadline);
  EXPECT_TRUE(minimal.tenant().empty());
}

TEST(SubmitRequestApi, MalformedWireRequestsAreRefusedLoudly) {
  // Unknown keys name themselves in the error (a typo'd field silently
  // ignored would be a misconfigured job silently accepted).
  EXPECT_THROW(SubmitRequest::from_json_text(
                   R"({"problem": "lasso", "prioritty": 3})", "wire"),
               PreconditionError);
  // The problem name is mandatory.
  EXPECT_THROW(SubmitRequest::from_json_text(R"({"priority": 3})", "wire"),
               PreconditionError);
  // Integer fields refuse fractional numbers.
  EXPECT_THROW(SubmitRequest::from_json_text(
                   R"({"problem": "lasso", "max_iterations": 1.5})", "wire"),
               PreconditionError);
  // And a request with no problem cannot build.
  EXPECT_THROW(SubmitRequest().build(), PreconditionError);
}

}  // namespace
}  // namespace paradmm::runtime
