// Priority/deadline dispatch properties of the BatchRunner's ready queue.
//
// The runner dispatches by (priority desc, deadline asc, submit order asc).
// These tests pin the two properties the policy promises for any arrival
// set: a higher-priority job never starts after a lower-priority job that
// was already queued at its dispatch time, and equal-priority ties keep
// submit order (with deadlines, earliest-first, inside a priority class).
//
// Technique: a single-lane runner (threads == 1 has no pool workers, so
// every solve runs inline on the dispatcher) whose first job parks inside
// its progress callback.  Everything submitted while it is parked lands in
// the ready queue together; after release, execution order *is* dispatch
// order, recorded via each job's first progress callback.  That makes the
// observed order exact and deterministic for a fixed seeded arrival set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "support/rng.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_tiny_graph(double target) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{target}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

/// One job description of a seeded arrival set.
struct Arrival {
  int priority = 0;
  double deadline = kNoDeadline;
};

/// Submits `arrivals` while the dispatcher is parked inside a blocker job,
/// releases it, and returns the order (arrival indices) in which the jobs
/// started executing.
std::vector<std::size_t> dispatch_order(const std::vector<Arrival>& arrivals) {
  BatchRunnerOptions options;
  options.threads = 1;
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph blocker_graph = make_tiny_graph(0.0);
  SolveJob blocker;
  blocker.graph = &blocker_graph;
  blocker.options.max_iterations = 20;
  blocker.options.check_interval = 10;
  blocker.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  runner.submit(std::move(blocker));
  while (!parked.load()) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  std::vector<char> recorded(arrivals.size(), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    graphs.push_back(std::make_unique<FactorGraph>(
        make_tiny_graph(static_cast<double>(i))));
    SolveJob job;
    job.graph = graphs.back().get();
    job.options.max_iterations = 20;
    job.options.check_interval = 10;
    job.priority = arrivals[i].priority;
    job.deadline = arrivals[i].deadline;
    job.progress = [&, i](const IterationStatus&) {
      std::lock_guard lock(order_mutex);
      if (!recorded[i]) {
        recorded[i] = 1;
        order.push_back(i);
      }
    };
    runner.submit(std::move(job));
  }

  release.store(true);
  runner.wait_all();
  return order;
}

/// The order the dispatch policy promises: priority desc, deadline asc,
/// submit order asc.
std::vector<std::size_t> expected_order(const std::vector<Arrival>& arrivals) {
  std::vector<std::size_t> expected(arrivals.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(),
            [&](std::size_t a, std::size_t b) {
              if (arrivals[a].priority != arrivals[b].priority) {
                return arrivals[a].priority > arrivals[b].priority;
              }
              if (arrivals[a].deadline != arrivals[b].deadline) {
                return arrivals[a].deadline < arrivals[b].deadline;
              }
              return a < b;
            });
  return expected;
}

TEST(PriorityDispatch, SeededArrivalSetsDispatchInPolicyOrder) {
  // Property: for any seeded arrival set queued together, observed start
  // order equals the policy order exactly — which implies both that no
  // higher-priority job starts after an already-queued lower-priority one
  // and that equal keys preserve submit order.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::size_t jobs = 20 + rng.uniform_index(21);  // 20..40
    std::vector<Arrival> arrivals(jobs);
    for (auto& arrival : arrivals) {
      arrival.priority = static_cast<int>(rng.uniform_index(4));
      if (rng.uniform() < 0.5) arrival.deadline = rng.uniform(0.0, 100.0);
    }
    EXPECT_EQ(dispatch_order(arrivals), expected_order(arrivals))
        << "seed " << seed;
  }
}

TEST(PriorityDispatch, EqualPrioritiesPreserveSubmitOrder) {
  const std::vector<Arrival> arrivals(12);  // all priority 0, no deadlines
  std::vector<std::size_t> fifo(arrivals.size());
  std::iota(fifo.begin(), fifo.end(), 0);
  EXPECT_EQ(dispatch_order(arrivals), fifo);
}

TEST(PriorityDispatch, DeadlinesBreakTiesWithinAPriorityClass) {
  // Same priority: earliest deadline first, kNoDeadline last, deadline
  // ties FIFO.  A higher priority class still beats every deadline.
  std::vector<Arrival> arrivals(6);
  arrivals[0].deadline = kNoDeadline;
  arrivals[1].deadline = 30.0;
  arrivals[2].deadline = 10.0;
  arrivals[3].deadline = 30.0;
  arrivals[4].deadline = kNoDeadline;
  arrivals[5] = Arrival{1, kNoDeadline};  // outranks every deadline above
  const std::vector<std::size_t> expected{5, 2, 1, 3, 0, 4};
  EXPECT_EQ(dispatch_order(arrivals), expected);
}

TEST(PriorityDispatch, DispatchIsDeterministicForAFixedArrivalSet) {
  Rng rng(0xabcdeULL);
  std::vector<Arrival> arrivals(25);
  for (auto& arrival : arrivals) {
    arrival.priority = static_cast<int>(rng.uniform_index(3));
    if (rng.uniform() < 0.4) arrival.deadline = rng.uniform(0.0, 10.0);
  }
  const auto first = dispatch_order(arrivals);
  const auto second = dispatch_order(arrivals);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, expected_order(arrivals));
}

TEST(PriorityDispatch, LateBurstOvertakesEarlierBacklogAcrossPoolWorkers) {
  // Bounded dispatch keeps the backlog in the *priority* queue instead of
  // eagerly draining it into the pool's FIFO run queues (where priority
  // no longer applies): with a real pool worker busy on a long job, at
  // most `threads` jobs are in flight, so a high-priority burst submitted
  // after six fillers still starts before every filler that had not yet
  // been handed a lane.  (filler 0 may legitimately be in flight before
  // the burst arrives; fillers 1..5 cannot be.)
  BatchRunnerOptions options;
  options.threads = 2;  // 1 worker + dispatcher: in-flight cap is 2
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph blocker_graph = make_tiny_graph(0.0);
  SolveJob blocker;
  blocker.graph = &blocker_graph;
  blocker.options.max_iterations = 20;
  blocker.options.check_interval = 10;
  blocker.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  runner.submit(std::move(blocker));
  while (!parked.load()) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<char> recorded(8, 0);
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  const auto submit_recorded = [&](std::size_t index, int priority) {
    graphs.push_back(std::make_unique<FactorGraph>(
        make_tiny_graph(static_cast<double>(index))));
    SolveJob job;
    job.graph = graphs.back().get();
    job.options.max_iterations = 20;
    job.options.check_interval = 10;
    job.priority = priority;
    job.progress = [&, index](const IterationStatus&) {
      std::lock_guard lock(order_mutex);
      if (!recorded[index]) {
        recorded[index] = 1;
        order.push_back(index);
      }
    };
    runner.submit(std::move(job));
  };
  for (std::size_t i = 0; i < 6; ++i) submit_recorded(i, 0);   // fillers
  for (std::size_t i = 6; i < 8; ++i) submit_recorded(i, 10);  // burst

  release.store(true);
  runner.wait_all();

  ASSERT_EQ(order.size(), 8u);
  std::vector<std::size_t> position(8, 0);
  for (std::size_t p = 0; p < order.size(); ++p) position[order[p]] = p;
  for (std::size_t burst = 6; burst < 8; ++burst) {
    for (std::size_t filler = 1; filler < 6; ++filler) {
      EXPECT_LT(position[burst], position[filler])
          << "burst " << burst << " started after filler " << filler;
    }
  }
}

TEST(PriorityDispatch, NanDeadlineIsRejectedAtSubmit) {
  // NaN never orders against anything — letting it into the ready queue
  // would corrupt the comparator's strict weak ordering.
  BatchRunnerOptions options;
  options.threads = 2;
  BatchRunner runner(options);
  FactorGraph graph = make_tiny_graph(1.0);
  SolveJob job;
  job.graph = &graph;
  job.deadline = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runner.submit(std::move(job)), PreconditionError);
}

TEST(PriorityDispatch, HandleExposesPriorityAndDeadline) {
  BatchRunnerOptions options;
  options.threads = 2;
  BatchRunner runner(options);
  FactorGraph graph = make_tiny_graph(1.0);
  SolveJob job;
  job.graph = &graph;
  job.priority = 7;
  job.deadline = 2.5;
  JobHandle handle = runner.submit(std::move(job));
  EXPECT_EQ(handle.priority(), 7);
  EXPECT_EQ(handle.deadline(), 2.5);
  handle.wait();

  JobHandle defaulted = runner.submit("svm", {}, SolverOptions{});
  EXPECT_EQ(defaulted.priority(), 0);
  EXPECT_EQ(defaulted.deadline(), kNoDeadline);
  defaulted.wait();
}

}  // namespace
}  // namespace paradmm::runtime
