// Priority/deadline dispatch properties of the BatchRunner's ready queue.
//
// The runner dispatches by (priority desc, deadline asc, submit order asc).
// These tests pin the two properties the policy promises for any arrival
// set: a higher-priority job never starts after a lower-priority job that
// was already queued at its dispatch time, and equal-priority ties keep
// submit order (with deadlines, earliest-first, inside a priority class).
//
// Technique: a single-lane runner (threads == 1 has no pool workers, so
// every solve runs inline on the dispatcher) whose first job parks inside
// its progress callback.  Everything submitted while it is parked lands in
// the ready queue together; after release, execution order *is* dispatch
// order, recorded via each job's first progress callback.  That makes the
// observed order exact and deterministic for a fixed seeded arrival set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "support/rng.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_tiny_graph(double target) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{target}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

/// One job description of a seeded arrival set.
struct Arrival {
  int priority = 0;
  double deadline = kNoDeadline;
  double at = 0.0;  ///< virtual-clock submit time (must be non-decreasing)
};

/// Submits `arrivals` while the dispatcher is parked inside a blocker job,
/// releases it, and returns the order (arrival indices) in which the jobs
/// started executing.  The runner reads a virtual clock stepped to each
/// arrival's submit time, so with a nonzero `aging_rate` every job's aged
/// key is an exact function of the arrival set — the observed order is
/// deterministic and clock-jitter-free.
std::vector<std::size_t> dispatch_order(const std::vector<Arrival>& arrivals,
                                        double aging_rate = 0.0) {
  auto vclock = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions options;
  options.threads = 1;
  options.aging_rate = aging_rate;
  options.clock = [vclock] { return vclock->load(); };
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph blocker_graph = make_tiny_graph(0.0);
  SolveJob blocker;
  blocker.graph = &blocker_graph;
  blocker.options.max_iterations = 20;
  blocker.options.check_interval = 10;
  blocker.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  runner.submit(std::move(blocker));
  while (!parked.load()) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  std::vector<char> recorded(arrivals.size(), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    graphs.push_back(std::make_unique<FactorGraph>(
        make_tiny_graph(static_cast<double>(i))));
    vclock->store(arrivals[i].at);
    SolveJob job;
    job.graph = graphs.back().get();
    job.options.max_iterations = 20;
    job.options.check_interval = 10;
    job.priority = arrivals[i].priority;
    job.deadline = arrivals[i].deadline;
    job.progress = [&, i](const IterationStatus&) {
      std::lock_guard lock(order_mutex);
      if (!recorded[i]) {
        recorded[i] = 1;
        order.push_back(i);
      }
    };
    runner.submit(std::move(job));
  }

  release.store(true);
  runner.wait_all();
  return order;
}

/// The order the dispatch policy promises: priority desc, deadline asc,
/// submit order asc.
std::vector<std::size_t> expected_order(const std::vector<Arrival>& arrivals) {
  std::vector<std::size_t> expected(arrivals.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(),
            [&](std::size_t a, std::size_t b) {
              if (arrivals[a].priority != arrivals[b].priority) {
                return arrivals[a].priority > arrivals[b].priority;
              }
              if (arrivals[a].deadline != arrivals[b].deadline) {
                return arrivals[a].deadline < arrivals[b].deadline;
              }
              return a < b;
            });
  return expected;
}

/// The aged policy order: effective priority (priority + rate x wait)
/// descending.  `now` cancels out of every pairwise comparison, so the
/// order is the static key priority - rate x submit time, descending —
/// the same expression, in the same operation order, as the runner's
/// JobOrder comparator, so expected and observed orders agree bitwise.
std::vector<std::size_t> expected_aged_order(
    const std::vector<Arrival>& arrivals, double rate) {
  const auto key = [&](const Arrival& arrival) {
    return static_cast<double>(arrival.priority) - rate * arrival.at;
  };
  std::vector<std::size_t> expected(arrivals.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(),
            [&](std::size_t a, std::size_t b) {
              const double key_a = key(arrivals[a]);
              const double key_b = key(arrivals[b]);
              if (key_a != key_b) return key_a > key_b;
              if (arrivals[a].deadline != arrivals[b].deadline) {
                return arrivals[a].deadline < arrivals[b].deadline;
              }
              return a < b;
            });
  return expected;
}

TEST(PriorityDispatch, SeededArrivalSetsDispatchInPolicyOrder) {
  // Property: for any seeded arrival set queued together, observed start
  // order equals the policy order exactly — which implies both that no
  // higher-priority job starts after an already-queued lower-priority one
  // and that equal keys preserve submit order.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::size_t jobs = 20 + rng.uniform_index(21);  // 20..40
    std::vector<Arrival> arrivals(jobs);
    for (auto& arrival : arrivals) {
      arrival.priority = static_cast<int>(rng.uniform_index(4));
      if (rng.uniform() < 0.5) arrival.deadline = rng.uniform(0.0, 100.0);
    }
    EXPECT_EQ(dispatch_order(arrivals), expected_order(arrivals))
        << "seed " << seed;
  }
}

TEST(PriorityDispatch, EqualPrioritiesPreserveSubmitOrder) {
  const std::vector<Arrival> arrivals(12);  // all priority 0, no deadlines
  std::vector<std::size_t> fifo(arrivals.size());
  std::iota(fifo.begin(), fifo.end(), 0);
  EXPECT_EQ(dispatch_order(arrivals), fifo);
}

TEST(PriorityDispatch, DeadlinesBreakTiesWithinAPriorityClass) {
  // Same priority: earliest deadline first, kNoDeadline last, deadline
  // ties FIFO.  A higher priority class still beats every deadline.
  std::vector<Arrival> arrivals(6);
  arrivals[0].deadline = kNoDeadline;
  arrivals[1].deadline = 30.0;
  arrivals[2].deadline = 10.0;
  arrivals[3].deadline = 30.0;
  arrivals[4].deadline = kNoDeadline;
  arrivals[5] = Arrival{1, kNoDeadline};  // outranks every deadline above
  const std::vector<std::size_t> expected{5, 2, 1, 3, 0, 4};
  EXPECT_EQ(dispatch_order(arrivals), expected);
}

TEST(PriorityDispatch, DispatchIsDeterministicForAFixedArrivalSet) {
  Rng rng(0xabcdeULL);
  std::vector<Arrival> arrivals(25);
  for (auto& arrival : arrivals) {
    arrival.priority = static_cast<int>(rng.uniform_index(3));
    if (rng.uniform() < 0.4) arrival.deadline = rng.uniform(0.0, 10.0);
  }
  const auto first = dispatch_order(arrivals);
  const auto second = dispatch_order(arrivals);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, expected_order(arrivals));
}

TEST(PriorityDispatch, AgingLiftsLongWaitingJobsOverFreshHighPriority) {
  // A priority-0 job that has waited 100 time units at aging_rate 0.1 has
  // effective priority 10 — it outranks a freshly submitted priority-5
  // job.  With aging off the same arrival set dispatches high first.
  const std::vector<Arrival> arrivals{{0, kNoDeadline, 0.0},
                                      {5, kNoDeadline, 100.0}};
  EXPECT_EQ(dispatch_order(arrivals, /*aging_rate=*/0.1),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(dispatch_order(arrivals, /*aging_rate=*/0.0),
            (std::vector<std::size_t>{1, 0}));
}

TEST(PriorityDispatch, AgedDispatchMatchesTheAgedPolicyForSeededArrivals) {
  // Property: for any seeded arrival set with staggered submit times, the
  // observed start order equals the aged policy order exactly (effective
  // priority desc, deadline asc, submit order asc, judged at the frozen
  // clock) — deterministic because the virtual clock removes wall time
  // from the picture entirely.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const double rate = 0.05 + rng.uniform(0.0, 0.5);
    const std::size_t jobs = 12 + rng.uniform_index(13);  // 12..24
    std::vector<Arrival> arrivals(jobs);
    double t = 0.0;
    for (auto& arrival : arrivals) {
      arrival.priority = static_cast<int>(rng.uniform_index(4));
      if (rng.uniform() < 0.4) arrival.deadline = rng.uniform(0.0, 100.0);
      t += rng.uniform(0.0, 10.0);
      arrival.at = t;
    }
    EXPECT_EQ(dispatch_order(arrivals, rate),
              expected_aged_order(arrivals, rate))
        << "seed " << seed;
  }
}

TEST(PriorityDispatch, ZeroAgingRateReproducesTheUnagedPolicyBitwise) {
  // aging_rate == 0 is the exact pre-aging dispatcher: even with staggered
  // virtual submit times, the observed order equals the pure (priority,
  // deadline, submit order) policy — the bitwise-compatibility contract of
  // the knob's default.
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    Rng rng(seed);
    std::vector<Arrival> arrivals(18);
    double t = 0.0;
    for (auto& arrival : arrivals) {
      arrival.priority = static_cast<int>(rng.uniform_index(3));
      if (rng.uniform() < 0.5) arrival.deadline = rng.uniform(0.0, 20.0);
      t += rng.uniform(0.0, 5.0);
      arrival.at = t;
    }
    EXPECT_EQ(dispatch_order(arrivals, /*aging_rate=*/0.0),
              expected_order(arrivals))
        << "seed " << seed;
  }
}

TEST(PriorityDispatch, InvalidAgingRateIsRejected) {
  // Negative aging would *demote* waiting jobs (a starvation machine), and
  // NaN poisons every effective-priority comparison.
  BatchRunnerOptions negative;
  negative.threads = 1;
  negative.aging_rate = -0.5;
  EXPECT_THROW(BatchRunner{negative}, PreconditionError);

  BatchRunnerOptions nan;
  nan.threads = 1;
  nan.aging_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(BatchRunner{nan}, PreconditionError);
}

TEST(PriorityDispatch, LateBurstOvertakesEarlierBacklogAcrossPoolWorkers) {
  // Bounded dispatch keeps the backlog in the *priority* queue instead of
  // eagerly draining it into the pool's FIFO run queues (where priority
  // no longer applies): with a real pool worker busy on a long job, at
  // most `threads` jobs are in flight, so a high-priority burst submitted
  // after six fillers still starts before every filler that had not yet
  // been handed a lane.  (filler 0 may legitimately be in flight before
  // the burst arrives; fillers 1..5 cannot be.)
  BatchRunnerOptions options;
  options.threads = 2;  // 1 worker + dispatcher: in-flight cap is 2
  BatchRunner runner(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  FactorGraph blocker_graph = make_tiny_graph(0.0);
  SolveJob blocker;
  blocker.graph = &blocker_graph;
  blocker.options.max_iterations = 20;
  blocker.options.check_interval = 10;
  blocker.progress = [&](const IterationStatus&) {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  runner.submit(std::move(blocker));
  while (!parked.load()) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<std::size_t> order;
  std::vector<char> recorded(8, 0);
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  const auto submit_recorded = [&](std::size_t index, int priority) {
    graphs.push_back(std::make_unique<FactorGraph>(
        make_tiny_graph(static_cast<double>(index))));
    SolveJob job;
    job.graph = graphs.back().get();
    job.options.max_iterations = 20;
    job.options.check_interval = 10;
    job.priority = priority;
    job.progress = [&, index](const IterationStatus&) {
      std::lock_guard lock(order_mutex);
      if (!recorded[index]) {
        recorded[index] = 1;
        order.push_back(index);
      }
    };
    runner.submit(std::move(job));
  };
  for (std::size_t i = 0; i < 6; ++i) submit_recorded(i, 0);   // fillers
  for (std::size_t i = 6; i < 8; ++i) submit_recorded(i, 10);  // burst

  release.store(true);
  runner.wait_all();

  ASSERT_EQ(order.size(), 8u);
  std::vector<std::size_t> position(8, 0);
  for (std::size_t p = 0; p < order.size(); ++p) position[order[p]] = p;
  for (std::size_t burst = 6; burst < 8; ++burst) {
    for (std::size_t filler = 1; filler < 6; ++filler) {
      EXPECT_LT(position[burst], position[filler])
          << "burst " << burst << " started after filler " << filler;
    }
  }
}

TEST(PriorityDispatch, NanDeadlineIsRejectedAtSubmit) {
  // NaN never orders against anything — letting it into the ready queue
  // would corrupt the comparator's strict weak ordering.
  BatchRunnerOptions options;
  options.threads = 2;
  BatchRunner runner(options);
  FactorGraph graph = make_tiny_graph(1.0);
  SolveJob job;
  job.graph = &graph;
  job.deadline = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runner.submit(std::move(job)), PreconditionError);
}

TEST(PriorityDispatch, HandleExposesPriorityAndDeadline) {
  BatchRunnerOptions options;
  options.threads = 2;
  BatchRunner runner(options);
  FactorGraph graph = make_tiny_graph(1.0);
  SolveJob job;
  job.graph = &graph;
  job.priority = 7;
  job.deadline = 2.5;
  JobHandle handle = runner.submit(std::move(job));
  EXPECT_EQ(handle.priority(), 7);
  EXPECT_EQ(handle.deadline(), 2.5);
  handle.wait();

  JobHandle defaulted = runner.submit("svm", {}, SolverOptions{});
  EXPECT_EQ(defaulted.priority(), 0);
  EXPECT_EQ(defaulted.deadline(), kNoDeadline);
  defaulted.wait();
}

}  // namespace
}  // namespace paradmm::runtime
