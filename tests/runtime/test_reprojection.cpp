// Continuous admission: the BatchRunner's mid-queue re-projection
// (BatchRunnerOptions::reprojection) that sheds or degrades admitted jobs
// whose deadlines a queue-shape change has made provably unmeetable.
//
// Determinism: every scenario runs on a frozen virtual clock against the
// injected 1-second-per-iteration cost model (the test_admission idiom),
// with the dispatch lanes saturated by jobs parked inside their progress
// callbacks — so the queue shape at each re-projection, and therefore the
// shed verdict and its evidence, are exact arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_consensus_graph(const std::vector<double>& targets) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  for (const double t : targets) {
    graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{t}), {w});
  }
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

std::vector<double> z_copy(const FactorGraph& graph) {
  const auto z = graph.z_values();
  return {z.begin(), z.end()};
}

/// 1 second per ADMM iteration at every width: a queued job's remaining
/// load and its own best-case floor both equal its remaining iterations.
CostModelPtr one_second_per_iteration() {
  return make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        return std::vector<double>(widths.size(), 1.0);
      },
      "one-second-per-iteration");
}

SolverOptions budget(int iterations) {
  SolverOptions options;
  options.max_iterations = iterations;
  options.check_interval = iterations;
  return options;
}

BatchRunnerOptions reprojection_options(
    AdmissionPolicy policy, std::shared_ptr<std::atomic<double>> now) {
  BatchRunnerOptions options;
  options.threads = 2;
  options.reprojection = policy;
  options.cost_model = one_second_per_iteration();
  options.clock = [now] { return now->load(); };
  return options;
}

/// The canonical shed scenario, exact on the virtual clock:
///
///   * two blockers park inside their progress callbacks and saturate both
///     dispatch lanes, so the ready queue is frozen;
///   * a 30-iteration filler queues at priority 5 (no deadline);
///   * the victim (1 iteration, deadline 20) queues behind it.  At submit
///     its projection is 0 + 30/2 + 1 = 16 <= 20: admitted.
///   * the clock advances to 5 and the blockers are released.  The first
///     queue-shape event re-projects the victim at 5 + 30/2 + 1 = 21 > 20:
///     provably late, with 30 s of queued-ahead evidence.
///
/// Under kRejectInfeasible the victim is shed (kShedLate); under
/// kDegradeToBestEffort it runs flagged.  Returns the handles as
/// {blocker, blocker, filler, victim}.
struct ShedScenario {
  std::vector<FactorGraph> graphs;
  std::vector<JobHandle> handles;
  RuntimeMetrics metrics;
};

ShedScenario run_shed_scenario(BatchRunnerOptions options,
                               std::shared_ptr<std::atomic<double>> now) {
  ShedScenario run;
  run.graphs.push_back(make_consensus_graph({1.0}));
  run.graphs.push_back(make_consensus_graph({2.0}));
  run.graphs.push_back(make_consensus_graph({1.0, 2.0, 3.0}));
  run.graphs.push_back(make_consensus_graph({4.0}));

  BatchRunner runner(std::move(options));

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<int> blocked{0};
  for (int b = 0; b < 2; ++b) {
    SolveJob job;
    job.graph = &run.graphs[static_cast<std::size_t>(b)];
    job.options = budget(2);
    job.options.check_interval = 1;
    job.label = "blocker";
    job.progress = [&](const IterationStatus&) {
      blocked.fetch_add(1);
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return release; });
    };
    run.handles.push_back(runner.submit(std::move(job)));
  }
  while (blocked.load() < 2) std::this_thread::yield();

  SolveJob filler;
  filler.graph = &run.graphs[2];
  filler.options = budget(30);
  filler.priority = 5;
  filler.label = "filler";
  run.handles.push_back(runner.submit(std::move(filler)));

  SolveJob victim;
  victim.graph = &run.graphs[3];
  victim.options = budget(1);
  victim.deadline = 20.0;
  victim.label = "victim";
  run.handles.push_back(runner.submit(std::move(victim)));
  EXPECT_EQ(run.handles[3].admission_verdict(), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(run.handles[3].state(), JobState::kQueued);

  now->store(5.0);
  {
    std::lock_guard lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  runner.wait_all();
  run.metrics = runner.metrics();
  return run;
}

TEST(Reprojection, QueueStallShedsProvablyLateJobWithEvidence) {
  // kRejectInfeasible: the victim — feasible at submit — is shed the
  // moment the 5-second stall makes its projection miss, with the exact
  // projected-vs-deadline arithmetic as evidence.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  const ShedScenario run = run_shed_scenario(
      reprojection_options(AdmissionPolicy::kRejectInfeasible, now), now);

  EXPECT_EQ(run.handles[0].state(), JobState::kDone);
  EXPECT_EQ(run.handles[1].state(), JobState::kDone);
  EXPECT_EQ(run.handles[2].state(), JobState::kDone);
  const JobHandle& victim = run.handles[3];
  EXPECT_EQ(victim.wait(), JobState::kShedLate);
  // The evidence is the proof sketch: 5 (clock) + 30/2 (filler's queued
  // load over 2 lanes) + 1 (own best case) = 21 > deadline 20.
  EXPECT_DOUBLE_EQ(victim.reprojection_projected(), 21.0);
  EXPECT_DOUBLE_EQ(victim.reprojection_ahead_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(victim.finished_at(), 5.0);  // settled at the shed event
  // A shed-while-queued job never ran: empty report, no fork, and its
  // submit-time admission verdict stands (it *was* admitted).
  EXPECT_EQ(victim.report().iterations, 0);
  EXPECT_EQ(victim.current_width(), 0u);
  EXPECT_EQ(victim.admission_verdict(), AdmissionVerdict::kAdmitted);

  EXPECT_EQ(run.metrics.submitted, 4u);
  EXPECT_EQ(run.metrics.completed, 3u);
  EXPECT_EQ(run.metrics.shed_late, 1u);
  EXPECT_EQ(run.metrics.rejected, 0u);
  EXPECT_EQ(run.metrics.degraded, 0u);
  EXPECT_EQ(run.metrics.finished(), 4u);
  EXPECT_EQ(run.metrics.waiting_jobs, 0u);  // governor books balance
  EXPECT_EQ(run.metrics.queue_depth, 0u);
}

TEST(Reprojection, DegradePolicyRunsTheLateJobFlagged) {
  // kDegradeToBestEffort: same provably-late projection, but the victim
  // keeps its queue slot, runs to completion, and carries the kBestEffort
  // flag plus the same evidence instead of going terminal.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  const ShedScenario run = run_shed_scenario(
      reprojection_options(AdmissionPolicy::kDegradeToBestEffort, now), now);

  const JobHandle& victim = run.handles[3];
  EXPECT_EQ(victim.wait(), JobState::kDone);
  EXPECT_EQ(victim.admission_verdict(), AdmissionVerdict::kBestEffort);
  EXPECT_EQ(victim.report().iterations, 1);
  EXPECT_DOUBLE_EQ(victim.reprojection_projected(), 21.0);
  EXPECT_DOUBLE_EQ(victim.reprojection_ahead_seconds(), 30.0);

  EXPECT_EQ(run.metrics.completed, 4u);
  EXPECT_EQ(run.metrics.shed_late, 0u);
  EXPECT_EQ(run.metrics.degraded, 1u);
}

TEST(Reprojection, ShedSetIsIdenticalAcrossRepeatedRuns) {
  // The shed verdict depends only on the (deterministic) queue shape and
  // the virtual clock, not on thread interleaving: repeated runs shed
  // exactly the same job with exactly the same evidence.
  for (int repeat = 0; repeat < 3; ++repeat) {
    SCOPED_TRACE("repeat " + std::to_string(repeat));
    auto now = std::make_shared<std::atomic<double>>(0.0);
    const ShedScenario run = run_shed_scenario(
        reprojection_options(AdmissionPolicy::kRejectInfeasible, now), now);
    std::vector<JobState> states;
    states.reserve(run.handles.size());
    for (const auto& handle : run.handles) states.push_back(handle.state());
    const std::vector<JobState> expected = {JobState::kDone, JobState::kDone,
                                            JobState::kDone,
                                            JobState::kShedLate};
    EXPECT_EQ(states, expected);
    EXPECT_DOUBLE_EQ(run.handles[3].reprojection_projected(), 21.0);
    EXPECT_DOUBLE_EQ(run.handles[3].reprojection_ahead_seconds(), 30.0);
    EXPECT_EQ(run.metrics.shed_late, 1u);
  }
}

TEST(Reprojection, RateLimiterSkipsBackToBackReprojections) {
  // reprojection_interval = 10 on the same scenario: the blockers'
  // dispatch at clock 0 consumes the first re-projection, and every event
  // at clock 5 lands inside the 10-second window — so the victim is never
  // re-checked and runs to completion (missing its deadline is then the
  // scoreboard's business, not admission's).
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions options =
      reprojection_options(AdmissionPolicy::kRejectInfeasible, now);
  options.reprojection_interval = 10.0;
  const ShedScenario run = run_shed_scenario(std::move(options), now);

  EXPECT_EQ(run.handles[3].state(), JobState::kDone);
  EXPECT_EQ(run.metrics.shed_late, 0u);
  EXPECT_EQ(run.metrics.completed, 4u);
  // The evidence fields stay NaN: no verdict ever landed.
  EXPECT_TRUE(std::isnan(run.handles[3].reprojection_projected()));
}

TEST(Reprojection, AcceptPolicyIsBitwiseIdenticalToTheStaticRuntime) {
  // The off-switch property: reprojection = kAccept (the default) must
  // reproduce the pre-reprojection runtime bitwise — same arrival set,
  // finite deadlines included, scalar-for-scalar identical z vectors.
  const std::vector<std::vector<double>> arrival_targets = {
      {1.0, 2.0}, {3.0}, {-1.0, 0.5, 2.5}, {4.0, 4.0}};
  const std::vector<double> deadlines = {0.001, kNoDeadline, 0.5, kNoDeadline};

  const auto run_batch = [&](BatchRunnerOptions options,
                             const std::vector<double>& batch_deadlines) {
    std::vector<FactorGraph> graphs;
    graphs.reserve(arrival_targets.size());
    for (const auto& targets : arrival_targets) {
      graphs.push_back(make_consensus_graph(targets));
    }
    std::vector<JobHandle> handles;
    {
      BatchRunner runner(std::move(options));
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        SolveJob job;
        job.graph = &graphs[i];
        job.options = budget(40);
        job.deadline = batch_deadlines[i];
        handles.push_back(runner.submit(std::move(job)));
      }
      runner.wait_all();
    }
    std::vector<std::vector<double>> results;
    for (auto& handle : handles) {
      EXPECT_EQ(handle.state(), JobState::kDone);
      results.push_back(z_copy(handle.graph()));
    }
    return results;
  };
  const auto expect_bitwise = [](const std::vector<std::vector<double>>& a,
                                 const std::vector<std::vector<double>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
      ASSERT_EQ(a[i].size(), b[i].size()) << "job " << i;
      for (std::size_t s = 0; s < b[i].size(); ++s) {
        EXPECT_EQ(a[i][s], b[i][s]) << "job " << i << " z scalar " << s;
      }
    }
  };

  BatchRunnerOptions reference_options;
  reference_options.threads = 2;
  const auto reference = run_batch(reference_options, deadlines);

  // Off switch: policy explicitly kAccept, cost model and clock attached.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  const auto accepted = run_batch(
      reprojection_options(AdmissionPolicy::kAccept, now), deadlines);
  expect_bitwise(accepted, reference);

  // Armed but never firing: the shed policy with no finite deadline in the
  // batch has nothing to check and must also be bitwise-identical.
  const std::vector<double> no_deadlines(arrival_targets.size(), kNoDeadline);
  BatchRunnerOptions reference_inf_options;
  reference_inf_options.threads = 2;
  const auto reference_inf = run_batch(reference_inf_options, no_deadlines);
  auto now2 = std::make_shared<std::atomic<double>>(0.0);
  const auto armed = run_batch(
      reprojection_options(AdmissionPolicy::kRejectInfeasible, now2),
      no_deadlines);
  expect_bitwise(armed, reference_inf);
}

TEST(Reprojection, TraceExportCarriesTheShedEvidence) {
  // The acceptance criterion's visibility half: the Chrome-trace export of
  // a shed run contains the "reprojection" instant with the projected
  // finish, the deadline, and the queued-ahead seconds that proved the
  // job late, plus the shed-late finish event.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions options =
      reprojection_options(AdmissionPolicy::kRejectInfeasible, now);
  auto trace = std::make_shared<TraceRecorder>();
  options.trace_sink = trace;
  const ShedScenario run = run_shed_scenario(std::move(options), now);
  ASSERT_EQ(run.handles[3].state(), JobState::kShedLate);

  const std::string path =
      (std::filesystem::temp_directory_path() / "paradmm_reprojection.json")
          .string();
  trace->write_chrome_trace(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string exported = buffer.str();
  std::filesystem::remove(path);

  EXPECT_NE(exported.find("\"reprojection\""), std::string::npos);
  EXPECT_NE(exported.find("shed-late"), std::string::npos);
  EXPECT_NE(exported.find("\"projected\""), std::string::npos);
  EXPECT_NE(exported.find("\"ahead_seconds\""), std::string::npos);
  EXPECT_NE(exported.find("\"deadline\""), std::string::npos);
}

TEST(Reprojection, CheckIntervalClampForcesAMidSolveBarrier) {
  // The serial whole-solve preemption-latency fix: a job submitted with
  // check_interval <= 0 or >= its budget used to run barrier-free to the
  // end — uncancellable and unpreemptable once started.  The runner now
  // clamps the effective interval to (budget - 1), so every multi-
  // iteration solve hits at least one mid-solve barrier; and because
  // residual checks never alter the trajectory, the clamp is invisible in
  // the numerics.
  const auto run_job = [](int check_interval, std::vector<int>* barriers) {
    FactorGraph graph = make_consensus_graph({1.0, 2.0});
    BatchRunnerOptions options;
    options.threads = 2;
    BatchRunner runner(options);
    SolveJob job;
    job.graph = &graph;
    job.options.max_iterations = 10;  // converges at 28: never stops early
    job.options.check_interval = check_interval;
    job.progress = [barriers](const IterationStatus& status) {
      barriers->push_back(status.iteration);
    };
    JobHandle handle = runner.submit(std::move(job));
    EXPECT_EQ(handle.wait(), JobState::kDone);
    EXPECT_EQ(handle.report().iterations, 10);
    return z_copy(handle.graph());
  };

  // Reference trajectory: a direct whole-budget solve.
  FactorGraph reference = make_consensus_graph({1.0, 2.0});
  SolverOptions reference_options;
  reference_options.max_iterations = 10;
  reference_options.check_interval = 10;
  solve(reference, reference_options);
  const auto expected = z_copy(reference);

  // check_interval = 0 ("never check") now hits the clamped barrier at
  // iteration 9 before finishing at 10.
  std::vector<int> barriers_zero;
  const auto z_zero = run_job(0, &barriers_zero);
  EXPECT_EQ(barriers_zero, (std::vector<int>{9, 10}));

  // check_interval past the budget clamps the same way.
  std::vector<int> barriers_past;
  const auto z_past = run_job(100, &barriers_past);
  EXPECT_EQ(barriers_past, (std::vector<int>{9, 10}));

  // A job already under the clamp is untouched: same barriers as ever.
  std::vector<int> barriers_under;
  const auto z_under = run_job(5, &barriers_under);
  EXPECT_EQ(barriers_under, (std::vector<int>{5, 10}));

  for (const auto* z : {&z_zero, &z_past, &z_under}) {
    ASSERT_EQ(z->size(), expected.size());
    for (std::size_t s = 0; s < expected.size(); ++s) {
      EXPECT_EQ((*z)[s], expected[s]) << "z scalar " << s;
    }
  }
}

TEST(Reprojection, ClampedSerialSolveIsCancellableMidFlight) {
  // The observable payoff of the clamp: a whole-solve job submitted with
  // "no checks" can now notice a cancellation at its clamped mid-solve
  // barrier instead of running its full budget.  The cancel is requested
  // from inside the barrier callback, so the timing is deterministic.
  FactorGraph graph = make_consensus_graph({1.0, 2.0});
  BatchRunnerOptions options;
  options.threads = 1;
  BatchRunner runner(options);
  JobHandle handle;
  std::atomic<bool> handle_ready{false};
  std::atomic<bool> cancelled_at_barrier{false};
  SolveJob job;
  job.graph = &graph;
  job.options.max_iterations = 20;  // converges at 28: no early stop
  job.options.check_interval = 0;   // "never check": clamped to 19
  job.progress = [&](const IterationStatus&) {
    while (!handle_ready.load()) std::this_thread::yield();
    if (!cancelled_at_barrier.exchange(true)) handle.request_cancel();
  };
  handle = runner.submit(std::move(job));
  handle_ready.store(true);
  EXPECT_EQ(handle.wait(), JobState::kCancelled);
  EXPECT_TRUE(cancelled_at_barrier.load());
  EXPECT_EQ(handle.report().iterations, 19);  // stopped at the clamped barrier
}

TEST(Reprojection, RecalibrationLoopSurfacesInRunnerMetrics) {
  // The calibration-loop wiring end to end: with recalibration enabled a
  // fine-grained batch feeds measured barrier timings from governor leases
  // into the shared OnlineRecalibrator, and the runner's metrics surface
  // the same sample/refit counters the recalibrator reports.  (Real clock
  // — sample counts are host-dependent, so only consistency is asserted.)
  BatchRunnerOptions options;
  options.threads = 2;
  options.scheduler.fine_grained_threshold = 1;  // everything forks
  options.recalibration.enabled = true;
  options.recalibration.refit_interval = 5;
  // A baseline with positive per-phase costs: even a single-width sample
  // stream (everything measured at the planned width) re-fits through the
  // rescale fallback, and the live profile is saveable from the start.
  options.recalibration.baseline.pool_threads = 2;
  for (auto& phase : options.recalibration.baseline.phases) {
    phase.per_element_seconds = 1e-7;
  }
  // Perfect scaling makes the planner fork (the devsim default would keep
  // graphs this small serial, and a serial solve opens no governor lease).
  options.cost_model = make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        std::vector<double> seconds;
        seconds.reserve(widths.size());
        for (const std::size_t width : widths) {
          seconds.push_back(1.0 / static_cast<double>(width));
        }
        return seconds;
      },
      "perfect-scaling");
  BatchRunner runner(options);
  ASSERT_TRUE(runner.recalibrator() != nullptr);

  std::vector<FactorGraph> graphs;
  for (int i = 0; i < 4; ++i) {
    graphs.push_back(make_consensus_graph({1.0, 2.0, 3.0, 4.0}));
  }
  std::vector<JobHandle> handles;
  for (auto& graph : graphs) {
    SolveJob job;
    job.graph = &graph;
    job.options = budget(40);
    job.options.check_interval = 10;
    handles.push_back(runner.submit(std::move(job)));
  }
  runner.wait_all();
  for (const auto& handle : handles) {
    EXPECT_EQ(handle.state(), JobState::kDone);
  }

  const RuntimeMetrics metrics = runner.metrics();
  const RecalibrationStats stats = runner.recalibrator()->stats();
  EXPECT_GT(stats.samples, 0u);  // the governed barriers actually fed it
  EXPECT_EQ(metrics.recalibration_samples, stats.samples);
  EXPECT_EQ(metrics.recalibration_refits, stats.refits);
  EXPECT_EQ(metrics.recalibration_drifted, stats.drifted);
  // Whatever was measured, the live profile must stay a valid, saveable
  // calibration (the --refit-out persistence contract).
  const CalibrationProfile live = runner.recalibrator()->current_profile();
  EXPECT_NO_THROW(CalibrationProfile::from_json(live.to_json()));

  // And the off-switch: a default-options runner allocates no recalibrator.
  BatchRunner plain{BatchRunnerOptions{}};
  EXPECT_TRUE(plain.recalibrator() == nullptr);
}

}  // namespace
}  // namespace paradmm::runtime
