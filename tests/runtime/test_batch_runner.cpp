// BatchRunner: concurrent multi-problem solving over the shared pool —
// completion, bit-for-bit agreement with direct solves, cancellation,
// failure capture, fine-grained dispatch, and metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <vector>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "problems/svm/registry.hpp"
#include "runtime/batch_runner.hpp"

namespace paradmm::runtime {
namespace {

svm::SvmJobParams small_svm_params(std::uint64_t data_seed) {
  svm::SvmJobParams params;
  params.points = 16;
  params.dimension = 2;
  params.data_seed = data_seed;
  return params;
}

SolverOptions short_solve_options() {
  SolverOptions options;
  options.max_iterations = 80;
  options.check_interval = 20;
  return options;
}

BatchRunnerOptions with_threads(std::size_t threads) {
  BatchRunnerOptions options;
  options.threads = threads;
  return options;
}

std::vector<double> z_copy(const FactorGraph& graph) {
  const auto z = graph.z_values();
  return {z.begin(), z.end()};
}

/// A PO whose apply always throws (failure-path coverage).
class ThrowingProx final : public ProxOperator {
 public:
  void apply(const ProxContext&) const override {
    throw NumericalError("prox exploded");
  }
  std::string_view name() const override { return "throwing"; }
};

FactorGraph make_consensus_graph(const std::vector<double>& targets) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  for (const double t : targets) {
    graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{t}), {w});
  }
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

TEST(BatchRunner, RunsManySmallJobsToCompletion) {
  BatchRunnerOptions options;
  options.threads = 4;
  BatchRunner runner(options);

  std::vector<JobHandle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(
        runner.submit("svm", small_svm_params(100 + i), short_solve_options()));
  }
  runner.wait_all();

  for (auto& handle : handles) {
    EXPECT_EQ(handle.state(), JobState::kDone);
    EXPECT_GT(handle.report().iterations, 0);
    EXPECT_FALSE(handle.plan().fine_grained());
  }
  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.submitted, 16u);
  EXPECT_EQ(metrics.completed, 16u);
  EXPECT_EQ(metrics.queue_depth, 0u);
}

TEST(BatchRunner, ResultsMatchDirectSolveBitForBit) {
  // Every problem the registry knows, solved through the runner, must equal
  // a plain solve() of an identically-built graph bit for bit.
  BatchRunnerOptions options;
  options.threads = 4;
  BatchRunner runner(options);

  std::vector<JobHandle> handles;
  std::vector<std::vector<double>> direct;
  for (const auto& name : ProblemRegistry::global().names()) {
    BuiltProblem reference = ProblemRegistry::global().build(name);
    solve(*reference.graph, short_solve_options());
    direct.push_back(z_copy(*reference.graph));
    handles.push_back(runner.submit(name, {}, short_solve_options()));
  }
  runner.wait_all();

  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(handles[i].wait(), JobState::kDone) << handles[i].label();
    const auto via_runner = z_copy(handles[i].graph());
    ASSERT_EQ(via_runner.size(), direct[i].size());
    for (std::size_t s = 0; s < via_runner.size(); ++s) {
      EXPECT_EQ(via_runner[s], direct[i][s])
          << handles[i].label() << " z scalar " << s;
    }
  }
}

TEST(BatchRunner, UserOwnedGraphJobs) {
  FactorGraph graph = make_consensus_graph({1.0, 2.0, 9.0});
  BatchRunner runner(with_threads(2));
  SolveJob job;
  job.graph = &graph;
  job.options.max_iterations = 2000;
  job.label = "consensus";
  JobHandle handle = runner.submit(std::move(job));
  EXPECT_EQ(handle.wait(), JobState::kDone);
  EXPECT_TRUE(handle.report().converged);
  EXPECT_NEAR(graph.solution(0)[0], 4.0, 1e-5);
  EXPECT_EQ(handle.label(), "consensus");
}

TEST(BatchRunner, CancellationStopsAtNextCheckInterval) {
  BatchRunner runner(with_threads(2));
  std::atomic<int> progress_calls{0};
  std::atomic<bool> release{false};
  FactorGraph graph = make_consensus_graph({0.0, 100.0});

  SolveJob job;
  job.graph = &graph;
  job.options.max_iterations = 500000000;
  job.options.check_interval = 10;
  // Park the solve inside its first progress callback until the test has
  // requested cancellation, so the cancel is seen at that check interval
  // (a tiny graph would otherwise race to an exact fixed point first).
  job.progress = [&](const IterationStatus&) {
    ++progress_calls;
    while (!release.load()) std::this_thread::yield();
  };
  JobHandle handle = runner.submit(std::move(job));

  while (progress_calls.load() == 0) std::this_thread::yield();
  handle.request_cancel();
  release.store(true);

  EXPECT_EQ(handle.wait(), JobState::kCancelled);
  EXPECT_EQ(handle.report().iterations, 10);
  EXPECT_EQ(progress_calls.load(), 1);
  EXPECT_EQ(runner.metrics().cancelled, 1u);
}

TEST(BatchRunner, CancelledBeforeDispatchNeverRuns) {
  // A runner whose only dispatcher is busy lets us cancel a queued job.
  BatchRunnerOptions options;
  options.threads = 1;
  BatchRunner runner(options);

  std::atomic<int> progress_calls{0};
  std::atomic<bool> release{false};
  FactorGraph blocker = make_consensus_graph({0.0, 1.0});
  SolveJob long_job;
  long_job.graph = &blocker;
  long_job.options.max_iterations = 500000000;
  long_job.options.check_interval = 10;
  long_job.progress = [&](const IterationStatus&) {
    ++progress_calls;
    while (!release.load()) std::this_thread::yield();
  };
  JobHandle first = runner.submit(std::move(long_job));
  while (progress_calls.load() == 0) std::this_thread::yield();

  // The dispatcher is parked inside the first solve, so the second job
  // cannot start before we cancel it.
  FactorGraph graph = make_consensus_graph({5.0});
  SolveJob second_job;
  second_job.graph = &graph;
  JobHandle second = runner.submit(std::move(second_job));
  second.request_cancel();
  first.request_cancel();
  release.store(true);

  EXPECT_EQ(first.wait(), JobState::kCancelled);
  EXPECT_EQ(second.wait(), JobState::kCancelled);
  EXPECT_EQ(second.report().iterations, 0);
}

TEST(BatchRunner, FailedSolveIsReportedNotThrown) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<ThrowingProx>(), {w});
  graph.set_uniform_parameters(1.0, 1.0);

  BatchRunner runner(with_threads(2));
  SolveJob job;
  job.graph = &graph;
  JobHandle handle = runner.submit(std::move(job));

  EXPECT_EQ(handle.wait(), JobState::kFailed);
  EXPECT_NE(handle.error().find("prox exploded"), std::string::npos);
  EXPECT_THROW(handle.report(), PreconditionError);
  EXPECT_EQ(runner.metrics().failed, 1u);
}

TEST(BatchRunner, FailedFineGrainedSolveIsReported) {
  // A throw inside a worker's phase chunk must surface as kFailed, not
  // terminate the process (worker exceptions rethrow through the pool).
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  const auto op = std::make_shared<ThrowingProx>();
  for (int i = 0; i < 64; ++i) graph.add_factor(op, {w});
  graph.set_uniform_parameters(1.0, 1.0);

  BatchRunnerOptions options;
  options.threads = 3;
  options.scheduler.fine_grained_threshold = 1;
  BatchRunner runner(options);
  SolveJob job;
  job.graph = &graph;
  JobHandle handle = runner.submit(std::move(job));

  EXPECT_EQ(handle.wait(), JobState::kFailed);
  EXPECT_NE(handle.error().find("prox exploded"), std::string::npos);
}

TEST(BatchRunner, LargeJobsRunFineGrainedWithIdenticalNumerics) {
  BatchRunnerOptions options;
  options.threads = 3;
  options.scheduler.fine_grained_threshold = 1;  // everything is "large"
  BatchRunner runner(options);

  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());

  JobHandle handle = runner.submit("svm", {}, short_solve_options());
  ASSERT_EQ(handle.wait(), JobState::kDone);
  EXPECT_TRUE(handle.plan().fine_grained());
  // Width caps at the full pool concurrency (all 3 lanes): the idle
  // dispatcher serves fork chunks, so a lone wide job loses no lane.
  EXPECT_EQ(handle.plan().intra_threads, 3u);

  const auto expected = z_copy(*reference.graph);
  const auto actual = z_copy(handle.graph());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }
  EXPECT_EQ(runner.metrics().fine_grained_jobs, 1u);
}

TEST(BatchRunner, DestructorDrainsQueue) {
  std::vector<JobHandle> handles;
  {
    BatchRunner runner(with_threads(2));
    for (int i = 0; i < 8; ++i) {
      handles.push_back(
          runner.submit("svm", small_svm_params(i), short_solve_options()));
    }
    // Runner destroyed with jobs possibly still queued/in flight.
  }
  for (auto& handle : handles) {
    EXPECT_TRUE(is_terminal(handle.state()));
    EXPECT_EQ(handle.state(), JobState::kDone);
  }
}

TEST(BatchRunner, MetricsReportThroughput) {
  BatchRunner runner(with_threads(2));
  for (int i = 0; i < 4; ++i) {
    runner.submit("svm", small_svm_params(i), short_solve_options());
  }
  runner.wait_all();

  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.finished(), 4u);
  EXPECT_GT(metrics.jobs_per_second(), 0.0);
  EXPECT_GT(metrics.mean_job_seconds(), 0.0);
  EXPECT_GE(metrics.max_job_seconds, metrics.min_job_seconds);
  EXPECT_GE(metrics.peak_queue_depth, 1u);
  EXPECT_GT(metrics.worker_utilization(), 0.0);

  std::ostringstream out;
  metrics.print(out);
  EXPECT_NE(out.str().find("jobs/sec"), std::string::npos);
  EXPECT_NE(out.str().find("worker utilization"), std::string::npos);
}

TEST(BatchRunner, ConcurrentFineGrainedJobsOverlapAtPartialWidth) {
  // The tentpole scenario: on a 4-lane pool, two width-2 fine-grained jobs
  // must run at the same time (the PR-1 dispatcher serialized them).  Both
  // jobs park inside their first progress callback; per-width occupancy
  // then shows two width-2 solves running together.
  BatchRunnerOptions options;
  options.threads = 4;
  options.scheduler.fine_grained_threshold = 1;  // everything is "large"
  options.scheduler.max_intra_threads = 2;       // ... at width 2
  BatchRunner runner(options);

  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  const auto park_once = [&](const IterationStatus&) {
    ++parked;
    while (!release.load()) std::this_thread::yield();
  };

  FactorGraph graphs[2] = {make_consensus_graph({1.0, 2.0, 3.0, 4.0}),
                           make_consensus_graph({5.0, 6.0, 7.0, 8.0})};
  std::vector<JobHandle> handles;
  for (auto& graph : graphs) {
    SolveJob job;
    job.graph = &graph;
    job.options.max_iterations = 40;
    job.options.check_interval = 10;
    job.progress = park_once;
    handles.push_back(runner.submit(std::move(job)));
  }

  // Both solves are inside a callback at the same time — two fine-grained
  // jobs are genuinely concurrent.
  while (parked.load() < 2) std::this_thread::yield();
  const RuntimeMetrics during = runner.metrics();
  EXPECT_EQ(during.running_by_width.at(2), 2u);

  release.store(true);
  runner.wait_all();
  for (auto& handle : handles) {
    EXPECT_EQ(handle.state(), JobState::kDone);
    EXPECT_EQ(handle.plan().intra_threads, 2u);
  }
  const RuntimeMetrics after = runner.metrics();
  EXPECT_EQ(after.peak_running_by_width.at(2), 2u);
  EXPECT_EQ(after.finished_by_width.at(2), 2u);
  EXPECT_EQ(after.running_by_width.at(2), 0u);
  EXPECT_EQ(after.fine_grained_jobs, 2u);
}

TEST(BatchRunner, CancelledJobIsDroppedAtDispatchWithoutOccupyingAWorker) {
  // threads == 1 has no pool workers, so the dispatcher runs solves inline
  // and a job submitted while the first is parked stays queued.  Cancelling
  // it must finalize it at dispatch time: it never executes, never counts
  // as ran, and never touches the per-width occupancy gauges.
  BatchRunnerOptions options;
  options.threads = 1;
  BatchRunner runner(options);

  std::atomic<int> progress_calls{0};
  std::atomic<bool> release{false};
  FactorGraph blocker = make_consensus_graph({0.0, 1.0});
  SolveJob long_job;
  long_job.graph = &blocker;
  long_job.options.max_iterations = 40;
  long_job.options.check_interval = 10;
  long_job.progress = [&](const IterationStatus&) {
    ++progress_calls;
    while (!release.load()) std::this_thread::yield();
  };
  JobHandle first = runner.submit(std::move(long_job));
  while (progress_calls.load() == 0) std::this_thread::yield();

  FactorGraph graph = make_consensus_graph({5.0});
  SolveJob second_job;
  second_job.graph = &graph;
  JobHandle second = runner.submit(std::move(second_job));
  second.request_cancel();
  release.store(true);

  EXPECT_EQ(first.wait(), JobState::kDone);
  EXPECT_EQ(second.wait(), JobState::kCancelled);
  EXPECT_EQ(second.report().iterations, 0);
  EXPECT_FALSE(second.plan().fine_grained());

  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.cancelled, 1u);
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.ran_jobs, 1u);  // only the blocker actually solved
  // Occupancy accounting saw exactly one width-1 solve; the dropped job
  // never touched the gauges.
  ASSERT_EQ(metrics.finished_by_width.size(), 1u);
  EXPECT_EQ(metrics.finished_by_width.at(1), 1u);
}

TEST(BatchRunner, CancelAfterCompletionKeepsDoneState) {
  // kDone is terminal: a cancel that loses the race changes nothing.
  BatchRunner runner(with_threads(2));
  JobHandle handle =
      runner.submit("svm", small_svm_params(42), short_solve_options());
  EXPECT_EQ(handle.wait(), JobState::kDone);
  handle.request_cancel();
  EXPECT_EQ(handle.state(), JobState::kDone);
  EXPECT_GT(handle.report().iterations, 0);
  EXPECT_EQ(runner.metrics().cancelled, 0u);
}

TEST(BatchRunner, FineGrainedWidthsAreBitwiseDeterministic) {
  // The same problem solved serial, at width 2, and at width 3 must agree
  // bit for bit: the chunk partition depends only on (count, width) and
  // every phase task owns its output slice, so width never leaks into the
  // numerics.
  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());
  const auto expected = z_copy(*reference.graph);

  for (const std::size_t width : {2u, 3u}) {
    BatchRunnerOptions options;
    options.threads = 4;
    options.scheduler.fine_grained_threshold = 1;
    options.scheduler.max_intra_threads = width;
    BatchRunner runner(options);
    JobHandle handle = runner.submit("svm", {}, short_solve_options());
    ASSERT_EQ(handle.wait(), JobState::kDone);
    ASSERT_EQ(handle.plan().intra_threads, width);
    const auto actual = z_copy(handle.graph());
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t s = 0; s < actual.size(); ++s) {
      ASSERT_EQ(actual[s], expected[s]) << "width " << width << " scalar " << s;
    }
  }
}

TEST(BatchRunner, ThrowingCostModelFailsTheJobNotTheProcess) {
  // plan() runs user code on the dispatcher thread; a throwing cost model
  // must surface as kFailed on that job while the runner keeps serving.
  BatchRunnerOptions options;
  options.threads = 3;  // 2 fine-grained lanes, so the model is consulted
  options.scheduler.fine_grained_threshold = 1;
  options.scheduler.cost_model = make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t>)
          -> std::vector<double> {
        throw NumericalError("cost model exploded");
      });
  BatchRunner runner(options);

  FactorGraph graph = make_consensus_graph({1.0, 2.0});
  SolveJob job;
  job.graph = &graph;
  JobHandle handle = runner.submit(std::move(job));
  EXPECT_EQ(handle.wait(), JobState::kFailed);
  EXPECT_NE(handle.error().find("cost model exploded"), std::string::npos);
  EXPECT_EQ(runner.metrics().failed, 1u);
  EXPECT_EQ(runner.metrics().ran_jobs, 0u);
}

TEST(BatchRunner, TwoLaneRunnerRunsFineGrained) {
  // Regression for the PR 2 tradeoff: with the dispatcher lane serving
  // fork chunks, a 2-lane runner (1 worker + dispatcher) supports
  // fine-grained mode again instead of turning it off entirely — and the
  // width-2 solve still matches the serial trajectory bit for bit.
  BuiltProblem reference = ProblemRegistry::global().build("svm");
  solve(*reference.graph, short_solve_options());

  BatchRunnerOptions options;
  options.threads = 2;
  options.scheduler.fine_grained_threshold = 1;  // everything is "large"
  BatchRunner runner(options);
  JobHandle handle = runner.submit("svm", {}, short_solve_options());
  ASSERT_EQ(handle.wait(), JobState::kDone);
  EXPECT_TRUE(handle.plan().fine_grained());
  EXPECT_EQ(handle.plan().intra_threads, 2u);

  const auto expected = z_copy(*reference.graph);
  const auto actual = z_copy(handle.graph());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }
}

/// Hard equality prox: x <- c on every coordinate.  Two of these with
/// different constants on one variable make an infeasible problem — the
/// primal residual never drops, so the solve runs its full budget unless
/// cancelled.  That gives tests a wide job with a *guaranteed* lifetime.
class ConstantProx final : public ProxOperator {
 public:
  explicit ConstantProx(double value) : value_(value) {}
  void apply(const ProxContext& ctx) const override {
    for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
      for (auto& v : ctx.output(k)) v = value_;
    }
  }
  std::string_view name() const override { return "constant"; }

 private:
  double value_;
};

FactorGraph make_infeasible_graph(std::size_t factors) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  for (std::size_t i = 0; i < factors; ++i) {
    graph.add_factor(std::make_shared<ConstantProx>(i % 2 ? 1.0 : 0.0), {w});
  }
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

TEST(BatchRunner, HighPrioritySmallJobsFinishBeforeAWideJob) {
  // The acceptance scenario: a wide fine-grained job arrives first and ten
  // small high-priority jobs arrive second; every small job must finish
  // while the wide job is still iterating.  The wide graph is infeasible,
  // so it cannot converge early and vacate its lanes by luck — if the
  // runtime starved the small jobs behind it, the waits below would hang
  // until the (enormous) budget ran out.  Getting there needs the whole
  // tentpole: the priority queue dispatches the smalls ahead of queued
  // work, and the governor shrinks the wide solve so they get lanes.
  BatchRunnerOptions options;
  options.threads = 4;
  options.scheduler.fine_grained_threshold = 1;  // the wide job forks wide
  BatchRunner runner(options);

  constexpr int kWideBudget = 100000000;  // hours of work; cancelled in ms
  FactorGraph wide_graph = make_infeasible_graph(64);
  std::vector<std::unique_ptr<FactorGraph>> small_graphs;
  for (int i = 0; i < 10; ++i) {
    small_graphs.push_back(std::make_unique<FactorGraph>(
        make_consensus_graph({0.0, static_cast<double>(i)})));
  }

  // The wide job parks inside its first progress callback so the ten
  // smalls can all be queued behind it deterministically.
  std::atomic<bool> wide_parked{false};
  std::atomic<bool> release_wide{false};
  SolveJob wide;
  wide.graph = &wide_graph;
  wide.options.max_iterations = kWideBudget;
  wide.options.check_interval = 5;
  wide.progress = [&](const IterationStatus&) {
    if (!wide_parked.exchange(true)) {
      while (!release_wide.load()) std::this_thread::yield();
    }
  };
  JobHandle wide_handle = runner.submit(std::move(wide));
  while (!wide_parked.load()) std::this_thread::yield();

  std::vector<JobHandle> small_handles;
  for (auto& graph : small_graphs) {
    SolveJob job;
    job.graph = graph.get();
    job.options.max_iterations = 2000;
    job.priority = 10;  // ahead of anything still queued
    small_handles.push_back(runner.submit(std::move(job)));
  }
  release_wide.store(true);

  // All ten smalls complete while the wide job grinds on.
  for (auto& handle : small_handles) {
    EXPECT_EQ(handle.wait(), JobState::kDone);
  }
  EXPECT_FALSE(is_terminal(wide_handle.state()));

  wide_handle.request_cancel();
  EXPECT_EQ(wide_handle.wait(), JobState::kCancelled);
  EXPECT_LT(wide_handle.report().iterations, kWideBudget);
  EXPECT_TRUE(wide_handle.plan().fine_grained());
  // The backlog the smalls created forced the wide solve to give up lanes
  // at least once: ten jobs were waiting the moment it resumed forking.
  EXPECT_GE(runner.metrics().width_shrinks, 1u);
}

TEST(BatchRunner, DeadlineRacingJobBoostsAndMeetsItsDeadline) {
  // The deadline acceptance scenario, fully deterministic on a virtual
  // clock: a fine-grained job planned at width 2 cannot meet its deadline
  // — at width 2 its 100 iterations cost 50 virtual seconds against a
  // deadline of 40.  The governor's projection notices after the first
  // progress barrier and boosts the solve to width 3 (the smallest width
  // projected to make it), after which it finishes at 37.5 and meets the
  // deadline it misses with boosting disabled.  Virtual time advances
  // only in the job's own progress callback — by (iterations per check) /
  // (current fork width) — so wall-clock jitter never enters the test.
  const auto run_scenario = [](bool boost_enabled, double* finished_at,
                               std::size_t* max_width,
                               std::size_t* width_boosts) {
    auto vclock = std::make_shared<std::atomic<double>>(0.0);
    BatchRunnerOptions options;
    options.threads = 4;
    options.scheduler.fine_grained_threshold = 1;
    options.scheduler.max_intra_threads = 2;  // planned width: 2 of 4 lanes
    options.governor.deadline_boost = boost_enabled;
    options.clock = [vclock] { return vclock->load(); };
    BatchRunner runner(options);

    SolverOptions solve_options;
    solve_options.max_iterations = 100;
    solve_options.check_interval = 25;
    solve_options.primal_tolerance = 0.0;  // never converges early
    solve_options.dual_tolerance = 0.0;

    SolveJob job = BatchRunner::make_job("svm", {}, solve_options);
    job.deadline = 40.0;
    // The first callback parks until the handle exists (current_width is
    // read through it); afterwards each check interval advances virtual
    // time in inverse proportion to the width the solve is forking at.
    auto handle_box = std::make_shared<JobHandle>();
    auto handle_ready = std::make_shared<std::atomic<bool>>(false);
    auto widest = std::make_shared<std::atomic<std::size_t>>(0);
    job.progress = [vclock, handle_box, handle_ready,
                    widest](const IterationStatus&) {
      while (!handle_ready->load()) std::this_thread::yield();
      const std::size_t width = std::max<std::size_t>(
          handle_box->current_width(), 1);
      std::size_t seen = widest->load();
      while (width > seen && !widest->compare_exchange_weak(seen, width)) {
      }
      vclock->store(vclock->load() + 25.0 / static_cast<double>(width));
    };
    *handle_box = runner.submit(std::move(job));
    handle_ready->store(true);

    ASSERT_EQ(handle_box->wait(), JobState::kDone);
    EXPECT_EQ(handle_box->plan().intra_threads, 2u);
    *finished_at = handle_box->finished_at();
    *max_width = widest->load();
    *width_boosts = runner.metrics().width_boosts;
    // The job's progress callback captures handle_box, and the handle owns
    // the job control that owns the callback — clear the box to break the
    // cycle (the job is terminal, nothing reads it again).
    *handle_box = JobHandle();
    if (boost_enabled) {
      EXPECT_EQ(runner.metrics().deadlines_met, 1u);
      EXPECT_EQ(runner.metrics().deadlines_missed, 0u);
    } else {
      EXPECT_EQ(runner.metrics().deadlines_met, 0u);
      EXPECT_EQ(runner.metrics().deadlines_missed, 1u);
    }
  };

  double boosted_finish = 0.0, pinned_finish = 0.0;
  std::size_t boosted_width = 0, pinned_width = 0;
  std::size_t boosts = 0, no_boosts = 0;
  run_scenario(true, &boosted_finish, &boosted_width, &boosts);
  run_scenario(false, &pinned_finish, &pinned_width, &no_boosts);

  EXPECT_GE(boosts, 1u);
  EXPECT_GT(boosted_width, 2u);          // claimed lanes above planned
  EXPECT_LE(boosted_finish, 40.0);       // met the deadline...
  EXPECT_EQ(no_boosts, 0u);
  EXPECT_EQ(pinned_width, 2u);
  EXPECT_GT(pinned_finish, 40.0);        // ...that it misses unboosted
}

TEST(BatchRunner, JobArrivingMidSolveOnTheDispatcherLaneStartsWithinOneBarrier) {
  // The preemption acceptance scenario: with the lone worker pinned on a
  // parked job, a backlogged solve lands on the helping dispatcher.  A
  // high-priority job submitted mid-solve must start within one progress
  // barrier — the dispatcher yields the solve back to the ready queue at
  // its next barrier, dispatches the arrival, and resumes the preempted
  // solve afterwards with bitwise-identical results (all trajectory state
  // lives in the graph, so slices continue the uninterrupted solve).
  BatchRunnerOptions options;
  options.threads = 2;  // 1 worker + dispatcher
  BatchRunner runner(options);

  // B1 occupies the lone worker for the whole test.
  std::atomic<bool> b1_parked{false};
  std::atomic<bool> release_b1{false};
  FactorGraph b1_graph = make_consensus_graph({0.0, 1.0});
  SolveJob b1;
  b1.graph = &b1_graph;
  b1.options.max_iterations = 20;
  b1.options.check_interval = 10;
  b1.progress = [&](const IterationStatus&) {
    b1_parked.store(true);
    while (!release_b1.load()) std::this_thread::yield();
  };
  JobHandle h1 = runner.submit(std::move(b1));
  while (!b1_parked.load()) std::this_thread::yield();

  // B2 backlogs onto the helping dispatcher and parks at its first
  // barrier, so the arrival below lands strictly mid-solve.
  std::atomic<int> b2_calls{0};
  std::atomic<bool> b2_hold{true};
  FactorGraph b2_graph = make_consensus_graph({2.0, 9.0});
  SolveJob b2;
  b2.graph = &b2_graph;
  b2.options.max_iterations = 60;
  b2.options.check_interval = 10;
  b2.options.primal_tolerance = 0.0;  // runs its full budget
  b2.options.dual_tolerance = 0.0;
  b2.progress = [&](const IterationStatus&) {
    if (++b2_calls == 1) {
      while (b2_hold.load()) std::this_thread::yield();
    }
  };
  JobHandle h2 = runner.submit(std::move(b2));
  while (b2_calls.load() == 0) std::this_thread::yield();

  std::atomic<int> arrival_saw_b2_calls{-1};
  FactorGraph c_graph = make_consensus_graph({5.0});
  SolveJob arrival;
  arrival.graph = &c_graph;
  arrival.options.max_iterations = 20;
  arrival.options.check_interval = 5;
  arrival.priority = 10;
  arrival.progress = [&](const IterationStatus&) {
    int expected = -1;
    arrival_saw_b2_calls.compare_exchange_strong(expected, b2_calls.load());
  };
  JobHandle hc = runner.submit(std::move(arrival));
  b2_hold.store(false);  // B2's parked barrier returns — and yields

  ASSERT_EQ(hc.wait(), JobState::kDone);
  // The arrival started after at most one further B2 barrier: B2 parked at
  // barrier 1, yielded there, and cannot have run past barrier 2 before
  // the arrival's first progress callback fired.
  EXPECT_LE(arrival_saw_b2_calls.load(), 2);

  release_b1.store(true);
  runner.wait_all();
  EXPECT_EQ(h1.state(), JobState::kDone);
  ASSERT_EQ(h2.state(), JobState::kDone);
  EXPECT_EQ(h2.report().iterations, 60);
  EXPECT_GE(runner.metrics().dispatcher_preemptions, 1u);

  // The preempted-and-resumed solve equals the uninterrupted solve bitwise.
  FactorGraph direct = make_consensus_graph({2.0, 9.0});
  SolverOptions direct_options;
  direct_options.max_iterations = 60;
  direct_options.check_interval = 10;
  direct_options.primal_tolerance = 0.0;
  direct_options.dual_tolerance = 0.0;
  solve(direct, direct_options);
  const auto expected = z_copy(direct);
  const auto actual = z_copy(b2_graph);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s], expected[s]) << "z scalar " << s;
  }
}

TEST(BatchRunner, PreemptedJobCancelledWhileParkedSettlesWithItsPlannedWidth) {
  // Regression test for the plan read-side discipline: a preempted job
  // cancelled while parked in the ready queue is finalized by the
  // DISPATCHER (the cancel-while-queued ran path), with no executing
  // slice in scope — the finalize must read the planned width back from
  // the job under its lock, not from a slice-local that doesn't exist on
  // this path.  Before the fix the width was read from the shared field
  // without the lock; the pinned finished_by_width entry is the
  // observable that catches a garbage or torn read.
  BatchRunnerOptions options;
  options.threads = 2;  // 1 worker + dispatcher
  BatchRunner runner(options);

  // B1 occupies the lone worker.
  std::atomic<bool> b1_parked{false};
  std::atomic<bool> release_b1{false};
  FactorGraph b1_graph = make_consensus_graph({0.0, 1.0});
  SolveJob b1;
  b1.graph = &b1_graph;
  b1.options.max_iterations = 20;
  b1.options.check_interval = 10;
  b1.progress = [&](const IterationStatus&) {
    b1_parked.store(true);
    while (!release_b1.load()) std::this_thread::yield();
  };
  JobHandle h1 = runner.submit(std::move(b1));
  while (!b1_parked.load()) std::this_thread::yield();

  // B2 runs on the helping dispatcher and parks at its first barrier.
  std::atomic<int> b2_calls{0};
  std::atomic<bool> b2_hold{true};
  FactorGraph b2_graph = make_consensus_graph({2.0, 9.0});
  SolveJob b2;
  b2.graph = &b2_graph;
  b2.options.max_iterations = 60;
  b2.options.check_interval = 10;
  b2.options.primal_tolerance = 0.0;
  b2.options.dual_tolerance = 0.0;
  b2.progress = [&](const IterationStatus&) {
    if (++b2_calls == 1) {
      while (b2_hold.load()) std::this_thread::yield();
    }
  };
  JobHandle h2 = runner.submit(std::move(b2));
  while (b2_calls.load() == 0) std::this_thread::yield();

  // A high-priority arrival forces B2 to yield at its parked barrier.
  // The arrival itself parks on the dispatcher lane, holding open a
  // window in which B2 sits in the ready queue, started and preempted.
  std::atomic<bool> arrival_parked{false};
  std::atomic<bool> release_arrival{false};
  FactorGraph c_graph = make_consensus_graph({5.0});
  SolveJob arrival;
  arrival.graph = &c_graph;
  arrival.options.max_iterations = 20;
  arrival.options.check_interval = 10;
  arrival.priority = 10;
  arrival.progress = [&](const IterationStatus&) {
    arrival_parked.store(true);
    while (!release_arrival.load()) std::this_thread::yield();
  };
  JobHandle hc = runner.submit(std::move(arrival));
  b2_hold.store(false);  // B2's parked barrier returns — and yields
  while (!arrival_parked.load()) std::this_thread::yield();

  // B2 is now parked in the queue mid-solve.  Cancel it there; the
  // dispatcher finalizes it directly once the arrival releases the lane.
  h2.request_cancel();
  release_arrival.store(true);
  release_b1.store(true);
  runner.wait_all();

  EXPECT_EQ(h1.state(), JobState::kDone);
  EXPECT_EQ(hc.state(), JobState::kDone);
  ASSERT_EQ(h2.state(), JobState::kCancelled);
  // It ran exactly the one barrier before yielding: a ran cancellation
  // keeps the partial report.
  EXPECT_EQ(h2.report().iterations, 10);

  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.cancelled, 1u);
  EXPECT_GE(metrics.dispatcher_preemptions, 1u);
  // All three jobs ran and settled at the planned serial width — the
  // preempted cancellation included, whose width reaches the tally via
  // the locked read in finalize.
  EXPECT_EQ(metrics.ran_jobs, 3u);
  ASSERT_EQ(metrics.finished_by_width.count(1), 1u);
  EXPECT_EQ(metrics.finished_by_width.at(1), 3u);
}

TEST(BatchRunner, ToStringCoversAllStates) {
  EXPECT_EQ(to_string(JobState::kQueued), "queued");
  EXPECT_EQ(to_string(JobState::kRunning), "running");
  EXPECT_EQ(to_string(JobState::kDone), "done");
  EXPECT_EQ(to_string(JobState::kCancelled), "cancelled");
  EXPECT_EQ(to_string(JobState::kFailed), "failed");
}

}  // namespace
}  // namespace paradmm::runtime
