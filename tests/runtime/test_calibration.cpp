// Host-calibrated cost models: profile serialization, the calibrator's
// fit, the CostModel implementations, and the default-model resolution.
//
// Everything here is deterministic: the calibrator measures through an
// injected hook that produces synthetic timings from a known ground-truth
// model (so the fit can be checked exactly), profiles are built as plain
// structs, and the environment override is exercised against temp files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/calibration.hpp"
#include "runtime/problem_registry.hpp"
#include "runtime/scheduler.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_consensus_graph(std::size_t factors) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  const auto op =
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0});
  for (std::size_t i = 0; i < factors; ++i) graph.add_factor(op, {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

CalibrationProfile sample_profile() {
  CalibrationProfile profile;
  profile.host = "unit-test";
  profile.pool_threads = 8;
  const char* names[] = {"x", "m", "z", "u", "n"};
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    profile.phases[p].name = names[p];
    profile.phases[p].per_element_seconds = 1e-8 * static_cast<double>(p + 1);
    profile.phases[p].serial_fraction = 0.01 * static_cast<double>(p);
    profile.phases[p].fork_overhead_seconds =
        1e-6 * static_cast<double>(p + 1);
  }
  return profile;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// RAII setter (or, with nullopt, unsetter) for PARADMM_CALIBRATION_FILE
/// that restores the prior value — so no test leaks env state into the
/// rest of the process (the CI calibrate job runs this whole suite with
/// the variable pointing at a fitted profile).
class ScopedCalibrationEnv {
 public:
  explicit ScopedCalibrationEnv(const std::optional<std::string>& value) {
    if (const char* old_value = std::getenv(kCalibrationFileEnv)) {
      old_ = old_value;
    }
    if (value) {
      ::setenv(kCalibrationFileEnv, value->c_str(), 1);
    } else {
      ::unsetenv(kCalibrationFileEnv);
    }
  }
  ~ScopedCalibrationEnv() {
    if (old_) {
      ::setenv(kCalibrationFileEnv, old_->c_str(), 1);
    } else {
      ::unsetenv(kCalibrationFileEnv);
    }
  }

 private:
  std::optional<std::string> old_;
};

TEST(Calibration, PhaseSecondsMatchesTheClosedForm) {
  PhaseCalibration phase;
  phase.name = "x";
  phase.per_element_seconds = 2e-6;
  phase.serial_fraction = 0.25;
  phase.fork_overhead_seconds = 1e-4;
  // 1000 elements at width 4: 1000 * 2e-6 * (0.75/4 + 0.25) + 1e-4 * 3.
  EXPECT_DOUBLE_EQ(phase.seconds(1000, 4),
                   1000.0 * 2e-6 * (0.75 / 4.0 + 0.25) + 3e-4);
  // Width 1 pays no fork overhead and no Amdahl discount.
  EXPECT_DOUBLE_EQ(phase.seconds(1000, 1), 1000.0 * 2e-6);
  // Width 0 is treated as 1 (no division by zero).
  EXPECT_DOUBLE_EQ(phase.seconds(1000, 0), phase.seconds(1000, 1));
}

TEST(Calibration, ProfileJsonRoundTrips) {
  const CalibrationProfile original = sample_profile();
  const CalibrationProfile parsed =
      CalibrationProfile::from_json(original.to_json());
  EXPECT_EQ(parsed.version, CalibrationProfile::kVersion);
  EXPECT_EQ(parsed.host, original.host);
  EXPECT_EQ(parsed.pool_threads, original.pool_threads);
  for (std::size_t p = 0; p < parsed.phases.size(); ++p) {
    EXPECT_EQ(parsed.phases[p].name, original.phases[p].name);
    EXPECT_DOUBLE_EQ(parsed.phases[p].per_element_seconds,
                     original.phases[p].per_element_seconds);
    EXPECT_DOUBLE_EQ(parsed.phases[p].serial_fraction,
                     original.phases[p].serial_fraction);
    EXPECT_DOUBLE_EQ(parsed.phases[p].fork_overhead_seconds,
                     original.phases[p].fork_overhead_seconds);
  }
}

TEST(Calibration, HostStringWithQuotesRoundTrips) {
  // The emitter must escape what the parser unescapes: a host tag with
  // quotes/backslashes produces a valid file, not one load() rejects.
  CalibrationProfile profile = sample_profile();
  profile.host = "my \"big\" box\\lab\n2nd line";
  const CalibrationProfile parsed =
      CalibrationProfile::from_json(profile.to_json());
  EXPECT_EQ(parsed.host, profile.host);
}

TEST(Calibration, ProfileSaveAndLoadRoundTripsThroughDisk) {
  const std::string path = temp_path("paradmm_profile_roundtrip.json");
  const CalibrationProfile original = sample_profile();
  original.save(path);
  const CalibrationProfile loaded = CalibrationProfile::load(path);
  EXPECT_EQ(loaded.pool_threads, original.pool_threads);
  EXPECT_DOUBLE_EQ(loaded.phases[4].per_element_seconds,
                   original.phases[4].per_element_seconds);
  std::filesystem::remove(path);
}

TEST(Calibration, FromJsonRejectsInvalidProfilesLoudly) {
  // A profile that does not parse or validate must throw, never degrade
  // into silently-default width decisions.
  EXPECT_THROW(CalibrationProfile::from_json("not json"), PreconditionError);
  EXPECT_THROW(CalibrationProfile::from_json("{\"version\": 1"),
               PreconditionError);
  // Wrong version.
  CalibrationProfile profile = sample_profile();
  profile.version = 99;
  EXPECT_THROW(CalibrationProfile::from_json(profile.to_json()),
               PreconditionError);
  // Missing fields.
  EXPECT_THROW(CalibrationProfile::from_json("{\"version\": 1}"),
               PreconditionError);
  // Wrong phase count.
  EXPECT_THROW(
      CalibrationProfile::from_json(
          "{\"version\": 1, \"pool_threads\": 4, \"phases\": []}"),
      PreconditionError);
  // Out-of-range constants (serial fraction above 1).
  profile = sample_profile();
  profile.phases[2].serial_fraction = 1.5;
  EXPECT_THROW(CalibrationProfile::from_json(profile.to_json()),
               PreconditionError);
  // Misordered phase names.
  profile = sample_profile();
  profile.phases[0].name = "z";
  EXPECT_THROW(CalibrationProfile::from_json(profile.to_json()),
               PreconditionError);
  // Unreadable path.
  EXPECT_THROW(CalibrationProfile::load(temp_path("paradmm_no_such.json")),
               PreconditionError);
}

TEST(Calibration, HostCalibratorRecoversASyntheticModelExactly) {
  // Ground truth per phase; the injected hook synthesizes the timings the
  // real micro-benchmark would measure if the host behaved exactly like
  // this model.  The least-squares fit must recover every constant.
  const CalibrationProfile truth = sample_profile();

  HostCalibrator::Options options;
  options.pool_threads = 8;  // ladder {1, 2, 4, 8}
  options.iterations = 10;
  options.problems = {"svm", "lasso"};
  options.host = "synthetic";
  options.measure = [&truth](FactorGraph& graph, std::size_t width,
                             int iterations) {
    const std::array<std::size_t, 5> counts = phase_counts(graph);
    std::vector<double> seconds;
    for (std::size_t p = 0; p < counts.size(); ++p) {
      seconds.push_back(truth.phases[p].seconds(counts[p], width) *
                        iterations);
    }
    return seconds;
  };

  const CalibrationProfile fitted = HostCalibrator(options).calibrate();
  EXPECT_EQ(fitted.pool_threads, 8u);
  EXPECT_EQ(fitted.host, "synthetic");
  for (std::size_t p = 0; p < fitted.phases.size(); ++p) {
    EXPECT_EQ(fitted.phases[p].name, truth.phases[p].name);
    EXPECT_NEAR(fitted.phases[p].per_element_seconds,
                truth.phases[p].per_element_seconds,
                1e-9 * truth.phases[p].per_element_seconds + 1e-18)
        << "phase " << p;
    EXPECT_NEAR(fitted.phases[p].serial_fraction,
                truth.phases[p].serial_fraction, 1e-6)
        << "phase " << p;
    EXPECT_NEAR(fitted.phases[p].fork_overhead_seconds,
                truth.phases[p].fork_overhead_seconds, 1e-9)
        << "phase " << p;
  }
}

TEST(Calibration, HostCalibratorValidatesItsInputs) {
  HostCalibrator::Options options;
  options.iterations = 0;
  EXPECT_THROW(HostCalibrator{options}, PreconditionError);
  options = {};
  options.problems.clear();
  EXPECT_THROW(HostCalibrator{options}, PreconditionError);
  options = {};
  options.problems = {"no-such-problem"};
  options.measure = [](FactorGraph&, std::size_t, int) {
    return std::vector<double>(5, 1.0);
  };
  EXPECT_THROW(HostCalibrator(options).calibrate(), PreconditionError);
  // A measurement hook returning the wrong arity is rejected.
  options = {};
  options.problems = {"svm"};
  options.measure = [](FactorGraph&, std::size_t, int) {
    return std::vector<double>(3, 1.0);
  };
  EXPECT_THROW(HostCalibrator(options).calibrate(), PreconditionError);
}

TEST(Calibration, RealMeasurementProducesAUsableProfile) {
  // The default (wall-clock) hook on a tiny budget: not checked for
  // accuracy — timings on a busy CI box are noise — but the fit must stay
  // within its physical ranges and the profile must serialize.
  HostCalibrator::Options options;
  options.pool_threads = 2;
  options.iterations = 2;
  options.warmup_iterations = 0;
  options.problems = {"svm"};
  const CalibrationProfile profile = HostCalibrator(options).calibrate();
  for (const auto& phase : profile.phases) {
    EXPECT_GE(phase.per_element_seconds, 0.0);
    EXPECT_GE(phase.serial_fraction, 0.0);
    EXPECT_LE(phase.serial_fraction, 1.0);
    EXPECT_GE(phase.fork_overhead_seconds, 0.0);
  }
  EXPECT_NO_THROW(CalibrationProfile::from_json(profile.to_json()));
}

TEST(Calibration, CalibratedCostModelPricesWithTheProfile) {
  const CalibrationProfile profile = sample_profile();
  const CostModelPtr model = make_calibrated_cost_model(profile);
  EXPECT_EQ(model->name(), "calibrated");

  const FactorGraph graph = make_consensus_graph(32);
  const std::array<std::size_t, 5> counts = phase_counts(graph);
  EXPECT_EQ(counts[0], graph.num_factors());
  EXPECT_EQ(counts[1], graph.num_edges());
  EXPECT_EQ(counts[2], graph.num_variables());

  const std::vector<std::size_t> ladder = {1, 2, 4};
  const std::vector<double> seconds = model->iteration_seconds(graph, ladder);
  ASSERT_EQ(seconds.size(), ladder.size());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_DOUBLE_EQ(seconds[i], profile.iteration_seconds(counts, ladder[i]))
        << "width " << ladder[i];
  }
}

TEST(Calibration, CalibratedProfileDrivesTheSchedulerKnee) {
  // A near-perfectly-parallel profile keeps the knee search doubling to
  // the cap; a fully serial profile (sigma = 1) keeps the job on one
  // worker despite its size.  Same code path the runtime uses — the
  // profile *is* the width policy.
  const FactorGraph graph = make_consensus_graph(512);

  CalibrationProfile parallel = sample_profile();
  for (auto& phase : parallel.phases) {
    phase.serial_fraction = 0.0;
    phase.fork_overhead_seconds = 0.0;
    phase.per_element_seconds = 1e-6;
  }
  SchedulerOptions options;
  options.fine_grained_threshold = 1;
  options.cost_model = make_calibrated_cost_model(parallel);
  EXPECT_EQ(Scheduler(options, 8).plan(graph).intra_threads, 8u);

  CalibrationProfile serial = parallel;
  for (auto& phase : serial.phases) phase.serial_fraction = 1.0;
  options.cost_model = make_calibrated_cost_model(serial);
  EXPECT_EQ(Scheduler(options, 8).plan(graph).intra_threads, 1u);
}

TEST(Calibration, ModelPhaseLaneSecondsSplitsTheSerialIteration) {
  const FactorGraph graph = make_consensus_graph(16);
  const CostModelPtr model = make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        return std::vector<double>(widths.size(), 10.0);
      });
  // 10 s/iteration serial over five phase barriers.
  EXPECT_DOUBLE_EQ(model_phase_lane_seconds(*model, graph), 2.0);
}

TEST(Calibration, DefaultCostModelHonorsTheEnvOverride) {
  const std::string path = temp_path("paradmm_env_profile.json");
  CalibrationProfile profile = sample_profile();
  profile.host = "env-override";
  profile.save(path);
  {
    ScopedCalibrationEnv env(path);
    const CostModelPtr model = default_cost_model();
    ASSERT_TRUE(model);
    EXPECT_EQ(model->name(), "calibrated");
    // Predictions come from the env profile, not the devsim default.
    const FactorGraph graph = make_consensus_graph(16);
    const std::vector<std::size_t> serial = {1};
    EXPECT_DOUBLE_EQ(
        model->iteration_seconds(graph, serial)[0],
        profile.iteration_seconds(phase_counts(graph), 1));
  }
  std::filesystem::remove(path);
}

TEST(Calibration, BrokenEnvOverrideFailsLoudly) {
  // Pointing PARADMM_CALIBRATION_FILE at a missing or invalid file must
  // throw — an explicitly configured profile silently falling back to the
  // Opteron spec would skew every width decision with no trace.
  {
    ScopedCalibrationEnv env(temp_path("paradmm_missing_profile.json"));
    EXPECT_THROW(default_cost_model(), PreconditionError);
  }
  const std::string path = temp_path("paradmm_invalid_profile.json");
  std::ofstream(path) << "{\"version\": 99}";
  {
    ScopedCalibrationEnv env(path);
    EXPECT_THROW(default_cost_model(), PreconditionError);
  }
  std::filesystem::remove(path);
}

TEST(Calibration, DefaultCostModelFallsBackWithoutAnOverride) {
  // Without the env var the default resolves to the committed profile
  // (when the source-tree file exists) or the devsim spec — either way a
  // usable model with positive predictions.
  ScopedCalibrationEnv env(std::nullopt);
  const CostModelPtr model = default_cost_model();
  ASSERT_TRUE(model);
  const FactorGraph graph = make_consensus_graph(64);
  const std::vector<std::size_t> probe = {1, 2};
  const std::vector<double> seconds = model->iteration_seconds(graph, probe);
  ASSERT_EQ(seconds.size(), 2u);
  EXPECT_GT(seconds[0], 0.0);
  EXPECT_GT(seconds[1], 0.0);
}

TEST(Calibration, OnlineRefitRecoversASyntheticModelExactly) {
  // Ground truth with distinct per-phase constants; samples synthesized
  // from it at three counts x three widths are exactly the Amdahl-plus-
  // overhead form the 3x3 normal-equation re-fit solves, so the fit must
  // recover every constant — from a deliberately wrong baseline.
  CalibrationProfile truth = sample_profile();
  for (std::size_t p = 0; p < truth.phases.size(); ++p) {
    truth.phases[p].per_element_seconds = 1e-6 * static_cast<double>(p + 1);
    truth.phases[p].serial_fraction = 0.1 * static_cast<double>(p + 1);
    truth.phases[p].fork_overhead_seconds = 1e-5 * static_cast<double>(p + 1);
  }

  RecalibrationOptions options;
  options.enabled = true;
  options.refit_interval = 1000;  // manual refit only
  options.drift_tolerance = 0.25;
  options.baseline = sample_profile();  // far from the truth

  OnlineRecalibrator recalibrator(options);
  EXPECT_FALSE(recalibrator.has_refit());
  std::size_t fed = 0;
  for (std::size_t p = 0; p < truth.phases.size(); ++p) {
    for (const std::size_t count : {100u, 200u, 400u}) {
      for (const std::size_t width : {1u, 2u, 4u}) {
        recalibrator.record_sample(p, count, width,
                                   truth.phases[p].seconds(count, width));
        ++fed;
      }
    }
  }
  EXPECT_TRUE(recalibrator.refit_now());
  EXPECT_TRUE(recalibrator.has_refit());

  const CalibrationProfile fitted = recalibrator.current_profile();
  for (std::size_t p = 0; p < fitted.phases.size(); ++p) {
    EXPECT_NEAR(fitted.phases[p].per_element_seconds,
                truth.phases[p].per_element_seconds,
                1e-9 * truth.phases[p].per_element_seconds)
        << "phase " << p;
    EXPECT_NEAR(fitted.phases[p].serial_fraction,
                truth.phases[p].serial_fraction, 1e-6)
        << "phase " << p;
    EXPECT_NEAR(fitted.phases[p].fork_overhead_seconds,
                truth.phases[p].fork_overhead_seconds, 1e-9)
        << "phase " << p;
  }
  const RecalibrationStats stats = recalibrator.stats();
  EXPECT_EQ(stats.samples, fed);
  EXPECT_EQ(stats.refits, 1u);
  // The baseline is a different model entirely: the re-fit must flag the
  // drift it measured against it.
  EXPECT_GT(stats.last_drift, options.drift_tolerance);
  EXPECT_TRUE(stats.drifted);
}

TEST(Calibration, OnlineRefitMeasuresNoDriftAgainstItsOwnBaseline) {
  // Samples synthesized from the baseline itself re-fit to the same
  // model: drift ~0, flag clear.
  RecalibrationOptions options;
  options.enabled = true;
  options.refit_interval = 1000;
  options.baseline = sample_profile();
  OnlineRecalibrator recalibrator(options);
  for (std::size_t p = 0; p < options.baseline.phases.size(); ++p) {
    for (const std::size_t count : {100u, 300u}) {
      for (const std::size_t width : {1u, 2u, 8u}) {
        recalibrator.record_sample(
            p, count, width, options.baseline.phases[p].seconds(count, width));
      }
    }
  }
  recalibrator.refit_now();
  const RecalibrationStats stats = recalibrator.stats();
  EXPECT_LT(stats.last_drift, 1e-6);
  EXPECT_FALSE(stats.drifted);
}

TEST(Calibration, OnlineRefitAutoFitsOnTheSampleInterval) {
  // record_sample() returns true exactly on the refit_interval cadence.
  RecalibrationOptions options;
  options.enabled = true;
  options.refit_interval = 5;
  options.baseline = sample_profile();
  OnlineRecalibrator recalibrator(options);
  const double rate = options.baseline.phases[0].per_element_seconds;
  for (int i = 1; i <= 4; ++i) {
    EXPECT_FALSE(recalibrator.record_sample(0, 100, 1, 100 * rate))
        << "sample " << i;
  }
  EXPECT_TRUE(recalibrator.record_sample(0, 100, 1, 100 * rate));
  EXPECT_TRUE(recalibrator.has_refit());
  EXPECT_EQ(recalibrator.stats().refits, 1u);
}

TEST(Calibration, OnlineRefitWidthOneStreamRescalesOnlyTheScale) {
  // A width-1 stream identifies only the per-element scale: sigma and
  // overhead keep their baseline constants while per_element tracks the
  // observed rate (here 2x the baseline's).
  RecalibrationOptions options;
  options.enabled = true;
  options.refit_interval = 1000;
  options.baseline = sample_profile();
  OnlineRecalibrator recalibrator(options);
  const PhaseCalibration& base = options.baseline.phases[2];
  for (const std::size_t count : {50u, 100u, 200u}) {
    recalibrator.record_sample(
        2, count, 1,
        2.0 * base.per_element_seconds * static_cast<double>(count));
  }
  EXPECT_TRUE(recalibrator.refit_now());
  const PhaseCalibration fitted = recalibrator.current_profile().phases[2];
  EXPECT_NEAR(fitted.per_element_seconds, 2.0 * base.per_element_seconds,
              1e-12);
  EXPECT_DOUBLE_EQ(fitted.serial_fraction, base.serial_fraction);
  EXPECT_DOUBLE_EQ(fitted.fork_overhead_seconds, base.fork_overhead_seconds);
  // Phases with no samples at all keep the baseline untouched.
  EXPECT_DOUBLE_EQ(recalibrator.current_profile().phases[0].per_element_seconds,
                   options.baseline.phases[0].per_element_seconds);
}

TEST(Calibration, OnlineRefitIgnoresInvalidSamplesAndOptions) {
  RecalibrationOptions options;
  options.enabled = true;
  options.baseline = sample_profile();
  OnlineRecalibrator recalibrator(options);
  // Out-of-range phase, zero count/width, non-positive or non-finite
  // seconds: all dropped without counting.
  EXPECT_FALSE(recalibrator.record_sample(5, 100, 1, 1.0));
  EXPECT_FALSE(recalibrator.record_sample(0, 0, 1, 1.0));
  EXPECT_FALSE(recalibrator.record_sample(0, 100, 0, 1.0));
  EXPECT_FALSE(recalibrator.record_sample(0, 100, 1, 0.0));
  EXPECT_FALSE(recalibrator.record_sample(0, 100, 1, -1.0));
  EXPECT_FALSE(recalibrator.record_sample(
      0, 100, 1, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(recalibrator.stats().samples, 0u);

  // Constructor validation: a zero refit interval or a broken drift
  // tolerance is a configuration error, not a silent no-op.
  RecalibrationOptions broken = options;
  broken.refit_interval = 0;
  EXPECT_THROW(OnlineRecalibrator{broken}, PreconditionError);
  broken = options;
  broken.drift_tolerance = -0.5;
  EXPECT_THROW(OnlineRecalibrator{broken}, PreconditionError);
  broken = options;
  broken.drift_tolerance = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(OnlineRecalibrator{broken}, PreconditionError);
}

TEST(Calibration, OnlineCostModelSwitchesAfterTheFirstRefit) {
  // The pricing handover: the wrapped model serves the base prices until
  // the recalibrator's first usable re-fit, then the live profile's.
  RecalibrationOptions options;
  options.enabled = true;
  options.refit_interval = 1000;
  options.baseline = sample_profile();
  auto recalibrator = std::make_shared<OnlineRecalibrator>(options);

  const CostModelPtr base = make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        return std::vector<double>(widths.size(), 123.0);
      },
      "flat");
  const CostModelPtr model = make_online_cost_model(base, recalibrator);
  EXPECT_EQ(model->name(), "online-recalibrated");

  const FactorGraph graph = make_consensus_graph(16);
  const std::vector<std::size_t> ladder = {1, 2};
  EXPECT_DOUBLE_EQ(model->iteration_seconds(graph, ladder)[0], 123.0);

  for (std::size_t p = 0; p < options.baseline.phases.size(); ++p) {
    for (const std::size_t count : {100u, 200u}) {
      for (const std::size_t width : {1u, 4u}) {
        recalibrator->record_sample(
            p, count, width, options.baseline.phases[p].seconds(count, width));
      }
    }
  }
  ASSERT_TRUE(recalibrator->refit_now());
  const CalibrationProfile live = recalibrator->current_profile();
  const std::vector<double> priced = model->iteration_seconds(graph, ladder);
  const std::array<std::size_t, 5> counts = phase_counts(graph);
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_DOUBLE_EQ(priced[i], live.iteration_seconds(counts, ladder[i]))
        << "width " << ladder[i];
  }
}

TEST(Calibration, OnlineRefitProfileRoundTripsThroughDisk) {
  // The --refit-out persistence contract: the live profile is a valid,
  // loadable CalibrationProfile.
  RecalibrationOptions options;
  options.enabled = true;
  options.baseline = sample_profile();
  OnlineRecalibrator recalibrator(options);
  for (const std::size_t width : {1u, 2u, 4u}) {
    for (std::size_t p = 0; p < 5; ++p) {
      recalibrator.record_sample(
          p, 100, width, options.baseline.phases[p].seconds(100, width));
    }
  }
  recalibrator.refit_now();
  const std::string path = temp_path("paradmm_refit_roundtrip.json");
  recalibrator.current_profile().save(path);
  const CalibrationProfile loaded = CalibrationProfile::load(path);
  EXPECT_EQ(loaded.version, CalibrationProfile::kVersion);
  for (std::size_t p = 0; p < loaded.phases.size(); ++p) {
    EXPECT_GT(loaded.phases[p].per_element_seconds, 0.0) << "phase " << p;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace paradmm::runtime
