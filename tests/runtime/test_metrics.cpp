// RuntimeMetrics rendering and MetricsCollector tallies.
//
// The print test pins the column discipline: every counter renders with
// thousands separators and the table sizes each column to its widest cell,
// so counters past four digits (the 100-seed soak regime) can never
// overflow their column or shear the layout — every rendered line has the
// same width.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"

namespace paradmm::runtime {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(RuntimeMetricsPrint, WideCountersKeepEveryLineAligned) {
  RuntimeMetrics metrics;
  metrics.workers = 8;
  metrics.submitted = 1234567;
  metrics.completed = 1230000;
  metrics.cancelled = 4567;
  metrics.failed = 0;
  metrics.fine_grained_jobs = 98765;
  metrics.queue_depth = 0;
  metrics.peak_queue_depth = 54321;
  metrics.elapsed_seconds = 12.5;
  metrics.width_shrinks = 123456;
  metrics.width_grows = 98765;
  metrics.width_boosts = 12345;
  metrics.boosted_lanes = 6;
  metrics.dispatcher_preemptions = 67890;
  metrics.deadlines_met = 11111;
  metrics.deadlines_missed = 22222;
  metrics.learned_phase_seconds = 0.0025;
  metrics.phase_seconds = {1.0, 2.0, 3.0, 4.0, 5.0};
  metrics.running_by_width[16] = 123456;
  metrics.peak_running_by_width[16] = 234567;
  metrics.finished_by_width[16] = 1000000;
  // Latency histograms spanning microseconds to kiloseconds: the
  // percentile rows must hold the same every-line-equal-width contract as
  // every counter row.
  metrics.queue_wait.record(2e-6);
  metrics.queue_wait.record(1234.5);
  metrics.solve_wall.record(0.5);
  metrics.solve_wall.record(3.25);
  metrics.end_to_end.record(2000.0);

  std::ostringstream out;
  metrics.print(out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 20u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines.front().size())
        << "misaligned row: '" << line << "'";
  }

  const std::string text = out.str();
  EXPECT_NE(text.find("1,234,567"), std::string::npos);  // submitted
  EXPECT_NE(text.find("123,456 shrinks"), std::string::npos);
  EXPECT_NE(text.find("12,345 boosts"), std::string::npos);
  EXPECT_NE(text.find("dispatcher preemptions"), std::string::npos);
  EXPECT_NE(text.find("11,111/22,222"), std::string::npos);  // met/missed
  EXPECT_NE(text.find("width 16 jobs"), std::string::npos);
  EXPECT_NE(text.find("1,000,000 finished"), std::string::npos);
  EXPECT_NE(text.find("queue wait p50/p95/p99"), std::string::npos);
  EXPECT_NE(text.find("solve wall p50/p95/p99"), std::string::npos);
  EXPECT_NE(text.find("end-to-end p50/p95/p99"), std::string::npos);
}

TEST(RuntimeMetricsPrint, TenantRowsKeepEveryLineAligned) {
  // Per-tenant rows (and the conditional quota-rejected row) join the
  // table only when named tenants / quota refusals exist — and when they
  // do, they must hold the same every-line-equal-width contract as every
  // other row, including with wide counters and wide tenant names.
  RuntimeMetrics metrics;
  metrics.workers = 4;
  metrics.submitted = 1234567;
  metrics.completed = 1200000;
  metrics.quota_rejected = 34567;
  metrics.elapsed_seconds = 60.0;

  RuntimeMetrics::TenantMetrics& alpha = metrics.tenants["alpha"];
  alpha.submitted = 1000000;
  alpha.completed = 980000;
  alpha.quota_rejected = 20000;
  alpha.end_to_end.record(2e-6);
  alpha.end_to_end.record(1234.5);
  RuntimeMetrics::TenantMetrics& beta =
      metrics.tenants["a-much-longer-tenant-name"];
  beta.submitted = 234567;
  beta.completed = 220000;
  beta.quota_rejected = 14567;
  beta.shed_late = 3;

  std::ostringstream out;
  metrics.print(out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 20u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines.front().size())
        << "misaligned row: '" << line << "'";
  }

  const std::string text = out.str();
  EXPECT_NE(text.find("quota rejected"), std::string::npos);
  EXPECT_NE(text.find("34,567"), std::string::npos);
  EXPECT_NE(text.find("tenant alpha"), std::string::npos);
  EXPECT_NE(text.find("1,000,000 submitted"), std::string::npos);
  EXPECT_NE(text.find("20,000 quota-rejected"), std::string::npos);
  EXPECT_NE(text.find("tenant alpha e2e p50/p95/p99"), std::string::npos);
  EXPECT_NE(text.find("tenant a-much-longer-tenant-name"), std::string::npos);
  // Beta finished nothing that ran: no percentile row for it.
  EXPECT_EQ(text.find("tenant a-much-longer-tenant-name e2e"),
            std::string::npos);
}

TEST(RuntimeMetricsPrint, NoTenantsAndNoQuotaRefusalsRenderNoExtraRows) {
  // The tenant-free table is unchanged by the per-tenant feature: no
  // tenant rows, and no quota-rejected row while the counter is zero.
  RuntimeMetrics metrics;
  metrics.workers = 2;
  metrics.submitted = 5;
  metrics.completed = 5;
  std::ostringstream out;
  metrics.print(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("tenant"), std::string::npos);
  EXPECT_EQ(text.find("quota rejected"), std::string::npos);
}

TEST(MetricsCollector, TalliesPerTenantOutcomesAndLatency) {
  MetricsCollector collector;
  collector.on_submit(1, "alpha");
  collector.on_submit(2, "alpha");
  collector.on_submit(3, "alpha");
  collector.on_submit(1, "beta");
  collector.on_submit(1);  // implicit tenant: no per-tenant tally

  JobFinish done;
  done.outcome = JobState::kDone;
  done.tenant = "alpha";
  done.ran = true;
  done.was_running = true;
  done.wall_seconds = 0.5;
  done.queue_wait_seconds = 0.1;
  done.end_to_end_seconds = 1.0;
  collector.on_finish(done);

  JobFinish quota;
  quota.outcome = JobState::kQuotaRejected;
  quota.tenant = "alpha";
  collector.on_finish(quota);

  JobFinish shed;
  shed.outcome = JobState::kShedLate;
  shed.tenant = "alpha";
  collector.on_finish(shed);

  JobFinish rejected;
  rejected.outcome = JobState::kRejected;
  rejected.tenant = "beta";
  collector.on_finish(rejected);

  JobFinish untagged;
  untagged.outcome = JobState::kDone;
  untagged.ran = true;
  untagged.was_running = true;
  untagged.wall_seconds = 0.25;
  untagged.end_to_end_seconds = 0.5;
  collector.on_finish(untagged);

  const RuntimeMetrics metrics = collector.snapshot(10.0, 2, 0);
  EXPECT_EQ(metrics.quota_rejected, 1u);
  ASSERT_EQ(metrics.tenants.size(), 2u);  // "" never appears
  const RuntimeMetrics::TenantMetrics& alpha = metrics.tenants.at("alpha");
  EXPECT_EQ(alpha.submitted, 3u);
  EXPECT_EQ(alpha.completed, 1u);
  EXPECT_EQ(alpha.quota_rejected, 1u);
  EXPECT_EQ(alpha.shed_late, 1u);
  EXPECT_EQ(alpha.end_to_end.count(), 1u);  // only the kDone job records
  const RuntimeMetrics::TenantMetrics& beta = metrics.tenants.at("beta");
  EXPECT_EQ(beta.submitted, 1u);
  EXPECT_EQ(beta.rejected, 1u);
  EXPECT_EQ(beta.end_to_end.count(), 0u);
  // The global tallies still see every job, tenant-tagged or not.
  EXPECT_EQ(metrics.submitted, 5u);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.end_to_end.count(), 2u);
}

TEST(RuntimeMetricsPrint, EmptyHistogramsRenderNoPercentileRows) {
  RuntimeMetrics metrics;
  metrics.workers = 2;
  std::ostringstream out;
  metrics.print(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("p50/p95/p99"), std::string::npos);
}

TEST(MetricsCollector, TracksPreemptionsDeadlinesAndPhaseSeconds) {
  MetricsCollector collector;
  collector.on_submit(1);
  // A width-2 solve runs, is preempted off the dispatcher lane (releasing
  // its gauge slot), resumes (re-announcing it), and finishes.
  collector.on_start(2);
  collector.on_preempt(2);
  collector.on_start(2);
  collector.on_start(1);

  const std::vector<double> phases_a{0.1, 0.2, 0.3, 0.4, 0.5};
  JobFinish met;
  met.outcome = JobState::kDone;
  met.wall_seconds = 1.5;
  met.threads_used = 2;
  met.ran = true;
  met.was_running = true;
  met.had_deadline = true;
  met.met_deadline = true;
  met.phase_seconds = &phases_a;
  met.queue_wait_seconds = 0.25;
  met.end_to_end_seconds = 2.0;
  collector.on_finish(met);

  const std::vector<double> phases_b{0.5, 0.4, 0.3, 0.2, 0.1};
  JobFinish missed;
  missed.outcome = JobState::kDone;
  missed.wall_seconds = 2.0;
  missed.threads_used = 1;
  missed.ran = true;
  missed.was_running = true;
  missed.had_deadline = true;
  missed.met_deadline = false;
  missed.phase_seconds = &phases_b;
  missed.queue_wait_seconds = 0.5;
  missed.end_to_end_seconds = 4.0;
  collector.on_finish(missed);

  // A cancelled job never counts toward the deadline scoreboard — it
  // delivered nothing to judge against the deadline.
  JobFinish cancelled;
  cancelled.outcome = JobState::kCancelled;
  cancelled.had_deadline = true;
  cancelled.met_deadline = true;
  collector.on_finish(cancelled);

  WidthGovernorStats governor;
  governor.boosts = 3;
  governor.boosted_lanes = 2;
  governor.learned_phase_seconds = 0.25;
  const RuntimeMetrics metrics = collector.snapshot(10.0, 4, 0, governor);

  EXPECT_EQ(metrics.dispatcher_preemptions, 1u);
  EXPECT_EQ(metrics.deadlines_met, 1u);
  EXPECT_EQ(metrics.deadlines_missed, 1u);
  EXPECT_EQ(metrics.width_boosts, 3u);
  EXPECT_EQ(metrics.boosted_lanes, 2u);
  EXPECT_DOUBLE_EQ(metrics.learned_phase_seconds, 0.25);
  ASSERT_EQ(metrics.phase_seconds.size(), 5u);
  EXPECT_DOUBLE_EQ(metrics.phase_seconds[0], 0.6);
  EXPECT_DOUBLE_EQ(metrics.phase_seconds[4], 0.6);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.cancelled, 1u);
  EXPECT_EQ(metrics.ran_jobs, 2u);
  // The gauge balances through the preempt/resume cycle.
  EXPECT_EQ(metrics.running_by_width.at(2), 0u);
  EXPECT_EQ(metrics.running_by_width.at(1), 0u);
  EXPECT_EQ(metrics.finished_by_width.at(2), 1u);
  EXPECT_EQ(metrics.finished_by_width.at(1), 1u);
  // Latency tallies: only completed jobs feed the histograms (the
  // cancelled finish above carried no measurements and must not count).
  EXPECT_EQ(metrics.queue_wait.count(), 2u);
  EXPECT_EQ(metrics.solve_wall.count(), 2u);
  EXPECT_EQ(metrics.end_to_end.count(), 2u);
  EXPECT_GE(metrics.queue_wait.p50(), 0.25);
  EXPECT_GE(metrics.end_to_end.p99(), 4.0);
  EXPECT_LE(metrics.end_to_end.p99(), 4.0 * 1.19);  // within one bucket
}

}  // namespace
}  // namespace paradmm::runtime
