// Deadline-aware admission control: submit-time projection against the
// runner's cost model, the three policies, and their metrics tallies.
//
// Determinism: every scenario runs on a virtual clock (frozen unless a
// test advances it) against an injected constant-cost model, so the
// admission projection is exact arithmetic — 1 second per iteration at
// every width means a job's best case equals its iteration budget, and a
// queued job's load contribution equals its budget too.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "runtime/batch_runner.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {
namespace {

FactorGraph make_consensus_graph(const std::vector<double>& targets) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  for (const double t : targets) {
    graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{t}), {w});
  }
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

std::vector<double> z_copy(const FactorGraph& graph) {
  const auto z = graph.z_values();
  return {z.begin(), z.end()};
}

/// 1 second per ADMM iteration at every width: a job's best-case seconds
/// equal its iteration budget, exactly.
CostModelPtr one_second_per_iteration() {
  return make_function_cost_model(
      [](const FactorGraph&, std::span<const std::size_t> widths) {
        return std::vector<double>(widths.size(), 1.0);
      },
      "one-second-per-iteration");
}

SolverOptions budget(int iterations) {
  SolverOptions options;
  options.max_iterations = iterations;
  options.check_interval = iterations;
  return options;
}

BatchRunnerOptions admission_options(AdmissionPolicy policy,
                                     std::shared_ptr<std::atomic<double>> now) {
  BatchRunnerOptions options;
  options.threads = 2;
  options.admission = policy;
  options.cost_model = one_second_per_iteration();
  options.clock = [now] { return now->load(); };
  return options;
}

TEST(Admission, RejectInfeasibleGoesTerminalAtSubmit) {
  // 10 iterations x 1 s against a 5-second deadline: provably unmeetable
  // even with the whole pool free.  The job must settle at submit —
  // kRejected, never queued, never run.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunner runner(
      admission_options(AdmissionPolicy::kRejectInfeasible, now));

  FactorGraph graph = make_consensus_graph({1.0, 2.0});
  SolveJob job;
  job.graph = &graph;
  job.options = budget(10);
  job.deadline = 5.0;
  JobHandle handle = runner.submit(std::move(job));

  EXPECT_EQ(handle.state(), JobState::kRejected);  // immediately, no wait
  EXPECT_EQ(handle.wait(), JobState::kRejected);
  EXPECT_EQ(handle.admission_verdict(), AdmissionVerdict::kRejected);
  EXPECT_DOUBLE_EQ(handle.finished_at(), 0.0);  // settled on the frozen clock
  EXPECT_EQ(handle.current_width(), 0u);        // no fork ever happened
  // A rejected job has no report to read — asking is a caller error, not
  // a silent empty SolverReport masquerading as solve output.
  EXPECT_THROW(handle.report(), PreconditionError);

  runner.wait_all();  // returns immediately: nothing was admitted
  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.submitted, 1u);
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.degraded, 0u);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.ran_jobs, 0u);
  EXPECT_EQ(metrics.finished(), 1u);  // rejected is a terminal outcome
  // ...but not throughput: nothing was actually served.
  EXPECT_DOUBLE_EQ(metrics.jobs_per_second(), 0.0);
}

TEST(Admission, FeasibleDeadlinesAreAdmittedAndRun) {
  // The same job with 20 seconds of slack passes the projection and runs
  // to completion; a job with no deadline is never even checked.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunner runner(
      admission_options(AdmissionPolicy::kRejectInfeasible, now));

  FactorGraph feasible_graph = make_consensus_graph({1.0, 2.0});
  SolveJob feasible;
  feasible.graph = &feasible_graph;
  feasible.options = budget(10);
  feasible.deadline = 20.0;
  JobHandle feasible_handle = runner.submit(std::move(feasible));

  FactorGraph undeadlined_graph = make_consensus_graph({3.0});
  SolveJob undeadlined;
  undeadlined.graph = &undeadlined_graph;
  undeadlined.options = budget(10);
  JobHandle undeadlined_handle = runner.submit(std::move(undeadlined));

  EXPECT_EQ(feasible_handle.wait(), JobState::kDone);
  EXPECT_EQ(undeadlined_handle.wait(), JobState::kDone);
  EXPECT_EQ(feasible_handle.admission_verdict(), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(undeadlined_handle.admission_verdict(),
            AdmissionVerdict::kAdmitted);
  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.completed, 2u);
}

TEST(Admission, DegradeToBestEffortRunsFlagged) {
  // Under the degrade policy the same provably infeasible job is admitted,
  // runs to completion, and carries the kBestEffort flag (plus the
  // degraded tally) instead of going terminal at submit.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunner runner(
      admission_options(AdmissionPolicy::kDegradeToBestEffort, now));

  FactorGraph graph = make_consensus_graph({1.0, 2.0});
  SolveJob job;
  job.graph = &graph;
  job.options = budget(10);
  job.deadline = 5.0;
  JobHandle handle = runner.submit(std::move(job));

  EXPECT_EQ(handle.wait(), JobState::kDone);
  EXPECT_EQ(handle.admission_verdict(), AdmissionVerdict::kBestEffort);
  EXPECT_EQ(handle.report().iterations, 10);
  const RuntimeMetrics metrics = runner.metrics();
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.degraded, 1u);
  EXPECT_EQ(metrics.completed, 1u);
  // The infeasible deadline still scores on the deadline scoreboard (the
  // clock never moved, so 0 <= 5 actually lands "met" here — the tally
  // just must include the job).
  EXPECT_EQ(metrics.deadlines_met + metrics.deadlines_missed, 1u);
}

TEST(Admission, QueuedLoadAheadTightensTheProjection) {
  // The projection charges work that must dispatch ahead of the new job:
  // with a 30-iteration filler queued at higher priority, a 1-iteration
  // job with 10 seconds of slack — trivially feasible on an empty queue —
  // becomes provably late (30 s of load over 2 lanes + 1 s own floor) and
  // is rejected.  The queue is held deterministic by blocking the only
  // running job inside its progress callback until both submissions
  // settled.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions options =
      admission_options(AdmissionPolicy::kRejectInfeasible, now);
  options.threads = 2;
  BatchRunner runner(options);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<int> blocked{0};

  // Two blockers saturate both dispatch lanes; each parks in its progress
  // callback so nothing queued behind them can start.
  FactorGraph blocker_graphs[2] = {make_consensus_graph({1.0}),
                                   make_consensus_graph({2.0})};
  std::vector<JobHandle> blockers;
  for (auto& graph : blocker_graphs) {
    SolveJob job;
    job.graph = &graph;
    job.options = budget(2);
    job.options.check_interval = 1;
    job.progress = [&](const IterationStatus&) {
      blocked.fetch_add(1);
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return release; });
    };
    blockers.push_back(runner.submit(std::move(job)));
  }
  // Both lanes are actually parked before anything else is submitted.
  while (blocked.load() < 2) std::this_thread::yield();

  // High-priority filler: 30 iterations -> 30 s of estimated serial load
  // that any later, lower-priority submission must be charged for.
  FactorGraph filler_graph = make_consensus_graph({1.0, 2.0, 3.0});
  SolveJob filler;
  filler.graph = &filler_graph;
  filler.options = budget(30);
  filler.priority = 5;
  JobHandle filler_handle = runner.submit(std::move(filler));
  EXPECT_EQ(filler_handle.admission_verdict(), AdmissionVerdict::kAdmitted);

  // Without the filler this would project 0 + 1 = 1 <= 10: feasible.
  // With it: 0 + 30/2 + 1 = 16 > 10 — rejected on queue load alone.
  FactorGraph late_graph = make_consensus_graph({4.0});
  SolveJob late;
  late.graph = &late_graph;
  late.options = budget(1);
  late.deadline = 10.0;
  JobHandle late_handle = runner.submit(std::move(late));
  EXPECT_EQ(late_handle.state(), JobState::kRejected);

  // An identical job minus the queue (deadline far out) is still admitted:
  // the rejection above was the load term, not the job's own floor.
  FactorGraph fine_graph = make_consensus_graph({5.0});
  SolveJob fine;
  fine.graph = &fine_graph;
  fine.options = budget(1);
  fine.deadline = 100.0;
  JobHandle fine_handle = runner.submit(std::move(fine));
  EXPECT_NE(fine_handle.state(), JobState::kRejected);

  {
    std::lock_guard lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  runner.wait_all();
  EXPECT_EQ(runner.metrics().rejected, 1u);
}

TEST(Admission, AcceptPolicyIsBitwiseUnchanged) {
  // The acceptance criterion: the same arrival set — infeasible deadlines
  // included — produces bitwise-identical trajectories under kAccept as
  // under the pre-admission runtime (no model, no policy).  kAccept never
  // rejects, never degrades, and numerics are width-independent, so the
  // z vectors must match scalar for scalar.
  const std::vector<std::vector<double>> arrival_targets = {
      {1.0, 2.0}, {3.0}, {-1.0, 0.5, 2.5}, {4.0, 4.0}};
  const std::vector<double> deadlines = {0.001, kNoDeadline, 0.5, kNoDeadline};

  const auto run_batch = [&](BatchRunnerOptions options) {
    std::vector<FactorGraph> graphs;
    graphs.reserve(arrival_targets.size());
    for (const auto& targets : arrival_targets) {
      graphs.push_back(make_consensus_graph(targets));
    }
    std::vector<JobHandle> handles;
    {
      BatchRunner runner(std::move(options));
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        SolveJob job;
        job.graph = &graphs[i];
        job.options = budget(40);
        job.deadline = deadlines[i];
        handles.push_back(runner.submit(std::move(job)));
      }
      runner.wait_all();
    }
    std::vector<std::vector<double>> results;
    for (auto& handle : handles) {
      EXPECT_EQ(handle.state(), JobState::kDone);
      EXPECT_EQ(handle.admission_verdict(), AdmissionVerdict::kAdmitted);
      results.push_back(z_copy(handle.graph()));
    }
    return results;
  };

  BatchRunnerOptions reference_options;
  reference_options.threads = 2;
  const auto reference = run_batch(reference_options);

  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions accept_options =
      admission_options(AdmissionPolicy::kAccept, now);
  const auto accepted = run_batch(accept_options);

  ASSERT_EQ(accepted.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(accepted[i].size(), reference[i].size()) << "job " << i;
    for (std::size_t s = 0; s < reference[i].size(); ++s) {
      EXPECT_EQ(accepted[i][s], reference[i][s])
          << "job " << i << " z scalar " << s;
    }
  }
}

TEST(Admission, RejectAndDegradeKeepAdmittedResultsBitwise) {
  // Same arrival set under all three policies: the jobs that survive
  // admission produce bitwise-identical results everywhere — admission
  // filters the set, it never touches numerics.
  const std::vector<std::vector<double>> arrival_targets = {
      {1.0, 2.0}, {3.0, -1.0}, {0.5}};
  // Job 1's deadline is provably infeasible (20 iterations x 1 s vs 2 s).
  const std::vector<double> deadlines = {kNoDeadline, 2.0, kNoDeadline};

  // The graphs must outlive the handles: JobHandle::graph() is a borrowed
  // pointer, and the z comparisons below read through it after the run.
  struct PolicyRun {
    std::vector<FactorGraph> graphs;
    std::vector<JobHandle> handles;
  };
  const auto run_policy = [&](AdmissionPolicy policy) {
    auto now = std::make_shared<std::atomic<double>>(0.0);
    PolicyRun run;
    for (const auto& targets : arrival_targets) {
      run.graphs.push_back(make_consensus_graph(targets));
    }
    {
      BatchRunner runner(admission_options(policy, now));
      for (std::size_t i = 0; i < run.graphs.size(); ++i) {
        SolveJob job;
        job.graph = &run.graphs[i];
        job.options = budget(20);
        job.deadline = deadlines[i];
        run.handles.push_back(runner.submit(std::move(job)));
      }
      runner.wait_all();
    }
    return run;
  };

  const auto accept = run_policy(AdmissionPolicy::kAccept);
  const auto reject = run_policy(AdmissionPolicy::kRejectInfeasible);
  const auto degrade = run_policy(AdmissionPolicy::kDegradeToBestEffort);

  EXPECT_EQ(reject.handles[1].state(), JobState::kRejected);
  EXPECT_EQ(degrade.handles[1].state(), JobState::kDone);
  EXPECT_EQ(degrade.handles[1].admission_verdict(),
            AdmissionVerdict::kBestEffort);

  for (std::size_t i = 0; i < accept.handles.size(); ++i) {
    const auto expected = z_copy(accept.handles[i].graph());
    // Every degraded-policy job ran (degrade admits everything) and must
    // match the accept run; the reject run only solved the survivors.
    const auto under_degrade = z_copy(degrade.handles[i].graph());
    ASSERT_EQ(under_degrade.size(), expected.size()) << "job " << i;
    for (std::size_t s = 0; s < expected.size(); ++s) {
      EXPECT_EQ(under_degrade[s], expected[s])
          << "job " << i << " z scalar " << s;
    }
    if (reject.handles[i].state() == JobState::kRejected) continue;
    const auto under_reject = z_copy(reject.handles[i].graph());
    ASSERT_EQ(under_reject.size(), expected.size()) << "job " << i;
    for (std::size_t s = 0; s < expected.size(); ++s) {
      EXPECT_EQ(under_reject[s], expected[s])
          << "job " << i << " z scalar " << s;
    }
  }
}

TEST(Admission, FakeCalibrationProfileDrivesTheVerdict) {
  // End-to-end through the profile path: a fake CalibrationProfile (1
  // second per element, perfectly parallel, no overhead) prices a 5-task
  // consensus graph at 5/w s per iteration — best 2.5 s on the 2-lane
  // ladder, so a 10-iteration job costs 25 s at best.  Deadline 10 is
  // provably infeasible, deadline 100 is fine; exact arithmetic on the
  // frozen virtual clock.
  CalibrationProfile profile;
  profile.pool_threads = 2;
  const char* names[] = {"x", "m", "z", "u", "n"};
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    profile.phases[p].name = names[p];
    profile.phases[p].per_element_seconds = 1.0;
    profile.phases[p].serial_fraction = 0.0;
    profile.phases[p].fork_overhead_seconds = 0.0;
  }

  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunnerOptions options =
      admission_options(AdmissionPolicy::kRejectInfeasible, now);
  options.cost_model = make_calibrated_cost_model(profile);
  BatchRunner runner(options);

  FactorGraph infeasible_graph = make_consensus_graph({1.0});
  SolveJob infeasible;
  infeasible.graph = &infeasible_graph;
  infeasible.options = budget(10);
  infeasible.deadline = 10.0;
  EXPECT_EQ(runner.submit(std::move(infeasible)).state(),
            JobState::kRejected);

  FactorGraph feasible_graph = make_consensus_graph({2.0});
  SolveJob feasible;
  feasible.graph = &feasible_graph;
  feasible.options = budget(10);
  feasible.deadline = 100.0;
  JobHandle handle = runner.submit(std::move(feasible));
  EXPECT_NE(handle.state(), JobState::kRejected);
  EXPECT_EQ(handle.wait(), JobState::kDone);
}

TEST(Admission, SubmitAfterRejectionKeepsServing) {
  // A rejection is a per-job verdict, not a runner state: subsequent
  // feasible submissions dispatch normally.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunner runner(
      admission_options(AdmissionPolicy::kRejectInfeasible, now));

  FactorGraph rejected_graph = make_consensus_graph({1.0});
  SolveJob infeasible;
  infeasible.graph = &rejected_graph;
  infeasible.options = budget(100);
  infeasible.deadline = 1.0;
  EXPECT_EQ(runner.submit(std::move(infeasible)).state(),
            JobState::kRejected);

  FactorGraph ok_graph = make_consensus_graph({2.0});
  SolveJob ok;
  ok.graph = &ok_graph;
  ok.options = budget(10);
  JobHandle handle = runner.submit(std::move(ok));
  EXPECT_EQ(handle.wait(), JobState::kDone);
  EXPECT_EQ(runner.metrics().rejected, 1u);
  EXPECT_EQ(runner.metrics().completed, 1u);
}

TEST(Admission, NaNDeadlineStillRejectedAtTheDoor) {
  // Admission does not weaken the NaN guard.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  BatchRunner runner(
      admission_options(AdmissionPolicy::kRejectInfeasible, now));
  FactorGraph graph = make_consensus_graph({1.0});
  SolveJob job;
  job.graph = &graph;
  job.deadline = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runner.submit(std::move(job)), PreconditionError);
}

}  // namespace
}  // namespace paradmm::runtime
