// Deterministic runtime stress harness (CTest label: stress).
//
// Seeded pseudo-random batches of 50–200 mixed-size jobs — random
// priorities, deadlines, widths, failing solves, cancellations
// mid-flight, and (on a slice of the seeds) continuous-admission
// re-projection shedding or degrading late work — pushed through
// runners of 1..4 lanes with width renegotiation active.  The arrival sets are exactly reproducible from
// the seed; the assertions are the runtime's conservation laws, which
// must hold on every interleaving the OS produces:
//
//   * every JobState is terminal after wait_all (no lost or stuck job),
//   * the per-width occupancy books balance (nothing left "running",
//     finished counts sum to the jobs that actually ran),
//   * outcome tallies sum to the submissions,
//   * the governor's waiting-set bookkeeping returns to zero.
//
// Deadlock shows up as a hang, bounded by the suite's CTest TIMEOUT.
// Scale the soak locally with PARADMM_STRESS_ITERS (default 3 keeps the
// tier-1 run fast; the acceptance soak is 100) and offset the seed range
// with PARADMM_STRESS_SEED.
//
// Every iteration runs with a TraceRecorder attached — the sanitizer soaks
// exercise the trace layer's concurrency for free — and when an iteration
// fails with PARADMM_STRESS_ARTIFACT_DIR set, the seed's full trace and
// metrics table are dumped there (CI uploads them on failure), so a flaky
// interleaving leaves its own timeline behind.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/prox_library.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/trace.hpp"
#include "support/rng.hpp"

namespace paradmm::runtime {
namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// A PO whose apply always throws (failure-path coverage under load).
class ThrowingProx final : public ProxOperator {
 public:
  void apply(const ProxContext&) const override {
    throw NumericalError("stress prox exploded");
  }
  std::string_view name() const override { return "throwing"; }
};

FactorGraph make_consensus_graph(std::size_t factors, bool throwing) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  std::shared_ptr<ProxOperator> op;
  if (throwing) {
    op = std::make_shared<ThrowingProx>();
  } else {
    op = std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0});
  }
  for (std::size_t i = 0; i < factors; ++i) graph.add_factor(op, {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

/// On assertion failure with PARADMM_STRESS_ARTIFACT_DIR set, drops the
/// failing seed's trace and metrics table there for post-mortem.
void dump_failure_artifacts(std::uint64_t seed, const TraceRecorder& trace,
                            const RuntimeMetrics& metrics) {
  const char* dir = std::getenv("PARADMM_STRESS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base =
      std::string(dir) + "/stress_seed_" + std::to_string(seed);
  try {
    trace.write_chrome_trace(base + ".trace.json");
    std::ofstream metrics_out(base + ".metrics.txt");
    metrics.print(metrics_out);
    std::fprintf(stderr,
                 "stress: wrote failure artifacts %s.trace.json / "
                 "%s.metrics.txt\n",
                 base.c_str(), base.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "stress: artifact dump failed: %s\n", error.what());
  }
}

void run_stress_iteration(std::uint64_t seed) {
  SCOPED_TRACE("stress seed " + std::to_string(seed));
  Rng rng(seed);

  BatchRunnerOptions options;
  options.threads = 1 + rng.uniform_index(4);  // 1..4 lanes
  // Elements are 4*factors + 1, so with factors in [1, 40] roughly the
  // top third of the jobs cross into fine-grained mode.
  options.scheduler.fine_grained_threshold = 65;
  if (rng.uniform() < 0.25) options.governor.min_width = 2;
  if (rng.uniform() < 0.1) options.governor.enabled = false;
  // Adaptive-control knobs in the mix: priority aging reorders the ready
  // queue under load, and deadline boosting (on by default, here against
  // the wall clock the 0..50 deadlines below happen to share) lets racing
  // wide solves claim lanes.  Neither may violate any conservation law.
  if (rng.uniform() < 0.5) options.aging_rate = rng.uniform(0.0, 2.0);
  if (rng.uniform() < 0.25) options.governor.deadline_boost = false;
  // Continuous admission in the mix: a random slice of the seeds runs
  // with mid-queue re-projection armed (shed or degrade), pricing with
  // the resolved default cost model against the runner clock the 0..50
  // deadlines below share.  Shedding must obey the same conservation
  // laws as every other terminal outcome.
  const double reprojection_roll = rng.uniform();
  if (reprojection_roll < 0.3) {
    options.reprojection = AdmissionPolicy::kRejectInfeasible;
  } else if (reprojection_roll < 0.6) {
    options.reprojection = AdmissionPolicy::kDegradeToBestEffort;
  }
  if (options.reprojection != AdmissionPolicy::kAccept &&
      rng.uniform() < 0.5) {
    options.reprojection_interval = rng.uniform(0.0, 0.05);
  }
  // Tenancy in the mix: half the seeds define 2..3 weighted tenants,
  // occasionally with max_queued / max_in_flight quotas armed, and tag
  // most jobs with a random tenant (the rest ride the implicit ""
  // tenant).  Weighted-fair dispatch, held-at-quota jobs, and quota
  // refusals must obey the same conservation laws as every other outcome.
  std::vector<std::string> tenant_names;
  std::vector<char> tenant_queue_limited;
  if (rng.uniform() < 0.5) {
    const std::size_t tenant_count = 2 + rng.uniform_index(2);  // 2..3
    for (std::size_t t = 0; t < tenant_count; ++t) {
      TenantQuota quota;
      quota.weight = 0.5 + rng.uniform(0.0, 4.0);
      if (rng.uniform() < 0.3) quota.max_queued = 5 + rng.uniform_index(40);
      if (rng.uniform() < 0.3) quota.max_in_flight = 1 + rng.uniform_index(3);
      const std::string name = "tenant-" + std::to_string(t);
      options.tenants.define(name, quota);
      tenant_names.push_back(name);
      tenant_queue_limited.push_back(quota.max_queued > 0 ? 1 : 0);
    }
  }

  // Every iteration records a full trace: the sanitizer soaks (TSAN,
  // ASan+UBSan) exercise concurrent recording from workers, the
  // dispatcher, and submitters on every seed.
  auto trace = std::make_shared<TraceRecorder>();
  options.trace_sink = trace;
  RuntimeMetrics metrics;

  const std::size_t jobs = 50 + rng.uniform_index(151);  // 50..200
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  std::vector<char> throwing(jobs, 0);
  std::vector<char> deadlined(jobs, 0);
  std::vector<char> quota_limited(jobs, 0);
  graphs.reserve(jobs);

  std::vector<JobHandle> handles;
  std::vector<std::size_t> cancel_now;
  std::vector<std::size_t> cancel_later;
  {
    BatchRunner runner(options);
    for (std::size_t i = 0; i < jobs; ++i) {
      throwing[i] = (i % 13 == 5) ? 1 : 0;
      const std::size_t factors = 1 + rng.uniform_index(40);
      graphs.push_back(std::make_unique<FactorGraph>(
          make_consensus_graph(factors, throwing[i] != 0)));

      SolveJob job;
      job.graph = graphs.back().get();
      job.options.max_iterations = 1 + static_cast<int>(rng.uniform_index(60));
      job.options.check_interval = 5;
      job.priority = static_cast<int>(rng.uniform_index(5));
      if (rng.uniform() < 0.3) {
        job.deadline = rng.uniform(0.0, 50.0);
        deadlined[i] = 1;
      }
      job.label = "stress-" + std::to_string(i);
      if (!tenant_names.empty() && rng.uniform() < 0.8) {
        const std::size_t t = rng.uniform_index(tenant_names.size());
        job.tenant = tenant_names[t];
        quota_limited[i] = tenant_queue_limited[t];
      }

      const double cancel_roll = rng.uniform();
      handles.push_back(runner.submit(std::move(job)));
      if (cancel_roll < 0.1) {
        cancel_now.push_back(i);       // cancel while likely still queued
      } else if (cancel_roll < 0.2) {
        cancel_later.push_back(i);     // cancel mid-flight
      }
      if (cancel_roll < 0.1) handles[i].request_cancel();
    }

    // Mid-flight cancellation wave: the batch is in every state by now —
    // queued, executing, finished.
    std::this_thread::yield();
    for (const std::size_t i : cancel_later) handles[i].request_cancel();

    runner.wait_all();

    // Conservation laws.  Every job terminal, in a state its kind allows.
    // kShedLate is legal only for a finite-deadline job while the shed
    // policy is armed — re-projection must never touch anything else.
    const bool shedding =
        options.reprojection == AdmissionPolicy::kRejectInfeasible;
    for (std::size_t i = 0; i < jobs; ++i) {
      ASSERT_TRUE(is_terminal(handles[i].state())) << handles[i].label();
      const bool shed_ok = shedding && deadlined[i] &&
                           handles[i].state() == JobState::kShedLate;
      // kQuotaRejected is legal only for a job whose tenant carries a
      // max_queued quota — and its evidence must name that tenant.
      const bool quota_ok = quota_limited[i] != 0 &&
                            handles[i].state() == JobState::kQuotaRejected;
      if (quota_ok) {
        const TerminalReason reason = handles[i].terminal_reason();
        EXPECT_EQ(reason.tenant, handles[i].tenant());
        EXPECT_GT(reason.quota_limit, 0u);
        EXPECT_GE(reason.quota_queued, reason.quota_limit);
      }
      if (throwing[i]) {
        EXPECT_TRUE(handles[i].state() == JobState::kFailed ||
                    handles[i].state() == JobState::kCancelled || shed_ok ||
                    quota_ok)
            << handles[i].label() << ": " << to_string(handles[i].state());
      } else {
        EXPECT_TRUE(handles[i].state() == JobState::kDone ||
                    handles[i].state() == JobState::kCancelled || shed_ok ||
                    quota_ok)
            << handles[i].label() << ": " << to_string(handles[i].state());
      }
    }

    metrics = runner.metrics();
    EXPECT_EQ(metrics.submitted, jobs);
    EXPECT_EQ(metrics.completed + metrics.cancelled + metrics.failed +
                  metrics.shed_late + metrics.quota_rejected,
              jobs);
    if (!shedding) {
      EXPECT_EQ(metrics.shed_late, 0u);
    }
    if (tenant_names.empty()) {
      EXPECT_EQ(metrics.quota_rejected, 0u);
      EXPECT_TRUE(metrics.tenants.empty());
    }
    // Per-tenant conservation: each named tenant's submissions all reach
    // exactly one of its outcome tallies.
    for (const auto& [name, tenant] : metrics.tenants) {
      EXPECT_EQ(tenant.submitted,
                tenant.completed + tenant.cancelled + tenant.failed +
                    tenant.rejected + tenant.quota_rejected +
                    tenant.shed_late)
          << "tenant " << name;
    }
    EXPECT_EQ(metrics.rejected, 0u);  // submit-time admission stays off
    EXPECT_EQ(metrics.queue_depth, 0u);
    EXPECT_EQ(metrics.waiting_jobs, 0u);  // governor books balance

    std::size_t still_running = 0;
    std::size_t finished_total = 0;
    for (const auto& [width, count] : metrics.running_by_width) {
      still_running += count;
      EXPECT_LE(width, options.threads) << "width wider than the pool";
    }
    for (const auto& [width, count] : metrics.finished_by_width) {
      finished_total += count;
      EXPECT_LE(width, options.threads) << "width wider than the pool";
    }
    EXPECT_EQ(still_running, 0u);
    EXPECT_EQ(finished_total, metrics.ran_jobs);
    EXPECT_LE(metrics.ran_jobs, jobs);
    // Runner destroyed here with everything already terminal.
  }

  // Handles stay valid and terminal after the runner is gone.
  for (const auto& handle : handles) {
    EXPECT_TRUE(is_terminal(handle.state()));
  }

  if (::testing::Test::HasFailure()) {
    dump_failure_artifacts(seed, *trace, metrics);
  }
}

TEST(StressSchedule, SeededMixedBatchesSettleCleanly) {
  const int iterations = env_int("PARADMM_STRESS_ITERS", 3);
  const int base_seed = env_int("PARADMM_STRESS_SEED", 1);
  for (int i = 0; i < iterations; ++i) {
    run_stress_iteration(static_cast<std::uint64_t>(base_seed + i));
    if (HasFatalFailure()) return;
  }
}

TEST(StressSchedule, SustainedHighPriorityStreamCannotStarveTheTail) {
  // The starvation acceptance scenario, on a virtual clock: a tail of
  // priority-0 jobs is queued first, then an unbounded stream of
  // high-priority arrivals lands on top, one per (seeded) time step.
  // With aging_rate r, a tail job submitted at time s outranks every
  // high-priority-P arrival submitted after s + P / r — so each tail job
  // dispatches within a *bounded aged wait* no matter how long the stream
  // runs.  threads == 1 makes the observed start order exactly the
  // dispatch order; the virtual clock makes it deterministic per seed.
  const int iterations = std::max(1, env_int("PARADMM_STRESS_ITERS", 3) / 3);
  const int base_seed = env_int("PARADMM_STRESS_SEED", 1);
  for (int iter = 0; iter < iterations; ++iter) {
    const auto seed = static_cast<std::uint64_t>(base_seed + iter);
    SCOPED_TRACE("starvation seed " + std::to_string(seed));
    Rng rng(seed);
    const double rate = 0.5 + rng.uniform(0.0, 1.5);
    const int high_priority = 4 + static_cast<int>(rng.uniform_index(5));

    auto vclock = std::make_shared<std::atomic<double>>(0.0);
    BatchRunnerOptions options;
    options.threads = 1;
    options.aging_rate = rate;
    options.clock = [vclock] { return vclock->load(); };
    BatchRunner runner(options);

    // Park the dispatcher so the whole arrival set queues up: the stream
    // then contends against the tail purely through the aged policy.
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FactorGraph blocker_graph = make_consensus_graph(2, false);
    SolveJob blocker;
    blocker.graph = &blocker_graph;
    blocker.options.max_iterations = 20;
    blocker.options.check_interval = 10;
    blocker.progress = [&](const IterationStatus&) {
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    };
    runner.submit(std::move(blocker));
    while (!parked.load()) std::this_thread::yield();

    std::mutex order_mutex;
    std::vector<std::size_t> order;
    std::vector<char> recorded;
    std::vector<std::unique_ptr<FactorGraph>> graphs;
    const auto submit_recorded = [&](std::size_t index, int priority) {
      graphs.push_back(
          std::make_unique<FactorGraph>(make_consensus_graph(1, false)));
      recorded.push_back(0);
      SolveJob job;
      job.graph = graphs.back().get();
      job.options.max_iterations = 10;
      job.options.check_interval = 5;
      job.priority = priority;
      job.progress = [&, index](const IterationStatus&) {
        std::lock_guard lock(order_mutex);
        if (!recorded[index]) {
          recorded[index] = 1;
          order.push_back(index);
        }
      };
      runner.submit(std::move(job));
    };

    const std::size_t tail_jobs = 3 + rng.uniform_index(4);  // 3..6 at t=0
    for (std::size_t i = 0; i < tail_jobs; ++i) {
      submit_recorded(i, /*priority=*/0);
    }
    const std::size_t waves = 40;
    std::vector<double> wave_time(waves);
    double t = 0.0;
    for (std::size_t w = 0; w < waves; ++w) {
      t += 0.25 + rng.uniform(0.0, 1.0);
      wave_time[w] = t;
      vclock->store(t);
      submit_recorded(tail_jobs + w, high_priority);
    }

    release.store(true);
    runner.wait_all();

    ASSERT_EQ(order.size(), tail_jobs + waves);
    std::vector<std::size_t> position(order.size(), 0);
    for (std::size_t p = 0; p < order.size(); ++p) position[order[p]] = p;

    // The aged-wait bound: every tail job (submitted at 0) dispatches
    // before every stream arrival submitted after high_priority / rate.
    // The 0.25 margin keeps the assertion strict under floating-point
    // equality at the boundary.
    const double bound = static_cast<double>(high_priority) / rate + 0.25;
    for (std::size_t i = 0; i < tail_jobs; ++i) {
      for (std::size_t w = 0; w < waves; ++w) {
        if (wave_time[w] <= bound) continue;
        EXPECT_LT(position[i], position[tail_jobs + w])
            << "tail job " << i << " starved past stream arrival " << w
            << " (t=" << wave_time[w] << ", bound=" << bound << ")";
      }
    }
  }
}

TEST(StressSchedule, SkewedTenantWeightsMeetTheFairnessBound) {
  // The weighted-fairness acceptance scenario: N tenants at seeded skewed
  // weights, all backlogged from the start behind a parked dispatcher.
  // Start-time fair queuing promises each backlogged tenant a throughput
  // share proportional to its weight over any dispatch window, to within
  // a constant number of jobs — so over the first W dispatches, tenant t
  // must land W x weight_t / total_weight dispatches, +/- a small
  // tolerance independent of the weights drawn.  threads == 1 makes the
  // observed start order exactly the dispatch order.
  const int iterations = std::max(1, env_int("PARADMM_STRESS_ITERS", 3) / 3);
  const int base_seed = env_int("PARADMM_STRESS_SEED", 1);
  for (int iter = 0; iter < iterations; ++iter) {
    const auto seed = static_cast<std::uint64_t>(base_seed + iter);
    SCOPED_TRACE("fairness seed " + std::to_string(seed));
    Rng rng(seed);

    const std::size_t tenant_count = 2 + rng.uniform_index(3);  // 2..4
    std::vector<double> weights(tenant_count);
    double total_weight = 0.0;
    for (auto& weight : weights) {
      weight = static_cast<double>(1 + rng.uniform_index(5));  // 1..5
      total_weight += weight;
    }

    BatchRunnerOptions options;
    options.threads = 1;
    for (std::size_t t = 0; t < tenant_count; ++t) {
      options.tenants.define("tenant-" + std::to_string(t),
                             {weights[t], 0, 0});
    }
    BatchRunner runner(options);

    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FactorGraph blocker_graph = make_consensus_graph(2, false);
    SolveJob blocker;
    blocker.graph = &blocker_graph;
    blocker.options.max_iterations = 20;
    blocker.options.check_interval = 10;
    blocker.tenant = "blocker";
    blocker.progress = [&](const IterationStatus&) {
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    };
    runner.submit(std::move(blocker));
    while (!parked.load()) std::this_thread::yield();

    // Each tenant submits enough jobs to stay backlogged through the whole
    // measurement window, whatever its share.
    const std::size_t window = 24;
    std::vector<std::size_t> quota_jobs(tenant_count);
    std::size_t total_jobs = 0;
    for (std::size_t t = 0; t < tenant_count; ++t) {
      const double share = weights[t] / total_weight;
      quota_jobs[t] =
          static_cast<std::size_t>(static_cast<double>(window) * share) + 3;
      total_jobs += quota_jobs[t];
    }

    std::mutex order_mutex;
    std::vector<std::size_t> order;  // tenant index per dispatch
    std::vector<std::unique_ptr<FactorGraph>> graphs;
    std::size_t submitted = 0;
    for (std::size_t round = 0; submitted < total_jobs; ++round) {
      for (std::size_t t = 0; t < tenant_count; ++t) {
        if (round >= quota_jobs[t]) continue;
        graphs.push_back(
            std::make_unique<FactorGraph>(make_consensus_graph(1, false)));
        SolveJob job;
        job.graph = graphs.back().get();
        job.options.max_iterations = 10;
        job.options.check_interval = 5;
        job.tenant = "tenant-" + std::to_string(t);
        std::atomic<bool>* seen = new std::atomic<bool>(false);
        job.owner = std::shared_ptr<void>(seen, [](void* p) {
          delete static_cast<std::atomic<bool>*>(p);
        });
        job.progress = [&, t, seen](const IterationStatus&) {
          if (!seen->exchange(true)) {
            std::lock_guard lock(order_mutex);
            order.push_back(t);
          }
        };
        runner.submit(std::move(job));
        ++submitted;
      }
    }

    release.store(true);
    runner.wait_all();

    ASSERT_EQ(order.size(), total_jobs);
    std::vector<double> dispatched(tenant_count, 0.0);
    for (std::size_t p = 0; p < window; ++p) dispatched[order[p]] += 1.0;
    for (std::size_t t = 0; t < tenant_count; ++t) {
      const double expected =
          static_cast<double>(window) * weights[t] / total_weight;
      EXPECT_NEAR(dispatched[t], expected, 2.5)
          << "tenant " << t << " (weight " << weights[t] << " of "
          << total_weight << ") got " << dispatched[t] << " of the first "
          << window << " dispatches, expected ~" << expected;
    }

    // Conservation still holds under the skewed-weight load.
    const RuntimeMetrics metrics = runner.metrics();
    EXPECT_EQ(metrics.submitted, total_jobs + 1);  // + the blocker
    EXPECT_EQ(metrics.completed, total_jobs + 1);
    EXPECT_EQ(metrics.quota_rejected, 0u);
  }
}

TEST(StressSchedule, DestructionUnderLoadDrainsEveryJob) {
  // No wait_all: the destructor alone must drive a full mixed batch —
  // including cancellations — to terminal states before returning.
  Rng rng(0xdeadULL);
  std::vector<std::unique_ptr<FactorGraph>> graphs;
  std::vector<JobHandle> handles;
  {
    BatchRunnerOptions options;
    options.threads = 3;
    options.scheduler.fine_grained_threshold = 65;
    BatchRunner runner(options);
    for (int i = 0; i < 100; ++i) {
      graphs.push_back(std::make_unique<FactorGraph>(
          make_consensus_graph(1 + rng.uniform_index(40), false)));
      SolveJob job;
      job.graph = graphs.back().get();
      job.options.max_iterations = 1 + static_cast<int>(rng.uniform_index(40));
      job.options.check_interval = 5;
      job.priority = static_cast<int>(rng.uniform_index(3));
      handles.push_back(runner.submit(std::move(job)));
      if (i % 7 == 3) handles.back().request_cancel();
    }
  }
  for (const auto& handle : handles) {
    EXPECT_TRUE(is_terminal(handle.state()));
  }
}

}  // namespace
}  // namespace paradmm::runtime
