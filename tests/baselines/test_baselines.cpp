// Baselines: the two-block Algorithm-1 ADMM must agree with the
// factor-graph engine on shared problems, and the naive pointer-chasing
// engine must track the flat engine's trajectory exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/naive_engine.hpp"
#include "baselines/two_block_admm.hpp"
#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "problems/lasso/lasso.hpp"
#include "problems/packing/builder.hpp"

namespace paradmm::baselines {
namespace {

TEST(TwoBlockAdmm, SolvesScalarSoftThreshold) {
  // A = [1], y = [3], lambda = 1: optimum soft(3, 1) = 2.
  lasso::LassoInstance instance;
  instance.a = Matrix{{1.0}};
  instance.y = {3.0};
  instance.truth = {2.0};
  TwoBlockOptions options;
  options.lambda = 1.0;
  const TwoBlockResult result = solve_lasso_two_block(instance, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[0], 2.0, 1e-8);
}

TEST(TwoBlockAdmm, AgreesWithFactorGraphLasso) {
  const auto instance = lasso::make_lasso_instance(50, 10, 3, 0.02, 17);
  TwoBlockOptions two_block;
  two_block.lambda = 0.05;
  two_block.max_iterations = 20000;
  const TwoBlockResult reference = solve_lasso_two_block(instance, two_block);
  ASSERT_TRUE(reference.converged);

  lasso::LassoConfig config;
  config.blocks = 5;
  config.lambda = 0.05;
  lasso::LassoProblem problem(instance, config);
  SolverOptions options;
  options.max_iterations = 30000;
  options.check_interval = 200;
  options.primal_tolerance = 1e-11;
  options.dual_tolerance = 1e-11;
  solve(problem.graph(), options);

  const auto solution = problem.solution();
  for (std::size_t i = 0; i < solution.size(); ++i) {
    EXPECT_NEAR(solution[i], reference.solution[i], 1e-5)
        << "coordinate " << i;
  }
}

TEST(TwoBlockAdmm, KktHoldsAtItsSolution) {
  const auto instance = lasso::make_lasso_instance(40, 8, 2, 0.01, 9);
  TwoBlockOptions options;
  options.lambda = 0.1;
  const TwoBlockResult result = solve_lasso_two_block(instance, options);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(lasso::kkt_violation(instance, options.lambda, result.solution),
            1e-5);
}

FactorGraph make_mixed_graph() {
  Rng rng(5);
  FactorGraph graph;
  std::vector<VariableId> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(graph.add_variable(2));
  const auto equality = std::make_shared<ConsensusEqualityProx>();
  for (int i = 0; i + 1 < 12; ++i) {
    graph.add_factor(equality, {vars[i], vars[i + 1]});
  }
  for (int i = 0; i < 12; ++i) {
    graph.add_factor(std::make_shared<SumSquaresProx>(
                         0.5 + 0.1 * i, rng.gaussian_vector(2)),
                     {vars[i]});
  }
  graph.set_uniform_parameters(0.8, 1.0);
  Rng init(11);
  graph.randomize_state(-1.0, 1.0, init);
  return graph;
}

TEST(NaiveEngine, TracksFlatEngineExactly) {
  FactorGraph flat = make_mixed_graph();
  const NaiveGraphEngine naive(flat);  // snapshot before the flat solve
  // Run the flat engine for a fixed number of iterations, no stopping.
  SolverOptions options;
  options.max_iterations = 73;
  options.check_interval = 73;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  solve(flat, options);

  NaiveGraphEngine& mutable_naive = const_cast<NaiveGraphEngine&>(naive);
  mutable_naive.run(73);

  for (VariableId b = 0; b < flat.num_variables(); ++b) {
    const auto expected = flat.solution(b);
    const auto actual = naive.solution(b);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i]) << "var " << b << " dim " << i;
    }
  }
}

TEST(NaiveEngine, TracksFlatEngineOnPacking) {
  packing::PackingConfig config;
  config.circles = 4;
  config.seed = 8;
  packing::PackingProblem problem(config);
  const NaiveGraphEngine naive(problem.graph());

  SolverOptions options;
  options.max_iterations = 50;
  options.check_interval = 50;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  solve(problem.graph(), options);

  const_cast<NaiveGraphEngine&>(naive).run(50);
  for (VariableId b = 0; b < problem.graph().num_variables(); ++b) {
    const auto expected = problem.graph().solution(b);
    const auto actual = naive.solution(b);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i]) << "var " << b << " dim " << i;
    }
  }
}

TEST(NaiveEngine, RejectsBadVariableId) {
  FactorGraph graph = make_mixed_graph();
  const NaiveGraphEngine naive(graph);
  EXPECT_THROW(naive.solution(10000), PreconditionError);
}

}  // namespace
}  // namespace paradmm::baselines
