// Shared helpers for the parADMM++ test suites.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "core/prox.hpp"

namespace paradmm::testing {

/// Stand-alone harness to exercise a ProxOperator without a FactorGraph:
/// owns the flat arrays, fabricates a single factor whose edges have the
/// given dims and rhos, and exposes input/output spans.
class ProxHarness {
 public:
  ProxHarness(std::vector<std::uint32_t> dims, std::vector<double> rhos)
      : dims_(std::move(dims)), rhos_(std::move(rhos)) {
    EXPECT_EQ(dims_.size(), rhos_.size());
    offsets_.resize(dims_.size());
    std::uint64_t at = 0;
    for (std::size_t k = 0; k < dims_.size(); ++k) {
      offsets_[k] = at;
      at += dims_[k];
    }
    total_ = at;
    n_.assign(total_, 0.0);
    x_.assign(total_, 0.0);
    vars_.resize(dims_.size());
    std::iota(vars_.begin(), vars_.end(), 0u);
    weights_.assign(dims_.size(), Weight::kStandard);
  }

  /// Input slice (the n message) of local edge k.
  std::span<double> input(std::size_t k) {
    return {n_.data() + offsets_[k], dims_[k]};
  }

  /// Output slice (the x result) of local edge k.
  std::span<const double> output(std::size_t k) const {
    return {x_.data() + offsets_[k], dims_[k]};
  }

  /// Stacked inputs across edges (for comparing with reference minimizers).
  std::vector<double> stacked_input() const { return n_; }
  std::vector<double> stacked_output() const { return x_; }

  std::size_t total_dims() const { return total_; }

  /// Per-scalar rho (edge rho replicated across that edge's dims).
  std::vector<double> scalar_rhos() const {
    std::vector<double> out;
    out.reserve(total_);
    for (std::size_t k = 0; k < dims_.size(); ++k) {
      out.insert(out.end(), dims_[k], rhos_[k]);
    }
    return out;
  }

  Weight weight(std::size_t k) const { return weights_[k]; }

  void run(const ProxOperator& op) {
    GraphSoa soa;
    soa.n = n_.data();
    soa.x = x_.data();
    soa.edge_offset = offsets_.data();
    soa.edge_dim = dims_.data();
    soa.edge_rho = rhos_.data();
    soa.edge_var = vars_.data();
    soa.edge_weight = weights_.data();
    const ProxContext ctx(soa, 0, static_cast<std::uint32_t>(dims_.size()));
    op.apply(ctx);
  }

 private:
  std::vector<std::uint32_t> dims_;
  std::vector<double> rhos_;
  std::vector<std::uint64_t> offsets_;
  std::vector<VariableId> vars_;
  std::vector<Weight> weights_;
  std::vector<double> n_, x_;
  std::uint64_t total_ = 0;
};

/// The prox objective h(s) = f(s) + sum_e rho_e/2 ||s_e - n_e||^2 evaluated
/// on stacked vectors — what the closed forms are checked against.
inline double prox_objective(double f_value, std::span<const double> s,
                             std::span<const double> n,
                             std::span<const double> scalar_rho) {
  double total = f_value;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double d = s[i] - n[i];
    total += 0.5 * scalar_rho[i] * d * d;
  }
  return total;
}

}  // namespace paradmm::testing
