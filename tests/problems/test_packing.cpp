// Circle packing: geometry, the three Appendix-A proximal operators
// (cross-checked against KKT conditions and the generic HalfspaceProx), the
// builder's paper-formula topology, an end-to-end solve, and the
// analytic-vs-extracted cost-model consistency the device simulation rests
// on.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "devsim/cost_model.hpp"
#include "math/minimize.hpp"
#include "problems/packing/builder.hpp"
#include "problems/packing/cost_spec.hpp"
#include "problems/packing/geometry.hpp"
#include "problems/packing/prox_ops.hpp"
#include "test_util.hpp"

namespace paradmm::packing {
namespace {

using paradmm::testing::ProxHarness;

// ---------------------------------------------------------------- geometry

TEST(PackingGeometry, EquilateralTriangleBasics) {
  const Triangle triangle = Triangle::equilateral();
  EXPECT_NEAR(triangle.area(), std::sqrt(3.0) / 4.0, 1e-12);
  EXPECT_TRUE(triangle.contains({0.5, 0.2}));
  EXPECT_FALSE(triangle.contains({0.0, 0.5}));
  EXPECT_FALSE(triangle.contains({1.2, 0.1}));
}

TEST(PackingGeometry, WallsFaceOutward) {
  const Triangle triangle = Triangle::equilateral();
  const Point inside{0.5, 0.25};
  for (const auto& wall : triangle.walls()) {
    EXPECT_LT(wall.violation(inside), 0.0);
    EXPECT_NEAR(std::hypot(wall.normal.x, wall.normal.y), 1.0, 1e-12);
  }
}

TEST(PackingGeometry, ContainsCircleNeedsRadiusClearance) {
  const Triangle triangle = Triangle::equilateral();
  const Point incenter{0.5, std::sqrt(3.0) / 6.0};  // inradius ~0.2887
  EXPECT_TRUE(triangle.contains_circle({incenter, 0.25}));
  EXPECT_FALSE(triangle.contains_circle({incenter, 0.30}));
}

TEST(PackingGeometry, OverlapDepth) {
  EXPECT_DOUBLE_EQ(overlap_depth({{0, 0}, 1.0}, {{3.0, 0}, 1.0}), 0.0);
  EXPECT_NEAR(overlap_depth({{0, 0}, 1.0}, {{1.5, 0}, 1.0}), 0.5, 1e-12);
}

TEST(PackingGeometry, InteriorSamplingStaysInside) {
  const Triangle triangle = Triangle::equilateral();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(triangle.contains(triangle.sample_interior(rng), 1e-12));
  }
}

TEST(PackingGeometry, CoverageOfIncircle) {
  const Triangle triangle = Triangle::equilateral();
  const double inradius = std::sqrt(3.0) / 6.0;
  const std::vector<Circle> circles = {{{0.5, inradius}, inradius}};
  Rng rng(17);
  const double coverage = coverage_fraction(circles, triangle, rng, 40000);
  // pi r^2 / area = pi/(3 sqrt 3) ~ 0.6046.
  EXPECT_NEAR(coverage, 0.6046, 0.02);
  EXPECT_NEAR(area_ratio(circles, triangle), 0.6046, 1e-3);
}

// ------------------------------------------------------------ NoCollision

TEST(NoCollisionProxTest, FeasibleInputIsIdentity) {
  ProxHarness harness({2, 1, 2, 1}, {1.0, 1.0, 1.0, 1.0});
  harness.input(0)[0] = 0.0;
  harness.input(0)[1] = 0.0;
  harness.input(1)[0] = 1.0;
  harness.input(2)[0] = 3.0;
  harness.input(2)[1] = 0.0;
  harness.input(3)[0] = 1.0;
  harness.run(NoCollisionProx{});
  EXPECT_DOUBLE_EQ(harness.output(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(harness.output(2)[0], 3.0);
  EXPECT_DOUBLE_EQ(harness.output(1)[0], 1.0);
}

TEST(NoCollisionProxTest, OverlapResolvedToTangency) {
  ProxHarness harness({2, 1, 2, 1}, {1.0, 1.0, 1.0, 1.0});
  harness.input(0)[0] = 0.0;
  harness.input(0)[1] = 0.0;
  harness.input(1)[0] = 1.0;
  harness.input(2)[0] = 1.0;  // distance 1, radii sum 2 -> gap 1
  harness.input(2)[1] = 0.0;
  harness.input(3)[0] = 1.0;
  harness.run(NoCollisionProx{});
  const double distance = std::hypot(
      harness.output(2)[0] - harness.output(0)[0],
      harness.output(2)[1] - harness.output(0)[1]);
  EXPECT_NEAR(distance, harness.output(1)[0] + harness.output(3)[0], 1e-10);
  // Radii shrink (this is where the appendix's printed sign is wrong).
  EXPECT_LT(harness.output(1)[0], 1.0);
  EXPECT_LT(harness.output(3)[0], 1.0);
  // Centers move apart along the x axis.
  EXPECT_LT(harness.output(0)[0], 0.0);
  EXPECT_GT(harness.output(2)[0], 1.0);
}

TEST(NoCollisionProxTest, KktStationarity) {
  // At an active constraint, rho_k (x_k - n_k) must equal lambda * grad_k g
  // for one shared multiplier lambda, where g = r1 + r2 - ||c1 - c2||.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> rhos = {rng.uniform(0.3, 3.0), rng.uniform(0.3, 3.0),
                                rng.uniform(0.3, 3.0), rng.uniform(0.3, 3.0)};
    ProxHarness harness({2, 1, 2, 1}, rhos);
    harness.input(0)[0] = rng.uniform(-1, 1);
    harness.input(0)[1] = rng.uniform(-1, 1);
    harness.input(1)[0] = rng.uniform(0.5, 2.0);
    harness.input(2)[0] = harness.input(0)[0] + rng.uniform(-0.5, 0.5);
    harness.input(2)[1] = harness.input(0)[1] + rng.uniform(-0.5, 0.5);
    harness.input(3)[0] = rng.uniform(0.5, 2.0);
    harness.run(NoCollisionProx{});

    const double dx = harness.output(2)[0] - harness.output(0)[0];
    const double dy = harness.output(2)[1] - harness.output(0)[1];
    const double distance = std::hypot(dx, dy);
    const double r_sum = harness.output(1)[0] + harness.output(3)[0];
    if (distance >= r_sum + 1e-9) continue;  // inactive: identity case
    ASSERT_NEAR(distance, r_sum, 1e-9);

    // lambda from the r1 block: rho1 (x - n) = -lambda.
    const double lambda = -rhos[1] * (harness.output(1)[0] -
                                      harness.input(1)[0]);
    EXPECT_GE(lambda, -1e-9);
    // Center block: rho_c (x - n) = lambda * (c1 - c2)/||c1 - c2||.
    EXPECT_NEAR(rhos[0] * (harness.output(0)[0] - harness.input(0)[0]),
                lambda * (-dx / distance), 1e-8);
    EXPECT_NEAR(rhos[0] * (harness.output(0)[1] - harness.input(0)[1]),
                lambda * (-dy / distance), 1e-8);
    EXPECT_NEAR(rhos[2] * (harness.output(2)[0] - harness.input(2)[0]),
                lambda * (dx / distance), 1e-8);
    EXPECT_NEAR(rhos[3] * (harness.output(3)[0] - harness.input(3)[0]),
                -lambda, 1e-8);
  }
}

TEST(NoCollisionProxTest, CoincidentCentersSeparateDeterministically) {
  ProxHarness harness({2, 1, 2, 1}, {1.0, 1.0, 1.0, 1.0});
  harness.input(1)[0] = 1.0;
  harness.input(3)[0] = 1.0;
  // Both centers at the origin.
  harness.run(NoCollisionProx{});
  const double distance = std::hypot(
      harness.output(2)[0] - harness.output(0)[0],
      harness.output(2)[1] - harness.output(0)[1]);
  EXPECT_NEAR(distance, harness.output(1)[0] + harness.output(3)[0], 1e-10);
}

// ------------------------------------------------------------------ Wall

TEST(WallProxTest, MatchesGenericHalfspaceProx) {
  // The wall constraint <Q,c> + r <= offset is the halfspace with normal
  // (Qx, Qy, 1) over the stacked (c, r) — WallProx must agree with the
  // generic projection for equal rhos per block.
  const Halfplane wall{{0.6, 0.8}, 0.9};
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const double rho_c = rng.uniform(0.3, 3.0);
    const double rho_r = rng.uniform(0.3, 3.0);
    ProxHarness specialized({2, 1}, {rho_c, rho_r});
    ProxHarness generic({2, 1}, {rho_c, rho_r});
    for (auto* h : {&specialized, &generic}) {
      h->input(0)[0] = specialized.input(0)[0];
      h->input(0)[1] = specialized.input(0)[1];
    }
    const double cx = rng.uniform(-1.0, 2.0);
    const double cy = rng.uniform(-1.0, 2.0);
    const double r = rng.uniform(0.0, 1.0);
    specialized.input(0)[0] = generic.input(0)[0] = cx;
    specialized.input(0)[1] = generic.input(0)[1] = cy;
    specialized.input(1)[0] = generic.input(1)[0] = r;

    specialized.run(WallProx{wall});
    generic.run(HalfspaceProx{{wall.normal.x, wall.normal.y, 1.0},
                              wall.offset});
    EXPECT_NEAR(specialized.output(0)[0], generic.output(0)[0], 1e-10);
    EXPECT_NEAR(specialized.output(0)[1], generic.output(0)[1], 1e-10);
    EXPECT_NEAR(specialized.output(1)[0], generic.output(1)[0], 1e-10);
  }
}

TEST(WallProxTest, RequiresUnitNormal) {
  EXPECT_THROW(WallProx(Halfplane{{2.0, 0.0}, 1.0}), PreconditionError);
}

// ---------------------------------------------------------- RadiusReward

TEST(RadiusRewardProxTest, ClosedFormMatchesGoldenSection) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const double gain = rng.uniform(0.1, 0.9);
    const double rho = rng.uniform(gain + 0.2, 4.0);
    const double n = rng.uniform(-1.0, 2.0);
    ProxHarness harness({1}, {rho});
    harness.input(0)[0] = n;
    harness.run(RadiusRewardProx{gain});
    // Minimize over r >= 0 (the operator enforces nonnegative radii).
    const double numeric = golden_section_minimize(
        [&](double r) {
          return -0.5 * gain * r * r + 0.5 * rho * (r - n) * (r - n);
        },
        0.0, 20.0);
    EXPECT_NEAR(harness.output(0)[0], numeric, 1e-6);
  }
}

TEST(RadiusRewardProxTest, RejectsNonPositiveGain) {
  EXPECT_THROW(RadiusRewardProx{0.0}, PreconditionError);
  EXPECT_THROW(RadiusRewardProx{-0.5}, PreconditionError);
}

// ----------------------------------------------------------------- builder

TEST(PackingBuilder, TopologyMatchesPaperFormula) {
  for (const std::size_t n : {1u, 2u, 5u, 9u}) {
    PackingConfig config;
    config.circles = n;
    const PackingProblem problem(config);
    const auto& graph = problem.graph();
    EXPECT_EQ(graph.num_variables(), 2 * n);
    EXPECT_EQ(graph.num_edges(), 2 * n * n - n + 2 * n * 3);
    EXPECT_EQ(graph.num_factors(), n * (n - 1) / 2 + n + n * 3);
  }
}

TEST(PackingBuilder, RejectsRhoBelowGain) {
  PackingConfig config;
  config.rho = 0.4;
  config.radius_gain = 0.5;
  EXPECT_THROW(PackingProblem{config}, PreconditionError);
}

TEST(PackingBuilder, SolveSmallInstanceIsFeasibleAndCovers) {
  PackingConfig config;
  config.circles = 3;
  config.rho = 1.0;
  config.radius_gain = 0.5;
  config.seed = 42;
  PackingProblem problem(config);

  SolverOptions options;
  options.max_iterations = 20000;
  options.check_interval = 500;
  options.primal_tolerance = 1e-9;
  options.dual_tolerance = 1e-9;
  solve(problem.graph(), options);

  EXPECT_LT(problem.max_overlap(), 5e-3);
  EXPECT_LT(problem.max_wall_violation(), 5e-3);
  for (const auto& circle : problem.circles()) {
    EXPECT_GT(circle.radius, 0.02);
  }
  // Three disks in the unit equilateral triangle cover a decent fraction.
  EXPECT_GT(area_ratio(problem.circles(), config.triangle), 0.25);
}

TEST(PackingBuilder, SvgExportWritesFile) {
  const Triangle triangle = Triangle::equilateral();
  const std::vector<Circle> circles = {{{0.5, 0.3}, 0.2}};
  const std::string path = ::testing::TempDir() + "/packing_test.svg";
  write_svg(circles, triangle, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("<circle"), std::string::npos);
}

// ----------------------------------------------- cost-model consistency

TEST(PackingCostSpec, MatchesExtractionOnSmallGraphs) {
  for (const std::size_t n : {2u, 3u, 6u}) {
    PackingConfig config;
    config.circles = n;
    const PackingProblem problem(config);
    const auto extracted =
        devsim::extract_iteration_costs(problem.graph());
    const auto analytic = packing_iteration_costs(n, 3);

    for (std::size_t p = 0; p < 5; ++p) {
      ASSERT_EQ(analytic.phases[p].count, extracted.phases[p].count)
          << "phase " << p << " count, n=" << n;
      EXPECT_EQ(analytic.phases[p].pattern, extracted.phases[p].pattern);
      for (std::size_t i = 0; i < analytic.phases[p].count; ++i) {
        const auto a = analytic.phases[p].cost_at(i);
        const auto b = extracted.phases[p].cost_at(i);
        ASSERT_DOUBLE_EQ(a.flops, b.flops)
            << "phase " << p << " task " << i << " n=" << n;
        ASSERT_DOUBLE_EQ(a.bytes, b.bytes)
            << "phase " << p << " task " << i << " n=" << n;
        ASSERT_EQ(a.branch_class, b.branch_class)
            << "phase " << p << " task " << i << " n=" << n;
      }
    }
  }
}

TEST(PackingCostSpec, FootprintMatchesExtraction) {
  for (const std::size_t n : {2u, 5u}) {
    PackingConfig config;
    config.circles = n;
    const PackingProblem problem(config);
    const auto extracted = devsim::extract_footprint(problem.graph());
    const auto analytic = packing_footprint(n, 3);
    EXPECT_EQ(analytic.edges, extracted.edges);
    EXPECT_EQ(analytic.edge_scalars, extracted.edge_scalars);
    EXPECT_EQ(analytic.variable_scalars, extracted.variable_scalars);
  }
}

TEST(PackingCostSpec, ElementCountGrowsQuadratically) {
  const auto small = packing_iteration_costs(100).elements();
  const auto large = packing_iteration_costs(200).elements();
  // Edges dominate and scale with N^2: expect close to 4x.
  EXPECT_GT(static_cast<double>(large) / static_cast<double>(small), 3.5);
}

}  // namespace
}  // namespace paradmm::packing
