// MPC: plant linearization, Appendix-B proximal operators, builder
// topology, ADMM-vs-direct-KKT agreement, closed-loop behaviour, and
// cost-model consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "devsim/cost_model.hpp"
#include "problems/mpc/builder.hpp"
#include "problems/mpc/cost_spec.hpp"
#include "test_util.hpp"

namespace paradmm::mpc {
namespace {

using paradmm::testing::ProxHarness;

// ---------------------------------------------------------------- plant

TEST(Pendulum, ModelDimensions) {
  const PendulumModel model = linearized_pendulum();
  EXPECT_EQ(model.a.rows(), 4u);
  EXPECT_EQ(model.a.cols(), 4u);
  EXPECT_EQ(model.b.rows(), 4u);
  EXPECT_EQ(model.b.cols(), 1u);
}

TEST(Pendulum, UprightEquilibriumIsUnstable) {
  // Uncontrolled, a small pole angle must grow.
  const PendulumModel model = linearized_pendulum();
  std::vector<double> state = {0.0, 0.0, 0.01, 0.0};
  for (int t = 0; t < 100; ++t) state = step(model, state, 0.0);
  EXPECT_GT(std::fabs(state[2]), 0.1);
}

TEST(Pendulum, ZeroStateIsFixedPoint) {
  const PendulumModel model = linearized_pendulum();
  const std::vector<double> state = {0.0, 0.0, 0.0, 0.0};
  const auto next = step(model, state, 0.0);
  for (const double v : next) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Pendulum, ForceAcceleratesCart) {
  const PendulumModel model = linearized_pendulum();
  const std::vector<double> state = {0.0, 0.0, 0.0, 0.0};
  const auto next = step(model, state, 1.0);
  EXPECT_GT(next[1], 0.0);   // cart velocity increases
  EXPECT_LT(next[3], 0.0);   // pole reacts opposite
}

// ---------------------------------------------------------------- prox ops

TEST(StageCostProxTest, ClosedForm) {
  ProxHarness harness({5}, {2.0});
  for (int i = 0; i < 5; ++i) harness.input(0)[i] = 1.0;
  StageCostProx op({1.0, 0.5, 0.0, 2.0}, {0.25});
  harness.run(op);
  // x_i = rho / (rho + 2 w_i) with rho = 2.
  EXPECT_NEAR(harness.output(0)[0], 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[2], 1.0, 1e-12);     // zero weight: identity
  EXPECT_NEAR(harness.output(0)[3], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[4], 2.0 / 2.5, 1e-12);
}

TEST(StageCostProxTest, RejectsNegativeWeights) {
  EXPECT_THROW(StageCostProx({-1.0}, {1.0}), PreconditionError);
  EXPECT_THROW(StageCostProx({1.0}, {-1.0}), PreconditionError);
}

TEST(InitialStateProxTest, ClampsStateKeepsInput) {
  ProxHarness harness({5}, {1.0});
  for (int i = 0; i < 5; ++i) harness.input(0)[i] = 9.0;
  InitialStateProx op({1.0, 2.0, 3.0, 4.0});
  harness.run(op);
  EXPECT_DOUBLE_EQ(harness.output(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(harness.output(0)[3], 4.0);
  EXPECT_DOUBLE_EQ(harness.output(0)[4], 9.0);  // input passes through
}

TEST(InitialStateProxTest, SetStateRepoints) {
  ProxHarness harness({5}, {1.0});
  InitialStateProx op({0.0, 0.0, 0.0, 0.0});
  op.set_state({5.0, 6.0, 7.0, 8.0});
  harness.run(op);
  EXPECT_DOUBLE_EQ(harness.output(0)[0], 5.0);
  EXPECT_THROW(op.set_state({1.0}), PreconditionError);
}

TEST(DynamicsProxTest, OutputSatisfiesDynamics) {
  const PendulumModel model = linearized_pendulum();
  const auto op = make_dynamics_prox(model);
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    ProxHarness harness({5, 5}, {rng.uniform(0.5, 2.0),
                                 rng.uniform(0.5, 2.0)});
    for (std::size_t k = 0; k < 2; ++k) {
      for (auto& v : harness.input(k)) v = rng.uniform(-1.0, 1.0);
    }
    harness.run(*op);

    // Verify q(t+1) - q(t) = A q(t) + B u(t) on the outputs.
    std::vector<double> q_t(harness.output(0).begin(),
                            harness.output(0).begin() + 4);
    const double u_t = harness.output(0)[4];
    std::vector<double> delta(4);
    model.a.multiply(q_t, delta);
    for (std::size_t i = 0; i < 4; ++i) {
      const double expected = q_t[i] + delta[i] + model.b(i, 0) * u_t;
      EXPECT_NEAR(harness.output(1)[i], expected, 1e-9);
    }
  }
}

TEST(DynamicsConstraintMatrix, Shape) {
  const Matrix constraint =
      dynamics_constraint_matrix(linearized_pendulum());
  EXPECT_EQ(constraint.rows(), 4u);
  EXPECT_EQ(constraint.cols(), 10u);
  // q_{t+1} block is the identity.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(constraint(r, 5 + r), 1.0);
  }
}

// ---------------------------------------------------------------- builder

TEST(MpcBuilder, TopologyLinearInHorizon) {
  for (const std::size_t k : {1u, 10u, 64u}) {
    MpcConfig config;
    config.horizon = k;
    const MpcProblem problem(config);
    EXPECT_EQ(problem.graph().num_variables(), k + 1);
    EXPECT_EQ(problem.graph().num_factors(), (k + 1) + k + 1);
    EXPECT_EQ(problem.graph().num_edges(), 3 * k + 2);
  }
}

TEST(MpcBuilder, ValidatesConfig) {
  MpcConfig config;
  config.horizon = 0;
  EXPECT_THROW(MpcProblem{config}, PreconditionError);
  config = MpcConfig{};
  config.q_weight = {1.0};
  EXPECT_THROW(MpcProblem{config}, PreconditionError);
}

SolverOptions mpc_solver_options(int iterations) {
  SolverOptions options;
  options.max_iterations = iterations;
  options.check_interval = 200;
  options.primal_tolerance = 1e-10;
  options.dual_tolerance = 1e-10;
  return options;
}

TEST(MpcSolve, MatchesDirectKktSolution) {
  MpcConfig config;
  config.horizon = 12;
  MpcProblem problem(config);
  solve(problem.graph(), mpc_solver_options(60000));

  const auto admm = problem.trajectory();
  const auto direct = solve_mpc_direct(config);
  ASSERT_EQ(admm.size(), direct.size());
  for (std::size_t t = 0; t < admm.size(); ++t) {
    for (std::size_t i = 0; i < kStateDim; ++i) {
      EXPECT_NEAR(admm[t].state[i], direct[t].state[i], 2e-3)
          << "t=" << t << " state " << i;
    }
    EXPECT_NEAR(admm[t].input, direct[t].input, 2e-2) << "t=" << t;
  }
}

TEST(MpcSolve, TrajectoryIsDynamicallyConsistent) {
  MpcConfig config;
  config.horizon = 10;
  MpcProblem problem(config);
  solve(problem.graph(), mpc_solver_options(40000));
  EXPECT_LT(problem.dynamics_violation(), 1e-4);
  const auto points = problem.trajectory();
  for (std::size_t i = 0; i < kStateDim; ++i) {
    EXPECT_NEAR(points[0].state[i], config.initial_state[i], 1e-5);
  }
}

TEST(MpcSolve, ControllerStabilizesPole) {
  // The optimal trajectory must shrink the pole angle relative to its
  // initial perturbation by the end of the horizon.
  MpcConfig config;
  config.horizon = 40;
  MpcProblem problem(config);
  solve(problem.graph(), mpc_solver_options(60000));
  const auto points = problem.trajectory();
  EXPECT_LT(std::fabs(points.back().state[2]),
            0.5 * std::fabs(config.initial_state[2]));
}

TEST(MpcSolve, DirectSolverSatisfiesConstraints) {
  MpcConfig config;
  config.horizon = 8;
  const auto points = solve_mpc_direct(config);
  const PendulumModel model = linearized_pendulum(config.plant);
  for (std::size_t i = 0; i < kStateDim; ++i) {
    EXPECT_NEAR(points[0].state[i], config.initial_state[i], 1e-9);
  }
  std::vector<double> delta(kStateDim);
  for (std::size_t t = 0; t + 1 < points.size(); ++t) {
    model.a.multiply(points[t].state, delta);
    for (std::size_t i = 0; i < kStateDim; ++i) {
      EXPECT_NEAR(points[t + 1].state[i],
                  points[t].state[i] + delta[i] +
                      model.b(i, 0) * points[t].input,
                  1e-9);
    }
  }
}

TEST(MpcSolve, ReSolveAfterStateUpdateConverges) {
  // Real-time loop: solve, move q0, warm-start from the previous state.
  MpcConfig config;
  config.horizon = 10;
  MpcProblem problem(config);
  solve(problem.graph(), mpc_solver_options(40000));
  problem.set_initial_state({0.1, 0.0, -0.05, 0.0});
  const SolverReport second = solve(problem.graph(), mpc_solver_options(40000));
  EXPECT_TRUE(second.converged);
  const auto points = problem.trajectory();
  EXPECT_NEAR(points[0].state[0], 0.1, 1e-5);
  EXPECT_NEAR(points[0].state[2], -0.05, 1e-5);
}

// ----------------------------------------------- cost-model consistency

TEST(MpcCostSpec, MatchesExtractionOnSmallGraphs) {
  for (const std::size_t k : {1u, 4u, 9u}) {
    MpcConfig config;
    config.horizon = k;
    const MpcProblem problem(config);
    const auto extracted = devsim::extract_iteration_costs(problem.graph());
    const auto analytic = mpc_iteration_costs(k);
    for (std::size_t p = 0; p < 5; ++p) {
      ASSERT_EQ(analytic.phases[p].count, extracted.phases[p].count)
          << "phase " << p << " k=" << k;
      for (std::size_t i = 0; i < analytic.phases[p].count; ++i) {
        const auto a = analytic.phases[p].cost_at(i);
        const auto b = extracted.phases[p].cost_at(i);
        ASSERT_DOUBLE_EQ(a.flops, b.flops) << "phase " << p << " task " << i;
        ASSERT_DOUBLE_EQ(a.bytes, b.bytes) << "phase " << p << " task " << i;
        ASSERT_EQ(a.branch_class, b.branch_class)
            << "phase " << p << " task " << i;
      }
    }
  }
}

TEST(MpcCostSpec, FootprintMatchesExtraction) {
  MpcConfig config;
  config.horizon = 7;
  const MpcProblem problem(config);
  const auto extracted = devsim::extract_footprint(problem.graph());
  const auto analytic = mpc_footprint(7);
  EXPECT_EQ(analytic.edges, extracted.edges);
  EXPECT_EQ(analytic.edge_scalars, extracted.edge_scalars);
  EXPECT_EQ(analytic.variable_scalars, extracted.variable_scalars);
}

TEST(MpcCostSpec, ElementCountGrowsLinearly) {
  const auto small = mpc_iteration_costs(1000).elements();
  const auto large = mpc_iteration_costs(2000).elements();
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 2.0,
              0.01);
}

}  // namespace
}  // namespace paradmm::mpc
