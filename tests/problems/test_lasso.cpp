// Lasso on the factor graph: block prox correctness, KKT optimality of the
// solution, sparsity recovery, and block-count invariance.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "problems/lasso/lasso.hpp"
#include "test_util.hpp"

namespace paradmm::lasso {
namespace {

using paradmm::testing::ProxHarness;

SolverOptions lasso_options(int iterations = 20000) {
  SolverOptions options;
  options.max_iterations = iterations;
  options.check_interval = 200;
  options.primal_tolerance = 1e-11;
  options.dual_tolerance = 1e-11;
  return options;
}

TEST(BlockQuadraticProxTest, SolvesNormalEquations) {
  // A = I_2, y = (3, -1), rho = 1: prox = (y + n) / 2.
  Matrix a = Matrix::identity(2);
  ProxHarness harness({2}, {1.0});
  harness.input(0)[0] = 1.0;
  harness.input(0)[1] = 1.0;
  BlockQuadraticProx op(a, {3.0, -1.0}, 1.0);
  harness.run(op);
  EXPECT_NEAR(harness.output(0)[0], 2.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], 0.0, 1e-12);
}

TEST(BlockQuadraticProxTest, RejectsRhoMismatchAtApply) {
  Matrix a = Matrix::identity(2);
  ProxHarness harness({2}, {2.0});  // rho 2, but the op was built for 1
  BlockQuadraticProx op(a, {0.0, 0.0}, 1.0);
  EXPECT_THROW(harness.run(op), InvariantError);
}

TEST(LassoInstanceTest, GeneratorShapes) {
  const LassoInstance instance = make_lasso_instance(40, 10, 3, 0.01, 5);
  EXPECT_EQ(instance.a.rows(), 40u);
  EXPECT_EQ(instance.a.cols(), 10u);
  EXPECT_EQ(instance.y.size(), 40u);
  std::size_t nonzeros = 0;
  for (const double v : instance.truth) nonzeros += v != 0.0;
  EXPECT_EQ(nonzeros, 3u);
}

TEST(LassoSolve, SatisfiesKktConditions) {
  const LassoInstance instance = make_lasso_instance(60, 12, 3, 0.02, 21);
  LassoConfig config;
  config.blocks = 4;
  config.lambda = 0.05;
  LassoProblem problem(instance, config);
  const SolverReport report = solve(problem.graph(), lasso_options());
  EXPECT_TRUE(report.converged);
  EXPECT_LT(kkt_violation(instance, config.lambda, problem.solution()), 1e-4);
}

TEST(LassoSolve, RecoversSupportOnCleanData) {
  const LassoInstance instance = make_lasso_instance(80, 16, 4, 0.0, 33);
  LassoConfig config;
  config.blocks = 4;
  config.lambda = 0.02;
  LassoProblem problem(instance, config);
  solve(problem.graph(), lasso_options());
  const auto solution = problem.solution();
  for (std::size_t i = 0; i < solution.size(); ++i) {
    if (instance.truth[i] != 0.0) {
      EXPECT_GT(std::fabs(solution[i]), 0.5) << "lost spike at " << i;
      EXPECT_GT(solution[i] * instance.truth[i], 0.0) << "sign flip at " << i;
    } else {
      EXPECT_LT(std::fabs(solution[i]), 0.2) << "spurious weight at " << i;
    }
  }
}

TEST(LassoSolve, BlockCountDoesNotChangeTheOptimum) {
  const LassoInstance instance = make_lasso_instance(48, 8, 2, 0.01, 77);
  std::vector<double> reference;
  for (const std::size_t blocks : {1u, 2u, 6u}) {
    LassoConfig config;
    config.blocks = blocks;
    config.lambda = 0.05;
    LassoProblem problem(instance, config);
    solve(problem.graph(), lasso_options());
    const auto solution = problem.solution();
    if (reference.empty()) {
      reference = solution;
      continue;
    }
    for (std::size_t i = 0; i < solution.size(); ++i) {
      EXPECT_NEAR(solution[i], reference[i], 1e-5)
          << "blocks=" << blocks << " coordinate " << i;
    }
  }
}

TEST(LassoSolve, LargeLambdaGivesZero) {
  const LassoInstance instance = make_lasso_instance(30, 6, 2, 0.0, 3);
  LassoConfig config;
  config.lambda = 1e3;
  LassoProblem problem(instance, config);
  solve(problem.graph(), lasso_options());
  for (const double v : problem.solution()) {
    EXPECT_NEAR(v, 0.0, 1e-6);
  }
}

}  // namespace
}  // namespace paradmm::lasso
