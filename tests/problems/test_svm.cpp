// SVM: data generation, the Appendix-C proximal operators (closed forms
// plus KKT checks), builder topology (6N-2 edges), end-to-end training on
// separable data, and cost-model consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "devsim/cost_model.hpp"
#include "math/minimize.hpp"
#include "problems/svm/builder.hpp"
#include "problems/svm/cost_spec.hpp"
#include "test_util.hpp"

namespace paradmm::svm {
namespace {

using paradmm::testing::ProxHarness;

// ------------------------------------------------------------------ data

TEST(SvmData, GeneratorShapesAndLabels) {
  const Dataset dataset = make_gaussian_blobs(100, 3, 4.0, 11);
  EXPECT_EQ(dataset.size(), 100u);
  EXPECT_EQ(dataset.dimension(), 3u);
  int positives = 0;
  for (const int label : dataset.labels) {
    EXPECT_TRUE(label == 1 || label == -1);
    positives += label == 1;
  }
  EXPECT_EQ(positives, 50);
}

TEST(SvmData, SeparatedBlobsAreLinearlySeparableAlongAxis) {
  const Dataset dataset = make_gaussian_blobs(400, 2, 8.0, 5);
  // The generating separator w = (1, 0), b = 0 classifies well.
  const std::vector<double> w = {1.0, 0.0};
  EXPECT_GT(accuracy(dataset, w, 0.0), 0.98);
}

TEST(SvmData, DeterministicPerSeed) {
  const Dataset a = make_gaussian_blobs(50, 2, 3.0, 42);
  const Dataset b = make_gaussian_blobs(50, 2, 3.0, 42);
  EXPECT_EQ(a.points, b.points);
  const Dataset c = make_gaussian_blobs(50, 2, 3.0, 43);
  EXPECT_NE(a.points, c.points);
}

TEST(SvmData, HingeLossZeroForBigMargin) {
  Dataset dataset;
  dataset.points = {{2.0}, {-2.0}};
  dataset.labels = {1, -1};
  const std::vector<double> w = {1.0};
  EXPECT_DOUBLE_EQ(mean_hinge_loss(dataset, w, 0.0), 0.0);
  // Margin exactly at zero: hinge = 1 per point.
  const std::vector<double> zero = {0.0};
  EXPECT_DOUBLE_EQ(mean_hinge_loss(dataset, zero, 0.0), 1.0);
}

// -------------------------------------------------------------- prox ops

TEST(PlaneNormProxTest, ShrinksWKeepsB) {
  ProxHarness harness({3}, {2.0});  // w in R^2, b appended
  harness.input(0)[0] = 1.0;
  harness.input(0)[1] = -4.0;
  harness.input(0)[2] = 0.7;
  harness.run(PlaneNormProx{2, 0.5});
  const double blend = 2.0 / 2.5;
  EXPECT_NEAR(harness.output(0)[0], blend * 1.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], blend * -4.0, 1e-12);
  EXPECT_DOUBLE_EQ(harness.output(0)[2], 0.7);
}

TEST(SlackCostProxTest, SemiLassoClosedForm) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const double lambda = rng.uniform(0.0, 2.0);
    const double rho = rng.uniform(0.2, 4.0);
    const double n = rng.uniform(-2.0, 3.0);
    ProxHarness harness({1}, {rho});
    harness.input(0)[0] = n;
    harness.run(SlackCostProx{lambda});
    const double numeric = golden_section_minimize(
        [&](double xi) {
          return lambda * xi + 0.5 * rho * (xi - n) * (xi - n);
        },
        0.0, 10.0);
    EXPECT_NEAR(harness.output(0)[0], numeric, 1e-6);
    EXPECT_GE(harness.output(0)[0], 0.0);
  }
}

TEST(MarginProxTest, FeasibleInputIsIdentity) {
  ProxHarness harness({3, 1}, {1.0, 1.0});
  // Point (1, 0), label +1; w = (2, 0), b = 0, xi = 0: margin 2 >= 1.
  harness.input(0)[0] = 2.0;
  harness.input(0)[1] = 0.0;
  harness.input(0)[2] = 0.0;
  harness.input(1)[0] = 0.0;
  harness.run(MarginProx{{1.0, 0.0}, 1});
  EXPECT_DOUBLE_EQ(harness.output(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(harness.output(1)[0], 0.0);
}

TEST(MarginProxTest, ViolatedConstraintBecomesTight) {
  ProxHarness harness({3, 1}, {1.5, 0.8});
  harness.input(0)[0] = 0.0;
  harness.input(0)[1] = 0.0;
  harness.input(0)[2] = 0.0;
  harness.input(1)[0] = 0.0;
  const std::vector<double> point = {0.5, -1.0};
  harness.run(MarginProx{point, 1});
  const auto plane = harness.output(0);
  const double xi = harness.output(1)[0];
  const double margin = plane[0] * point[0] + plane[1] * point[1] + plane[2];
  EXPECT_NEAR(margin + xi, 1.0, 1e-10);  // y = +1: y*margin = 1 - xi
  EXPECT_GT(xi, 0.0);
}

TEST(MarginProxTest, KktStationarity) {
  // rho_k (x_k - n_k) = alpha * grad_k(y (w.x + b) + xi) at active
  // constraints, for a single multiplier alpha >= 0.
  Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const double rho_plane = rng.uniform(0.3, 3.0);
    const double rho_slack = rng.uniform(0.3, 3.0);
    ProxHarness harness({4, 1}, {rho_plane, rho_slack});
    std::vector<double> point = {rng.gaussian(), rng.gaussian(),
                                 rng.gaussian()};
    const int label = rng.uniform() < 0.5 ? 1 : -1;
    for (auto& v : harness.input(0)) v = rng.uniform(-1.0, 1.0);
    harness.input(1)[0] = rng.uniform(-0.5, 0.5);
    harness.run(MarginProx{point, label});

    const auto plane = harness.output(0);
    const double xi = harness.output(1)[0];
    double margin = plane[3];
    for (int i = 0; i < 3; ++i) margin += plane[i] * point[i];
    if (label * margin + xi > 1.0 + 1e-9) continue;  // inactive

    const double alpha = rho_slack * (xi - harness.input(1)[0]);
    EXPECT_GE(alpha, -1e-9);
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(rho_plane * (plane[i] - harness.input(0)[i]),
                  alpha * label * point[i], 1e-8);
    }
    EXPECT_NEAR(rho_plane * (plane[3] - harness.input(0)[3]), alpha * label,
                1e-8);
  }
}

TEST(MarginProxTest, RejectsBadLabel) {
  EXPECT_THROW(MarginProx({1.0}, 0), PreconditionError);
  EXPECT_THROW(MarginProx({}, 1), PreconditionError);
}

// ---------------------------------------------------------------- builder

TEST(SvmBuilder, TopologyMatchesPaperCount) {
  for (const std::size_t n : {2u, 5u, 16u}) {
    const Dataset dataset = make_gaussian_blobs(n, 2, 4.0, 1);
    const SvmProblem problem(dataset, SvmConfig{});
    EXPECT_EQ(problem.graph().num_variables(), 2 * n);
    EXPECT_EQ(problem.graph().num_factors(), 3 * n + (n - 1));
    EXPECT_EQ(problem.graph().num_edges(), 6 * n - 2);
  }
}

TEST(SvmBuilder, TrainingSeparatesBlobs) {
  const Dataset dataset = make_gaussian_blobs(60, 2, 6.0, 3);
  SvmConfig config;
  config.lambda = 0.5;
  SvmProblem problem(dataset, config);
  SolverOptions options;
  options.max_iterations = 30000;
  options.check_interval = 500;
  options.primal_tolerance = 1e-7;
  options.dual_tolerance = 1e-7;
  solve(problem.graph(), options);

  EXPECT_GT(problem.train_accuracy(), 0.95);
  EXPECT_LT(problem.max_copy_disagreement(), 1e-3);
  // The separating direction must be dominated by the first axis.
  const auto w = problem.plane_w();
  EXPECT_GT(std::fabs(w[0]), std::fabs(w[1]));
}

TEST(SvmBuilder, HigherDimensionStillTrains) {
  const Dataset dataset = make_gaussian_blobs(40, 6, 8.0, 9);
  SvmProblem problem(dataset, SvmConfig{});
  SolverOptions options;
  options.max_iterations = 30000;
  options.check_interval = 500;
  options.primal_tolerance = 1e-6;
  options.dual_tolerance = 1e-6;
  solve(problem.graph(), options);
  EXPECT_GT(problem.train_accuracy(), 0.9);
}

TEST(SvmBuilder, RejectsDegenerateInput) {
  Dataset tiny;
  tiny.points = {{1.0}};
  tiny.labels = {1};
  EXPECT_THROW(SvmProblem(tiny, SvmConfig{}), PreconditionError);
}

// ----------------------------------------------- cost-model consistency

TEST(SvmCostSpec, MatchesExtractionOnSmallGraphs) {
  for (const std::size_t n : {2u, 3u, 7u}) {
    const Dataset dataset = make_gaussian_blobs(n, 2, 4.0, 1);
    const SvmProblem problem(dataset, SvmConfig{});
    const auto extracted = devsim::extract_iteration_costs(problem.graph());
    const auto analytic = svm_iteration_costs(n, 2);
    for (std::size_t p = 0; p < 5; ++p) {
      ASSERT_EQ(analytic.phases[p].count, extracted.phases[p].count)
          << "phase " << p << " n=" << n;
      for (std::size_t i = 0; i < analytic.phases[p].count; ++i) {
        const auto a = analytic.phases[p].cost_at(i);
        const auto b = extracted.phases[p].cost_at(i);
        ASSERT_DOUBLE_EQ(a.flops, b.flops)
            << "phase " << p << " task " << i << " n=" << n;
        ASSERT_DOUBLE_EQ(a.bytes, b.bytes)
            << "phase " << p << " task " << i << " n=" << n;
        ASSERT_EQ(a.branch_class, b.branch_class)
            << "phase " << p << " task " << i << " n=" << n;
      }
    }
  }
}

TEST(SvmCostSpec, FootprintMatchesExtraction) {
  const Dataset dataset = make_gaussian_blobs(9, 4, 4.0, 2);
  const SvmProblem problem(dataset, SvmConfig{});
  const auto extracted = devsim::extract_footprint(problem.graph());
  const auto analytic = svm_footprint(9, 4);
  EXPECT_EQ(analytic.edges, extracted.edges);
  EXPECT_EQ(analytic.edge_scalars, extracted.edge_scalars);
  EXPECT_EQ(analytic.variable_scalars, extracted.variable_scalars);
}

TEST(SvmCostSpec, ElementCountGrowsLinearly) {
  const auto small = svm_iteration_costs(1000, 2).elements();
  const auto large = svm_iteration_costs(2000, 2).elements();
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 2.0,
              0.01);
}

}  // namespace
}  // namespace paradmm::svm
