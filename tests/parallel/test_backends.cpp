// ExecutionBackend semantics: ordered phases, barrier correctness, timing
// collection, and the OpenMP fallback path.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "parallel/backend.hpp"

namespace paradmm {
namespace {

/// Phases that append to per-index logs; used to verify barrier ordering.
struct PhaseOrderProbe {
  std::vector<std::atomic<int>> counters;
  std::atomic<bool> saw_phase_interleave{false};

  explicit PhaseOrderProbe(std::size_t count) : counters(count) {}
};

class BackendSemantics : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendSemantics, AllTasksRunEveryIteration) {
  auto backend = make_backend(GetParam(), 4);
  std::vector<std::atomic<int>> hits(257);
  std::vector<Phase> phases;
  phases.push_back(
      Phase{"only", hits.size(), [&](std::size_t i) { ++hits[i]; }});
  backend->run(phases, 5);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 5);
}

TEST_P(BackendSemantics, PhasesAreOrderedWithinIteration) {
  // Phase B reads what phase A wrote for the same index; any barrier
  // violation shows up as a stale read.
  auto backend = make_backend(GetParam(), 4);
  constexpr std::size_t kCount = 4096;
  std::vector<double> a(kCount, 0.0);
  std::vector<double> b(kCount, 0.0);
  std::atomic<int> violations{0};

  std::vector<Phase> phases;
  phases.push_back(Phase{"write", kCount, [&](std::size_t i) { a[i] += 1.0; }});
  phases.push_back(Phase{"read", kCount, [&](std::size_t i) {
                           if (b[i] + 1.0 != a[i]) ++violations;
                           b[i] = a[i];
                         }});
  backend->run(phases, 10);
  EXPECT_EQ(violations.load(), 0);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_DOUBLE_EQ(a[i], 10.0);
}

TEST_P(BackendSemantics, CrossIndexReductionSeesFullPreviousPhase) {
  // A phase with a single task that sums the previous phase's output —
  // catches backends that start phase p+1 before phase p fully finishes.
  auto backend = make_backend(GetParam(), 4);
  constexpr std::size_t kCount = 2048;
  std::vector<double> values(kCount, 0.0);
  std::atomic<int> bad_sums{0};
  int iteration = 0;

  std::vector<Phase> phases;
  phases.push_back(
      Phase{"bump", kCount, [&](std::size_t i) { values[i] += 1.0; }});
  phases.push_back(Phase{"sum", 1, [&](std::size_t) {
                           double total = 0.0;
                           for (const double v : values) total += v;
                           ++iteration;
                           if (total != static_cast<double>(kCount) * iteration)
                             ++bad_sums;
                         }});
  backend->run(phases, 8);
  EXPECT_EQ(bad_sums.load(), 0);
  EXPECT_EQ(iteration, 8);
}

TEST_P(BackendSemantics, TimingsAccumulatePerPhase) {
  auto backend = make_backend(GetParam(), 2);
  std::vector<Phase> phases;
  phases.push_back(Phase{"a", 64, [](std::size_t) {}});
  phases.push_back(Phase{"b", 64, [](std::size_t) {}});
  PhaseTimings timings(2);
  backend->run(phases, 3);  // no timings requested: must not crash
  backend->run(phases, 3, &timings);
  EXPECT_GE(timings.seconds(0), 0.0);
  EXPECT_GE(timings.seconds(1), 0.0);
  EXPECT_GE(timings.total_seconds(),
            timings.seconds(0));
  if (timings.total_seconds() > 0.0) {
    EXPECT_NEAR(timings.fraction(0) + timings.fraction(1), 1.0, 1e-9);
  }
}

TEST_P(BackendSemantics, EmptyPhaseListIsANoOp) {
  auto backend = make_backend(GetParam(), 2);
  backend->run({}, 100);
  SUCCEED();
}

TEST_P(BackendSemantics, ZeroIterationsRunNothing) {
  auto backend = make_backend(GetParam(), 2);
  std::atomic<int> calls{0};
  std::vector<Phase> phases;
  phases.push_back(Phase{"x", 8, [&](std::size_t) { ++calls; }});
  backend->run(phases, 0);
  EXPECT_EQ(calls.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BackendSemantics,
    ::testing::Values(BackendKind::kSerial, BackendKind::kForkJoin,
                      BackendKind::kPersistent, BackendKind::kOmpForkJoin,
                      BackendKind::kOmpPersistent),
    [](const auto& param_info) {
      switch (param_info.param) {
        case BackendKind::kSerial: return "Serial";
        case BackendKind::kForkJoin: return "ForkJoin";
        case BackendKind::kPersistent: return "Persistent";
        case BackendKind::kOmpForkJoin: return "OmpForkJoin";
        case BackendKind::kOmpPersistent: return "OmpPersistent";
      }
      return "Unknown";
    });

TEST(BackendFactory, NamesAreStable) {
  EXPECT_EQ(to_string(BackendKind::kSerial), "serial");
  EXPECT_EQ(to_string(BackendKind::kForkJoin), "fork-join");
  EXPECT_EQ(to_string(BackendKind::kPersistent), "persistent");
  EXPECT_EQ(to_string(BackendKind::kOmpForkJoin), "omp-fork-join");
  EXPECT_EQ(to_string(BackendKind::kOmpPersistent), "omp-persistent");
}

TEST(BackendFactory, SerialReportsOneThread) {
  EXPECT_EQ(make_backend(BackendKind::kSerial, 8)->concurrency(), 1u);
}

TEST(BackendFactory, ParallelKindsReportRequestedThreads) {
  EXPECT_EQ(make_backend(BackendKind::kForkJoin, 3)->concurrency(), 3u);
  EXPECT_EQ(make_backend(BackendKind::kPersistent, 5)->concurrency(), 5u);
}

TEST(BackendFactory, OmpKindsAlwaysConstruct) {
  // With OpenMP they are native; without, they fall back to std::thread
  // equivalents — either way construction succeeds and runs.
  auto a = make_backend(BackendKind::kOmpForkJoin, 2);
  auto b = make_backend(BackendKind::kOmpPersistent, 2);
  std::atomic<int> calls{0};
  std::vector<Phase> phases;
  phases.push_back(Phase{"x", 4, [&](std::size_t) { ++calls; }});
  a->run(phases, 1);
  b->run(phases, 1);
  EXPECT_EQ(calls.load(), 8);
}

}  // namespace
}  // namespace paradmm
