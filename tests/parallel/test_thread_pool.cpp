#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/error.hpp"

namespace paradmm {
namespace {

TEST(ThreadPoolTest, ConcurrencyMatchesRequest) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  ThreadPool single(1);
  EXPECT_EQ(single.concurrency(), 1u);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(100, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(begin, end);
    covered += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPoolTest, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(64, [&](std::size_t i) {
      total += static_cast<long long>(i);
    });
  }
  EXPECT_EQ(total.load(), 200LL * (63 * 64 / 2));
}

TEST(ThreadPoolTest, StaticChunkMatchesPaperFormula) {
  // AssignThreads from the paper's Fig. 4: s = id*n/T, e = (id+1)*n/T,
  // last thread absorbs the remainder.
  const auto [b0, e0] = ThreadPool::static_chunk(10, 0, 3);
  const auto [b1, e1] = ThreadPool::static_chunk(10, 1, 3);
  const auto [b2, e2] = ThreadPool::static_chunk(10, 2, 3);
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(e0, 3u);
  EXPECT_EQ(b1, 3u);
  EXPECT_EQ(e1, 6u);
  EXPECT_EQ(b2, 6u);
  EXPECT_EQ(e2, 10u);
}

TEST(ThreadPoolTest, StaticChunkHandlesFewerItemsThanThreads) {
  std::size_t covered = 0;
  for (std::size_t rank = 0; rank < 8; ++rank) {
    const auto [begin, end] = ThreadPool::static_chunk(3, rank, 8);
    covered += end - begin;
  }
  EXPECT_EQ(covered, 3u);
}

TEST(ThreadPoolTest, ExceptionsDoNotDeadlockSingleThread) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // Pool still usable afterwards.
  int calls = 0;
  pool.parallel_for(4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (++done == kTasks) {
        std::lock_guard lock(mutex);
        cv.notify_all();
      }
    });
  }
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  // No workers exist, so submit must have executed the task synchronously.
  EXPECT_TRUE(ran);
  EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolTest, TasksInterleaveWithParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> task_done{0};
  std::mutex mutex;
  std::condition_variable cv;
  pool.submit([&] {
    ++task_done;
    std::lock_guard lock(mutex);
    cv.notify_all();
  });
  // The fork/join path must stay correct while tasks drain.
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64,
                      [&](std::size_t i) { total += static_cast<long long>(i); });
  }
  EXPECT_EQ(total.load(), 50LL * (63 * 64 / 2));
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return task_done.load() == 1; });
  EXPECT_EQ(task_done.load(), 1);
}

TEST(ThreadPoolTest, WorkerChunkExceptionsRethrowToCaller) {
  // A throw on a worker's chunk must reach the parallel_for caller after
  // the join instead of terminating the process.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 999) {  // last chunk -> a worker
                                     throw std::runtime_error("chunk");
                                   }
                                 }),
               std::runtime_error);
  // Pool still fully usable afterwards.
  std::atomic<int> calls{0};
  pool.parallel_for(64, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPoolTest, SubmitRejectsEmptyTask) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit(std::function<void()>{}), PreconditionError);
}

// --- width-bounded fork groups -------------------------------------------

TEST(ThreadPoolTest, WidthBoundedForkVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  for (const std::size_t width : {1u, 2u, 3u, 4u, 5u, 16u}) {
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> visits(kCount);
    pool.parallel_for(kCount, width, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "width " << width << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, WidthBoundedPartitionDependsOnlyOnCountAndWidth) {
  // The chunk partition for a width-w fork must be static_chunk over
  // min(w, count) parts — independent of pool size or which threads help —
  // which is what makes a fixed-width solve bitwise reproducible.
  ThreadPool pool(4);
  for (const std::size_t width : {2u, 3u, 7u}) {
    for (const std::size_t count : {5u, 97u, 100u}) {
      std::mutex mutex;
      std::vector<std::pair<std::size_t, std::size_t>> chunks;
      pool.parallel_for_chunks(count, width,
                               [&](std::size_t begin, std::size_t end) {
                                 std::lock_guard lock(mutex);
                                 chunks.emplace_back(begin, end);
                               });
      const std::size_t parts =
          std::min({count, width, pool.concurrency()});
      ASSERT_EQ(chunks.size(), parts);
      std::sort(chunks.begin(), chunks.end());
      for (std::size_t rank = 0; rank < parts; ++rank) {
        EXPECT_EQ(chunks[rank], ThreadPool::static_chunk(count, rank, parts))
            << "count " << count << " width " << width << " rank " << rank;
      }
    }
  }
}

TEST(ThreadPoolTest, WidthZeroMeansWholePool) {
  // 0 is the make_pool_backend sentinel for "whole pool" — it must fork
  // full-width, not degrade to a serial loop.
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(100, 0, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(begin, end);
  });
  EXPECT_EQ(chunks.size(), pool.concurrency());
}

TEST(ThreadPoolTest, ForkFromInsideSubmittedTaskCompletes) {
  // The batch runtime runs whole solves as tasks that fork per phase; the
  // forking thread self-serves unclaimed chunks, so this must complete
  // even when every other worker is busy or asleep.
  ThreadPool pool(2);
  std::atomic<long long> total{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(64, 2, [&](std::size_t i) {
        total += static_cast<long long>(i);
      });
    }
    done = true;
  });
  pool.wait_tasks_idle();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(total.load(), 20LL * (63 * 64 / 2));
}

TEST(ThreadPoolTest, ConcurrentForksFromTwoTasksBothComplete) {
  // Two width-2 forks on a 4-lane pool are independent groups; neither may
  // corrupt or starve the other.
  ThreadPool pool(4);
  std::atomic<long long> totals[2] = {{0}, {0}};
  for (int t = 0; t < 2; ++t) {
    pool.submit([&pool, &total = totals[t]] {
      for (int round = 0; round < 50; ++round) {
        pool.parallel_for(64, 2, [&](std::size_t i) {
          total += static_cast<long long>(i);
        });
      }
    });
  }
  pool.wait_tasks_idle();
  EXPECT_EQ(totals[0].load(), 50LL * (63 * 64 / 2));
  EXPECT_EQ(totals[1].load(), 50LL * (63 * 64 / 2));
}

// --- per-worker run queues and stealing ----------------------------------

TEST(ThreadPoolTest, ConcurrentExternalSubmitsAllRunExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 50;
  std::vector<std::atomic<int>> runs(kSubmitters * kPerSubmitter);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        pool.submit([&runs, slot = s * kPerSubmitter + i] { ++runs[slot]; });
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  pool.wait_tasks_idle();
  for (std::size_t slot = 0; slot < runs.size(); ++slot) {
    ASSERT_EQ(runs[slot].load(), 1) << "slot " << slot;
  }
}

TEST(ThreadPoolTest, IdleWorkersStealFromABlockedWorkersQueue) {
  // A task submitted from a worker lands on that worker's own queue.  If
  // the worker then blocks, its queued work must be stolen by peers — the
  // PR-1 single-queue pool trivially had this property; the per-worker
  // design must not lose it.
  ThreadPool pool(3);  // 2 workers + external lane
  constexpr int kSubtasks = 4;
  std::atomic<int> subtasks_done{0};
  std::atomic<bool> owner_blocked{false};
  std::atomic<bool> owner_released{false};
  pool.submit([&] {
    for (int i = 0; i < kSubtasks; ++i) {
      pool.submit([&] { ++subtasks_done; });  // affinity: this worker's queue
    }
    owner_blocked = true;
    // Block the submitting worker until every subtask has run elsewhere —
    // possible only if the other worker steals them.  Deadline so a broken
    // steal path fails instead of hanging the suite.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (subtasks_done.load() < kSubtasks &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    owner_released = true;
  });
  pool.wait_tasks_idle();
  EXPECT_TRUE(owner_blocked.load());
  EXPECT_TRUE(owner_released.load());
  EXPECT_EQ(subtasks_done.load(), kSubtasks)
      << "subtasks were not stolen from the blocked worker's queue";
}

}  // namespace
}  // namespace paradmm
