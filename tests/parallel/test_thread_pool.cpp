#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/error.hpp"

namespace paradmm {
namespace {

TEST(ThreadPoolTest, ConcurrencyMatchesRequest) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  ThreadPool single(1);
  EXPECT_EQ(single.concurrency(), 1u);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(100, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(begin, end);
    covered += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPoolTest, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(64, [&](std::size_t i) {
      total += static_cast<long long>(i);
    });
  }
  EXPECT_EQ(total.load(), 200LL * (63 * 64 / 2));
}

TEST(ThreadPoolTest, StaticChunkMatchesPaperFormula) {
  // AssignThreads from the paper's Fig. 4: s = id*n/T, e = (id+1)*n/T,
  // last thread absorbs the remainder.
  const auto [b0, e0] = ThreadPool::static_chunk(10, 0, 3);
  const auto [b1, e1] = ThreadPool::static_chunk(10, 1, 3);
  const auto [b2, e2] = ThreadPool::static_chunk(10, 2, 3);
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(e0, 3u);
  EXPECT_EQ(b1, 3u);
  EXPECT_EQ(e1, 6u);
  EXPECT_EQ(b2, 6u);
  EXPECT_EQ(e2, 10u);
}

TEST(ThreadPoolTest, StaticChunkHandlesFewerItemsThanThreads) {
  std::size_t covered = 0;
  for (std::size_t rank = 0; rank < 8; ++rank) {
    const auto [begin, end] = ThreadPool::static_chunk(3, rank, 8);
    covered += end - begin;
  }
  EXPECT_EQ(covered, 3u);
}

TEST(ThreadPoolTest, ExceptionsDoNotDeadlockSingleThread) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // Pool still usable afterwards.
  int calls = 0;
  pool.parallel_for(4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (++done == kTasks) {
        std::lock_guard lock(mutex);
        cv.notify_all();
      }
    });
  }
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  // No workers exist, so submit must have executed the task synchronously.
  EXPECT_TRUE(ran);
  EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolTest, TasksInterleaveWithParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> task_done{0};
  std::mutex mutex;
  std::condition_variable cv;
  pool.submit([&] {
    ++task_done;
    std::lock_guard lock(mutex);
    cv.notify_all();
  });
  // The fork/join path must stay correct while tasks drain.
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64,
                      [&](std::size_t i) { total += static_cast<long long>(i); });
  }
  EXPECT_EQ(total.load(), 50LL * (63 * 64 / 2));
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return task_done.load() == 1; });
  EXPECT_EQ(task_done.load(), 1);
}

TEST(ThreadPoolTest, WorkerChunkExceptionsRethrowToCaller) {
  // A throw on a worker's chunk must reach the parallel_for caller after
  // the join instead of terminating the process.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 999) {  // last chunk -> a worker
                                     throw std::runtime_error("chunk");
                                   }
                                 }),
               std::runtime_error);
  // Pool still fully usable afterwards.
  std::atomic<int> calls{0};
  pool.parallel_for(64, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPoolTest, SubmitRejectsEmptyTask) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit(std::function<void()>{}), PreconditionError);
}

}  // namespace
}  // namespace paradmm
