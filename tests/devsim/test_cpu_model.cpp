// Multicore/serial model invariants: saturation, NUMA effects, fork/join
// overhead, and consistency between the serial and 1-core paths.
#include <gtest/gtest.h>

#include "devsim/calibration.hpp"
#include "devsim/cpu_model.hpp"

namespace paradmm::devsim {
namespace {

PhaseCostSpec uniform_phase(std::size_t count, double flops, double bytes,
                            MemoryPattern pattern = MemoryPattern::kCoalesced) {
  return PhaseCostSpec{"test", count, pattern, [=](std::size_t) {
                         return TaskCost{flops, bytes, 1};
                       }};
}

TEST(SerialModel, RooflineMax) {
  SerialSpec cpu;
  cpu.flops_per_second = 1e9;
  cpu.bytes_per_second = 1e10;
  // Compute-bound: 1e9 flops at 1e9 flops/s = 1 s.
  EXPECT_NEAR(serial_phase_seconds(uniform_phase(1000, 1e6, 8.0), cpu), 1.0,
              1e-9);
  // Memory-bound: 1e10 bytes at 1e10 B/s = 1 s.
  EXPECT_NEAR(serial_phase_seconds(uniform_phase(1000, 1.0, 1e7), cpu), 1.0,
              1e-9);
}

TEST(SerialModel, IterationSumsPhases) {
  const SerialSpec cpu = opteron_serial();
  IterationCosts costs;
  for (auto& phase : costs.phases) phase = uniform_phase(1000, 100.0, 80.0);
  EXPECT_NEAR(serial_iteration_seconds(costs, cpu),
              5.0 * serial_phase_seconds(costs.phases[0], cpu), 1e-12);
}

TEST(MulticoreModel, TwoCoresBeatOneOnBigPhases) {
  const MulticoreSpec cpu = opteron_32core();
  const auto phase = uniform_phase(1000000, 200.0, 60.0);
  const double one = simulate_multicore_phase(phase, cpu, 1).seconds;
  const double two = simulate_multicore_phase(phase, cpu, 2).seconds;
  EXPECT_LT(two, one);
}

TEST(MulticoreModel, ComputeBoundScalesNearlyLinearly) {
  const MulticoreSpec cpu = opteron_32core();
  // Heavy flops, almost no memory: speedup at 8 cores should be near 8.
  const auto phase = uniform_phase(1000000, 5000.0, 8.0);
  const double one = simulate_multicore_phase(phase, cpu, 1).seconds;
  const double eight = simulate_multicore_phase(phase, cpu, 8).seconds;
  EXPECT_GT(one / eight, 6.5);
  EXPECT_LE(one / eight, 8.0 + 1e-9);
}

TEST(MulticoreModel, MemoryBoundSaturates) {
  const MulticoreSpec cpu = opteron_32core();
  // Bandwidth-bound phase: 32 cores cannot give anywhere near 32x.
  const auto phase = uniform_phase(1000000, 1.0, 2000.0);
  const double one = simulate_multicore_phase(phase, cpu, 1).seconds;
  const double thirty_two = simulate_multicore_phase(phase, cpu, 32).seconds;
  const double speedup = one / thirty_two;
  EXPECT_LT(speedup, 12.0);
  EXPECT_GT(speedup, 1.0);
}

TEST(MulticoreModel, GatherPhasesCanDegradePastPeak) {
  // The Fig-11-right effect: for gather-heavy phases, going from 25 to 32
  // cores buys little or hurts.
  const MulticoreSpec cpu = opteron_32core();
  const auto phase =
      uniform_phase(1000000, 2.0, 1500.0, MemoryPattern::kGather);
  const double at25 = simulate_multicore_phase(phase, cpu, 25).seconds;
  const double at32 = simulate_multicore_phase(phase, cpu, 32).seconds;
  EXPECT_GT(at32, 0.98 * at25);
}

TEST(MulticoreModel, ForkJoinMakesTinyPhasesWorseWithMoreCores) {
  const MulticoreSpec cpu = opteron_32core();
  const auto phase = uniform_phase(64, 10.0, 80.0);
  const double at2 = simulate_multicore_phase(phase, cpu, 2).seconds;
  const double at32 = simulate_multicore_phase(phase, cpu, 32).seconds;
  EXPECT_GT(at32, at2);
}

TEST(MulticoreModel, CrossingNodeBoundaryAddsRemoteTraffic) {
  MulticoreSpec penalized = opteron_32core();
  MulticoreSpec free_remote = penalized;
  free_remote.remote_access_penalty = 0.0;
  const auto phase = uniform_phase(1000000, 1.0, 800.0);
  // Within one node the two models agree ...
  EXPECT_DOUBLE_EQ(
      simulate_multicore_phase(phase, penalized, 8).memory_seconds,
      simulate_multicore_phase(phase, free_remote, 8).memory_seconds);
  // ... but once threads span nodes the remote fraction costs extra.
  EXPECT_GT(simulate_multicore_phase(phase, penalized, 16).memory_seconds,
            simulate_multicore_phase(phase, free_remote, 16).memory_seconds);
}

TEST(MulticoreModel, EmptyPhaseIsFree) {
  const MulticoreSpec cpu = opteron_32core();
  EXPECT_DOUBLE_EQ(
      simulate_multicore_phase(uniform_phase(0, 1.0, 1.0), cpu, 8).seconds,
      0.0);
}

TEST(MulticoreModel, RejectsZeroCores) {
  const MulticoreSpec cpu = opteron_32core();
  EXPECT_THROW(simulate_multicore_phase(uniform_phase(10, 1.0, 1.0), cpu, 0),
               PreconditionError);
}

TEST(MulticoreModel, PersistentBarrierCostsMoreAtScale) {
  // Fig. 4: strategy B's central barrier scales linearly with the team, so
  // at 32 cores strategy A must win on sync-sensitive (small-phase) work.
  const MulticoreSpec cpu = opteron_32core();
  const auto phase = uniform_phase(20000, 20.0, 60.0);
  const double a =
      simulate_multicore_phase(phase, cpu, 32,
                               OmpStrategy::kForkJoinPerPhase)
          .seconds;
  const double b =
      simulate_multicore_phase(phase, cpu, 32,
                               OmpStrategy::kPersistentBarrier)
          .seconds;
  EXPECT_LT(a, b);
  // At 2 cores the central barrier is cheaper than a full fork/join.
  const double a2 =
      simulate_multicore_phase(phase, cpu, 2,
                               OmpStrategy::kForkJoinPerPhase)
          .seconds;
  const double b2 =
      simulate_multicore_phase(phase, cpu, 2,
                               OmpStrategy::kPersistentBarrier)
          .seconds;
  EXPECT_LT(b2, a2);
}

TEST(MulticoreModel, IterationSumsPhases) {
  const MulticoreSpec cpu = opteron_32core();
  IterationCosts costs;
  for (auto& phase : costs.phases) phase = uniform_phase(10000, 50.0, 80.0);
  EXPECT_NEAR(
      multicore_iteration_seconds(costs, cpu, 16),
      5.0 * simulate_multicore_phase(costs.phases[0], cpu, 16).seconds,
      1e-12);
}

}  // namespace
}  // namespace paradmm::devsim
