#include <gtest/gtest.h>

#include "devsim/calibration.hpp"
#include "devsim/transfer_model.hpp"

namespace paradmm::devsim {
namespace {

GraphFootprint footprint_for(std::size_t edges, std::size_t edge_scalars,
                             std::size_t variable_scalars) {
  GraphFootprint footprint;
  footprint.edges = edges;
  footprint.edge_scalars = edge_scalars;
  footprint.variable_scalars = variable_scalars;
  return footprint;
}

TEST(TransferModel, DownloadIsLatencyBoundForSmallZ) {
  const TransferSpec spec = k40_pcie();
  // Packing N=5000-scale z: 15k scalars = 120 kB — well under a millisecond
  // (paper reports 0.3 ms).
  const double seconds = z_download_seconds(footprint_for(1, 1, 15000), spec);
  EXPECT_LT(seconds, 1e-3);
  EXPECT_GT(seconds, spec.transfer_latency_us * 1e-6 * 0.99);
}

TEST(TransferModel, UploadDominatedByHostConstruction) {
  const TransferSpec spec = k40_pcie();
  const auto footprint = footprint_for(50'000'000, 75'000'000, 15000);
  const double upload = graph_upload_seconds(footprint, spec);
  // Paper: ~450 s for the N=5000 packing graph.
  EXPECT_GT(upload, 100.0);
  EXPECT_LT(upload, 2000.0);
  const double copy_only =
      (footprint.value_bytes() + footprint.metadata_bytes()) /
      (spec.pcie_gbs * 1e9);
  EXPECT_GT(upload, 10.0 * copy_only);
}

TEST(TransferModel, UploadLinearInEdges) {
  const TransferSpec spec = k40_pcie();
  const double one =
      graph_upload_seconds(footprint_for(1'000'000, 2'000'000, 1000), spec);
  const double two =
      graph_upload_seconds(footprint_for(2'000'000, 4'000'000, 2000), spec);
  EXPECT_NEAR(two / one, 2.0, 0.01);
}

TEST(TransferModel, DownloadMuchCheaperThanUpload) {
  const TransferSpec spec = k40_pcie();
  const auto footprint = footprint_for(6'000'000, 9'000'000, 300'000);
  EXPECT_LT(z_download_seconds(footprint, spec) * 100.0,
            graph_upload_seconds(footprint, spec));
}

}  // namespace
}  // namespace paradmm::devsim
