#include <gtest/gtest.h>

#include "devsim/calibration.hpp"
#include "devsim/multi_gpu_model.hpp"

namespace paradmm::devsim {
namespace {

IterationCosts uniform_costs(std::size_t count) {
  IterationCosts costs;
  const char* names[] = {"x", "m", "z", "u", "n"};
  for (std::size_t p = 0; p < 5; ++p) {
    costs.phases[p] =
        PhaseCostSpec{names[p], count, MemoryPattern::kCoalesced,
                      [](std::size_t) {
                        return TaskCost{50.0, 100.0, 1};
                      }};
  }
  return costs;
}

GraphFootprint footprint_of(std::size_t edges) {
  GraphFootprint footprint;
  footprint.edges = edges;
  footprint.edge_scalars = 2 * edges;
  footprint.variable_scalars = edges / 4;
  return footprint;
}

TEST(MultiGpuModel, SingleDeviceHasNoExchange) {
  MultiGpuSpec spec;
  spec.devices = 1;
  const auto estimate = simulate_multi_gpu_iteration(
      uniform_costs(100000), footprint_of(100000), spec, 32);
  EXPECT_DOUBLE_EQ(estimate.exchange_seconds, 0.0);
  EXPECT_DOUBLE_EQ(estimate.seconds, estimate.compute_seconds);
}

TEST(MultiGpuModel, SingleDeviceMatchesPlainGpuModel) {
  MultiGpuSpec spec;
  spec.devices = 1;
  const auto costs = uniform_costs(100000);
  const auto estimate = simulate_multi_gpu_iteration(
      costs, footprint_of(100000), spec, 32);
  EXPECT_NEAR(estimate.seconds, gpu_iteration_seconds(costs, spec.gpu, 32),
              1e-12);
}

TEST(MultiGpuModel, ComputeShrinksWithDevices) {
  const auto costs = uniform_costs(2000000);
  const auto footprint = footprint_of(2000000);
  double previous = 1e9;
  for (const int devices : {1, 2, 4, 8}) {
    MultiGpuSpec spec;
    spec.devices = devices;
    spec.cut_fraction = 0.0;
    const auto estimate =
        simulate_multi_gpu_iteration(costs, footprint, spec, 32);
    EXPECT_LT(estimate.compute_seconds, previous);
    previous = estimate.compute_seconds;
  }
}

TEST(MultiGpuModel, ExchangeGrowsWithCutFraction) {
  const auto costs = uniform_costs(500000);
  const auto footprint = footprint_of(500000);
  MultiGpuSpec low;
  low.devices = 4;
  low.cut_fraction = 0.01;
  MultiGpuSpec high = low;
  high.cut_fraction = 0.75;
  EXPECT_GT(simulate_multi_gpu_iteration(costs, footprint, high, 32)
                .exchange_seconds,
            simulate_multi_gpu_iteration(costs, footprint, low, 32)
                .exchange_seconds);
}

TEST(MultiGpuModel, DenseGraphsSaturateBeforeChains) {
  const auto costs = uniform_costs(2000000);
  const auto footprint = footprint_of(2000000);
  MultiGpuSpec dense;
  dense.devices = 8;
  dense.cut_fraction = dense_cut_fraction(8);
  MultiGpuSpec chain = dense;
  chain.cut_fraction = chain_cut_fraction(2000000, 8);
  const double dense_total =
      simulate_multi_gpu_iteration(costs, footprint, dense, 32).seconds;
  const double chain_total =
      simulate_multi_gpu_iteration(costs, footprint, chain, 32).seconds;
  EXPECT_GT(dense_total, chain_total);
}

TEST(MultiGpuModel, CutFractionHelpers) {
  EXPECT_DOUBLE_EQ(dense_cut_fraction(1), 0.0);
  EXPECT_DOUBLE_EQ(dense_cut_fraction(4), 0.75);
  EXPECT_DOUBLE_EQ(chain_cut_fraction(1000, 1), 0.0);
  EXPECT_NEAR(chain_cut_fraction(1000, 5), 4.0 / 1000.0, 1e-12);
  EXPECT_DOUBLE_EQ(chain_cut_fraction(2, 8), 1.0);  // clamped
}

TEST(MultiGpuModel, ShardingPreservesHeterogeneousRuns) {
  // Two cost classes in index order; device 1's shard must see the second
  // class, not a copy of device 0's.
  IterationCosts costs;
  const char* names[] = {"x", "m", "z", "u", "n"};
  for (std::size_t p = 0; p < 5; ++p) {
    costs.phases[p] = PhaseCostSpec{
        names[p], 1000, MemoryPattern::kCoalesced, [](std::size_t i) {
          return i < 500 ? TaskCost{10.0, 10.0, 1}
                         : TaskCost{1000.0, 10.0, 2};
        }};
  }
  MultiGpuSpec spec;
  spec.devices = 2;
  spec.cut_fraction = 0.0;
  const auto estimate = simulate_multi_gpu_iteration(
      costs, footprint_of(1000), spec, 32);
  // The slow half dominates: the makespan must be close to a single device
  // running only the expensive class, not half the uniform average.
  PhaseCostSpec slow{"x", 500, MemoryPattern::kCoalesced, [](std::size_t) {
                       return TaskCost{1000.0, 10.0, 2};
                     }};
  const double slow_phase = simulate_kernel(slow, spec.gpu, 32).seconds;
  EXPECT_GE(estimate.compute_seconds, 5.0 * slow_phase * 0.9);
}

TEST(MultiGpuModel, RejectsBadArguments) {
  MultiGpuSpec spec;
  spec.devices = 0;
  EXPECT_THROW(simulate_multi_gpu_iteration(uniform_costs(10),
                                            footprint_of(10), spec, 32),
               PreconditionError);
  spec.devices = 2;
  spec.cut_fraction = 1.5;
  EXPECT_THROW(simulate_multi_gpu_iteration(uniform_costs(10),
                                            footprint_of(10), spec, 32),
               PreconditionError);
}

}  // namespace
}  // namespace paradmm::devsim
