// GPU execution-model invariants: these pin the *mechanisms* (divergence,
// coalescing, occupancy, launch overhead, tail) rather than calibrated
// absolute times.
#include <gtest/gtest.h>

#include "devsim/calibration.hpp"
#include "devsim/gpu_model.hpp"

namespace paradmm::devsim {
namespace {

PhaseCostSpec uniform_phase(std::size_t count, double flops, double bytes,
                            MemoryPattern pattern,
                            std::uint32_t branch_class = 7) {
  return PhaseCostSpec{"test", count, pattern,
                       [=](std::size_t) {
                         return TaskCost{flops, bytes, branch_class};
                       }};
}

TEST(GpuModel, EmptyPhaseIsFree) {
  const GpuSpec gpu = tesla_k40();
  const auto estimate = simulate_kernel(
      uniform_phase(0, 10.0, 80.0, MemoryPattern::kCoalesced), gpu, 32);
  EXPECT_DOUBLE_EQ(estimate.seconds, 0.0);
}

TEST(GpuModel, LaunchOverheadAlwaysPaid) {
  const GpuSpec gpu = tesla_k40();
  const auto estimate = simulate_kernel(
      uniform_phase(1, 1.0, 8.0, MemoryPattern::kCoalesced), gpu, 32);
  EXPECT_GE(estimate.seconds, gpu.kernel_launch_us * 1e-6);
}

TEST(GpuModel, TimeGrowsWithTaskCount) {
  const GpuSpec gpu = tesla_k40();
  double previous = 0.0;
  for (const std::size_t count : {10000u, 100000u, 1000000u}) {
    const double seconds = simulate_kernel(
        uniform_phase(count, 20.0, 100.0, MemoryPattern::kCoalesced), gpu, 32)
        .seconds;
    EXPECT_GT(seconds, previous);
    previous = seconds;
  }
}

TEST(GpuModel, WindowScalingIsLinearForUniformCosts) {
  const GpuSpec gpu = tesla_k40();
  const double one = simulate_kernel(
      uniform_phase(2u << 20, 20.0, 100.0, MemoryPattern::kCoalesced), gpu, 32)
      .seconds;
  const double two = simulate_kernel(
      uniform_phase(4u << 20, 20.0, 100.0, MemoryPattern::kCoalesced), gpu, 32)
      .seconds;
  EXPECT_NEAR(two / one, 2.0, 0.05);
}

TEST(GpuModel, UniformWarpHasNoDivergence) {
  const GpuSpec gpu = tesla_k40();
  const auto estimate = simulate_kernel(
      uniform_phase(100000, 50.0, 40.0, MemoryPattern::kCoalesced), gpu, 32);
  EXPECT_NEAR(estimate.divergence_factor, 1.0, 1e-9);
}

TEST(GpuModel, MixedBranchClassesSerializeWarps) {
  const GpuSpec gpu = tesla_k40();
  // Alternating classes within every warp: two serialized groups.
  PhaseCostSpec mixed{"mixed", 100000, MemoryPattern::kCoalesced,
                      [](std::size_t i) {
                        return TaskCost{50.0, 40.0,
                                        static_cast<std::uint32_t>(i % 2)};
                      }};
  const auto diverged = simulate_kernel(mixed, gpu, 32);
  EXPECT_NEAR(diverged.divergence_factor, 2.0, 1e-9);
  const auto uniform = simulate_kernel(
      uniform_phase(100000, 50.0, 40.0, MemoryPattern::kCoalesced), gpu, 32);
  EXPECT_GE(diverged.compute_seconds, 1.9 * uniform.compute_seconds);
}

TEST(GpuModel, HomogeneousRunsAvoidDivergenceEvenWithManyClasses) {
  const GpuSpec gpu = tesla_k40();
  // Classes change every 320 tasks: warps are internally uniform.
  PhaseCostSpec runs{"runs", 320000, MemoryPattern::kCoalesced,
                     [](std::size_t i) {
                       return TaskCost{50.0, 40.0,
                                       static_cast<std::uint32_t>(i / 320)};
                     }};
  const auto estimate = simulate_kernel(runs, gpu, 32);
  EXPECT_NEAR(estimate.divergence_factor, 1.0, 1e-6);
}

TEST(GpuModel, GatherCostsMoreThanCoalesced) {
  const GpuSpec gpu = tesla_k40();
  const double coalesced = simulate_kernel(
      uniform_phase(500000, 5.0, 200.0, MemoryPattern::kCoalesced), gpu, 32)
      .seconds;
  const double gather = simulate_kernel(
      uniform_phase(500000, 5.0, 200.0, MemoryPattern::kGather), gpu, 32)
      .seconds;
  EXPECT_GT(gather, 3.0 * coalesced);
}

TEST(GpuModel, OccupancyBoundedByOne) {
  const GpuSpec gpu = tesla_k40();
  for (const int ntb : {1, 32, 256, 1024}) {
    const auto estimate = simulate_kernel(
        uniform_phase(1000000, 10.0, 50.0, MemoryPattern::kCoalesced), gpu,
        ntb);
    EXPECT_GT(estimate.occupancy, 0.0);
    EXPECT_LE(estimate.occupancy, 1.0);
  }
}

TEST(GpuModel, VeryLargeBlocksPayTailAndThrash) {
  const GpuSpec gpu = tesla_k40();
  const auto phase =
      uniform_phase(2000000, 30.0, 150.0, MemoryPattern::kMixed);
  const double at32 = simulate_kernel(phase, gpu, 32).seconds;
  const double at1024 = simulate_kernel(phase, gpu, 1024).seconds;
  EXPECT_GT(at1024, at32);
}

TEST(GpuModel, BestNtbIsSmallForMemoryBoundPhases) {
  // The paper's repeated observation: ntb = 32 (not the vendor-suggested
  // 1024) is optimal for these kernels.
  const GpuSpec gpu = tesla_k40();
  const auto phase =
      uniform_phase(2000000, 20.0, 120.0, MemoryPattern::kMixed);
  const int best = best_ntb(phase, gpu);
  EXPECT_LE(best, 64);
  EXPECT_GE(best, 16);
}

TEST(GpuModel, NarrowWarpsUnderuseMemoryConcurrency) {
  // ntb below a full warp starves the memory system: the paper's in-text
  // ntb sweep is flat-ish from 1..16 but clearly below the ntb=32 peak.
  const GpuSpec gpu = tesla_k40();
  const auto phase =
      uniform_phase(2000000, 20.0, 120.0, MemoryPattern::kMixed);
  const double at2 = simulate_kernel(phase, gpu, 2).seconds;
  const double at32 = simulate_kernel(phase, gpu, 32).seconds;
  EXPECT_GT(at2, at32);
}

TEST(GpuModel, BlocksComputedFromNtb) {
  const GpuSpec gpu = tesla_k40();
  const auto estimate = simulate_kernel(
      uniform_phase(1000, 10.0, 10.0, MemoryPattern::kCoalesced), gpu, 32);
  EXPECT_EQ(estimate.blocks, 32u);  // ceil(1000/32)
}

TEST(GpuModel, RejectsBadArguments) {
  const GpuSpec gpu = tesla_k40();
  EXPECT_THROW(simulate_kernel(
                   uniform_phase(10, 1.0, 1.0, MemoryPattern::kCoalesced),
                   gpu, 0),
               PreconditionError);
  PhaseCostSpec no_fn{"bad", 10, MemoryPattern::kCoalesced, nullptr};
  EXPECT_THROW(simulate_kernel(no_fn, gpu, 32), PreconditionError);
}

TEST(GpuModel, ExtremeClassDiversityStaysBounded) {
  // More branch classes than the warp accumulator tracks (8): the overflow
  // class accumulates instead of dropping work — cycles must not shrink.
  const GpuSpec gpu = tesla_k40();
  PhaseCostSpec chaotic{"chaotic", 64000, MemoryPattern::kCoalesced,
                        [](std::size_t i) {
                          return TaskCost{30.0, 20.0,
                                          static_cast<std::uint32_t>(i % 16)};
                        }};
  const auto chaotic_estimate = simulate_kernel(chaotic, gpu, 32);
  PhaseCostSpec mild{"mild", 64000, MemoryPattern::kCoalesced,
                     [](std::size_t i) {
                       return TaskCost{30.0, 20.0,
                                       static_cast<std::uint32_t>(i % 4)};
                     }};
  const auto mild_estimate = simulate_kernel(mild, gpu, 32);
  EXPECT_GE(chaotic_estimate.divergence_factor,
            mild_estimate.divergence_factor);
  EXPECT_GE(chaotic_estimate.compute_seconds, mild_estimate.compute_seconds);
}

TEST(GpuModel, MemoryTimeMonotoneInPatternExpansion) {
  const GpuSpec gpu = tesla_k40();
  double previous = 0.0;
  for (const MemoryPattern pattern :
       {MemoryPattern::kCoalesced, MemoryPattern::kMixed,
        MemoryPattern::kStrided, MemoryPattern::kGather}) {
    const auto estimate = simulate_kernel(
        uniform_phase(500000, 1.0, 200.0, pattern), gpu, 32);
    EXPECT_GE(estimate.memory_seconds, previous)
        << to_string(pattern);
    previous = estimate.memory_seconds;
  }
}

TEST(GpuModel, FasterCardIsFasterEverywhere) {
  // future-work 5: a strictly better device must never be slower.
  const GpuSpec k40 = tesla_k40();
  const GpuSpec titan = titan_x();
  for (const MemoryPattern pattern :
       {MemoryPattern::kCoalesced, MemoryPattern::kGather}) {
    const auto phase = uniform_phase(2000000, 40.0, 120.0, pattern);
    EXPECT_LE(simulate_kernel(phase, titan, 32).seconds,
              simulate_kernel(phase, k40, 32).seconds)
        << to_string(pattern);
  }
}

TEST(GpuModel, BestNtbNeverExceedsVendorMax) {
  const GpuSpec gpu = tesla_k40();
  for (const MemoryPattern pattern :
       {MemoryPattern::kCoalesced, MemoryPattern::kMixed,
        MemoryPattern::kGather}) {
    const int best = best_ntb(uniform_phase(100000, 25.0, 90.0, pattern), gpu);
    EXPECT_GE(best, 1);
    EXPECT_LE(best, 1024);
    // Power of two by construction of the sweep.
    EXPECT_EQ(best & (best - 1), 0);
  }
}

TEST(GpuModel, IterationSumsFiveKernels) {
  const GpuSpec gpu = tesla_k40();
  IterationCosts costs;
  for (std::size_t p = 0; p < 5; ++p) {
    costs.phases[p] =
        uniform_phase(10000, 10.0, 60.0, MemoryPattern::kCoalesced);
  }
  const double total = gpu_iteration_seconds(costs, gpu, 32);
  const double single = simulate_kernel(costs.phases[0], gpu, 32).seconds;
  EXPECT_NEAR(total, 5.0 * single, 1e-12);
}

}  // namespace
}  // namespace paradmm::devsim
