#include <gtest/gtest.h>

#include <memory>

#include "core/factor_graph.hpp"
#include "core/prox_library.hpp"
#include "devsim/cost_model.hpp"

namespace paradmm::devsim {
namespace {

FactorGraph make_figure1_graph(std::uint32_t dim) {
  FactorGraph graph;
  const auto w = graph.add_variables(5, dim);
  const auto op = std::make_shared<ZeroProx>();
  graph.add_factor(op, {w[0], w[1], w[2]});
  graph.add_factor(op, {w[0], w[3], w[4]});
  graph.add_factor(op, {w[1], w[4]});
  graph.add_factor(op, {w[4]});
  return graph;
}

TEST(CostModelExtraction, PhaseCountsMatchGraph) {
  const FactorGraph graph = make_figure1_graph(2);
  const IterationCosts costs = extract_iteration_costs(graph);
  EXPECT_EQ(costs.phases[0].name, "x");
  EXPECT_EQ(costs.phases[0].count, graph.num_factors());
  EXPECT_EQ(costs.phases[1].name, "m");
  EXPECT_EQ(costs.phases[1].count, graph.num_edges());
  EXPECT_EQ(costs.phases[2].name, "z");
  EXPECT_EQ(costs.phases[2].count, graph.num_variables());
  EXPECT_EQ(costs.phases[3].count, graph.num_edges());
  EXPECT_EQ(costs.phases[4].count, graph.num_edges());
  EXPECT_EQ(costs.elements(), graph.elements());
}

TEST(CostModelExtraction, PatternsPerPhase) {
  const FactorGraph graph = make_figure1_graph(1);
  const IterationCosts costs = extract_iteration_costs(graph);
  EXPECT_EQ(costs.phases[0].pattern, MemoryPattern::kGather);
  EXPECT_EQ(costs.phases[1].pattern, MemoryPattern::kCoalesced);
  EXPECT_EQ(costs.phases[2].pattern, MemoryPattern::kGather);
  EXPECT_EQ(costs.phases[3].pattern, MemoryPattern::kMixed);
  EXPECT_EQ(costs.phases[4].pattern, MemoryPattern::kMixed);
}

TEST(CostModelExtraction, XPhaseUsesOperatorCost) {
  const FactorGraph graph = make_figure1_graph(2);
  const IterationCosts costs = extract_iteration_costs(graph);
  // Factor 0 has 3 edges of dim 2: ZeroProx cost is 1 flop and 16 B per
  // scalar, plus the 22-flop per-factor dispatch overhead.
  const TaskCost f0 = costs.phases[0].cost_at(0);
  EXPECT_DOUBLE_EQ(f0.flops, 6.0 + 22.0);
  EXPECT_DOUBLE_EQ(f0.bytes, 96.0);
  // Factor 3 has 1 edge of dim 2.
  const TaskCost f3 = costs.phases[0].cost_at(3);
  EXPECT_DOUBLE_EQ(f3.flops, 2.0 + 22.0);
}

TEST(CostModelExtraction, EdgePhaseFormulas) {
  const FactorGraph graph = make_figure1_graph(3);
  const IterationCosts costs = extract_iteration_costs(graph);
  const TaskCost m = costs.phases[1].cost_at(0);
  EXPECT_DOUBLE_EQ(m.flops, 3.0);
  EXPECT_DOUBLE_EQ(m.bytes, 72.0);
  const TaskCost u = costs.phases[3].cost_at(0);
  EXPECT_DOUBLE_EQ(u.flops, 9.0);
  EXPECT_DOUBLE_EQ(u.bytes, 96.0);
  const TaskCost n = costs.phases[4].cost_at(0);
  EXPECT_DOUBLE_EQ(n.flops, 3.0);
}

TEST(CostModelExtraction, ZPhaseScalesWithDegree) {
  const FactorGraph graph = make_figure1_graph(2);
  const IterationCosts costs = extract_iteration_costs(graph);
  // w5 (index 4) has degree 3; w3 (index 2) degree 1.
  const TaskCost z_w5 = costs.phases[2].cost_at(4);
  const TaskCost z_w3 = costs.phases[2].cost_at(2);
  EXPECT_GT(z_w5.flops, z_w3.flops);
  EXPECT_GT(z_w5.bytes, z_w3.bytes);
  EXPECT_DOUBLE_EQ(z_w5.flops, (2.0 * 3 + 1) * 2);
}

TEST(CostModelExtraction, EdgePhasesShareBranchClassPerPhase) {
  const FactorGraph graph = make_figure1_graph(1);
  const IterationCosts costs = extract_iteration_costs(graph);
  for (std::size_t p : {1u, 3u, 4u}) {
    const auto cls = costs.phases[p].cost_at(0).branch_class;
    for (std::size_t e = 1; e < costs.phases[p].count; ++e) {
      EXPECT_EQ(costs.phases[p].cost_at(e).branch_class, cls);
    }
  }
}

TEST(CostModelExtraction, FootprintMatchesGraph) {
  const FactorGraph graph = make_figure1_graph(2);
  const GraphFootprint footprint = extract_footprint(graph);
  EXPECT_EQ(footprint.edges, 9u);
  EXPECT_EQ(footprint.edge_scalars, 18u);
  EXPECT_EQ(footprint.variable_scalars, 10u);
  EXPECT_DOUBLE_EQ(footprint.z_bytes(), 80.0);
  EXPECT_DOUBLE_EQ(footprint.value_bytes(), 8.0 * (4 * 18 + 10));
  EXPECT_DOUBLE_EQ(footprint.metadata_bytes(), 32.0 * 9);
}

TEST(CostModelFormulas, PatternNames) {
  EXPECT_EQ(to_string(MemoryPattern::kCoalesced), "coalesced");
  EXPECT_EQ(to_string(MemoryPattern::kGather), "gather");
  EXPECT_EQ(to_string(MemoryPattern::kStrided), "strided");
  EXPECT_EQ(to_string(MemoryPattern::kMixed), "mixed");
}

}  // namespace
}  // namespace paradmm::devsim
