// Three-weight-algorithm semantics (paper ref [9]): POs may mark messages
// as certain (infinite weight) or no-opinion (zero weight), and the z- and
// u-phases honor those classes when the solver runs with
// RhoPolicy::kThreeWeight.
#include <gtest/gtest.h>

#include <memory>

#include "core/factor_graph.hpp"
#include "core/prox_library.hpp"
#include "core/solver.hpp"

namespace paradmm {
namespace {

/// Emits a fixed value and a fixed TWA weight on its single edge.
class FixedOpinionProx final : public ProxOperator {
 public:
  FixedOpinionProx(double value, Weight weight)
      : value_(value), weight_(weight) {}

  void apply(const ProxContext& ctx) const override {
    for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
      for (auto& v : ctx.output(k)) v = value_;
      ctx.set_weight(k, weight_);
    }
  }
  std::string_view name() const override { return "fixed-opinion"; }

 private:
  double value_;
  Weight weight_;
};

SolverOptions twa_options(int iterations) {
  SolverOptions options;
  options.rho_policy = RhoPolicy::kThreeWeight;
  options.max_iterations = iterations;
  options.check_interval = iterations;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  return options;
}

TEST(ThreeWeight, InfiniteWeightOverridesAverage) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<FixedOpinionProx>(10.0, Weight::kStandard),
                   {w});
  graph.add_factor(std::make_shared<FixedOpinionProx>(2.0, Weight::kInfinite),
                   {w});
  graph.set_uniform_parameters(1.0, 1.0);
  solve(graph, twa_options(3));
  // The certain message wins outright; the standard one is ignored.
  EXPECT_DOUBLE_EQ(graph.solution(w)[0], 2.0);
}

TEST(ThreeWeight, TiedInfiniteWeightsAverageEachOther) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<FixedOpinionProx>(4.0, Weight::kInfinite),
                   {w});
  graph.add_factor(std::make_shared<FixedOpinionProx>(8.0, Weight::kInfinite),
                   {w});
  graph.set_uniform_parameters(1.0, 1.0);
  solve(graph, twa_options(3));
  EXPECT_DOUBLE_EQ(graph.solution(w)[0], 6.0);
}

TEST(ThreeWeight, ZeroWeightIsIgnored) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<FixedOpinionProx>(100.0, Weight::kZero),
                   {w});
  graph.add_factor(std::make_shared<FixedOpinionProx>(7.0, Weight::kStandard),
                   {w});
  graph.set_uniform_parameters(1.0, 1.0);
  solve(graph, twa_options(3));
  // m for the standard edge is x + u; u stays 0 because x == z from the
  // first z-update on, so z equals the standard opinion.
  EXPECT_DOUBLE_EQ(graph.solution(w)[0], 7.0);
}

TEST(ThreeWeight, AllZeroWeightsKeepPreviousZ) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<FixedOpinionProx>(5.0, Weight::kZero),
                   {w});
  graph.set_uniform_parameters(1.0, 1.0);
  graph.mutable_z(w)[0] = -3.25;
  solve(graph, twa_options(2));
  EXPECT_DOUBLE_EQ(graph.solution(w)[0], -3.25);
}

TEST(ThreeWeight, NonStandardWeightsClearU) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<FixedOpinionProx>(1.0, Weight::kInfinite),
                   {w});
  graph.set_uniform_parameters(1.0, 1.0);
  graph.u_values()[0] = 42.0;
  solve(graph, twa_options(1));
  EXPECT_DOUBLE_EQ(graph.u_values()[0], 0.0);
}

TEST(ThreeWeight, StandardWeightsReduceToPlainAdmm) {
  // With every weight standard, the TWA z-update must match classic ADMM.
  auto build = [] {
    FactorGraph graph;
    const VariableId w = graph.add_variable(1);
    graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0}), {w});
    graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{9.0}), {w});
    graph.set_uniform_parameters(1.0, 1.0);
    return graph;
  };
  FactorGraph twa_graph = build();
  solve(twa_graph, twa_options(50));

  FactorGraph plain_graph = build();
  SolverOptions plain = twa_options(50);
  plain.rho_policy = RhoPolicy::kConstant;
  solve(plain_graph, plain);

  EXPECT_DOUBLE_EQ(twa_graph.solution(0)[0], plain_graph.solution(0)[0]);
}

}  // namespace
}  // namespace paradmm
