// Solver edge cases: degenerate option values, phase exposure, objective
// reporting, and state-reuse patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/factor_graph.hpp"
#include "core/prox_library.hpp"
#include "core/solver.hpp"

namespace paradmm {
namespace {

FactorGraph make_two_target_graph() {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{2.0}), {w});
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{8.0}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

TEST(SolverEdgeCases, ZeroMaxIterationsIsANoOp) {
  FactorGraph graph = make_two_target_graph();
  SolverOptions options;
  options.max_iterations = 0;
  const SolverReport report = solve(graph, options);
  EXPECT_EQ(report.iterations, 0);
  EXPECT_FALSE(report.converged);
  EXPECT_DOUBLE_EQ(graph.solution(0)[0], 0.0);  // untouched state
}

TEST(SolverEdgeCases, NonPositiveCheckIntervalRunsOneBatch) {
  FactorGraph graph = make_two_target_graph();
  SolverOptions options;
  options.max_iterations = 37;
  options.check_interval = 0;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  const SolverReport report = solve(graph, options);
  EXPECT_EQ(report.iterations, 37);
}

TEST(SolverEdgeCases, PhasesExposeTheFiveUpdates) {
  FactorGraph graph = make_two_target_graph();
  AdmmSolver solver(graph, SolverOptions{});
  const auto phases = solver.phases();
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases[0].name, "x");
  EXPECT_EQ(phases[0].count, graph.num_factors());
  EXPECT_EQ(phases[1].name, "m");
  EXPECT_EQ(phases[1].count, graph.num_edges());
  EXPECT_EQ(phases[2].name, "z");
  EXPECT_EQ(phases[2].count, graph.num_variables());
  EXPECT_EQ(phases[3].name, "u");
  EXPECT_EQ(phases[4].name, "n");
}

TEST(SolverEdgeCases, TimingsCanBeDisabled) {
  FactorGraph graph = make_two_target_graph();
  SolverOptions options;
  options.max_iterations = 20;
  options.record_phase_timings = false;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.phase_seconds.empty());
}

TEST(SolverEdgeCases, InvalidOptionsThrow) {
  FactorGraph graph = make_two_target_graph();
  SolverOptions options;
  options.max_iterations = -1;
  EXPECT_THROW(AdmmSolver(graph, options), PreconditionError);
  options = SolverOptions{};
  options.threads = 0;
  EXPECT_THROW(AdmmSolver(graph, options), PreconditionError);
}

TEST(SolverEdgeCases, WallSecondsArePopulated) {
  FactorGraph graph = make_two_target_graph();
  SolverOptions options;
  options.max_iterations = 100;
  const SolverReport report = solve(graph, options);
  EXPECT_GT(report.wall_seconds, 0.0);
}

/// An operator without `evaluate` forces objective() to report nullopt.
class SilentProx final : public ProxOperator {
 public:
  void apply(const ProxContext& ctx) const override {
    for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
      for (std::size_t d = 0; d < ctx.input(k).size(); ++d) {
        ctx.output(k)[d] = ctx.input(k)[d];
      }
    }
  }
  std::string_view name() const override { return "silent"; }
};

TEST(SolverEdgeCases, ObjectiveIsNulloptWithoutEvaluate) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<SilentProx>(), {w});
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  EXPECT_FALSE(graph.objective().has_value());
}

TEST(SolverEdgeCases, ObjectiveSumsAllFactors) {
  FactorGraph graph = make_two_target_graph();
  graph.mutable_z(0)[0] = 5.0;  // optimum of (w-2)^2/2 + (w-8)^2/2
  const auto objective = graph.objective();
  ASSERT_TRUE(objective.has_value());
  EXPECT_NEAR(*objective, 0.5 * 9.0 + 0.5 * 9.0, 1e-12);
}

TEST(SolverEdgeCases, WarmRestartPreservesConvergedState) {
  FactorGraph graph = make_two_target_graph();
  SolverOptions options;
  options.max_iterations = 2000;
  const SolverReport first = solve(graph, options);
  ASSERT_TRUE(first.converged);
  const double solution = graph.solution(0)[0];
  // A converged state must pass the very first check of a re-run.
  const SolverReport second = solve(graph, options);
  EXPECT_TRUE(second.converged);
  EXPECT_LE(second.iterations, options.check_interval);
  EXPECT_NEAR(graph.solution(0)[0], solution, 1e-12);
}

TEST(SolverEdgeCases, PerEdgeRhoChangesTheFixedPointWeights) {
  // Heavier rho on the first factor's edge pulls the consensus toward it.
  FactorGraph graph = make_two_target_graph();
  graph.set_edge_rho(0, 10.0);
  SolverOptions options;
  options.max_iterations = 5000;
  solve(graph, options);
  // The optimum of the *objective* is 5 regardless of rho; rho changes the
  // path, not the fixed point.
  EXPECT_NEAR(graph.solution(0)[0], 5.0, 1e-5);
}

}  // namespace
}  // namespace paradmm
