// End-to-end tests of the Algorithm-2 engine on problems with known optima,
// plus the backend-equivalence property the whole design rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/factor_graph.hpp"
#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "support/rng.hpp"

namespace paradmm {
namespace {

// ---- consensus averaging: min sum_i 1/2 (w - t_i)^2  =>  w* = mean(t_i).

FactorGraph make_consensus_graph(const std::vector<double>& targets) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  for (const double t : targets) {
    graph.add_factor(std::make_shared<SumSquaresProx>(1.0,
                                                      std::vector<double>{t}),
                     {w});
  }
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

TEST(SolverConsensus, AveragesTargets) {
  FactorGraph graph = make_consensus_graph({1.0, 2.0, 6.0});
  SolverOptions options;
  options.max_iterations = 400;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 3.0, 1e-6);
}

TEST(SolverConsensus, SingleFactorIsExactAfterOneCheck) {
  FactorGraph graph = make_consensus_graph({5.0});
  SolverOptions options;
  options.max_iterations = 200;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 5.0, 1e-6);
}

TEST(SolverConsensus, WeightedByCurvature) {
  // min 2/2 (w-1)^2 + 1/2 (w-4)^2  =>  w* = (2*1 + 1*4) / 3 = 2.
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(2.0, std::vector<double>{1.0}), {w});
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{4.0}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 600;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 2.0, 1e-6);
}

// ---- lasso scalar: min 1/2 (w - v)^2 + lambda |w|  =>  soft-threshold.

double soft_threshold(double v, double lambda) {
  if (v > lambda) return v - lambda;
  if (v < -lambda) return v + lambda;
  return 0.0;
}

class SolverLasso : public ::testing::TestWithParam<std::pair<double, double>> {
};

TEST_P(SolverLasso, MatchesSoftThreshold) {
  const auto [v, lambda] = GetParam();
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{v}), {w});
  graph.add_factor(std::make_shared<SoftThresholdProx>(lambda), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 3000;
  options.primal_tolerance = 1e-10;
  options.dual_tolerance = 1e-10;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], soft_threshold(v, lambda), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SolverLasso,
    ::testing::Values(std::pair{3.0, 1.0}, std::pair{-3.0, 1.0},
                      std::pair{0.4, 1.0}, std::pair{0.0, 0.5},
                      std::pair{10.0, 0.1}, std::pair{-0.2, 0.3}));

// ---- box-constrained proximity: min 1/2 ||w - v||^2 s.t. w in [0,1]^d.

TEST(SolverBox, ProjectsOntoBox) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(3);
  graph.add_factor(std::make_shared<SumSquaresProx>(
                       1.0, std::vector<double>{-1.0, 0.5, 2.0}),
                   {w});
  graph.add_factor(std::make_shared<BoxProx>(0.0, 1.0), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 2000;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 0.0, 1e-5);
  EXPECT_NEAR(graph.solution(0)[1], 0.5, 1e-5);
  EXPECT_NEAR(graph.solution(0)[2], 1.0, 1e-5);
}

// ---- halfspace-constrained: min 1/2||w - v||^2 s.t. <q,w> <= b.

TEST(SolverHalfspace, BindingConstraintProjection) {
  // v = (2,2), constraint x + y <= 2 -> w* = (1,1).
  FactorGraph graph;
  const VariableId w = graph.add_variable(2);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{2.0, 2.0}),
      {w});
  graph.add_factor(
      std::make_shared<HalfspaceProx>(std::vector<double>{1.0, 1.0}, 2.0),
      {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 2000;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 1.0, 1e-5);
  EXPECT_NEAR(graph.solution(0)[1], 1.0, 1e-5);
}

// ---- multi-variable graph exercises m/z/u/n bookkeeping across edges.

TEST(SolverMultiVariable, ChainConsensus) {
  // w1 ~ 1, w3 ~ 5, w1 = w2 = w3 through equality factors =>
  // all equal 3 at the optimum of 1/2(w1-1)^2 + 1/2(w3-5)^2.
  FactorGraph graph;
  const VariableId w1 = graph.add_variable(1);
  const VariableId w2 = graph.add_variable(1);
  const VariableId w3 = graph.add_variable(1);
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0}), {w1});
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{5.0}), {w3});
  const auto equality = std::make_shared<ConsensusEqualityProx>();
  graph.add_factor(equality, {w1, w2});
  graph.add_factor(equality, {w2, w3});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 5000;
  options.primal_tolerance = 1e-9;
  options.dual_tolerance = 1e-9;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(w1)[0], 3.0, 1e-5);
  EXPECT_NEAR(graph.solution(w2)[0], 3.0, 1e-5);
  EXPECT_NEAR(graph.solution(w3)[0], 3.0, 1e-5);
}

// ---- backend equivalence: every backend computes the same trajectory.

class SolverBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(SolverBackends, BitIdenticalToSerial) {
  auto build = [] {
    Rng rng(77);
    FactorGraph graph;
    std::vector<VariableId> vars;
    for (int i = 0; i < 20; ++i) vars.push_back(graph.add_variable(3));
    for (int i = 0; i < 19; ++i) {
      graph.add_factor(std::make_shared<ConsensusEqualityProx>(),
                       {vars[i], vars[i + 1]});
    }
    for (int i = 0; i < 20; ++i) {
      graph.add_factor(std::make_shared<SumSquaresProx>(
                           1.0, rng.gaussian_vector(3, 0.0, 2.0)),
                       {vars[i]});
    }
    graph.set_uniform_parameters(0.7, 1.1);
    Rng init(123);
    graph.randomize_state(-1.0, 1.0, init);
    return graph;
  };

  FactorGraph reference = build();
  SolverOptions serial_options;
  serial_options.max_iterations = 60;
  serial_options.check_interval = 60;
  serial_options.primal_tolerance = 0.0;  // run every iteration
  serial_options.dual_tolerance = 0.0;
  solve(reference, serial_options);

  FactorGraph graph = build();
  SolverOptions options = serial_options;
  options.backend = GetParam();
  options.threads = 4;
  solve(graph, options);

  const auto expected = reference.z_values();
  const auto actual = graph.z_values();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "z mismatch at scalar " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SolverBackends,
                         ::testing::Values(BackendKind::kForkJoin,
                                           BackendKind::kPersistent,
                                           BackendKind::kOmpForkJoin,
                                           BackendKind::kOmpPersistent),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param)) == "omp-fork-join"
                                      ? std::string("OmpForkJoin")
                                  : to_string(param_info.param) == "omp-persistent"
                                      ? std::string("OmpPersistent")
                                  : to_string(param_info.param) == "fork-join"
                                      ? std::string("ForkJoin")
                                      : std::string("Persistent");
                         });

// ---- solver mechanics.

TEST(SolverMechanics, RespectsMaxIterations) {
  FactorGraph graph = make_consensus_graph({0.0, 10.0});
  SolverOptions options;
  options.max_iterations = 7;
  options.check_interval = 3;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  const SolverReport report = solve(graph, options);
  EXPECT_EQ(report.iterations, 7);
  EXPECT_FALSE(report.converged);
}

TEST(SolverMechanics, CallbackCanStopEarly) {
  FactorGraph graph = make_consensus_graph({0.0, 10.0});
  SolverOptions options;
  options.max_iterations = 1000;
  options.check_interval = 10;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  AdmmSolver solver(graph, options);
  int calls = 0;
  const SolverReport report = solver.run([&calls](const IterationStatus&) {
    ++calls;
    return calls < 3;
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(report.iterations, 30);
}

TEST(SolverMechanics, CallbackSeesMonotoneIterations) {
  FactorGraph graph = make_consensus_graph({1.0, 2.0});
  SolverOptions options;
  options.max_iterations = 50;
  options.check_interval = 20;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  AdmmSolver solver(graph, options);
  std::vector<int> seen;
  solver.run([&seen](const IterationStatus& status) {
    seen.push_back(status.iteration);
    return true;
  });
  ASSERT_EQ(seen.size(), 3u);  // 20, 40, 50
  EXPECT_EQ(seen[0], 20);
  EXPECT_EQ(seen[1], 40);
  EXPECT_EQ(seen[2], 50);
}

TEST(SolverMechanics, PhaseTimingsCoverFivePhases) {
  FactorGraph graph = make_consensus_graph({1.0, 2.0, 3.0});
  SolverOptions options;
  options.max_iterations = 50;
  const SolverReport report = solve(graph, options);
  ASSERT_EQ(report.phase_seconds.size(), 5u);
  for (const double seconds : report.phase_seconds) {
    EXPECT_GE(seconds, 0.0);
  }
}

TEST(SolverMechanics, ResidualBalancingStillConverges) {
  FactorGraph graph = make_consensus_graph({-4.0, 0.0, 13.0});
  SolverOptions options;
  options.max_iterations = 2000;
  options.rho_policy = RhoPolicy::kResidualBalancing;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 3.0, 1e-5);
}

TEST(SolverMechanics, ObjectiveMatchesOptimum) {
  FactorGraph graph = make_consensus_graph({1.0, 5.0});
  SolverOptions options;
  options.max_iterations = 500;
  solve(graph, options);
  const auto objective = graph.objective();
  ASSERT_TRUE(objective.has_value());
  // min (w-1)^2/2 + (w-5)^2/2 at w=3: 2 + 2 = 4.
  EXPECT_NEAR(*objective, 4.0, 1e-5);
}

TEST(SolverMechanics, RerunRefinesSolution) {
  FactorGraph graph = make_consensus_graph({2.0, 8.0});
  SolverOptions options;
  options.max_iterations = 5;
  options.check_interval = 5;
  AdmmSolver solver(graph, options);
  solver.run();
  const double first = graph.solution(0)[0];
  solver.run();
  const double second = graph.solution(0)[0];
  EXPECT_LE(std::fabs(second - 5.0), std::fabs(first - 5.0) + 1e-12);
}

}  // namespace
}  // namespace paradmm
