// Asynchronous per-factor ADMM (extension): convergence to the same optima
// as the synchronous engine, order variants, and budget mechanics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/async_solver.hpp"
#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "problems/lasso/lasso.hpp"

namespace paradmm {
namespace {

FactorGraph make_consensus_graph(const std::vector<double>& targets) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  for (const double t : targets) {
    graph.add_factor(
        std::make_shared<SumSquaresProx>(1.0, std::vector<double>{t}), {w});
  }
  graph.set_uniform_parameters(1.0, 1.0);
  return graph;
}

class AsyncOrderCase : public ::testing::TestWithParam<AsyncOrder> {};

TEST_P(AsyncOrderCase, ConsensusConvergesToMean) {
  FactorGraph graph = make_consensus_graph({1.0, 2.0, 9.0});
  AsyncSolverOptions options;
  options.max_sweeps = 2000;
  options.order = GetParam();
  const AsyncSolverReport report = solve_async(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(0)[0], 4.0, 1e-5);
}

TEST_P(AsyncOrderCase, MatchesSynchronousLassoOptimum) {
  const auto instance = lasso::make_lasso_instance(40, 8, 2, 0.01, 3);
  lasso::LassoConfig config;
  config.blocks = 4;
  config.lambda = 0.05;

  lasso::LassoProblem sync_problem(instance, config);
  SolverOptions sync_options;
  sync_options.max_iterations = 30000;
  sync_options.primal_tolerance = 1e-10;
  sync_options.dual_tolerance = 1e-10;
  solve(sync_problem.graph(), sync_options);

  lasso::LassoProblem async_problem(instance, config);
  AsyncSolverOptions async_options;
  async_options.max_sweeps = 30000;
  async_options.primal_tolerance = 1e-10;
  async_options.dual_tolerance = 1e-10;
  async_options.order = GetParam();
  const AsyncSolverReport report =
      solve_async(async_problem.graph(), async_options);
  EXPECT_TRUE(report.converged);

  const auto sync_solution = sync_problem.solution();
  const auto async_solution = async_problem.solution();
  for (std::size_t i = 0; i < sync_solution.size(); ++i) {
    EXPECT_NEAR(async_solution[i], sync_solution[i], 1e-5)
        << "coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, AsyncOrderCase,
                         ::testing::Values(AsyncOrder::kRoundRobin,
                                           AsyncOrder::kRandomized),
                         [](const auto& param_info) {
                           return param_info.param == AsyncOrder::kRoundRobin
                                      ? "RoundRobin"
                                      : "Randomized";
                         });

TEST(AsyncSolver, RespectsSweepBudget) {
  FactorGraph graph = make_consensus_graph({0.0, 100.0});
  AsyncSolverOptions options;
  options.max_sweeps = 7;
  options.check_interval = 3;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  const AsyncSolverReport report = solve_async(graph, options);
  EXPECT_EQ(report.sweeps, 7);
  EXPECT_FALSE(report.converged);
}

TEST(AsyncSolver, CallbackCanStopEarly) {
  FactorGraph graph = make_consensus_graph({0.0, 100.0});
  AsyncSolverOptions options;
  options.max_sweeps = 1000;
  options.check_interval = 10;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  int calls = 0;
  const AsyncSolverReport report =
      solve_async(graph, options, [&calls](int, const Residuals&) {
        ++calls;
        return calls < 2;
      });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(report.sweeps, 20);
}

TEST(AsyncSolver, RandomizedOrderIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    FactorGraph graph = make_consensus_graph({1.0, 5.0, -2.0, 8.0});
    AsyncSolverOptions options;
    options.max_sweeps = 17;
    options.check_interval = 17;
    options.primal_tolerance = 0.0;
    options.dual_tolerance = 0.0;
    options.order = AsyncOrder::kRandomized;
    options.shuffle_seed = seed;
    solve_async(graph, options);
    return graph.solution(0)[0];
  };
  EXPECT_EQ(run(1), run(1));
}

TEST(AsyncSolver, RandomizedFixedSeedIsBitwiseDeterministicAcrossRuns) {
  // The sweep permutation is seeded from options.shuffle_seed alone, so a
  // fixed seed must reproduce the whole trajectory bit for bit across
  // independently built problems and solver instances.
  const auto run = [](std::uint64_t seed) {
    const auto instance = lasso::make_lasso_instance(30, 6, 2, 0.01, 11);
    lasso::LassoConfig config;
    config.blocks = 3;
    lasso::LassoProblem problem(instance, config);
    AsyncSolverOptions options;
    options.max_sweeps = 40;
    options.check_interval = 40;
    options.primal_tolerance = 0.0;
    options.dual_tolerance = 0.0;
    options.order = AsyncOrder::kRandomized;
    options.shuffle_seed = seed;
    solve_async(problem.graph(), options);
    const auto z = problem.graph().z_values();
    return std::vector<double>(z.begin(), z.end());
  };

  const auto first = run(77);
  const auto second = run(77);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "z scalar " << i;
  }

  // And a different seed visits factors in a different order, so the
  // (unconverged) trajectory differs somewhere.
  const auto other = run(78);
  bool any_difference = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i] != other[i]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(AsyncSolver, RoundRobinAndRandomizedAgreeOnConvexFixedPoint) {
  const auto instance = lasso::make_lasso_instance(40, 8, 2, 0.01, 5);
  lasso::LassoConfig config;
  config.blocks = 4;
  config.lambda = 0.05;

  const auto solve_with = [&](AsyncOrder order) {
    lasso::LassoProblem problem(instance, config);
    AsyncSolverOptions options;
    options.max_sweeps = 30000;
    options.primal_tolerance = 1e-10;
    options.dual_tolerance = 1e-10;
    options.order = order;
    const AsyncSolverReport report = solve_async(problem.graph(), options);
    EXPECT_TRUE(report.converged);
    return problem.solution();
  };

  const auto round_robin = solve_with(AsyncOrder::kRoundRobin);
  const auto randomized = solve_with(AsyncOrder::kRandomized);
  ASSERT_EQ(round_robin.size(), randomized.size());
  for (std::size_t i = 0; i < round_robin.size(); ++i) {
    EXPECT_NEAR(randomized[i], round_robin[i], 1e-5) << "coordinate " << i;
  }
}

TEST(AsyncSolver, ResidualsReportedAtTermination) {
  FactorGraph graph = make_consensus_graph({2.0, 4.0});
  AsyncSolverOptions options;
  options.max_sweeps = 500;
  const AsyncSolverReport report = solve_async(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.final_residuals.primal, options.primal_tolerance);
  EXPECT_LE(report.final_residuals.dual, options.dual_tolerance);
}

}  // namespace
}  // namespace paradmm
