// Kernel-layer parity: the dispatched SoA kernels (math/kernels.hpp) pin
// determinism contract v2 — elementwise kernels bitwise identical across
// modes (including tail remainders and unaligned slices), reductions
// toleranced across modes but width-independent within one, and the chunked
// phase path (Phase::apply_range) bitwise equal to the per-index reference
// on all four seed problems.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "math/kernels.hpp"
#include "parallel/backend.hpp"
#include "runtime/problem_registry.hpp"
#include "support/rng.hpp"

namespace paradmm {
namespace {

// The global kernel mode is a process-wide seam; every test restores it.
class ModeGuard {
 public:
  ModeGuard() : saved_(kernels::mode()) {}
  ~ModeGuard() { kernels::set_mode(saved_); }

 private:
  kernels::KernelMode saved_;
};

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform(-2.0, 2.0);
  return values;
}

// Sizes around the 4-lane stripe: empty, sub-stripe, exact multiples, and
// every tail remainder, plus a couple of bigger blocks.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                              15, 16, 17, 31, 32, 33, 64, 100};
// Slices into the graph arrays start at arbitrary edge offsets, so the
// kernels must behave identically on 16-byte-misaligned doubles.
const std::size_t kOffsets[] = {0, 1};

const kernels::KernelTable& scalar_table() {
  return kernels::table(kernels::KernelMode::kScalar);
}
const kernels::KernelTable& vectorized_table() {
  return kernels::table(kernels::KernelMode::kVectorized);
}

TEST(Kernels, ElementwiseKernelsAreBitwiseIdenticalAcrossModes) {
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto x = random_values(n + off, 11 * n + off);
      const auto y = random_values(n + off, 13 * n + off + 1);
      auto out_s = random_values(n + off, 17 * n + off + 2);
      auto out_v = out_s;  // identical starting state for += kernels
      const double* xp = x.data() + off;
      const double* yp = y.data() + off;
      double* sp = out_s.data() + off;
      double* vp = out_v.data() + off;
      const auto expect_equal = [&](const char* kernel) {
        for (std::size_t i = 0; i < out_s.size(); ++i) {
          ASSERT_EQ(out_s[i], out_v[i])
              << kernel << " diverged at n=" << n << " off=" << off
              << " i=" << i;
        }
      };

      scalar_table().m_update(xp, yp, sp, n);
      vectorized_table().m_update(xp, yp, vp, n);
      expect_equal("m_update");

      scalar_table().u_update(0.7, xp, yp, sp, n);
      vectorized_table().u_update(0.7, xp, yp, vp, n);
      expect_equal("u_update");

      scalar_table().n_update(xp, yp, sp, n);
      vectorized_table().n_update(xp, yp, vp, n);
      expect_equal("n_update");

      scalar_table().z_accumulate(1.3, xp, sp, n);
      vectorized_table().z_accumulate(1.3, xp, vp, n);
      expect_equal("z_accumulate");

      scalar_table().z_divide(1.7, sp, n);
      vectorized_table().z_divide(1.7, vp, n);
      expect_equal("z_divide");

      scalar_table().axpy(-0.3, xp, sp, n);
      vectorized_table().axpy(-0.3, xp, vp, n);
      expect_equal("axpy");

      scalar_table().fill(sp, 0.25, n);
      vectorized_table().fill(vp, 0.25, n);
      expect_equal("fill");
    }
  }
}

TEST(Kernels, ReductionsAgreeAcrossModesWithinTolerance) {
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto x = random_values(n + off, 23 * n + off);
      const auto y = random_values(n + off, 29 * n + off + 1);
      const double* xp = x.data() + off;
      const double* yp = y.data() + off;
      // Reassociation over values in [-2, 2] moves the sum by at most a few
      // ulps per element.
      const double tol = 1e-12 * static_cast<double>(n + 1);
      EXPECT_NEAR(scalar_table().dot(xp, yp, n),
                  vectorized_table().dot(xp, yp, n), tol);
      EXPECT_NEAR(scalar_table().norm2_squared(xp, n),
                  vectorized_table().norm2_squared(xp, n), tol);
      EXPECT_NEAR(scalar_table().distance_squared(xp, yp, n),
                  vectorized_table().distance_squared(xp, yp, n), tol);
      // Within a mode the accumulation order is a function of n alone, so
      // repeated calls are bitwise stable (the per-width guarantee).
      EXPECT_EQ(vectorized_table().dot(xp, yp, n),
                vectorized_table().dot(xp, yp, n));
    }
  }
}

TEST(Kernels, ModeSelectionRoundTrips) {
  ModeGuard guard;
  kernels::set_mode(kernels::KernelMode::kScalar);
  EXPECT_EQ(kernels::mode(), kernels::KernelMode::kScalar);
  EXPECT_EQ(&kernels::active(), &scalar_table());
  kernels::set_mode(kernels::KernelMode::kVectorized);
  EXPECT_EQ(kernels::mode(), kernels::KernelMode::kVectorized);
  EXPECT_EQ(&kernels::active(), &vectorized_table());
  EXPECT_STREQ(kernels::to_string(kernels::KernelMode::kScalar), "scalar");
  EXPECT_STREQ(kernels::to_string(kernels::KernelMode::kVectorized),
               "vectorized");
}

// ---------------------------------------------------------------- solver

const char* kSeedProblems[] = {"lasso", "mpc", "packing", "svm"};

SolverOptions fixed_iteration_options(int iterations) {
  SolverOptions options;
  options.max_iterations = iterations;
  options.check_interval = 0;
  options.primal_tolerance = 0.0;  // never converge: every run does exactly
  options.dual_tolerance = 0.0;    // `iterations` sweeps in lockstep
  return options;
}

// Runs `iterations` ADMM sweeps on a fresh registry-built instance and
// returns the final z array.  `strip_ranges` forces the per-index reference
// path; `threads` > 1 runs the fork-join backend at that width.
std::vector<double> run_trajectory(const std::string& problem, int iterations,
                                   bool strip_ranges, std::size_t threads) {
  runtime::BuiltProblem built = runtime::ProblemRegistry::global().build(problem);
  SolverOptions options = fixed_iteration_options(iterations);
  AdmmSolver solver(*built.graph, options);
  std::vector<Phase> phases(solver.phases().begin(), solver.phases().end());
  if (strip_ranges) {
    for (auto& phase : phases) phase.apply_range = nullptr;
  }
  const auto backend =
      threads <= 1 ? make_backend(BackendKind::kSerial, 1)
                   : make_backend(BackendKind::kForkJoin, threads);
  backend->run(phases, iterations);
  const auto z = built.graph->z_values();
  return {z.begin(), z.end()};
}

TEST(Kernels, ChunkedPhasePathMatchesPerIndexReferenceBitwise) {
  ModeGuard guard;
  // In *both* modes the range bodies perform the reference's per-element
  // operation sequence (the z-phase restructure included), so the chunked
  // path must be bitwise identical to the per-index closures.
  for (const auto mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kVectorized}) {
    kernels::set_mode(mode);
    for (const std::string problem : kSeedProblems) {
      const auto reference = run_trajectory(problem, 20, true, 1);
      const auto chunked = run_trajectory(problem, 20, false, 1);
      ASSERT_EQ(reference.size(), chunked.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i], chunked[i])
            << problem << " (" << kernels::to_string(mode)
            << ") diverged at z[" << i << "]";
      }
    }
  }
}

TEST(Kernels, TrajectoriesAreBitwiseWidthIndependentPerMode) {
  ModeGuard guard;
  // Contract v2 keeps the per-width guarantee: within one mode the chunk
  // partition never changes results, at any width.
  for (const auto mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kVectorized}) {
    kernels::set_mode(mode);
    for (const std::string problem : kSeedProblems) {
      const auto width1 = run_trajectory(problem, 20, false, 1);
      const auto width2 = run_trajectory(problem, 20, false, 2);
      const auto width4 = run_trajectory(problem, 20, false, 4);
      ASSERT_EQ(width1.size(), width2.size());
      ASSERT_EQ(width1.size(), width4.size());
      for (std::size_t i = 0; i < width1.size(); ++i) {
        ASSERT_EQ(width1[i], width2[i])
            << problem << " (" << kernels::to_string(mode)
            << ") width 2 diverged at z[" << i << "]";
        ASSERT_EQ(width1[i], width4[i])
            << problem << " (" << kernels::to_string(mode)
            << ") width 4 diverged at z[" << i << "]";
      }
    }
  }
}

TEST(Kernels, SeedProblemTrajectoriesAgreeAcrossModesWithinTolerance) {
  ModeGuard guard;
  // Across modes only the reduction order differs (dense prox inner
  // products, residuals); trajectories agree to reassociation rounding.
  for (const std::string problem : kSeedProblems) {
    kernels::set_mode(kernels::KernelMode::kScalar);
    const auto scalar = run_trajectory(problem, 20, false, 1);
    kernels::set_mode(kernels::KernelMode::kVectorized);
    const auto vectorized = run_trajectory(problem, 20, false, 1);
    ASSERT_EQ(scalar.size(), vectorized.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      const double tol = 1e-9 * (1.0 + std::abs(scalar[i]));
      ASSERT_NEAR(scalar[i], vectorized[i], tol)
          << problem << " diverged across modes at z[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace paradmm
