// Generic proximal operators: closed forms checked against analytic results
// and, property-style, against the reference numerical minimizer on random
// inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/prox_library.hpp"
#include "math/minimize.hpp"
#include "math/vec.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace paradmm {
namespace {

using testing::ProxHarness;
using testing::prox_objective;

TEST(ZeroProxTest, CopiesInput) {
  ProxHarness harness({3, 2}, {1.0, 2.0});
  harness.input(0)[0] = 1.5;
  harness.input(0)[2] = -2.5;
  harness.input(1)[1] = 0.25;
  harness.run(ZeroProx{});
  EXPECT_DOUBLE_EQ(harness.output(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(harness.output(0)[2], -2.5);
  EXPECT_DOUBLE_EQ(harness.output(1)[1], 0.25);
}

TEST(SumSquaresProxTest, ShrinksTowardOrigin) {
  // argmin c/2 s^2 + rho/2 (s-n)^2 = rho n / (rho + c).
  ProxHarness harness({1}, {2.0});
  harness.input(0)[0] = 3.0;
  harness.run(SumSquaresProx{1.0});
  EXPECT_NEAR(harness.output(0)[0], 2.0 * 3.0 / 3.0, 1e-12);
}

TEST(SumSquaresProxTest, ShrinksTowardTarget) {
  ProxHarness harness({2}, {1.0});
  harness.input(0)[0] = 0.0;
  harness.input(0)[1] = 4.0;
  harness.run(SumSquaresProx{3.0, std::vector<double>{1.0, 2.0}});
  // blend = 1/(1+3) = 0.25 -> x = 0.25 n + 0.75 target.
  EXPECT_NEAR(harness.output(0)[0], 0.75, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], 2.5, 1e-12);
}

TEST(SumSquaresProxTest, RejectsNonPositiveCurvature) {
  EXPECT_THROW(SumSquaresProx(-1.0), PreconditionError);
  EXPECT_THROW(SumSquaresProx(0.0), PreconditionError);
}

TEST(LinearProxTest, ShiftsByGradientOverRho) {
  ProxHarness harness({2}, {4.0});
  harness.input(0)[0] = 1.0;
  harness.input(0)[1] = -1.0;
  harness.run(LinearProx{{2.0, -6.0}});
  EXPECT_NEAR(harness.output(0)[0], 0.5, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], 0.5, 1e-12);
}

TEST(SoftThresholdProxTest, ThreeRegimes) {
  ProxHarness harness({3}, {2.0});
  harness.input(0)[0] = 3.0;    // above threshold 0.5
  harness.input(0)[1] = -0.2;   // inside
  harness.input(0)[2] = -4.0;   // below
  harness.run(SoftThresholdProx{1.0});
  EXPECT_NEAR(harness.output(0)[0], 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(harness.output(0)[1], 0.0);
  EXPECT_NEAR(harness.output(0)[2], -3.5, 1e-12);
}

TEST(BoxProxTest, Clamps) {
  ProxHarness harness({3}, {1.0});
  harness.input(0)[0] = -2.0;
  harness.input(0)[1] = 0.25;
  harness.input(0)[2] = 9.0;
  harness.run(BoxProx{0.0, 1.0});
  EXPECT_DOUBLE_EQ(harness.output(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(harness.output(0)[1], 0.25);
  EXPECT_DOUBLE_EQ(harness.output(0)[2], 1.0);
}

TEST(HalfspaceProxTest, FeasibleInputUntouched) {
  ProxHarness harness({2}, {1.0});
  harness.input(0)[0] = -1.0;
  harness.input(0)[1] = -1.0;
  harness.run(HalfspaceProx{{1.0, 1.0}, 0.0});
  EXPECT_DOUBLE_EQ(harness.output(0)[0], -1.0);
  EXPECT_DOUBLE_EQ(harness.output(0)[1], -1.0);
}

TEST(HalfspaceProxTest, UnweightedProjection) {
  // Project (2,0) onto x + y <= 0: lands at (1,-1).
  ProxHarness harness({2}, {1.0});
  harness.input(0)[0] = 2.0;
  harness.input(0)[1] = 0.0;
  harness.run(HalfspaceProx{{1.0, 1.0}, 0.0});
  EXPECT_NEAR(harness.output(0)[0], 1.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], -1.0, 1e-12);
}

TEST(HalfspaceProxTest, RhoWeightingBiasesProjection) {
  // Two 1-D edges with different rhos; constraint s0 + s1 <= 0.  The edge
  // with the larger rho should move less.
  ProxHarness harness({1, 1}, {10.0, 1.0});
  harness.input(0)[0] = 1.0;
  harness.input(1)[0] = 1.0;
  harness.run(HalfspaceProx{{1.0, 1.0}, 0.0});
  const double moved_heavy = std::fabs(harness.output(0)[0] - 1.0);
  const double moved_light = std::fabs(harness.output(1)[0] - 1.0);
  EXPECT_LT(moved_heavy, moved_light);
  EXPECT_NEAR(harness.output(0)[0] + harness.output(1)[0], 0.0, 1e-10);
}

TEST(AffineEqualityProxTest, SatisfiesConstraintExactly) {
  // Constraint s0 - s1 = 1 over two 1-D edges.
  Matrix a{{1.0, -1.0}};
  ProxHarness harness({1, 1}, {1.0, 1.0});
  harness.input(0)[0] = 0.0;
  harness.input(1)[0] = 0.0;
  harness.run(AffineEqualityProx{a, {1.0}});
  EXPECT_NEAR(harness.output(0)[0] - harness.output(1)[0], 1.0, 1e-10);
  // Symmetric weights -> symmetric split.
  EXPECT_NEAR(harness.output(0)[0], 0.5, 1e-10);
  EXPECT_NEAR(harness.output(1)[0], -0.5, 1e-10);
}

TEST(ConsensusEqualityProxTest, WeightedAverage) {
  ProxHarness harness({2, 2}, {3.0, 1.0});
  harness.input(0)[0] = 4.0;
  harness.input(0)[1] = 0.0;
  harness.input(1)[0] = 0.0;
  harness.input(1)[1] = 8.0;
  harness.run(ConsensusEqualityProx{});
  // (3*4 + 1*0)/4 = 3 and (3*0 + 1*8)/4 = 2 on both edges.
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(harness.output(k)[0], 3.0, 1e-12);
    EXPECT_NEAR(harness.output(k)[1], 2.0, 1e-12);
  }
}

// ---- property tests: closed forms beat/match the numerical minimizer.

struct ProxPropertyCase {
  std::uint64_t seed;
};

class ProxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProxProperty, SoftThresholdMatchesGoldenSection) {
  Rng rng(GetParam());
  const double lambda = rng.uniform(0.0, 2.0);
  const double rho = rng.uniform(0.1, 5.0);
  const double n = rng.uniform(-4.0, 4.0);
  ProxHarness harness({1}, {rho});
  harness.input(0)[0] = n;
  harness.run(SoftThresholdProx{lambda});
  const double numeric = golden_section_minimize(
      [&](double s) {
        return lambda * std::fabs(s) + 0.5 * rho * (s - n) * (s - n);
      },
      -10.0, 10.0);
  EXPECT_NEAR(harness.output(0)[0], numeric, 1e-6);
}

TEST_P(ProxProperty, HalfspaceBeatsNumericalMinimizer) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const std::vector<std::uint32_t> dims = {2, 1};
  const std::vector<double> rhos = {rng.uniform(0.2, 4.0),
                                    rng.uniform(0.2, 4.0)};
  ProxHarness harness(dims, rhos);
  std::vector<double> normal(3);
  for (auto& v : normal) v = rng.gaussian();
  if (vec::norm2(std::span<const double>(normal)) < 0.1) normal[0] += 1.0;
  const double offset = rng.uniform(-1.0, 1.0);
  for (std::size_t k = 0; k < 2; ++k) {
    for (auto& v : harness.input(k)) v = rng.uniform(-2.0, 2.0);
  }
  harness.run(HalfspaceProx{normal, offset});

  const auto scalar_rho = harness.scalar_rhos();
  const auto n = harness.stacked_input();
  const auto x = harness.stacked_output();

  // Feasibility.
  double activation = -offset;
  for (std::size_t i = 0; i < x.size(); ++i) activation += normal[i] * x[i];
  EXPECT_LE(activation, 1e-8);

  // Optimality: no feasible point found numerically does better.
  auto objective = [&](std::span<const double> s) {
    return prox_objective(0.0, s, n, scalar_rho);
  };
  auto project = [&](std::span<double> s) {
    double a = -offset;
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      a += normal[i] * s[i];
      norm_sq += normal[i] * normal[i];
    }
    if (a > 0.0) {
      for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] -= a * normal[i] / norm_sq;
      }
    }
  };
  const MinimizeResult numeric =
      projected_gradient_minimize(objective, project, n, 5000, 1e-12);
  EXPECT_LE(objective(x), numeric.value + 1e-6);
}

TEST_P(ProxProperty, AffineEqualityBeatsNumericalMinimizer) {
  Rng rng(GetParam() ^ 0x1234ULL);
  const std::vector<std::uint32_t> dims = {2, 2};
  const std::vector<double> rhos = {rng.uniform(0.5, 2.0),
                                    rng.uniform(0.5, 2.0)};
  ProxHarness harness(dims, rhos);
  Matrix a(1, 4);
  for (std::size_t c = 0; c < 4; ++c) a(0, c) = rng.gaussian();
  a(0, 0) += 2.0;  // keep the row well-conditioned
  const double b = rng.uniform(-1.0, 1.0);
  for (std::size_t k = 0; k < 2; ++k) {
    for (auto& v : harness.input(k)) v = rng.uniform(-2.0, 2.0);
  }
  harness.run(AffineEqualityProx{a, {b}});

  const auto x = harness.stacked_output();
  double image = 0.0;
  for (std::size_t c = 0; c < 4; ++c) image += a(0, c) * x[c];
  EXPECT_NEAR(image, b, 1e-9);

  const auto scalar_rho = harness.scalar_rhos();
  const auto n = harness.stacked_input();
  auto objective = [&](std::span<const double> s) {
    return prox_objective(0.0, s, n, scalar_rho);
  };
  double row_norm_sq = 0.0;
  for (std::size_t c = 0; c < 4; ++c) row_norm_sq += a(0, c) * a(0, c);
  auto project = [&](std::span<double> s) {
    double violation = -b;
    for (std::size_t c = 0; c < 4; ++c) violation += a(0, c) * s[c];
    for (std::size_t c = 0; c < 4; ++c) {
      s[c] -= violation * a(0, c) / row_norm_sq;
    }
  };
  const MinimizeResult numeric =
      projected_gradient_minimize(objective, project, n, 5000, 1e-12);
  EXPECT_LE(objective(x), numeric.value + 1e-6);
}

TEST_P(ProxProperty, ConsensusEqualityBeatsNumericalMinimizer) {
  Rng rng(GetParam() ^ 0x9999ULL);
  const std::vector<std::uint32_t> dims = {2, 2, 2};
  const std::vector<double> rhos = {rng.uniform(0.2, 3.0),
                                    rng.uniform(0.2, 3.0),
                                    rng.uniform(0.2, 3.0)};
  ProxHarness harness(dims, rhos);
  for (std::size_t k = 0; k < 3; ++k) {
    for (auto& v : harness.input(k)) v = rng.uniform(-3.0, 3.0);
  }
  harness.run(ConsensusEqualityProx{});

  // All edges equal.
  for (std::size_t k = 1; k < 3; ++k) {
    EXPECT_NEAR(harness.output(k)[0], harness.output(0)[0], 1e-12);
    EXPECT_NEAR(harness.output(k)[1], harness.output(0)[1], 1e-12);
  }

  // The common value minimizes the weighted quadratic: compare against the
  // direct scalar optimum per dimension.
  for (std::size_t d = 0; d < 2; ++d) {
    double numerator = 0.0;
    double denominator = 0.0;
    for (std::size_t k = 0; k < 3; ++k) {
      numerator += rhos[k] * harness.input(k)[d];
      denominator += rhos[k];
    }
    EXPECT_NEAR(harness.output(0)[d], numerator / denominator, 1e-12);
  }
}

TEST_P(ProxProperty, SimplexProjectionIsFeasibleAndOptimal) {
  Rng rng(GetParam() ^ 0x51u);
  ProxHarness harness({5}, {rng.uniform(0.2, 3.0)});
  for (auto& v : harness.input(0)) v = rng.uniform(-2.0, 2.0);
  harness.run(SimplexProx{1.0});

  // Feasibility: nonnegative, sums to one.
  double sum = 0.0;
  for (const double v : harness.output(0)) {
    EXPECT_GE(v, -1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);

  // Optimality vs exact brute force: enumerate every support set, solve
  // the equality-constrained projection on it, keep the best feasible one.
  const auto n = harness.stacked_input();
  const auto scalar_rho = harness.scalar_rhos();
  auto objective = [&](std::span<const double> s) {
    return prox_objective(0.0, s, n, scalar_rho);
  };
  const std::size_t d = n.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 1; mask < (1u << d); ++mask) {
    double support_sum = 0.0;
    int support_size = 0;
    for (std::size_t i = 0; i < d; ++i) {
      if (mask & (1u << i)) {
        support_sum += n[i];
        ++support_size;
      }
    }
    const double tau = (support_sum - 1.0) / support_size;
    std::vector<double> candidate(d, 0.0);
    bool feasible = true;
    for (std::size_t i = 0; i < d; ++i) {
      if (mask & (1u << i)) {
        candidate[i] = n[i] - tau;
        feasible = feasible && candidate[i] >= -1e-12;
      }
    }
    if (feasible) best = std::min(best, objective(candidate));
  }
  EXPECT_LE(objective(harness.stacked_output()), best + 1e-9);
  EXPECT_GE(objective(harness.stacked_output()), best - 1e-9);
}

TEST_P(ProxProperty, SecondOrderConeProjectionCases) {
  Rng rng(GetParam() ^ 0x50cu);
  ProxHarness harness({4}, {rng.uniform(0.2, 3.0)});
  for (auto& v : harness.input(0)) v = rng.uniform(-2.0, 2.0);
  const std::vector<double> n = harness.stacked_input();
  harness.run(SecondOrderConeProx{});
  const auto out = harness.output(0);

  // Feasibility: ||v|| <= t.
  const double norm = std::hypot(out[0], std::hypot(out[1], out[2]));
  EXPECT_LE(norm, out[3] + 1e-9);

  const double in_norm = std::hypot(n[0], std::hypot(n[1], n[2]));
  if (in_norm <= n[3]) {
    // Interior: identity.
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i], n[i]);
  } else if (in_norm <= -n[3]) {
    // Polar cone: origin.
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i], 0.0);
  } else {
    // Boundary case: the projection lands ON the cone surface and the
    // residual (out - n) is orthogonal to the cone's ray through out.
    EXPECT_NEAR(norm, out[3], 1e-9);
    double residual_dot_ray = 0.0;
    for (int i = 0; i < 4; ++i) {
      residual_dot_ray += (out[i] - n[i]) * out[i];
    }
    EXPECT_NEAR(residual_dot_ray, 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProxProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(SimplexProxTest, UniformInputGivesUniformWeights) {
  ProxHarness harness({4}, {1.0});
  for (auto& v : harness.input(0)) v = 7.0;
  harness.run(SimplexProx{1.0});
  for (const double v : harness.output(0)) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(SimplexProxTest, DominantCoordinateTakesAll) {
  ProxHarness harness({3}, {1.0});
  harness.input(0)[0] = 10.0;
  harness.input(0)[1] = 0.0;
  harness.input(0)[2] = -1.0;
  harness.run(SimplexProx{1.0});
  EXPECT_NEAR(harness.output(0)[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(harness.output(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(harness.output(0)[2], 0.0);
}

TEST(SimplexProxTest, RespectsCustomTotal) {
  ProxHarness harness({2}, {1.0});
  harness.input(0)[0] = 1.0;
  harness.input(0)[1] = 1.0;
  harness.run(SimplexProx{4.0});
  EXPECT_NEAR(harness.output(0)[0], 2.0, 1e-12);
  EXPECT_NEAR(harness.output(0)[1], 2.0, 1e-12);
}

TEST(SimplexProxTest, RejectsNonPositiveTotal) {
  EXPECT_THROW(SimplexProx{0.0}, PreconditionError);
}

TEST(SecondOrderConeProxTest, RejectsScalarEdge) {
  ProxHarness harness({1}, {1.0});
  EXPECT_THROW(harness.run(SecondOrderConeProx{}), PreconditionError);
}

}  // namespace
}  // namespace paradmm
