#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/factor_graph.hpp"
#include "core/prox_library.hpp"
#include "core/residuals.hpp"

namespace paradmm {
namespace {

FactorGraph make_two_edge_graph() {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<ZeroProx>(), {w});
  graph.add_factor(std::make_shared<ZeroProx>(), {w});
  graph.set_uniform_parameters(2.0, 1.0);
  return graph;
}

TEST(ResidualsTest, ZeroWhenConsensusHolds) {
  FactorGraph graph = make_two_edge_graph();
  graph.x_values()[0] = 1.5;
  graph.x_values()[1] = 1.5;
  graph.mutable_z(0)[0] = 1.5;
  const std::vector<double> z_prev = {1.5};
  const Residuals residuals = compute_residuals(graph, z_prev);
  EXPECT_DOUBLE_EQ(residuals.primal, 0.0);
  EXPECT_DOUBLE_EQ(residuals.dual, 0.0);
  EXPECT_TRUE(residuals.within(1e-12, 1e-12));
}

TEST(ResidualsTest, PrimalIsRmsOfEdgeGaps) {
  FactorGraph graph = make_two_edge_graph();
  graph.x_values()[0] = 1.0;  // gap 1
  graph.x_values()[1] = -1.0; // gap -1
  graph.mutable_z(0)[0] = 0.0;
  const std::vector<double> z_prev = {0.0};
  const Residuals residuals = compute_residuals(graph, z_prev);
  EXPECT_NEAR(residuals.primal, 1.0, 1e-12);  // sqrt((1+1)/2)
  EXPECT_DOUBLE_EQ(residuals.dual, 0.0);
}

TEST(ResidualsTest, DualScalesWithRhoAndZStep) {
  FactorGraph graph = make_two_edge_graph();  // rho = 2 everywhere
  graph.mutable_z(0)[0] = 3.0;
  const std::vector<double> z_prev = {1.0};  // step of 2, times rho 2 -> 4
  const Residuals residuals = compute_residuals(graph, z_prev);
  EXPECT_NEAR(residuals.dual, 4.0, 1e-12);
}

TEST(ResidualsTest, MissingSnapshotReportsInfiniteDual) {
  FactorGraph graph = make_two_edge_graph();
  const Residuals residuals = compute_residuals(graph, {});
  EXPECT_TRUE(std::isinf(residuals.dual));
  EXPECT_FALSE(residuals.within(1.0, 1.0));
}

TEST(ResidualsTest, WrongSnapshotLengthThrows) {
  FactorGraph graph = make_two_edge_graph();
  const std::vector<double> bad = {0.0, 0.0};
  EXPECT_THROW(compute_residuals(graph, bad), PreconditionError);
}

TEST(ResidualsTest, WithinChecksBothBounds) {
  Residuals residuals;
  residuals.primal = 0.5;
  residuals.dual = 2.0;
  EXPECT_TRUE(residuals.within(1.0, 3.0));
  EXPECT_FALSE(residuals.within(0.1, 3.0));
  EXPECT_FALSE(residuals.within(1.0, 1.0));
}

}  // namespace
}  // namespace paradmm
