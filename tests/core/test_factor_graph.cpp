// FactorGraph topology, layout, and bookkeeping tests, anchored on the
// paper's Figure-1 example graph.
#include <gtest/gtest.h>

#include <memory>

#include "core/factor_graph.hpp"
#include "core/prox_library.hpp"
#include "support/rng.hpp"

namespace paradmm {
namespace {

/// The paper's Figure-1 graph:
///   f1(w1,w2,w3), f2(w1,w4,w5), f3(w2,w5), f4(w5)
/// with every variable of dimension `dim`.
FactorGraph make_figure1_graph(std::uint32_t dim) {
  FactorGraph graph;
  const auto w = graph.add_variables(5, dim);
  const auto op = std::make_shared<ZeroProx>();
  graph.add_factor(op, {w[0], w[1], w[2]});
  graph.add_factor(op, {w[0], w[3], w[4]});
  graph.add_factor(op, {w[1], w[4]});
  graph.add_factor(op, {w[4]});
  return graph;
}

TEST(FactorGraphTopology, Figure1Counts) {
  const FactorGraph graph = make_figure1_graph(2);
  EXPECT_EQ(graph.num_variables(), 5u);
  EXPECT_EQ(graph.num_factors(), 4u);
  EXPECT_EQ(graph.num_edges(), 9u);
  // |F| + 3|E| + |V| parallel tasks per iteration.
  EXPECT_EQ(graph.elements(), 4u + 27u + 5u);
}

TEST(FactorGraphTopology, EdgeOrderFollowsCreation) {
  const FactorGraph graph = make_figure1_graph(1);
  // Edge-ordered arrays exactly as the paper's Gpu_graph.x:
  // [(1,1),(1,2),(1,3),(2,1),(2,4),(2,5),(3,2),(3,5),(4,5)]
  const std::vector<VariableId> expected_vars = {0, 1, 2, 0, 3, 4, 1, 4, 4};
  const std::vector<FactorId> expected_factors = {0, 0, 0, 1, 1, 1, 2, 2, 3};
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_EQ(graph.edge_variable(e), expected_vars[e]) << "edge " << e;
    EXPECT_EQ(graph.edge_factor(e), expected_factors[e]) << "edge " << e;
  }
}

TEST(FactorGraphTopology, FactorEdgesAreContiguous) {
  const FactorGraph graph = make_figure1_graph(3);
  EXPECT_EQ(graph.factor_edge_begin(0), 0u);
  EXPECT_EQ(graph.factor_edge_begin(1), 3u);
  EXPECT_EQ(graph.factor_edge_begin(2), 6u);
  EXPECT_EQ(graph.factor_edge_begin(3), 8u);
  EXPECT_EQ(graph.factor_degree(0), 3u);
  EXPECT_EQ(graph.factor_degree(3), 1u);
}

TEST(FactorGraphTopology, EdgeOffsetsArePrefixSumsOfDims) {
  const FactorGraph graph = make_figure1_graph(4);
  std::uint64_t expected = 0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_EQ(graph.edge_offset(e), expected);
    expected += graph.edge_dim(e);
  }
  EXPECT_EQ(graph.edge_scalars(), expected);
  EXPECT_EQ(graph.edge_scalars(), 9u * 4u);
}

TEST(FactorGraphTopology, HeterogeneousDims) {
  FactorGraph graph;
  const VariableId center = graph.add_variable(2);  // 2-D center
  const VariableId radius = graph.add_variable(1);  // 1-D radius
  graph.add_factor(std::make_shared<ZeroProx>(), {center, radius});
  EXPECT_EQ(graph.edge_dim(0), 2u);
  EXPECT_EQ(graph.edge_dim(1), 1u);
  EXPECT_EQ(graph.edge_scalars(), 3u);
  EXPECT_EQ(graph.variable_scalars(), 3u);
  EXPECT_EQ(graph.variable_offset(radius), 2u);
}

TEST(FactorGraphTopology, VariableDegreesAndCsr) {
  const FactorGraph graph = make_figure1_graph(1);
  EXPECT_EQ(graph.variable_degree(0), 2u);
  EXPECT_EQ(graph.variable_degree(1), 2u);
  EXPECT_EQ(graph.variable_degree(2), 1u);
  EXPECT_EQ(graph.variable_degree(3), 1u);
  EXPECT_EQ(graph.variable_degree(4), 3u);
  EXPECT_EQ(graph.max_variable_degree(), 3u);

  const auto w5_edges = graph.variable_edges(4);
  ASSERT_EQ(w5_edges.size(), 3u);
  EXPECT_EQ(w5_edges[0], 5u);  // (f2, w5)
  EXPECT_EQ(w5_edges[1], 7u);  // (f3, w5)
  EXPECT_EQ(w5_edges[2], 8u);  // (f4, w5)
}

TEST(FactorGraphTopology, CsrRebuildsAfterGrowth) {
  FactorGraph graph = make_figure1_graph(1);
  EXPECT_EQ(graph.variable_degree(4), 3u);
  graph.add_factor(std::make_shared<ZeroProx>(), {VariableId{4}});
  EXPECT_EQ(graph.variable_degree(4), 4u);
  EXPECT_EQ(graph.num_edges(), 10u);
}

TEST(FactorGraphParameters, UniformAssignment) {
  FactorGraph graph = make_figure1_graph(1);
  graph.set_uniform_parameters(2.5, 0.9);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(graph.edge_rho(e), 2.5);
    EXPECT_DOUBLE_EQ(graph.edge_alpha(e), 0.9);
  }
}

TEST(FactorGraphParameters, PerEdgeOverride) {
  FactorGraph graph = make_figure1_graph(1);
  graph.set_uniform_parameters(1.0, 1.0);
  graph.set_edge_rho(3, 7.0);
  graph.set_edge_alpha(3, 0.5);
  EXPECT_DOUBLE_EQ(graph.edge_rho(3), 7.0);
  EXPECT_DOUBLE_EQ(graph.edge_alpha(3), 0.5);
  EXPECT_DOUBLE_EQ(graph.edge_rho(2), 1.0);
}

TEST(FactorGraphParameters, RejectsNonPositiveRho) {
  FactorGraph graph = make_figure1_graph(1);
  EXPECT_THROW(graph.set_uniform_parameters(0.0, 1.0), PreconditionError);
  EXPECT_THROW(graph.set_edge_rho(0, -1.0), PreconditionError);
}

TEST(FactorGraphState, RandomizeWithinBounds) {
  FactorGraph graph = make_figure1_graph(3);
  Rng rng(42);
  graph.randomize_state(-0.5, 0.25, rng);
  auto check = [](std::span<const double> values) {
    for (const double v : values) {
      EXPECT_GE(v, -0.5);
      EXPECT_LE(v, 0.25);
    }
  };
  check(graph.x_values());
  check(graph.m_values());
  check(graph.z_values());
  check(graph.u_values());
  check(graph.n_values());
}

TEST(FactorGraphState, ResetClearsEverything) {
  FactorGraph graph = make_figure1_graph(2);
  Rng rng(7);
  graph.randomize_state(1.0, 2.0, rng);
  graph.reset_state();
  for (const double v : graph.x_values()) EXPECT_EQ(v, 0.0);
  for (const double v : graph.z_values()) EXPECT_EQ(v, 0.0);
  for (const double v : graph.n_values()) EXPECT_EQ(v, 0.0);
  for (const Weight w : graph.edge_weights()) {
    EXPECT_EQ(w, Weight::kStandard);
  }
}

TEST(FactorGraphState, SolutionSpansAlias) {
  FactorGraph graph = make_figure1_graph(2);
  graph.mutable_z(3)[1] = 9.5;
  EXPECT_DOUBLE_EQ(graph.solution(3)[1], 9.5);
  EXPECT_DOUBLE_EQ(graph.z_values()[3 * 2 + 1], 9.5);
}

TEST(FactorGraphValidation, RejectsUnknownVariable) {
  FactorGraph graph;
  graph.add_variable(1);
  EXPECT_THROW(
      graph.add_factor(std::make_shared<ZeroProx>(), {VariableId{3}}),
      PreconditionError);
}

TEST(FactorGraphValidation, RejectsEmptyFactor) {
  FactorGraph graph;
  EXPECT_THROW(graph.add_factor(std::make_shared<ZeroProx>(),
                                std::span<const VariableId>{}),
               PreconditionError);
}

TEST(FactorGraphValidation, RejectsNullOperator) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  EXPECT_THROW(graph.add_factor(nullptr, {w}), PreconditionError);
}

TEST(FactorGraphValidation, RejectsZeroDimensionVariable) {
  FactorGraph graph;
  EXPECT_THROW(graph.add_variable(0), PreconditionError);
}

// The packing element-count formula the paper states: a factor graph for N
// circles and S walls has 2N^2 - N + 2NS edges, 2N variable nodes, and
// N(N-1)/2 + N + NS function nodes.  Built here structurally (with ZeroProx
// placeholders) to pin the topology math the packing builder must follow.
TEST(FactorGraphTopology, PackingCountFormula) {
  constexpr std::size_t kCircles = 7;
  constexpr std::size_t kWalls = 3;
  FactorGraph graph;
  std::vector<VariableId> centers;
  std::vector<VariableId> radii;
  for (std::size_t i = 0; i < kCircles; ++i) {
    centers.push_back(graph.add_variable(2));
    radii.push_back(graph.add_variable(1));
  }
  const auto op = std::make_shared<ZeroProx>();
  for (std::size_t i = 0; i < kCircles; ++i) {
    for (std::size_t j = i + 1; j < kCircles; ++j) {
      graph.add_factor(op, {centers[i], radii[i], centers[j], radii[j]});
    }
  }
  for (std::size_t i = 0; i < kCircles; ++i) {
    for (std::size_t s = 0; s < kWalls; ++s) {
      graph.add_factor(op, {centers[i], radii[i]});
    }
  }
  for (std::size_t i = 0; i < kCircles; ++i) graph.add_factor(op, {radii[i]});

  EXPECT_EQ(graph.num_variables(), 2 * kCircles);
  EXPECT_EQ(graph.num_edges(),
            2 * kCircles * kCircles - kCircles + 2 * kCircles * kWalls);
  EXPECT_EQ(graph.num_factors(),
            kCircles * (kCircles - 1) / 2 + kCircles + kCircles * kWalls);
}

}  // namespace
}  // namespace paradmm
