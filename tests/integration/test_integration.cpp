// Cross-module integration tests: whole problems solved through every
// backend, policy combinations, and failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/prox_library.hpp"
#include "core/solver.hpp"
#include "problems/lasso/lasso.hpp"
#include "problems/mpc/builder.hpp"
#include "problems/packing/builder.hpp"
#include "problems/svm/builder.hpp"

namespace paradmm {
namespace {

// ---- every backend computes the same packing trajectory.

class PackingBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(PackingBackends, TrajectoryMatchesSerial) {
  auto build = [] {
    packing::PackingConfig config;
    config.circles = 5;
    config.seed = 31;
    return packing::PackingProblem(config);
  };
  auto run = [](packing::PackingProblem& problem, BackendKind kind) {
    SolverOptions options;
    options.backend = kind;
    options.threads = 3;
    options.max_iterations = 120;
    options.check_interval = 120;
    options.primal_tolerance = 0.0;
    options.dual_tolerance = 0.0;
    solve(problem.graph(), options);
  };
  packing::PackingProblem reference = build();
  run(reference, BackendKind::kSerial);
  packing::PackingProblem problem = build();
  run(problem, GetParam());
  const auto expected = reference.graph().z_values();
  const auto actual = problem.graph().z_values();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "z scalar " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PackingBackends,
                         ::testing::Values(BackendKind::kForkJoin,
                                           BackendKind::kPersistent,
                                           BackendKind::kOmpForkJoin,
                                           BackendKind::kOmpPersistent),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case BackendKind::kForkJoin: return "ForkJoin";
                             case BackendKind::kPersistent:
                               return "Persistent";
                             case BackendKind::kOmpForkJoin:
                               return "OmpForkJoin";
                             default: return "OmpPersistent";
                           }
                         });

// ---- three-weight packing end to end.

TEST(ThreeWeightPacking, ConvergesFeasiblyAndFaster) {
  auto run = [](bool twa) {
    packing::PackingConfig config;
    config.circles = 5;
    config.seed = 42;
    config.use_three_weight = twa;
    packing::PackingProblem problem(config);
    SolverOptions options;
    options.max_iterations = 40000;
    options.check_interval = 250;
    options.primal_tolerance = 1e-8;
    options.dual_tolerance = 1e-8;
    if (twa) options.rho_policy = RhoPolicy::kThreeWeight;
    const SolverReport report = solve(problem.graph(), options);
    EXPECT_TRUE(report.converged);
    EXPECT_LT(problem.max_overlap(), 1e-4);
    EXPECT_LT(problem.max_wall_violation(), 1e-4);
    return report.iterations;
  };
  const int plain_iterations = run(false);
  const int twa_iterations = run(true);
  // TWA withdraws inactive constraints from the consensus; on packing this
  // consistently shortens the path (bench_ablation_three_weight).
  EXPECT_LE(twa_iterations, plain_iterations);
}

TEST(ThreeWeightPacking, WeightsAreEmittedDuringSolve) {
  packing::PackingConfig config;
  config.circles = 4;
  config.use_three_weight = true;
  packing::PackingProblem problem(config);
  SolverOptions options;
  options.rho_policy = RhoPolicy::kThreeWeight;
  options.max_iterations = 200;
  options.check_interval = 200;
  options.primal_tolerance = 0.0;
  options.dual_tolerance = 0.0;
  solve(problem.graph(), options);
  // After convergence-ish, disjoint circles exist, so some collision
  // messages must carry the zero ("no opinion") weight.
  bool saw_zero = false;
  for (const Weight w : problem.graph().edge_weights()) {
    saw_zero = saw_zero || w == Weight::kZero;
  }
  EXPECT_TRUE(saw_zero);
}

// ---- policy combinations on real problems.

TEST(PolicyMatrix, ResidualBalancingSolvesLasso) {
  const auto instance = lasso::make_lasso_instance(40, 8, 2, 0.01, 13);
  lasso::LassoConfig config;
  config.blocks = 4;
  config.lambda = 0.05;
  lasso::LassoProblem problem(instance, config);
  SolverOptions options;
  // Note: the Lasso block prox caches its factorization for the build rho,
  // so balancing must stay off for it; use balancing on SVM instead.
  options.max_iterations = 30000;
  options.primal_tolerance = 1e-10;
  options.dual_tolerance = 1e-10;
  const SolverReport report = solve(problem.graph(), options);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(lasso::kkt_violation(instance, config.lambda, problem.solution()),
            1e-4);
}

TEST(PolicyMatrix, ResidualBalancingSolvesSvm) {
  const auto dataset = svm::make_gaussian_blobs(30, 2, 6.0, 21);
  svm::SvmProblem problem(dataset, svm::SvmConfig{});
  SolverOptions options;
  options.rho_policy = RhoPolicy::kResidualBalancing;
  options.max_iterations = 30000;
  options.check_interval = 500;
  options.primal_tolerance = 1e-7;
  options.dual_tolerance = 1e-7;
  const SolverReport report = solve(problem.graph(), options);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(problem.train_accuracy(), 0.9);
}

// ---- rho/alpha sweep: the engine converges across the sensible range.

class RhoAlphaSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RhoAlphaSweep, ConsensusStillConverges) {
  const auto [rho, alpha] = GetParam();
  FactorGraph graph;
  const VariableId w = graph.add_variable(2);
  graph.add_factor(std::make_shared<SumSquaresProx>(
                       1.0, std::vector<double>{1.0, -1.0}),
                   {w});
  graph.add_factor(std::make_shared<SumSquaresProx>(
                       1.0, std::vector<double>{3.0, 1.0}),
                   {w});
  graph.set_uniform_parameters(rho, alpha);
  SolverOptions options;
  options.max_iterations = 20000;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged) << "rho=" << rho << " alpha=" << alpha;
  EXPECT_NEAR(graph.solution(w)[0], 2.0, 1e-5);
  EXPECT_NEAR(graph.solution(w)[1], 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RhoAlphaSweep,
    ::testing::Values(std::pair{0.1, 1.0}, std::pair{1.0, 1.0},
                      std::pair{10.0, 1.0}, std::pair{1.0, 0.5},
                      std::pair{1.0, 1.5}, std::pair{5.0, 0.8}));

// ---- failure injection.

class ThrowingProx final : public ProxOperator {
 public:
  void apply(const ProxContext&) const override {
    throw std::runtime_error("prox exploded");
  }
  std::string_view name() const override { return "throwing"; }
};

TEST(FailureInjection, ProxExceptionPropagatesFromSerialBackend) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<ThrowingProx>(), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 10;
  EXPECT_THROW(solve(graph, options), std::runtime_error);
}

class NanProx final : public ProxOperator {
 public:
  void apply(const ProxContext& ctx) const override {
    for (auto& v : ctx.output(0)) v = std::nan("");
  }
  std::string_view name() const override { return "nan"; }
};

TEST(FailureInjection, NanOutputsNeverReportConvergence) {
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<NanProx>(), {w});
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{1.0}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 100;
  const SolverReport report = solve(graph, options);
  EXPECT_FALSE(report.converged);  // NaN residuals never pass tolerances
  EXPECT_EQ(report.iterations, 100);
}

// ---- repeated variable within one factor is legal and correct.

TEST(GraphShapes, FactorMayTouchSameVariableTwice) {
  // f(w, w) with consensus equality is trivially satisfied; combined with
  // an anchor the optimum is the anchor's target.
  FactorGraph graph;
  const VariableId w = graph.add_variable(1);
  graph.add_factor(std::make_shared<ConsensusEqualityProx>(), {w, w});
  graph.add_factor(
      std::make_shared<SumSquaresProx>(1.0, std::vector<double>{2.5}), {w});
  graph.set_uniform_parameters(1.0, 1.0);
  SolverOptions options;
  options.max_iterations = 2000;
  const SolverReport report = solve(graph, options);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(graph.solution(w)[0], 2.5, 1e-6);
}

// ---- MPC receding-horizon consistency across controller cycles.

TEST(RecedingHorizon, DynamicsHoldAfterEveryResolve) {
  mpc::MpcConfig config;
  config.horizon = 15;
  mpc::MpcProblem problem(config);
  SolverOptions options;
  options.max_iterations = 30000;
  options.check_interval = 300;
  options.primal_tolerance = 1e-9;
  options.dual_tolerance = 1e-9;
  solve(problem.graph(), options);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto plan = problem.trajectory();
    const auto next =
        mpc::step(problem.model(), plan[0].state, plan[0].input);
    problem.set_initial_state(next);
    const SolverReport report = solve(problem.graph(), options);
    EXPECT_TRUE(report.converged) << "cycle " << cycle;
    EXPECT_LT(problem.dynamics_violation(), 1e-5) << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace paradmm
