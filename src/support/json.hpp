// Minimal hand-rolled JSON: a recursive-descent reader plus the two
// emission helpers the writers share.
//
// The repo deliberately carries no external JSON dependency (bench results
// are written with a hand-rolled emitter, bench/bench_util.hpp).  The
// reading half started life inside the calibration-profile loader and is
// shared here so every JSON consumer — calibration profiles, trace files
// (tools/trace_dump), tests validating exported traces — parses with the
// same code.  The subset covered is what those writers emit: objects,
// arrays, strings, finite numbers, and the three literals.  Errors throw
// PreconditionError with the byte offset — a file that does not parse must
// fail loudly, never degrade into silent defaults.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace paradmm {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

/// Parses one JSON document.  `context` prefixes every error message so a
/// caller's diagnostics name the file kind being read ("calibration
/// profile JSON", "trace JSON", ...).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text, std::string context = "JSON")
      : text_(text), context_(std::move(context)) {}

  JsonValue parse();

 private:
  std::string error(const std::string& what) const;
  void skip_whitespace();
  char peek();
  void expect(char c);
  bool consume(char c);
  JsonValue parse_value();
  JsonValue parse_object();
  JsonValue parse_array();
  JsonValue parse_string();
  JsonValue parse_bool();
  JsonValue parse_null();
  JsonValue parse_number();

  std::string_view text_;
  std::string context_;
  std::size_t at_ = 0;
};

/// Shortest round-trip rendering of a finite double (%.17g).
std::string json_number(double value);

/// Emitter-side escaping, so a string like `my "big" box` round-trips
/// instead of producing a file the parser later rejects.
std::string json_quote(const std::string& text);

}  // namespace paradmm
