#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace paradmm {

JsonValue JsonParser::parse() {
  JsonValue value = parse_value();
  skip_whitespace();
  require(at_ == text_.size(), error("trailing characters after JSON value"));
  return value;
}

std::string JsonParser::error(const std::string& what) const {
  return context_ + ": " + what + " (at byte " + std::to_string(at_) + ")";
}

void JsonParser::skip_whitespace() {
  while (at_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[at_]))) {
    ++at_;
  }
}

char JsonParser::peek() {
  skip_whitespace();
  require(at_ < text_.size(), error("unexpected end of input"));
  return text_[at_];
}

void JsonParser::expect(char c) {
  require(peek() == c, error(std::string("expected '") + c + "'"));
  ++at_;
}

bool JsonParser::consume(char c) {
  if (at_ < text_.size() && peek() == c) {
    ++at_;
    return true;
  }
  return false;
}

JsonValue JsonParser::parse_value() {
  const char c = peek();
  if (c == '{') return parse_object();
  if (c == '[') return parse_array();
  if (c == '"') return parse_string();
  if (c == 't' || c == 'f') return parse_bool();
  if (c == 'n') return parse_null();
  return parse_number();
}

JsonValue JsonParser::parse_object() {
  JsonValue value;
  value.kind = JsonValue::Kind::kObject;
  expect('{');
  if (consume('}')) return value;
  do {
    JsonValue key = parse_string();
    expect(':');
    value.object[key.string] = parse_value();
  } while (consume(','));
  expect('}');
  return value;
}

JsonValue JsonParser::parse_array() {
  JsonValue value;
  value.kind = JsonValue::Kind::kArray;
  expect('[');
  if (consume(']')) return value;
  do {
    value.array.push_back(parse_value());
  } while (consume(','));
  expect(']');
  return value;
}

JsonValue JsonParser::parse_string() {
  JsonValue value;
  value.kind = JsonValue::Kind::kString;
  expect('"');
  while (true) {
    require(at_ < text_.size(), error("unterminated string"));
    const char c = text_[at_++];
    if (c == '"') break;
    if (c == '\\') {
      require(at_ < text_.size(), error("unterminated escape"));
      const char escaped = text_[at_++];
      switch (escaped) {
        case '"': value.string += '"'; break;
        case '\\': value.string += '\\'; break;
        case '/': value.string += '/'; break;
        case 'n': value.string += '\n'; break;
        case 't': value.string += '\t'; break;
        case 'r': value.string += '\r'; break;
        case 'b': value.string += '\b'; break;
        case 'f': value.string += '\f'; break;
        case 'u': {
          // The in-repo writers never emit non-ASCII; decode the BMP
          // escape to a single byte when it fits, else reject.
          require(at_ + 4 <= text_.size(), error("truncated \\u escape"));
          const std::string hex(text_.substr(at_, 4));
          at_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          require(end == hex.c_str() + 4, error("invalid \\u escape"));
          require(code >= 0 && code < 128,
                  error("non-ASCII \\u escape unsupported"));
          value.string += static_cast<char>(code);
          break;
        }
        default: require(false, error("unknown escape character"));
      }
    } else {
      value.string += c;
    }
  }
  return value;
}

JsonValue JsonParser::parse_bool() {
  JsonValue value;
  value.kind = JsonValue::Kind::kBool;
  if (text_.substr(at_, 4) == "true") {
    value.boolean = true;
    at_ += 4;
  } else if (text_.substr(at_, 5) == "false") {
    value.boolean = false;
    at_ += 5;
  } else {
    require(false, error("invalid literal"));
  }
  return value;
}

JsonValue JsonParser::parse_null() {
  require(text_.substr(at_, 4) == "null", error("invalid literal"));
  at_ += 4;
  return JsonValue{};
}

JsonValue JsonParser::parse_number() {
  const std::size_t start = at_;
  while (at_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
          text_[at_] == '-' || text_[at_] == '+' || text_[at_] == '.' ||
          text_[at_] == 'e' || text_[at_] == 'E')) {
    ++at_;
  }
  const std::string token(text_.substr(start, at_ - start));
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  require(!token.empty() && end == token.c_str() + token.size() &&
              std::isfinite(parsed),
          error("invalid number"));
  JsonValue value;
  value.kind = JsonValue::Kind::kNumber;
  value.number = parsed;
  return value;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace paradmm
