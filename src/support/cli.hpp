// Minimal command-line flag parser for the examples and bench harnesses.
//
// Supports `--name value`, `--name=value`, and boolean `--name` forms.
// Unknown flags raise a PreconditionError listing the registered options, so
// typos fail loudly instead of being silently ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace paradmm {

/// Declarative flag set.
///
///   CliFlags flags("bench_fig07");
///   flags.add_int("max-n", 5000, "largest circle count in the sweep");
///   flags.add_bool("quick", false, "run a reduced sweep");
///   flags.parse(argc, argv);
///   int max_n = flags.get_int("max-n");
class CliFlags {
 public:
  explicit CliFlags(std::string program_name);

  void add_int(const std::string& name, long long default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv; prints usage and exits(0) on --help.
  void parse(int argc, const char* const* argv);

  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Renders the usage/help text.
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declaration_order_;
};

}  // namespace paradmm
