// Error handling for parADMM++.
//
// Follows the C++ Core Guidelines: errors that indicate broken preconditions
// or invariants throw exceptions derived from `paradmm::Error`; we never
// signal failure through error codes in the public API.  All checks are
// active in release builds — this library's workloads are dominated by the
// inner solver loops, and the checks sit on setup paths.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace paradmm {

/// Base class for all exceptions thrown by parADMM++.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant fails (library bug, not user error).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a numerical routine cannot proceed (singular matrix, ...).
class NumericalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view message,
                                     const std::source_location& where);
[[noreturn]] void throw_invariant(std::string_view message,
                                  const std::source_location& where);
}  // namespace detail

/// Verifies a documented precondition of a public API entry point.
/// Throws `PreconditionError` (with file:line context) when violated.
inline void require(
    bool condition, std::string_view message,
    const std::source_location where = std::source_location::current()) {
  if (!condition) detail::throw_precondition(message, where);
}

/// Verifies an internal invariant; failure indicates a bug in parADMM++.
inline void affirm(
    bool condition, std::string_view message,
    const std::source_location where = std::source_location::current()) {
  if (!condition) detail::throw_invariant(message, where);
}

}  // namespace paradmm
