#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace paradmm {
namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "string";
    default: return "bool";
  }
}

}  // namespace

CliFlags::CliFlags(std::string program_name)
    : program_name_(std::move(program_name)) {}

void CliFlags::add_int(const std::string& name, long long default_value,
                       const std::string& help) {
  require(!flags_.count(name), "duplicate flag registration");
  flags_[name] = Flag{Kind::kInt, std::to_string(default_value),
                      std::to_string(default_value), help};
  declaration_order_.push_back(name);
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  require(!flags_.count(name), "duplicate flag registration");
  std::ostringstream out;
  out << default_value;
  flags_[name] = Flag{Kind::kDouble, out.str(), out.str(), help};
  declaration_order_.push_back(name);
}

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  require(!flags_.count(name), "duplicate flag registration");
  flags_[name] = Flag{Kind::kString, default_value, default_value, help};
  declaration_order_.push_back(name);
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  require(!flags_.count(name), "duplicate flag registration");
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, text, text, help};
  declaration_order_.push_back(name);
}

void CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    require(token.rfind("--", 0) == 0,
            "flags must start with --; got '" + token + "'");
    token.erase(0, 2);
    if (token == "help") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    std::string name = token;
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      value = token.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    require(it != flags_.end(), "unknown flag --" + name + "\n" + usage());
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        require(i + 1 < argc, "flag --" + name + " expects a value");
        value = argv[++i];
      }
    }
    flag.value = value;
  }
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Kind kind) const {
  auto it = flags_.find(name);
  require(it != flags_.end(), "flag --" + name + " was never registered");
  require(it->second.kind == kind,
          "flag --" + name + " accessed with the wrong type (declared as " +
              kind_name(static_cast<int>(it->second.kind)) + ")");
  return it->second;
}

long long CliFlags::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& text = find(name, Kind::kBool).value;
  return text == "true" || text == "1" || text == "yes";
}

std::string CliFlags::usage() const {
  std::ostringstream out;
  out << "usage: " << program_name_ << " [--flag value | --flag=value]\n";
  for (const auto& name : declaration_order_) {
    const Flag& flag = flags_.at(name);
    out << "  --" << name << " (" << kind_name(static_cast<int>(flag.kind))
        << ", default " << flag.default_value << ")  " << flag.help << '\n';
  }
  return out.str();
}

}  // namespace paradmm
