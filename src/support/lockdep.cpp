#include "support/lockdep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace paradmm {

namespace lockdep {
namespace {

// Failure handler slot.  Kept in every build (tests install one through
// the same call sites whether or not the validator is compiled in); only
// lockdep builds ever invoke it.
std::mutex handler_mutex;  // NOLINT: the validator cannot instrument itself
Handler failure_handler;

// [[maybe_unused]]: only lockdep builds have call sites.
[[maybe_unused]] void fail(const char* kind, const std::string& message) {
  Handler handler;
  {
    std::lock_guard lock(handler_mutex);
    handler = failure_handler;
  }
  if (handler) {
    handler(Violation{kind, message});
    return;  // test mode: caller skips recording the offending edge
  }
  std::fputs(message.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

Handler set_failure_handler(Handler handler) {
  std::lock_guard lock(handler_mutex);
  std::swap(failure_handler, handler);
  return handler;
}

#if PARADMM_LOCKDEP_ENABLED

namespace {

std::atomic<bool> runtime_enabled{true};

// The global order graph.  Nodes are lock *classes* (one per distinct
// Mutex name); edges A -> B mean "A was held while B was acquired".  The
// graph only grows (reset_order_graph clears edges, never nodes, so the
// node ids cached on Mutex instances stay valid), and a cycle check runs
// exactly when a new edge would be inserted — an acyclic graph stays
// acyclic under edge removal, so checking at insertion is complete.
struct Registry {
  std::mutex mutex;  // NOLINT: the validator cannot instrument itself
  std::map<std::string, unsigned> ids;    // name -> node id (from 1)
  std::vector<std::string> names{""};     // node id -> name; [0] unused
  std::vector<std::set<unsigned>> out{{}};  // adjacency, indexed by node id
  // For each edge, the named held-stack that first established it — this
  // is the "other" sequence a cycle report prints.
  std::map<std::pair<unsigned, unsigned>, std::vector<std::string>> examples;
  // Bumped by reset_order_graph so per-thread edge caches invalidate.
  std::atomic<unsigned long long> epoch{1};
};

Registry& registry() {
  static Registry r;
  return r;
}

// Per-thread state: the stack of held Mutex instances, plus a cache of
// edges this thread has already pushed through the registry — steady
// state acquisitions of a known-good order touch no global lock.
struct ThreadState {
  std::vector<const Mutex*> held;
  unsigned long long cache_epoch = 0;
  std::set<std::pair<unsigned, unsigned>> seen_edges;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

// True if `to` is reachable from `from` in the order graph (iterative
// DFS; caller holds the registry mutex).  `path` receives the node
// sequence from -> ... -> to when found.
bool find_path(const Registry& reg, unsigned from, unsigned to,
               std::vector<unsigned>& path) {
  std::vector<unsigned> stack{from};
  std::map<unsigned, unsigned> parent;  // child -> parent in the DFS tree
  std::set<unsigned> visited{from};
  while (!stack.empty()) {
    const unsigned node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (unsigned n = to; n != from; n = parent.at(n)) path.push_back(n);
      path.push_back(from);
      std::reverse(path.begin(), path.end());
      return true;
    }
    for (unsigned next : reg.out[node]) {
      if (visited.insert(next).second) {
        parent[next] = node;
        stack.push_back(next);
      }
    }
  }
  return false;
}

std::string quote(const char* name) { return "\"" + std::string(name) + "\""; }
std::string quote(const std::string& name) { return "\"" + name + "\""; }

std::string held_sequence(const ThreadState& state, const Mutex& acquiring) {
  std::string out;
  for (const Mutex* m : state.held) {
    out += quote(m->name());
    out += " -> ";
  }
  out += quote(acquiring.name());
  return out;
}

}  // namespace

bool enabled() { return runtime_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  runtime_enabled.store(on, std::memory_order_relaxed);
}

void reset_order_graph() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (auto& edges : reg.out) edges.clear();
  reg.examples.clear();
  reg.epoch.fetch_add(1, std::memory_order_relaxed);
}

// Friend of Mutex: resolves and caches the instance's node id.
struct LockdepRegistryAccess {
  // Caller holds the registry mutex for the slow path.
  static unsigned node_id(Registry& reg, const Mutex& m) {
    unsigned id = m.node_.load(std::memory_order_relaxed);
    if (id != 0) return id;
    auto [it, inserted] = reg.ids.emplace(m.name(), 0);
    if (inserted) {
      it->second = static_cast<unsigned>(reg.names.size());
      reg.names.emplace_back(m.name());
      reg.out.emplace_back();
    }
    m.node_.store(it->second, std::memory_order_relaxed);
    return it->second;
  }
  static unsigned cached_node_id(const Mutex& m) {
    return m.node_.load(std::memory_order_relaxed);
  }
};

namespace detail {

void check_acquire(const Mutex& m) {
  if (!enabled()) return;
  ThreadState& state = thread_state();

  for (const Mutex* held : state.held) {
    if (held == &m) {
      std::string message =
          "paradmm lockdep: re-entrant acquisition of " + quote(m.name()) +
          "\n  this thread already holds: " + held_sequence(state, m) +
          "\n  paradmm::Mutex is non-recursive; release before reacquiring\n";
      fail("re-entrant", message);
      return;
    }
  }
  if (state.held.empty()) return;  // first lock: nothing to order against

  Registry& reg = registry();

  // Fast path: every (held, acquiring) pair already vetted by this thread
  // since the last graph reset.
  const unsigned long long epoch = reg.epoch.load(std::memory_order_relaxed);
  if (state.cache_epoch != epoch) {
    state.seen_edges.clear();
    state.cache_epoch = epoch;
  }
  const unsigned cached_to = LockdepRegistryAccess::cached_node_id(m);
  if (cached_to != 0) {
    bool all_seen = true;
    for (const Mutex* held : state.held) {
      const unsigned from = LockdepRegistryAccess::cached_node_id(*held);
      if (from == 0 || !state.seen_edges.count({from, cached_to})) {
        all_seen = false;
        break;
      }
    }
    if (all_seen) return;
  }

  std::lock_guard lock(reg.mutex);
  const unsigned to = LockdepRegistryAccess::node_id(reg, m);
  for (const Mutex* held : state.held) {
    const unsigned from = LockdepRegistryAccess::node_id(reg, *held);
    if (state.seen_edges.count({from, to})) continue;
    if (reg.out[from].count(to)) {  // edge already recorded: known good
      state.seen_edges.insert({from, to});
      continue;
    }

    // New edge from -> to.  A path to -> ... -> from means inserting it
    // closes a cycle (from == to is the trivial case: two instances of
    // one lock class nested).
    std::vector<unsigned> path;
    if (from == to || find_path(reg, to, from, path)) {
      if (path.empty()) path = {to, from};
      std::string message =
          "paradmm lockdep: lock-order cycle detected (potential deadlock)\n"
          "  this thread is acquiring " +
          quote(m.name()) + " while holding: " + held_sequence(state, m) +
          "\n  that requires the order " + quote(reg.names[from]) + " -> " +
          quote(reg.names[to]) +
          ", but the reverse order is already recorded:\n";
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto example = reg.examples.find({path[i], path[i + 1]});
        message += "    " + quote(reg.names[path[i]]) + " -> " +
                   quote(reg.names[path[i + 1]]) +
                   "  (first acquired in the sequence: ";
        if (example != reg.examples.end()) {
          for (std::size_t j = 0; j < example->second.size(); ++j) {
            if (j != 0) message += " -> ";
            message += quote(example->second[j]);
          }
        }
        message += ")\n";
      }
      message += "  fix: acquire these locks in one order everywhere\n";
      fail("cycle", message);
      continue;  // handler returned (test mode): leave the graph acyclic
    }

    reg.out[from].insert(to);
    std::vector<std::string> example;
    example.reserve(state.held.size() + 1);
    for (const Mutex* h : state.held) example.emplace_back(h->name());
    example.emplace_back(m.name());
    reg.examples.emplace(std::make_pair(from, to), std::move(example));
    state.seen_edges.insert({from, to});
  }
}

void note_acquired(const Mutex& m) {
  if (!enabled()) return;
  thread_state().held.push_back(&m);
}

void note_released(const Mutex& m) {
  if (!enabled()) return;
  auto& held = thread_state().held;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == &m) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Not tracked (acquired while checking was off): nothing to unwind.
}

}  // namespace detail

#else  // !PARADMM_LOCKDEP_ENABLED

bool enabled() { return false; }
void set_enabled(bool) {}
void reset_order_graph() {}

namespace detail {
void check_acquire(const Mutex&) {}
void note_acquired(const Mutex&) {}
void note_released(const Mutex&) {}
}  // namespace detail

#endif  // PARADMM_LOCKDEP_ENABLED

}  // namespace lockdep

// Defined here (not inline) so the header needs no lockdep internals: the
// wait releases the wrapper's bookkeeping, parks on the native handle,
// and re-runs the order check on reacquisition — a wait with other locks
// held re-establishes its edges exactly like a fresh acquisition.
void CondVar::wait(UniqueLock& lock) {
  Mutex& m = *lock.mutex();
#if PARADMM_LOCKDEP_ENABLED
  lockdep::detail::note_released(m);
#endif
  std::unique_lock<std::mutex> native(m.mutex_, std::adopt_lock);
  cv_.wait(native);
  native.release();  // the wrapper keeps ownership after the wait
#if PARADMM_LOCKDEP_ENABLED
  lockdep::detail::check_acquire(m);
  lockdep::detail::note_acquired(m);
#endif
}

}  // namespace paradmm
