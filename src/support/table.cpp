#include "support/table.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/format.hpp"

namespace paradmm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table row must match header column count");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << pad_left(row[c], widths[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace paradmm
