#include "support/error.hpp"

#include <sstream>

namespace paradmm::detail {
namespace {

std::string render(std::string_view kind, std::string_view message,
                   const std::source_location& where) {
  std::ostringstream out;
  out << kind << ": " << message << " [" << where.file_name() << ':'
      << where.line() << " in " << where.function_name() << ']';
  return out.str();
}

}  // namespace

void throw_precondition(std::string_view message,
                        const std::source_location& where) {
  throw PreconditionError(render("precondition violated", message, where));
}

void throw_invariant(std::string_view message,
                     const std::source_location& where) {
  throw InvariantError(render("invariant violated", message, where));
}

}  // namespace paradmm::detail
