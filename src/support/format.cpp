#include "support/format.hpp"

#include <array>
#include <cmath>
#include <cstdlib>

namespace paradmm {
namespace {

std::string printf_string(const char* spec, int decimals, double value) {
  std::array<char, 64> buffer{};
  std::snprintf(buffer.data(), buffer.size(), spec, decimals, value);
  return std::string(buffer.data());
}

}  // namespace

std::string format_fixed(double value, int decimals) {
  return printf_string("%.*f", decimals, value);
}

std::string format_sci(double value, int decimals) {
  return printf_string("%.*e", decimals, value);
}

std::string format_si(double value, int decimals) {
  const double magnitude = std::fabs(value);
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 4> scales{{{1e9, "G"},
                                                {1e6, "M"},
                                                {1e3, "k"},
                                                {1.0, ""}}};
  for (const auto& scale : scales) {
    if (magnitude >= scale.factor || scale.factor == 1.0) {
      return format_fixed(value / scale.factor, decimals) + scale.suffix;
    }
  }
  return format_fixed(value, decimals);
}

std::string format_thousands(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3 + 1);
  std::size_t leading = digits.size() % 3;
  if (leading == 0) leading = 3;
  grouped.append(digits, 0, leading);
  for (std::size_t i = leading; i < digits.size(); i += 3) {
    grouped.push_back(',');
    grouped.append(digits, i, 3);
  }
  return value < 0 ? "-" + grouped : grouped;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

std::string format_duration(double seconds) {
  const double magnitude = std::fabs(seconds);
  if (magnitude >= 1.0) return format_fixed(seconds, 2) + "s";
  if (magnitude >= 1e-3) return format_fixed(seconds * 1e3, 2) + "ms";
  if (magnitude >= 1e-6) return format_fixed(seconds * 1e6, 1) + "us";
  return format_fixed(seconds * 1e9, 0) + "ns";
}

}  // namespace paradmm
