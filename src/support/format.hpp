// Small string-formatting helpers.
//
// libstdc++ 12 does not ship <format>, so benches and the table writer use
// these snprintf-backed helpers instead.  They are deliberately minimal —
// fixed/scientific doubles, engineering suffixes, padding.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace paradmm {

/// Fixed-point rendering, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Scientific rendering, e.g. format_sci(12345.0, 2) == "1.23e+04".
std::string format_sci(double value, int decimals);

/// Engineering suffixes: 12_345 -> "12.3k", 5e6 -> "5.0M".
std::string format_si(double value, int decimals = 1);

/// Thousands separators: 1234567 -> "1,234,567".
std::string format_thousands(long long value);

/// Right-align `text` into a field of `width` characters (spaces on the
/// left); text longer than the field is returned unchanged.
std::string pad_left(std::string_view text, std::size_t width);

/// Left-align `text` into a field of `width` characters.
std::string pad_right(std::string_view text, std::size_t width);

/// Seconds rendered with a sensible unit: 0.00042 -> "420us".
std::string format_duration(double seconds);

}  // namespace paradmm
