// Console table writer used by the benchmark harnesses to print the same
// rows/series the paper's figures report.  Columns are aligned, headers are
// underlined, and the whole table can also be exported as CSV for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace paradmm {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"N", "cpu time (s)", "gpu time (s)", "speedup"});
///   t.add_row({"1000", "1.23", "0.11", "11.2"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

  /// Renders the aligned table (header, rule, rows) to `out`.
  void print(std::ostream& out) const;

  /// Renders as CSV (no alignment padding).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace paradmm
