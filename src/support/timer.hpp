// Wall-clock timing utilities used by benches and the serial reference
// measurements.  Modeled (simulated-device) time is a separate concept and
// lives in src/devsim.
#pragma once

#include <chrono>
#include <cstdint>

namespace paradmm {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows, e.g. to time one
/// update phase across many iterations.
class AccumulatingTimer {
 public:
  void start() { running_ = true; window_.reset(); }

  void stop() {
    if (running_) {
      total_seconds_ += window_.seconds();
      ++windows_;
      running_ = false;
    }
  }

  double total_seconds() const { return total_seconds_; }
  std::uint64_t windows() const { return windows_; }

  double mean_seconds() const {
    return windows_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(windows_);
  }

 private:
  WallTimer window_;
  double total_seconds_ = 0.0;
  std::uint64_t windows_ = 0;
  bool running_ = false;
};

}  // namespace paradmm
