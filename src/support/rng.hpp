// Deterministic random number generation.
//
// All stochastic pieces of parADMM++ (workload generators, random ADMM
// initialization, property-test input sampling) draw from this generator so
// that every experiment is reproducible from a single seed.  The engine
// itself is deterministic.
//
// The implementation is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64 — a standard, fast, high-quality combination that behaves
// identically across platforms, unlike distributions in <random> whose
// outputs are implementation-defined.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <numbers>
#include <vector>

#include "support/error.hpp"

namespace paradmm {

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ PRNG with helpers for the distributions the library needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
    cached_gauss_valid_ = false;
  }

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) with rejection to kill modulo bias.
  std::uint64_t uniform_index(std::uint64_t bound) {
    require(bound > 0, "uniform_index bound must be positive");
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal via Box–Muller (caches the second deviate).
  double gaussian() {
    if (cached_gauss_valid_) {
      cached_gauss_valid_ = false;
      return cached_gauss_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = radius * std::sin(angle);
    cached_gauss_valid_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    require(stddev >= 0.0, "gaussian stddev must be non-negative");
    return mean + stddev * gaussian();
  }

  /// Vector of iid uniforms in [lo, hi).
  std::vector<double> uniform_vector(std::size_t count, double lo, double hi) {
    std::vector<double> values(count);
    for (auto& v : values) v = uniform(lo, hi);
    return values;
  }

  /// Vector of iid normals.
  std::vector<double> gaussian_vector(std::size_t count, double mean = 0.0,
                                      double stddev = 1.0) {
    std::vector<double> values(count);
    for (auto& v : values) v = gaussian(mean, stddev);
    return values;
  }

  /// Derives an independent child stream; used to give each workload
  /// generator its own stream without coupling to call order elsewhere.
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool cached_gauss_valid_ = false;
};

}  // namespace paradmm
