// paradmm::Mutex — the annotated lock the whole runtime uses, with an
// optional lockdep-style lock-order validator behind PARADMM_LOCKDEP.
//
// Two jobs in one wrapper:
//
//  * Static: the class carries PARADMM_CAPABILITY, so clang's
//    -Wthread-safety can prove GUARDED_BY/REQUIRES contracts against it
//    (libstdc++'s std::mutex is unannotated and proves nothing).  In a
//    normal build Mutex is a plain std::mutex plus a pointer-sized static
//    name — no extra locking, no atomics, no allocation.
//
//  * Dynamic (PARADMM_LOCKDEP builds only): every acquisition feeds a
//    global lock-*order* graph keyed by lock name (one node per lock
//    class, like the Linux kernel's lockdep — per-instance nodes would
//    make every per-job mutex its own node and miss ABBA between
//    instances of the same class).  Holding A while acquiring B records
//    the edge A -> B; the first acquisition whose edge would close a
//    cycle fails *immediately and deterministically* — no unlucky
//    interleaving needed, the mere order is the bug.  Re-entrant
//    acquisition of a held instance fails the same way.  The default
//    failure handler prints both named lock sequences (the acquiring
//    thread's held stack and the recorded sequence that established the
//    conflicting order) and aborts; tests install their own handler.
//
// The sanctioned acquisition order for the runtime's locks is documented
// in ROADMAP.md ("Lock hierarchy"); tools/lint_invariants.py enforces
// that no naked std::mutex member exists outside this wrapper.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>

#include "support/thread_annotations.hpp"

#if defined(PARADMM_LOCKDEP) && PARADMM_LOCKDEP
#define PARADMM_LOCKDEP_ENABLED 1
#else
#define PARADMM_LOCKDEP_ENABLED 0
#endif

namespace paradmm {

class Mutex;

namespace lockdep {

/// Whether this build carries the validator at all (PARADMM_LOCKDEP).
constexpr bool build_enabled() { return PARADMM_LOCKDEP_ENABLED != 0; }

/// Runtime switch, default on in lockdep builds (always false otherwise).
/// Toggle only while the calling process holds no paradmm::Mutex — the
/// held-lock bookkeeping pauses with it.  This is what lets one binary
/// property-test that checking changes nothing about scheduling.
bool enabled();
void set_enabled(bool on);

/// A detected violation: `kind` is "cycle" or "re-entrant"; `message` is
/// the full human-readable report naming both lock sequences.
struct Violation {
  std::string kind;
  std::string message;
};

/// Called on a violation instead of the default report+abort; installing
/// an empty handler restores the default.  Returns the previous handler.
/// If the handler returns, the offending edge is NOT recorded and the
/// acquisition proceeds (test mode: the graph stays acyclic so one bad
/// pattern fires exactly once per attempt).
using Handler = std::function<void(const Violation&)>;
Handler set_failure_handler(Handler handler);

/// Forgets every recorded edge (not the held-lock stacks) — test
/// isolation, so one suite's deliberate ABBA does not poison another's
/// graph.  No-op when the validator is off.
void reset_order_graph();

namespace detail {
// Instrumentation points used by Mutex/CondVar; no-ops unless the build
// and the runtime switch are both on.
void check_acquire(const Mutex& m);   // before blocking on m
void note_acquired(const Mutex& m);   // m is now held
void note_released(const Mutex& m);   // m is no longer held
}  // namespace detail

struct LockdepRegistryAccess;  // validator-internal friend of Mutex

}  // namespace lockdep

/// The annotated mutex.  `name` labels the lock *class* in lockdep
/// reports and must be a string literal (stored, not copied).  Instances
/// sharing a name share a node in the order graph.
class PARADMM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name) noexcept : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARADMM_ACQUIRE() {
#if PARADMM_LOCKDEP_ENABLED
    lockdep::detail::check_acquire(*this);
    mutex_.lock();
    lockdep::detail::note_acquired(*this);
#else
    mutex_.lock();
#endif
  }

  void unlock() PARADMM_RELEASE() {
#if PARADMM_LOCKDEP_ENABLED
    lockdep::detail::note_released(*this);
#endif
    mutex_.unlock();
  }

  bool try_lock() PARADMM_TRY_ACQUIRE(true) {
#if PARADMM_LOCKDEP_ENABLED
    // A trylock cannot deadlock (it fails instead of blocking), so it
    // joins the held stack without cycle enforcement.
    if (!mutex_.try_lock()) return false;
    lockdep::detail::note_acquired(*this);
    return true;
#else
    return mutex_.try_lock();
#endif
  }

  const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  std::mutex mutex_;
  const char* name_;
#if PARADMM_LOCKDEP_ENABLED
  // Cached node id in the order graph (0 = unresolved), so steady-state
  // acquisitions resolve their class without the registry lock.
  mutable std::atomic<unsigned> node_{0};
  friend struct lockdep::LockdepRegistryAccess;
#endif
};

/// Scope guard, the std::lock_guard counterpart (non-movable, always
/// owns).  Preferred at every site that does not unlock early or wait.
class PARADMM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PARADMM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PARADMM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scope guard with manual unlock()/lock() — the std::unique_lock
/// counterpart, and the lock type CondVar::wait takes.
class PARADMM_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) PARADMM_ACQUIRE(mutex)
      : mutex_(&mutex), owned_(true) {
    mutex_->lock();
  }
  ~UniqueLock() PARADMM_RELEASE() {
    if (owned_) mutex_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() PARADMM_ACQUIRE() {
    mutex_->lock();
    owned_ = true;
  }
  void unlock() PARADMM_RELEASE() {
    owned_ = false;
    mutex_->unlock();
  }

  bool owns_lock() const noexcept { return owned_; }
  Mutex* mutex() const noexcept { return mutex_; }

 private:
  Mutex* mutex_;
  bool owned_;
};

/// Condition variable paired with paradmm::Mutex.  Backed by a plain
/// std::condition_variable on the wrapper's native handle (not
/// condition_variable_any, which would cost an allocation and an extra
/// internal mutex per instance — ForkGroup stack-allocates one per fork).
/// No predicate overload on purpose: callers write explicit
/// `while (!cond) cv.wait(lock);` loops, which keeps the guarded reads
/// inside the annotated enclosing function where clang can see the lock
/// is held (a predicate lambda is analyzed as a separate, unannotated
/// function and would warn).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, waits, and reacquires.  As far as the
  /// static analysis is concerned the capability stays held across the
  /// call (the net effect is true; the interior handoff is invisible on
  /// purpose).  Lockdep sees the real release and reacquisition.
  void wait(UniqueLock& lock);

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace paradmm
