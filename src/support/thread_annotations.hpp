// Clang thread-safety-analysis macros (no-ops on other compilers).
//
// These turn the runtime's informal "guarded by mutex_" comments into
// contracts the compiler proves: a field marked PARADMM_GUARDED_BY(m) can
// only be touched while m is held, and a *_locked helper marked
// PARADMM_REQUIRES(m) can only be called from a context that already holds
// it.  The analysis is purely static (flow-sensitive, intra-procedural)
// and free at runtime; the CI static-analysis job compiles the tree with
// clang and -Wthread-safety -Werror so a violated contract fails the
// build.  GCC has no equivalent attribute set, so every macro expands to
// nothing there and the annotated code is byte-identical to unannotated
// code.
//
// The macro set mirrors the capability vocabulary from the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed so it
// cannot collide with another library's spelling of the same attributes.
// Only paradmm::Mutex (src/support/lockdep.hpp) carries the CAPABILITY
// attribute: libstdc++'s std::mutex is unannotated, which is why the
// runtime's mutexes all migrate to the wrapper.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PARADMM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PARADMM_THREAD_ANNOTATION
#define PARADMM_THREAD_ANNOTATION(x)  // not Clang: expands to nothing
#endif

// On types: declares a class to be a lockable capability ("mutex" is the
// diagnostic noun clang uses in warnings).
#define PARADMM_CAPABILITY(x) PARADMM_THREAD_ANNOTATION(capability(x))

// On RAII guard types whose constructor acquires and destructor releases.
#define PARADMM_SCOPED_CAPABILITY PARADMM_THREAD_ANNOTATION(scoped_lockable)

// On data members: may only be read or written while `x` is held.
#define PARADMM_GUARDED_BY(x) PARADMM_THREAD_ANNOTATION(guarded_by(x))

// On pointer/smart-pointer members: the *pointee* is guarded by `x` (the
// pointer itself may be read freely).
#define PARADMM_PT_GUARDED_BY(x) PARADMM_THREAD_ANNOTATION(pt_guarded_by(x))

// On functions: caller must hold the capabilities (the `_locked` helper
// contract — calling without the lock is a compile error under clang).
#define PARADMM_REQUIRES(...) \
  PARADMM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PARADMM_REQUIRES_SHARED(...) \
  PARADMM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// On functions: acquires/releases the named capabilities (no argument
// means "this", for lock/unlock members of the capability type itself).
#define PARADMM_ACQUIRE(...) \
  PARADMM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PARADMM_RELEASE(...) \
  PARADMM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PARADMM_TRY_ACQUIRE(...) \
  PARADMM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On functions: caller must NOT hold the capability (catches self-deadlock
// on a non-recursive mutex at compile time).
#define PARADMM_EXCLUDES(...) \
  PARADMM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On functions returning a reference to a guarded object.
#define PARADMM_RETURN_CAPABILITY(x) \
  PARADMM_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot follow (e.g. lock handoff
// through a condition-variable wait).  Every use should carry a one-line
// justification at the site.
#define PARADMM_NO_THREAD_SAFETY_ANALYSIS \
  PARADMM_THREAD_ANNOTATION(no_thread_safety_analysis)
