// Vectorized SoA phase kernels behind a runtime dispatch seam.
//
// The five ADMM phases and the dense prox reductions spend their time in a
// handful of flat double-array loops.  This header names those loops once —
// as raw-pointer kernels over contiguous SoA blocks — and provides two
// implementations selected at runtime:
//
//   * kScalar      — straight scalar loops with compiler vectorization
//                    disabled: the reference implementation every parity
//                    test compares against.
//   * kVectorized  — restrict-qualified, compiler-vectorizable loops
//                    (lane-striped accumulators for the reductions).  The
//                    default.  On x86-64 the vectorized table itself is
//                    picked at runtime: an AVX2 build of the same source
//                    when the host supports it (vector_isa() == "avx2"),
//                    the portable SSE2 baseline otherwise.  The AVX2 build
//                    deliberately excludes FMA, so both builds round
//                    identically and the contract below is ISA-independent.
//
// Pointer contract: within one kernel call the input and output arrays must
// not alias each other (they are distinct graph arrays, or disjoint slices
// of one), except where a parameter is explicitly both read and written
// (u_update's u, z_accumulate's z, axpy's y — an in/out accumulator is fine,
// overlap between *different* parameters is not).  Alignment: natural
// (8-byte) double alignment only; the vectorized loops use unaligned vector
// loads, so callers never need to over-align slices.
//
// Determinism contract (version 2, shipped by this layer — see
// docs/kernels.md):
//   * Elementwise kernels (m_update, u_update, n_update, z_accumulate,
//     z_divide, fill, axpy) are bitwise identical across modes — no
//     floating-point reassociation is involved, so vectorizing them is
//     value-preserving.
//   * Reductions (dot, norm2_squared, distance_squared) accumulate in a
//     fixed order that depends only on the element count n — never on the
//     fork width or schedule — so determinism-per-width holds within a
//     mode.  Across modes the vectorized reductions stripe over four
//     accumulators and therefore differ from scalar by reassociation
//     rounding; cross-mode comparisons are toleranced, not bitwise.
//
// Mode selection: set_mode() or the PARADMM_KERNELS environment variable
// ("scalar" / "vectorized"; unset means vectorized).  The mode is a
// process-global test/bench seam, bound by AdmmSolver at construction —
// changing it mid-solve is unsupported.
#pragma once

#include <cstddef>

namespace paradmm::kernels {

enum class KernelMode {
  kScalar,      ///< reference scalar loops, vectorization suppressed
  kVectorized,  ///< compiler-vectorized loops (default)
};

/// Human-readable mode name (for logs and bench JSON).
const char* to_string(KernelMode mode);

/// Dispatch table of raw-pointer kernels.  All spans are (pointer, count)
/// pairs over caller-owned storage; n may be zero (every kernel is a no-op
/// then).  See the header comment for the aliasing/alignment contract.
struct KernelTable {
  // --- Elementwise phase updates (bitwise identical across modes) ---------
  /// m[i] = x[i] + u[i].
  void (*m_update)(const double* x, const double* u, double* m, std::size_t n);
  /// u[i] += alpha * (x[i] - z[i]).
  void (*u_update)(double alpha, const double* x, const double* z, double* u,
                   std::size_t n);
  /// out[i] = z[i] - u[i].
  void (*n_update)(const double* z, const double* u, double* out,
                   std::size_t n);
  /// z[i] += rho * m[i] — one edge's weighted contribution to a consensus
  /// slice.
  void (*z_accumulate)(double rho, const double* m, double* z, std::size_t n);
  /// z[i] /= denom.  A true divide (not multiply-by-reciprocal) so the
  /// result is bitwise identical to the scalar numerator/denominator form.
  void (*z_divide)(double denom, double* z, std::size_t n);
  /// y[i] = value.
  void (*fill)(double* y, double value, std::size_t n);
  /// y[i] += a * x[i].
  void (*axpy)(double a, const double* x, double* y, std::size_t n);

  // --- Reductions (order depends only on n; toleranced across modes) ------
  double (*dot)(const double* x, const double* y, std::size_t n);
  double (*norm2_squared)(const double* x, std::size_t n);
  double (*distance_squared)(const double* x, const double* y, std::size_t n);
};

/// The table for an explicit mode (parity tests compare the two directly).
const KernelTable& table(KernelMode mode);

/// Current process-global mode.  Defaults from PARADMM_KERNELS (unset =>
/// kVectorized); an unrecognized value fails loudly rather than silently
/// running the wrong kernels.
KernelMode mode();

/// Overrides the process-global mode (test/bench seam).  Not for use while
/// a solve is running — solvers bind their table at construction.
void set_mode(KernelMode mode);

/// table(mode()) — the table new solvers and the vec:: reductions bind.
const KernelTable& active();

/// Instruction set the vectorized table was compiled for on this host:
/// "avx2" when runtime dispatch selected the AVX2 build, "baseline" for
/// the portable build (SSE2 on x86-64, NEON on aarch64).  Informational —
/// results are bitwise identical either way (see the header comment).
const char* vector_isa();

}  // namespace paradmm::kernels
