#include "math/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <string_view>

#include "support/error.hpp"

// The scalar table is the *reference* implementation: its loops must stay
// genuinely scalar even at -O3, or the parity tests and the per-kernel
// bench speedups would compare the vectorizer against itself.  GCC takes a
// function-level attribute; Clang takes per-loop pragmas.
#if defined(__clang__)
#define PARADMM_SCALAR_FN
#define PARADMM_SCALAR_LOOP \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define PARADMM_SCALAR_FN \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define PARADMM_SCALAR_LOOP
#else
#define PARADMM_SCALAR_FN
#define PARADMM_SCALAR_LOOP
#endif

#if defined(_MSC_VER)
#define PARADMM_RESTRICT __restrict
#else
#define PARADMM_RESTRICT __restrict__
#endif

// The vectorized bodies (kernels_vector_impl.inc) are built twice on
// x86-64 GCC/Clang: once with the translation unit's portable baseline
// flags (SSE2) and once per-function with target("avx2"), chosen at run
// time via __builtin_cpu_supports so the binary stays runnable on any
// x86-64 host.  AVX2 is enabled WITHOUT the fma feature: without the FMA
// ISA the compiler cannot contract mul+add, so every build of the same
// source rounds identically and the bitwise elementwise contract against
// the scalar reference holds on every host.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PARADMM_HAVE_AVX2_DISPATCH 1
#define PARADMM_AVX2_FN __attribute__((target("avx2")))
#else
#define PARADMM_HAVE_AVX2_DISPATCH 0
#endif

namespace paradmm::kernels {
namespace scalar {

PARADMM_SCALAR_FN void m_update(const double* x, const double* u, double* m,
                                std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) m[i] = x[i] + u[i];
}

PARADMM_SCALAR_FN void u_update(double alpha, const double* x, const double* z,
                                double* u, std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) u[i] += alpha * (x[i] - z[i]);
}

PARADMM_SCALAR_FN void n_update(const double* z, const double* u, double* out,
                                std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) out[i] = z[i] - u[i];
}

PARADMM_SCALAR_FN void z_accumulate(double rho, const double* m, double* z,
                                    std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) z[i] += rho * m[i];
}

PARADMM_SCALAR_FN void z_divide(double denom, double* z, std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) z[i] /= denom;
}

PARADMM_SCALAR_FN void fill(double* y, double value, std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) y[i] = value;
}

PARADMM_SCALAR_FN void axpy(double a, const double* x, double* y,
                            std::size_t n) {
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

PARADMM_SCALAR_FN double dot(const double* x, const double* y, std::size_t n) {
  double sum = 0.0;
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

PARADMM_SCALAR_FN double norm2_squared(const double* x, std::size_t n) {
  double sum = 0.0;
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) sum += x[i] * x[i];
  return sum;
}

PARADMM_SCALAR_FN double distance_squared(const double* x, const double* y,
                                          std::size_t n) {
  double sum = 0.0;
  PARADMM_SCALAR_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace scalar

namespace vectorized {
#define PARADMM_VECTOR_FN
#include "math/kernels_vector_impl.inc"
#undef PARADMM_VECTOR_FN
}  // namespace vectorized

#if PARADMM_HAVE_AVX2_DISPATCH
namespace vectorized_avx2 {
#define PARADMM_VECTOR_FN PARADMM_AVX2_FN
#include "math/kernels_vector_impl.inc"
#undef PARADMM_VECTOR_FN
}  // namespace vectorized_avx2
#endif

namespace {

constexpr KernelTable kScalarTable = {
    scalar::m_update,     scalar::u_update, scalar::n_update,
    scalar::z_accumulate, scalar::z_divide, scalar::fill,
    scalar::axpy,         scalar::dot,      scalar::norm2_squared,
    scalar::distance_squared,
};

constexpr KernelTable kVectorizedTable = {
    vectorized::m_update,     vectorized::u_update, vectorized::n_update,
    vectorized::z_accumulate, vectorized::z_divide, vectorized::fill,
    vectorized::axpy,         vectorized::dot,      vectorized::norm2_squared,
    vectorized::distance_squared,
};

#if PARADMM_HAVE_AVX2_DISPATCH
constexpr KernelTable kVectorizedAvx2Table = {
    vectorized_avx2::m_update,     vectorized_avx2::u_update,
    vectorized_avx2::n_update,     vectorized_avx2::z_accumulate,
    vectorized_avx2::z_divide,     vectorized_avx2::fill,
    vectorized_avx2::axpy,         vectorized_avx2::dot,
    vectorized_avx2::norm2_squared, vectorized_avx2::distance_squared,
};
#endif

bool host_has_avx2() {
#if PARADMM_HAVE_AVX2_DISPATCH
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

const KernelTable& vectorized_table() {
#if PARADMM_HAVE_AVX2_DISPATCH
  if (host_has_avx2()) return kVectorizedAvx2Table;
#endif
  return kVectorizedTable;
}

KernelMode default_mode() {
  const char* env = std::getenv("PARADMM_KERNELS");
  if (env == nullptr || *env == '\0') return KernelMode::kVectorized;
  const std::string_view value(env);
  if (value == "scalar") return KernelMode::kScalar;
  if (value == "vectorized") return KernelMode::kVectorized;
  throw PreconditionError(
      "PARADMM_KERNELS must be 'scalar' or 'vectorized' (got '" +
      std::string(value) + "')");
}

std::atomic<KernelMode>& mode_slot() {
  static std::atomic<KernelMode> slot{default_mode()};
  return slot;
}

}  // namespace

const char* to_string(KernelMode mode) {
  return mode == KernelMode::kScalar ? "scalar" : "vectorized";
}

const KernelTable& table(KernelMode mode) {
  return mode == KernelMode::kScalar ? kScalarTable : vectorized_table();
}

const char* vector_isa() { return host_has_avx2() ? "avx2" : "baseline"; }

KernelMode mode() { return mode_slot().load(std::memory_order_relaxed); }

void set_mode(KernelMode mode) {
  mode_slot().store(mode, std::memory_order_relaxed);
}

const KernelTable& active() { return table(mode()); }

}  // namespace paradmm::kernels
