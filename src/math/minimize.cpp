#include "math/minimize.hpp"

#include <cmath>

#include "support/error.hpp"

namespace paradmm {

double golden_section_minimize(const std::function<double(double)>& objective,
                               double lo, double hi, double tolerance) {
  require(lo <= hi, "golden_section_minimize requires lo <= hi");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = objective(c);
  double fd = objective(d);
  while (b - a > tolerance) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = objective(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = objective(d);
    }
  }
  return 0.5 * (a + b);
}

namespace {

std::vector<double> numerical_gradient(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> point) {
  constexpr double kStep = 1e-6;
  std::vector<double> shifted(point.begin(), point.end());
  std::vector<double> gradient(point.size(), 0.0);
  for (std::size_t i = 0; i < point.size(); ++i) {
    const double original = shifted[i];
    shifted[i] = original + kStep;
    const double forward = objective(shifted);
    shifted[i] = original - kStep;
    const double backward = objective(shifted);
    shifted[i] = original;
    gradient[i] = (forward - backward) / (2.0 * kStep);
  }
  return gradient;
}

}  // namespace

MinimizeResult projected_gradient_minimize(
    const std::function<double(std::span<const double>)>& objective,
    const std::function<void(std::span<double>)>& project,
    std::vector<double> start, int max_iterations, double tolerance) {
  MinimizeResult result;
  std::vector<double> current = std::move(start);
  project(current);
  double current_value = objective(current);
  double step = 1.0;

  for (int iter = 0; iter < max_iterations; ++iter) {
    const std::vector<double> gradient = numerical_gradient(objective, current);
    double gradient_norm_sq = 0.0;
    for (double g : gradient) gradient_norm_sq += g * g;

    // Backtracking line search along the projected gradient direction.
    bool improved = false;
    for (int attempt = 0; attempt < 40; ++attempt) {
      std::vector<double> candidate = current;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        candidate[i] -= step * gradient[i];
      }
      project(candidate);
      const double candidate_value = objective(candidate);
      if (candidate_value < current_value - 1e-16) {
        double move_sq = 0.0;
        for (std::size_t i = 0; i < candidate.size(); ++i) {
          const double d = candidate[i] - current[i];
          move_sq += d * d;
        }
        current = std::move(candidate);
        current_value = candidate_value;
        improved = true;
        step *= 1.3;  // Expand after success.
        if (move_sq < tolerance * tolerance) {
          result.argmin = current;
          result.value = current_value;
          result.iterations = iter + 1;
          return result;
        }
        break;
      }
      step *= 0.5;
    }
    if (!improved && gradient_norm_sq < tolerance) break;
    if (!improved && step < 1e-18) break;
  }

  result.argmin = current;
  result.value = current_value;
  result.iterations = max_iterations;
  return result;
}

}  // namespace paradmm
