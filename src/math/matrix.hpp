// Small dense row-major matrices.
//
// The MPC proximal operators and the two-block baseline need dense solves on
// matrices of at most a few hundred rows (state dimension x horizon blocks),
// so this is a deliberately small, dependency-free implementation: row-major
// storage, Cholesky for SPD systems, partially-pivoted LU for general ones.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace paradmm {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector of entries.
  static Matrix diagonal(std::span<const double> entries);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix transposed() const;

  /// out = this * x  (matrix-vector product).
  void multiply(std::span<const double> x, std::span<double> out) const;

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double scalar);

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization of an SPD matrix: returns lower-triangular L with
/// A = L L^T.  Throws NumericalError if A is not (numerically) SPD.
Matrix cholesky_factor(const Matrix& a);

/// Solves A x = b given the Cholesky factor L of A (forward + back subst.).
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// Solves the SPD system A x = b (factor + solve in one call).
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Solves a general square system A x = b via LU with partial pivoting.
/// Throws NumericalError on singular input.
std::vector<double> solve_lu(Matrix a, std::vector<double> b);

/// Inverse via LU; only used on small matrices in setup paths.
Matrix inverse(const Matrix& a);

}  // namespace paradmm
