#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace paradmm::stats {

double sum(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double mean(std::span<const double> values) {
  require(!values.empty(), "stats::mean of empty range");
  return sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return accum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min(std::span<const double> values) {
  require(!values.empty(), "stats::min of empty range");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  require(!values.empty(), "stats::max of empty range");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double q) {
  require(!values.empty(), "stats::percentile of empty range");
  require(q >= 0.0 && q <= 1.0, "percentile q must lie in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

}  // namespace paradmm::stats
