// Descriptive statistics used by benches (timing summaries) and tests.
#pragma once

#include <span>

namespace paradmm::stats {

double sum(std::span<const double> values);
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> values);
double stddev(std::span<const double> values);

double min(std::span<const double> values);
double max(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 1].  q=0.5 is the median.
double percentile(std::span<const double> values, double q);

}  // namespace paradmm::stats
