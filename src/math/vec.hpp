// Dense vector kernels over std::span<double>.
//
// These are the primitives the proximal operators and the ADMM update
// phases are written in.  They operate on caller-owned storage (the factor
// graph's flat arrays), never allocate, and are kept trivially inlinable —
// the engine's inner loops compile down to straight-line code.
//
// The dense reductions (dot / norm2_squared / distance_squared) delegate to
// the runtime-dispatched kernel layer (math/kernels.hpp), so the prox inner
// products pick up the vectorized implementations; see that header for the
// determinism contract.  The elementwise helpers stay plain inline loops —
// they are reassociation-free, so the compiler vectorizes them in place.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "math/kernels.hpp"
#include "support/error.hpp"

namespace paradmm::vec {

/// y[i] = value for all i.
inline void fill(std::span<double> y, double value) {
  for (auto& v : y) v = value;
}

/// y[i] = x[i].
inline void copy(std::span<const double> x, std::span<double> y) {
  affirm(x.size() == y.size(), "vec::copy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// y[i] += a * x[i].
inline void axpy(double a, std::span<const double> x, std::span<double> y) {
  affirm(x.size() == y.size(), "vec::axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

/// y[i] *= a.
inline void scale(std::span<double> y, double a) {
  for (auto& v : y) v *= a;
}

/// out[i] = x[i] + y[i].
inline void add(std::span<const double> x, std::span<const double> y,
                std::span<double> out) {
  affirm(x.size() == y.size() && x.size() == out.size(),
         "vec::add size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
}

/// out[i] = x[i] - y[i].
inline void sub(std::span<const double> x, std::span<const double> y,
                std::span<double> out) {
  affirm(x.size() == y.size() && x.size() == out.size(),
         "vec::sub size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

/// Inner product <x, y>.
inline double dot(std::span<const double> x, std::span<const double> y) {
  affirm(x.size() == y.size(), "vec::dot size mismatch");
  return kernels::active().dot(x.data(), y.data(), x.size());
}

/// Squared Euclidean norm.
inline double norm2_squared(std::span<const double> x) {
  return kernels::active().norm2_squared(x.data(), x.size());
}

/// Euclidean norm.
inline double norm2(std::span<const double> x) {
  return std::sqrt(norm2_squared(x));
}

/// Max-norm.
inline double norm_inf(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::fabs(v));
  return best;
}

/// Squared Euclidean distance ||x - y||^2.
inline double distance_squared(std::span<const double> x,
                               std::span<const double> y) {
  affirm(x.size() == y.size(), "vec::distance size mismatch");
  return kernels::active().distance_squared(x.data(), y.data(), x.size());
}

/// Euclidean distance ||x - y||.
inline double distance(std::span<const double> x, std::span<const double> y) {
  return std::sqrt(distance_squared(x, y));
}

/// Clamp each component into [lo, hi].
inline void clamp(std::span<double> y, double lo, double hi) {
  for (auto& v : y) v = std::min(hi, std::max(lo, v));
}

}  // namespace paradmm::vec
