// Reference numerical minimizers.
//
// These are *not* used inside the solver.  They provide independent ground
// truth for the property tests: every closed-form proximal operator in the
// library is cross-checked against one of these generic minimizers on
// randomized inputs.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace paradmm {

/// Golden-section search for a unimodal function on [lo, hi].
/// Returns the argmin to within `tolerance`.
double golden_section_minimize(const std::function<double(double)>& objective,
                               double lo, double hi, double tolerance = 1e-10);

/// Result of a multi-dimensional numerical minimization.
struct MinimizeResult {
  std::vector<double> argmin;
  double value = 0.0;
  int iterations = 0;
};

/// Projected gradient descent with a numerical (central-difference) gradient
/// and adaptive step size.  `project` maps a point onto the feasible set; use
/// the identity for unconstrained problems.  Slow but generic — test-only.
MinimizeResult projected_gradient_minimize(
    const std::function<double(std::span<const double>)>& objective,
    const std::function<void(std::span<double>)>& project,
    std::vector<double> start, int max_iterations = 20000,
    double tolerance = 1e-12);

}  // namespace paradmm
