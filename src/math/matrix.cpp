#include "math/matrix.hpp"

#include <cmath>

#include "support/error.hpp"

namespace paradmm {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    require(row.size() == cols_, "Matrix initializer rows must be equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  affirm(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  affirm(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  affirm(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  affirm(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::multiply(std::span<const double> x, std::span<double> out) const {
  require(x.size() == cols_ && out.size() == rows_,
          "Matrix::multiply dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row_ptr[c] * x[c];
    out[r] = sum;
  }
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "Matrix product dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
          "Matrix difference dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
          "Matrix sum dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Matrix cholesky_factor(const Matrix& a) {
  require(a.square(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) {
      throw NumericalError("cholesky_factor: matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  require(l.square() && l.rows() == b.size(),
          "cholesky_solve dimension mismatch");
  const std::size_t n = l.rows();
  std::vector<double> y(b.begin(), b.end());
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) y[i] -= l(i, k) * y[k];
    y[i] /= l(i, i);
  }
  // Back substitution: L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t k = i + 1; k < n; ++k) y[i] -= l(k, i) * y[k];
    y[i] /= l(i, i);
  }
  return y;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  return cholesky_solve(cholesky_factor(a), b);
}

std::vector<double> solve_lu(Matrix a, std::vector<double> b) {
  require(a.square() && a.rows() == b.size(), "solve_lu dimension mismatch");
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-14) {
      throw NumericalError("solve_lu: matrix is singular to working precision");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  require(a.square(), "inverse requires a square matrix");
  const std::size_t n = a.rows();
  Matrix out(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<double> e(n, 0.0);
    e[c] = 1.0;
    const std::vector<double> col = solve_lu(a, std::move(e));
    for (std::size_t r = 0; r < n; ++r) out(r, c) = col[r];
  }
  return out;
}

}  // namespace paradmm
