// Factor-graph builder and direct (KKT) reference solver for the MPC
// benchmark (§V-B of the paper).
//
// One variable node per time step stacks (q(t), u(t)); factors, added by
// kind for warp-uniform layout:
//   K+1 stage costs, K dynamics constraints, 1 initial-state clamp
// giving 3K+2 edges — linear in the horizon K, as the paper notes.
#pragma once

#include <memory>
#include <vector>

#include "core/factor_graph.hpp"
#include "problems/mpc/prox_ops.hpp"

namespace paradmm::mpc {

struct MpcConfig {
  std::size_t horizon = 50;  ///< K
  PendulumParams plant;
  std::vector<double> q_weight = {1.0, 0.1, 10.0, 0.1};  ///< diag(Q)
  std::vector<double> r_weight = {0.01};                 ///< diag(R)
  std::vector<double> initial_state = {0.3, 0.0, 0.15, 0.0};
  double rho = 1.0;
  double alpha = 1.0;
  std::uint64_t seed = 99;
  /// Random init range for the ADMM state (the paper initializes at random).
  double init_lo = -0.1;
  double init_hi = 0.1;
};

/// One (q, u) trajectory point.
struct StagePoint {
  std::vector<double> state;
  double input = 0.0;
};

class MpcProblem {
 public:
  explicit MpcProblem(const MpcConfig& config);

  FactorGraph& graph() { return graph_; }
  const FactorGraph& graph() const { return graph_; }
  const MpcConfig& config() const { return config_; }
  const PendulumModel& model() const { return model_; }

  /// Decoded trajectory from the consensus variables.
  std::vector<StagePoint> trajectory() const;

  /// Max dynamics violation ||q(t+1) - q(t) - A q(t) - B u(t)||_inf over t.
  double dynamics_violation() const;

  /// The quadratic objective at the current solution.
  double objective() const;

  /// Moves the initial-state clamp (real-time re-solve support).
  void set_initial_state(std::vector<double> q0);

  VariableId node_id(std::size_t t) const { return nodes_.at(t); }

 private:
  MpcConfig config_;
  PendulumModel model_;
  FactorGraph graph_;
  std::vector<VariableId> nodes_;
  std::shared_ptr<InitialStateProx> initial_;
};

/// Dense KKT reference: solves the same equality-constrained QP directly
/// (test oracle; O((K nq)^3), use with modest K).
std::vector<StagePoint> solve_mpc_direct(const MpcConfig& config);

}  // namespace paradmm::mpc
