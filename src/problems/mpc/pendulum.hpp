// Linearized inverted pendulum (cart-pole) — the plant behind the paper's
// MPC benchmark (§V-B): "A in R^4x4 and B in R^4x1, obtained from
// linearizing (around equilibrium) and sampling (every 40 ms) a continuous
// time inverted-pendulum system".
//
// States: [cart position, cart velocity, pole angle, pole angular rate];
// input: horizontal force on the cart.  The discrete difference form the
// paper uses is q(t+1) - q(t) = A q(t) + B u(t) with A = A_c * dt and
// B = B_c * dt (forward-Euler sampling of the continuous linearization).
#pragma once

#include "math/matrix.hpp"

namespace paradmm::mpc {

inline constexpr std::size_t kStateDim = 4;
inline constexpr std::size_t kInputDim = 1;

struct PendulumParams {
  double cart_mass = 1.0;    ///< kg
  double pole_mass = 0.2;    ///< kg
  double pole_length = 0.5;  ///< m (pivot to center of mass)
  double gravity = 9.81;     ///< m/s^2
  double dt = 0.04;          ///< s (the paper's 40 ms sampling)
};

/// Discrete difference-form model: q(t+1) - q(t) = A q(t) + B u(t).
struct PendulumModel {
  Matrix a;  ///< 4x4
  Matrix b;  ///< 4x1
};

/// Linearizes the cart-pole around the upright equilibrium and samples it.
PendulumModel linearized_pendulum(const PendulumParams& params = {});

/// One step of the open-loop dynamics (for closed-loop simulations).
std::vector<double> step(const PendulumModel& model,
                         std::span<const double> state, double input);

}  // namespace paradmm::mpc
