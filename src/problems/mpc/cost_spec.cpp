#include "problems/mpc/cost_spec.hpp"

#include <array>
#include <memory>

#include "problems/mpc/builder.hpp"
#include "support/error.hpp"

namespace paradmm::mpc {
namespace {

using devsim::IterationCosts;
using devsim::MemoryPattern;
using devsim::PhaseCostSpec;
using devsim::TaskCost;

constexpr std::uint32_t kNodeDim = kStateDim + kInputDim;

}  // namespace

devsim::IterationCosts mpc_iteration_costs(std::size_t horizon) {
  require(horizon >= 1, "mpc_iteration_costs needs horizon >= 1");
  const std::size_t k = horizon;
  const std::size_t stage_factors = k + 1;
  const std::size_t dynamics_factors = k;
  const std::size_t factors = stage_factors + dynamics_factors + 1;
  const std::size_t edges = stage_factors + 2 * dynamics_factors + 1;
  const std::size_t variables = k + 1;

  // Representative operators, used only for their cost annotations.
  const MpcConfig defaults;
  const auto stage =
      std::make_shared<StageCostProx>(defaults.q_weight, defaults.r_weight);
  const auto dynamics =
      make_dynamics_prox(linearized_pendulum(defaults.plant));
  const auto initial =
      std::make_shared<InitialStateProx>(defaults.initial_state);

  static constexpr std::array<std::uint32_t, 1> kOneNode = {kNodeDim};
  static constexpr std::array<std::uint32_t, 2> kTwoNodes = {kNodeDim,
                                                             kNodeDim};
  const TaskCost stage_cost = devsim::x_phase_task_cost(*stage, kOneNode);
  const TaskCost dynamics_cost =
      devsim::x_phase_task_cost(*dynamics, kTwoNodes);
  const TaskCost initial_cost =
      devsim::x_phase_task_cost(*initial, kOneNode);

  IterationCosts costs;
  costs.phases[0] = PhaseCostSpec{
      "x", factors, MemoryPattern::kGather,
      [stage_factors, dynamics_factors, stage_cost, dynamics_cost,
       initial_cost](std::size_t a) {
        if (a < stage_factors) return stage_cost;
        if (a < stage_factors + dynamics_factors) return dynamics_cost;
        return initial_cost;
      }};
  costs.phases[1] = PhaseCostSpec{
      "m", edges, MemoryPattern::kCoalesced,
      [](std::size_t) { return devsim::m_phase_cost(kNodeDim); }};
  costs.phases[2] = PhaseCostSpec{
      "z", variables, MemoryPattern::kGather, [k](std::size_t b) {
        // Node degrees: stage cost (1) + dynamics to the left/right + the
        // initial clamp on node 0.
        std::uint32_t degree = 1;
        if (b > 0) ++degree;      // dynamics (b-1, b)
        if (b < k) ++degree;      // dynamics (b, b+1)
        if (b == 0) ++degree;     // initial-state factor
        return devsim::z_phase_cost(degree, kNodeDim);
      }};
  costs.phases[3] = PhaseCostSpec{
      "u", edges, MemoryPattern::kMixed,
      [](std::size_t) { return devsim::u_phase_cost(kNodeDim); }};
  costs.phases[4] = PhaseCostSpec{
      "n", edges, MemoryPattern::kMixed,
      [](std::size_t) { return devsim::n_phase_cost(kNodeDim); }};
  return costs;
}

devsim::GraphFootprint mpc_footprint(std::size_t horizon) {
  devsim::GraphFootprint footprint;
  const std::size_t edges = 3 * horizon + 2;
  footprint.edges = edges;
  footprint.edge_scalars = edges * kNodeDim;
  footprint.variable_scalars = (horizon + 1) * kNodeDim;
  return footprint;
}

}  // namespace paradmm::mpc
