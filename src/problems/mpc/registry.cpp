#include "problems/mpc/registry.hpp"

namespace paradmm::mpc {

void register_problem(runtime::ProblemRegistry& registry) {
  registry.add(
      "mpc",
      "pendulum model-predictive control over a horizon "
      "(params: mpc::MpcJobParams)",
      [](const std::any& params) {
        const auto p = runtime::params_or_default<MpcJobParams>(params);
        auto problem = std::make_shared<MpcProblem>(p.config);
        return runtime::BuiltProblem{problem, &problem->graph()};
      });
}

}  // namespace paradmm::mpc
