// Analytic iteration-cost descriptor for the MPC factor graph — the paper
// sweeps the horizon K up to 1e5; this reproduces exactly what
// devsim::extract_iteration_costs computes on the materialized graph
// (asserted in tests) without building it.
#pragma once

#include "devsim/cost_model.hpp"

namespace paradmm::mpc {

devsim::IterationCosts mpc_iteration_costs(std::size_t horizon);

devsim::GraphFootprint mpc_footprint(std::size_t horizon);

}  // namespace paradmm::mpc
