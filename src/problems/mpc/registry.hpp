// Registry adapter: builds the pendulum MPC problem by name ("mpc").
// BuiltProblem::owner holds an mpc::MpcProblem.
#pragma once

#include "problems/mpc/builder.hpp"
#include "runtime/problem_registry.hpp"

namespace paradmm::mpc {

struct MpcJobParams {
  MpcConfig config;
};

/// Registers "mpc" with `registry` (params: MpcJobParams).
void register_problem(runtime::ProblemRegistry& registry);

}  // namespace paradmm::mpc
