#include "problems/mpc/builder.hpp"

#include <cmath>

#include "math/vec.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradmm::mpc {

MpcProblem::MpcProblem(const MpcConfig& config)
    : config_(config), model_(linearized_pendulum(config.plant)) {
  require(config.horizon >= 1, "MPC horizon must be at least 1");
  require(config.q_weight.size() == kStateDim,
          "q_weight must match the state dimension");
  require(config.r_weight.size() == kInputDim,
          "r_weight must match the input dimension");
  require(config.initial_state.size() == kStateDim,
          "initial_state must match the state dimension");

  const std::size_t k = config.horizon;
  const auto node_dim = static_cast<std::uint32_t>(kStateDim + kInputDim);
  nodes_ = graph_.add_variables(k + 1, node_dim);

  const auto stage_cost =
      std::make_shared<StageCostProx>(config.q_weight, config.r_weight);
  for (std::size_t t = 0; t <= k; ++t) {
    graph_.add_factor(stage_cost, {nodes_[t]});
  }
  const auto dynamics = make_dynamics_prox(model_);
  for (std::size_t t = 0; t < k; ++t) {
    graph_.add_factor(dynamics, {nodes_[t], nodes_[t + 1]});
  }
  initial_ = std::make_shared<InitialStateProx>(config.initial_state);
  graph_.add_factor(initial_, {nodes_[0]});

  graph_.set_uniform_parameters(config.rho, config.alpha);
  Rng rng(config.seed);
  graph_.randomize_state(config.init_lo, config.init_hi, rng);
}

std::vector<StagePoint> MpcProblem::trajectory() const {
  std::vector<StagePoint> points;
  points.reserve(nodes_.size());
  for (const VariableId node : nodes_) {
    const auto z = graph_.solution(node);
    StagePoint point;
    point.state.assign(z.begin(), z.begin() + kStateDim);
    point.input = z[kStateDim];
    points.push_back(std::move(point));
  }
  return points;
}

double MpcProblem::dynamics_violation() const {
  const auto points = trajectory();
  double worst = 0.0;
  std::vector<double> delta(kStateDim);
  for (std::size_t t = 0; t + 1 < points.size(); ++t) {
    model_.a.multiply(points[t].state, delta);
    for (std::size_t i = 0; i < kStateDim; ++i) {
      const double residual = points[t + 1].state[i] - points[t].state[i] -
                              delta[i] - model_.b(i, 0) * points[t].input;
      worst = std::max(worst, std::fabs(residual));
    }
  }
  return worst;
}

double MpcProblem::objective() const {
  const auto points = trajectory();
  double total = 0.0;
  for (const auto& point : points) {
    for (std::size_t i = 0; i < kStateDim; ++i) {
      total += config_.q_weight[i] * point.state[i] * point.state[i];
    }
    total += config_.r_weight[0] * point.input * point.input;
  }
  return total;
}

void MpcProblem::set_initial_state(std::vector<double> q0) {
  config_.initial_state = q0;
  initial_->set_state(std::move(q0));
}

std::vector<StagePoint> solve_mpc_direct(const MpcConfig& config) {
  const PendulumModel model = linearized_pendulum(config.plant);
  const std::size_t k = config.horizon;
  const std::size_t node = kStateDim + kInputDim;
  const std::size_t vars = (k + 1) * node;
  const std::size_t constraints = kStateDim + k * kStateDim;
  const std::size_t dim = vars + constraints;

  Matrix kkt(dim, dim);
  std::vector<double> rhs(dim, 0.0);

  // Hessian: 2 * diag(stacked stage weights).
  for (std::size_t t = 0; t <= k; ++t) {
    for (std::size_t i = 0; i < kStateDim; ++i) {
      kkt(t * node + i, t * node + i) = 2.0 * config.q_weight[i];
    }
    kkt(t * node + kStateDim, t * node + kStateDim) =
        2.0 * config.r_weight[0];
  }

  // Initial-state rows: q(0) = q0.
  std::size_t row = vars;
  for (std::size_t i = 0; i < kStateDim; ++i, ++row) {
    kkt(row, i) = 1.0;
    kkt(i, row) = 1.0;
    rhs[row] = config.initial_state[i];
  }

  // Dynamics rows: -(I + A) q_t - B u_t + q_{t+1} = 0.
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t r = 0; r < kStateDim; ++r, ++row) {
      for (std::size_t c = 0; c < kStateDim; ++c) {
        const double coefficient = -model.a(r, c) - (r == c ? 1.0 : 0.0);
        kkt(row, t * node + c) = coefficient;
        kkt(t * node + c, row) = coefficient;
      }
      kkt(row, t * node + kStateDim) = -model.b(r, 0);
      kkt(t * node + kStateDim, row) = -model.b(r, 0);
      kkt(row, (t + 1) * node + r) = 1.0;
      kkt((t + 1) * node + r, row) = 1.0;
    }
  }

  const std::vector<double> solution = solve_lu(kkt, rhs);

  std::vector<StagePoint> points(k + 1);
  for (std::size_t t = 0; t <= k; ++t) {
    points[t].state.assign(solution.begin() + t * node,
                           solution.begin() + t * node + kStateDim);
    points[t].input = solution[t * node + kStateDim];
  }
  return points;
}

}  // namespace paradmm::mpc
