// Proximal operators for the MPC factor graph (Appendix B of the paper).
//
// Each time step t owns one variable node stacking (q(t), u(t)).  Three
// operator families appear:
//   * StageCostProx     f(q,u) = q' diag(Q) q + u' diag(R) u   (per node)
//   * dynamics factors  q(t+1) - q(t) = A q(t) + B u(t)        (per step,
//     expressed with the generic AffineEqualityProx — see make_dynamics_*)
//   * InitialStateProx  q(0) = q0, u(0) free                   (node 0)
#pragma once

#include <memory>
#include <vector>

#include "core/prox.hpp"
#include "core/prox_library.hpp"
#include "problems/mpc/pendulum.hpp"

namespace paradmm::mpc {

/// Quadratic stage cost with diagonal weights (the paper makes all Q_t and
/// R_t equal and diagonal).  Single edge of dim |q| + |u|; closed form per
/// component: x_i = rho n_i / (rho + 2 w_i).
class StageCostProx final : public ProxOperator {
 public:
  StageCostProx(std::vector<double> q_diag, std::vector<double> r_diag);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "mpc-stage-cost"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  std::vector<double> weights_;  // stacked (q_diag, r_diag)
};

/// Clamps the state part of node 0 to the measured q0 (the paper's
/// q(0) = q0 factor); the input part passes through.
class InitialStateProx final : public ProxOperator {
 public:
  explicit InitialStateProx(std::vector<double> q0);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "mpc-initial-state"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

  /// Re-points the clamp at a new measured state (real-time MPC re-solve:
  /// the paper notes only q0 needs updating between controller cycles).
  /// Not thread-safe against a running solve.
  void set_state(std::vector<double> q0);

 private:
  std::vector<double> q0_;
};

/// Builds the constraint matrix of one dynamics factor over the stacked
/// edges ((q_t, u_t), (q_{t+1}, u_{t+1})):
///   -(I + A) q_t - B u_t + q_{t+1} = 0   (|q| rows, 2(|q|+|u|) cols).
Matrix dynamics_constraint_matrix(const PendulumModel& model);

/// Convenience: the dynamics factor as a ready-to-share proximal operator.
std::shared_ptr<const ProxOperator> make_dynamics_prox(
    const PendulumModel& model);

}  // namespace paradmm::mpc
