#include "problems/mpc/pendulum.hpp"

#include "support/error.hpp"

namespace paradmm::mpc {

PendulumModel linearized_pendulum(const PendulumParams& params) {
  require(params.dt > 0.0, "pendulum sampling period must be positive");
  require(params.cart_mass > 0.0 && params.pole_mass > 0.0 &&
              params.pole_length > 0.0,
          "pendulum masses and length must be positive");
  const double m_cart = params.cart_mass;
  const double m_pole = params.pole_mass;
  const double length = params.pole_length;
  const double g = params.gravity;

  // Continuous-time linearization around the upright equilibrium
  // (standard cart-pole, pole angle measured from vertical):
  //   x_ddot     = ( u - m_p g theta ) / m_c               (small angle)
  //   theta_ddot = ( (m_c + m_p) g theta - u ) / (m_c l)
  Matrix a_c(4, 4);
  a_c(0, 1) = 1.0;
  a_c(1, 2) = -m_pole * g / m_cart;
  a_c(2, 3) = 1.0;
  a_c(3, 2) = (m_cart + m_pole) * g / (m_cart * length);

  Matrix b_c(4, 1);
  b_c(1, 0) = 1.0 / m_cart;
  b_c(3, 0) = -1.0 / (m_cart * length);

  PendulumModel model{Matrix(4, 4), Matrix(4, 1)};
  model.a = a_c;
  model.a *= params.dt;
  model.b = b_c;
  model.b *= params.dt;
  return model;
}

std::vector<double> step(const PendulumModel& model,
                         std::span<const double> state, double input) {
  require(state.size() == kStateDim, "pendulum state must be 4-dimensional");
  std::vector<double> delta(kStateDim);
  model.a.multiply(state, delta);
  std::vector<double> next(state.begin(), state.end());
  for (std::size_t i = 0; i < kStateDim; ++i) {
    next[i] += delta[i] + model.b(i, 0) * input;
  }
  return next;
}

}  // namespace paradmm::mpc
