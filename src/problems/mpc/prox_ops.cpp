#include "problems/mpc/prox_ops.hpp"

#include <cmath>
#include <limits>

#include "math/vec.hpp"
#include "support/error.hpp"

namespace paradmm::mpc {

// ------------------------------------------------------------- StageCost

StageCostProx::StageCostProx(std::vector<double> q_diag,
                             std::vector<double> r_diag) {
  require(!q_diag.empty() && !r_diag.empty(),
          "StageCostProx needs both state and input weights");
  for (const double w : q_diag) {
    require(w >= 0.0, "StageCostProx state weights must be non-negative");
  }
  for (const double w : r_diag) {
    require(w >= 0.0, "StageCostProx input weights must be non-negative");
  }
  weights_ = std::move(q_diag);
  weights_.insert(weights_.end(), r_diag.begin(), r_diag.end());
}

void StageCostProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 1, "StageCostProx expects a single edge");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);
  affirm(input.size() == weights_.size(),
         "StageCostProx weight/edge dimension mismatch");
  const double rho = ctx.rho(0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    output[i] = rho * input[i] / (rho + 2.0 * weights_[i]);
  }
}

double StageCostProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const auto value = values[0];
  double total = 0.0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    total += weights_[i] * value[i] * value[i];
  }
  return total;
}

ProxCost StageCostProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = 4.0 * scalars,
          .bytes = 8.0 * (3.0 * scalars) + 40.0,
          .branch_class = 3001};
}

// ----------------------------------------------------------- InitialState

InitialStateProx::InitialStateProx(std::vector<double> q0)
    : q0_(std::move(q0)) {
  require(!q0_.empty(), "InitialStateProx needs a state vector");
}

void InitialStateProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 1, "InitialStateProx expects a single edge");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);
  affirm(input.size() >= q0_.size(),
         "InitialStateProx edge shorter than the state");
  for (std::size_t i = 0; i < q0_.size(); ++i) output[i] = q0_[i];
  for (std::size_t i = q0_.size(); i < input.size(); ++i) {
    output[i] = input[i];
  }
}

double InitialStateProx::evaluate(
    std::span<const std::span<const double>> values) const {
  for (std::size_t i = 0; i < q0_.size(); ++i) {
    if (std::fabs(values[0][i] - q0_[i]) > 1e-6) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return 0.0;
}

ProxCost InitialStateProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = scalars,
          .bytes = 8.0 * 2.0 * scalars + 32.0,
          .branch_class = 3002};
}

void InitialStateProx::set_state(std::vector<double> q0) {
  require(q0.size() == q0_.size(),
          "InitialStateProx state dimension cannot change");
  q0_ = std::move(q0);
}

// --------------------------------------------------------------- dynamics

Matrix dynamics_constraint_matrix(const PendulumModel& model) {
  const std::size_t nq = model.a.rows();
  const std::size_t nu = model.b.cols();
  require(model.a.cols() == nq && model.b.rows() == nq,
          "dynamics model dimension mismatch");
  const std::size_t node = nq + nu;
  Matrix constraint(nq, 2 * node);
  for (std::size_t r = 0; r < nq; ++r) {
    // -(I + A) q_t
    for (std::size_t c = 0; c < nq; ++c) {
      constraint(r, c) = -model.a(r, c) - (r == c ? 1.0 : 0.0);
    }
    // -B u_t
    for (std::size_t c = 0; c < nu; ++c) {
      constraint(r, nq + c) = -model.b(r, c);
    }
    // +q_{t+1}
    constraint(r, node + r) = 1.0;
  }
  return constraint;
}

std::shared_ptr<const ProxOperator> make_dynamics_prox(
    const PendulumModel& model) {
  const std::size_t nq = model.a.rows();
  return std::make_shared<AffineEqualityProx>(
      dynamics_constraint_matrix(model), std::vector<double>(nq, 0.0));
}

}  // namespace paradmm::mpc
