#include "problems/packing/registry.hpp"

namespace paradmm::packing {

void register_problem(runtime::ProblemRegistry& registry) {
  registry.add(
      "packing",
      "circle packing in a triangle "
      "(params: packing::PackingJobParams)",
      [](const std::any& params) {
        const auto p = runtime::params_or_default<PackingJobParams>(params);
        auto problem = std::make_shared<PackingProblem>(p.config);
        return runtime::BuiltProblem{problem, &problem->graph()};
      });
}

}  // namespace paradmm::packing
