#include "problems/packing/cost_spec.hpp"

#include <array>
#include <memory>

#include "problems/packing/prox_ops.hpp"
#include "support/error.hpp"

namespace paradmm::packing {
namespace {

using devsim::IterationCosts;
using devsim::MemoryPattern;
using devsim::PhaseCostSpec;
using devsim::TaskCost;

/// Factor/edge census of the packing graph (builder order: all collisions,
/// then walls, then radius rewards; variables alternate center, radius).
struct Census {
  std::size_t n = 0;
  std::size_t s = 0;
  std::size_t collisions = 0;  // N(N-1)/2, 4 edges each (dims 2,1,2,1)
  std::size_t wall_factors = 0;  // N*S, 2 edges each (dims 2,1)
  std::size_t radius_factors = 0;  // N, 1 edge each (dim 1)

  explicit Census(std::size_t circles, std::size_t walls)
      : n(circles),
        s(walls),
        collisions(circles * (circles - 1) / 2),
        wall_factors(circles * walls),
        radius_factors(circles) {}

  std::size_t factors() const {
    return collisions + wall_factors + radius_factors;
  }
  std::size_t edges() const {
    return 4 * collisions + 2 * wall_factors + radius_factors;
  }
  std::size_t variables() const { return 2 * n; }

  /// Dim of edge `e` in creation order.
  std::uint32_t edge_dim(std::size_t e) const {
    if (e < 4 * collisions) {
      return (e % 4 == 0 || e % 4 == 2) ? 2u : 1u;  // (c_i, r_i, c_j, r_j)
    }
    e -= 4 * collisions;
    if (e < 2 * wall_factors) {
      return e % 2 == 0 ? 2u : 1u;  // (c, r)
    }
    return 1u;  // radius reward
  }
};

}  // namespace

devsim::IterationCosts packing_iteration_costs(std::size_t circles,
                                               std::size_t walls) {
  require(circles >= 1, "packing_iteration_costs needs circles >= 1");
  const auto census = std::make_shared<Census>(circles, walls);

  // The same operators the builder installs, used only for their cost().
  const auto collision = std::make_shared<NoCollisionProx>();
  const auto wall = std::make_shared<WallProx>(
      Triangle::equilateral().walls()[0]);
  const auto radius = std::make_shared<RadiusRewardProx>(0.5);

  static constexpr std::array<std::uint32_t, 4> kCollisionDims = {2, 1, 2, 1};
  static constexpr std::array<std::uint32_t, 2> kWallDims = {2, 1};
  static constexpr std::array<std::uint32_t, 1> kRadiusDims = {1};
  const TaskCost collision_cost =
      devsim::x_phase_task_cost(*collision, kCollisionDims);
  const TaskCost wall_cost = devsim::x_phase_task_cost(*wall, kWallDims);
  const TaskCost radius_cost =
      devsim::x_phase_task_cost(*radius, kRadiusDims);

  IterationCosts costs;
  costs.phases[0] = PhaseCostSpec{
      "x", census->factors(), MemoryPattern::kGather,
      [census, collision_cost, wall_cost, radius_cost](std::size_t a) {
        if (a < census->collisions) return collision_cost;
        if (a < census->collisions + census->wall_factors) return wall_cost;
        return radius_cost;
      }};
  costs.phases[1] = PhaseCostSpec{
      "m", census->edges(), MemoryPattern::kCoalesced,
      [census](std::size_t e) {
        return devsim::m_phase_cost(census->edge_dim(e));
      }};
  costs.phases[2] = PhaseCostSpec{
      "z", census->variables(), MemoryPattern::kGather,
      [census](std::size_t b) {
        // Variables alternate center (even), radius (odd).  Center degree:
        // N-1 collisions + S walls; radius degree adds the reward factor.
        const auto degree = static_cast<std::uint32_t>(
            b % 2 == 0 ? census->n - 1 + census->s
                       : census->n - 1 + census->s + 1);
        return devsim::z_phase_cost(degree, b % 2 == 0 ? 2u : 1u);
      }};
  costs.phases[3] = PhaseCostSpec{
      "u", census->edges(), MemoryPattern::kMixed,
      [census](std::size_t e) {
        return devsim::u_phase_cost(census->edge_dim(e));
      }};
  costs.phases[4] = PhaseCostSpec{
      "n", census->edges(), MemoryPattern::kMixed,
      [census](std::size_t e) {
        return devsim::n_phase_cost(census->edge_dim(e));
      }};
  return costs;
}

devsim::GraphFootprint packing_footprint(std::size_t circles,
                                         std::size_t walls) {
  const Census census(circles, walls);
  devsim::GraphFootprint footprint;
  footprint.edges = census.edges();
  footprint.edge_scalars = 6 * census.collisions + 3 * census.wall_factors +
                           census.radius_factors;
  footprint.variable_scalars = 3 * circles;
  return footprint;
}

}  // namespace paradmm::packing
