#include "problems/packing/prox_ops.hpp"

#include <cmath>
#include <limits>

#include "math/vec.hpp"
#include "support/error.hpp"

namespace paradmm::packing {
namespace {

double infinity() { return std::numeric_limits<double>::infinity(); }

}  // namespace

// ----------------------------------------------------------- NoCollision

void NoCollisionProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 4, "NoCollisionProx expects 4 edges");
  const auto nc1 = ctx.input(0);
  const auto nr1 = ctx.input(1);
  const auto nc2 = ctx.input(2);
  const auto nr2 = ctx.input(3);
  affirm(nc1.size() == 2 && nr1.size() == 1, "NoCollisionProx edge dims");

  double dx = nc2[0] - nc1[0];
  double dy = nc2[1] - nc1[1];
  double distance = std::hypot(dx, dy);
  if (distance < 1e-14) {
    // Coincident centers: pick a deterministic separation direction.
    dx = 1.0;
    dy = 0.0;
    distance = 0.0;
  } else {
    dx /= distance;
    dy /= distance;
  }

  const double gap = nr1[0] + nr2[0] - distance;
  if (gap <= 0.0) {
    // Already separated: the prox is the identity; under TWA it has no
    // opinion at all and withdraws from the consensus average.
    for (std::uint32_t k = 0; k < 4; ++k) {
      vec::copy(ctx.input(k), ctx.output(k));
      if (three_weight_) ctx.set_weight(k, Weight::kZero);
    }
    return;
  }
  if (three_weight_) {
    for (std::uint32_t k = 0; k < 4; ++k) {
      ctx.set_weight(k, Weight::kStandard);
    }
  }

  // Active constraint ||c1 - c2|| = r1 + r2.  Reduced along the center
  // direction, the KKT system gives a shared multiplier lambda with each
  // block moving inversely to its rho (centers move apart, radii shrink).
  const double inv_sum = 1.0 / ctx.rho(0) + 1.0 / ctx.rho(1) +
                         1.0 / ctx.rho(2) + 1.0 / ctx.rho(3);
  const double lambda = gap / inv_sum;

  const double c1_step = lambda / ctx.rho(0);
  const double r1_step = lambda / ctx.rho(1);
  const double c2_step = lambda / ctx.rho(2);
  const double r2_step = lambda / ctx.rho(3);

  ctx.output(0)[0] = nc1[0] - c1_step * dx;
  ctx.output(0)[1] = nc1[1] - c1_step * dy;
  ctx.output(1)[0] = nr1[0] - r1_step;
  ctx.output(2)[0] = nc2[0] + c2_step * dx;
  ctx.output(2)[1] = nc2[1] + c2_step * dy;
  ctx.output(3)[0] = nr2[0] - r2_step;
}

double NoCollisionProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const double distance = std::hypot(values[2][0] - values[0][0],
                                     values[2][1] - values[0][1]);
  return distance + 1e-7 >= values[1][0] + values[3][0] ? 0.0 : infinity();
}

ProxCost NoCollisionProx::cost(std::span<const std::uint32_t>) const {
  // hypot + division + six multiply-adds per output block, plus the rho
  // reads: ~40 flops, 6 scalars in, 6 out plus 4 rhos.
  // 6 scalars in/out, 4 rhos, plus the factor/param block fetch.
  return {.flops = 40.0, .bytes = 8.0 * (6 + 6 + 4) + 64.0, .branch_class = 2001};
}

// ------------------------------------------------------------------ Wall

WallProx::WallProx(Halfplane wall, bool three_weight)
    : wall_(wall), three_weight_(three_weight) {
  const double norm = std::hypot(wall_.normal.x, wall_.normal.y);
  require(std::fabs(norm - 1.0) < 1e-9, "WallProx needs a unit normal");
}

void WallProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 2, "WallProx expects 2 edges");
  const auto nc = ctx.input(0);
  const auto nr = ctx.input(1);
  affirm(nc.size() == 2 && nr.size() == 1, "WallProx edge dims");

  // Feasible iff <Q, c> + r <= offset.
  const double violation =
      wall_.normal.x * nc[0] + wall_.normal.y * nc[1] + nr[0] - wall_.offset;
  if (violation <= 0.0) {
    vec::copy(nc, ctx.output(0));
    vec::copy(nr, ctx.output(1));
    if (three_weight_) {
      ctx.set_weight(0, Weight::kZero);
      ctx.set_weight(1, Weight::kZero);
    }
    return;
  }
  if (three_weight_) {
    ctx.set_weight(0, Weight::kStandard);
    ctx.set_weight(1, Weight::kStandard);
  }

  // Project onto <Q, c> + r = offset with the per-edge rho weighting
  // (||Q|| = 1, so the center block contributes 1/rho_c).
  const double lambda = violation / (1.0 / ctx.rho(0) + 1.0 / ctx.rho(1));
  const double c_step = lambda / ctx.rho(0);
  const double r_step = lambda / ctx.rho(1);
  ctx.output(0)[0] = nc[0] - c_step * wall_.normal.x;
  ctx.output(0)[1] = nc[1] - c_step * wall_.normal.y;
  ctx.output(1)[0] = nr[0] - r_step;
}

double WallProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const double activation = wall_.normal.x * values[0][0] +
                            wall_.normal.y * values[0][1] + values[1][0];
  return activation <= wall_.offset + 1e-7 ? 0.0 : infinity();
}

ProxCost WallProx::cost(std::span<const std::uint32_t>) const {
  return {.flops = 14.0, .bytes = 8.0 * (3 + 3 + 2) + 48.0, .branch_class = 2002};
}

// --------------------------------------------------------- RadiusReward

RadiusRewardProx::RadiusRewardProx(double gain) : gain_(gain) {
  require(gain > 0.0, "RadiusRewardProx gain must be positive");
}

void RadiusRewardProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 1, "RadiusRewardProx expects 1 edge");
  const double rho = ctx.rho(0);
  affirm(rho > gain_,
         "RadiusRewardProx needs rho > gain for a well-posed subproblem");
  // Radii are physically nonnegative.  Without the r >= 0 constraint the
  // packing objective is unbounded below (r -> -inf trivially satisfies
  // every collision and wall constraint while -gain/2 r^2 -> -inf); the
  // paper leaves this implicit.
  ctx.output(0)[0] = std::max(0.0, rho * ctx.input(0)[0] / (rho - gain_));
}

double RadiusRewardProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const double r = values[0][0];
  if (r < -1e-9) return infinity();
  return -0.5 * gain_ * r * r;
}

ProxCost RadiusRewardProx::cost(std::span<const std::uint32_t>) const {
  return {.flops = 4.0, .bytes = 8.0 * 3 + 16.0, .branch_class = 2003};
}

}  // namespace paradmm::packing
