// Factor-graph builder and solution readout for circle packing in a
// triangle (the paper's combinatorial-optimization benchmark, §V-A).
//
// For N circles and a triangle of S = 3 walls the graph has (paper's
// formula, verified in tests):
//   2N variable nodes   (c_i in R^2, r_i in R)
//   N(N-1)/2 + NS + N function nodes
//   2N^2 - N + 2NS edges
//
// Factors are added by kind — all collisions, then all walls, then all
// radius rewards — matching the paper's note that graph layout follows the
// sequence of node additions and keeping GPU warps type-uniform.
#pragma once

#include <memory>
#include <vector>

#include "core/factor_graph.hpp"
#include "problems/packing/geometry.hpp"
#include "problems/packing/prox_ops.hpp"

namespace paradmm::packing {

struct PackingConfig {
  std::size_t circles = 10;
  Triangle triangle = Triangle::equilateral();
  double rho = 1.0;
  double alpha = 1.0;
  /// Radius-reward gain; must stay below rho (see RadiusRewardProx).
  double radius_gain = 0.5;
  /// Uniform random initialization range for the ADMM state.
  double init_lo = 0.0;
  double init_hi = 0.3;
  std::uint64_t seed = 1234;
  /// Build the constraint operators in three-weight (TWA) mode; solve with
  /// SolverOptions::rho_policy = RhoPolicy::kThreeWeight to activate.
  bool use_three_weight = false;
};

/// A built packing instance: the graph plus the variable ids needed to read
/// the solution back.
class PackingProblem {
 public:
  explicit PackingProblem(const PackingConfig& config);

  FactorGraph& graph() { return graph_; }
  const FactorGraph& graph() const { return graph_; }
  const PackingConfig& config() const { return config_; }

  std::size_t circle_count() const { return config_.circles; }

  /// Current circles decoded from the consensus variables z.
  std::vector<Circle> circles() const;

  /// Feasibility and quality metrics of the current solution.
  double max_overlap() const;
  double max_wall_violation() const;
  double sum_radii_squared() const;

  VariableId center_id(std::size_t i) const { return centers_.at(i); }
  VariableId radius_id(std::size_t i) const { return radii_.at(i); }

 private:
  PackingConfig config_;
  FactorGraph graph_;
  std::vector<VariableId> centers_;
  std::vector<VariableId> radii_;
};

/// Writes the configuration as a standalone SVG file (examples use this to
/// make results inspectable).
void write_svg(const std::vector<Circle>& circles, const Triangle& triangle,
               const std::string& path);

}  // namespace paradmm::packing
