// Analytic iteration-cost descriptor for circle packing.
//
// The paper's figures sweep N up to 5000 circles — a graph of ~50M edges
// that is too large to materialize here.  This descriptor reproduces, from
// index arithmetic alone, exactly the IterationCosts that
// devsim::extract_iteration_costs would compute on the materialized graph
// (the test suite asserts equality on small N), so the device models can be
// evaluated at full paper scale.
#pragma once

#include "devsim/cost_model.hpp"

namespace paradmm::packing {

/// Cost descriptor for N circles in an S-wall container (S = 3 for the
/// paper's triangle).
devsim::IterationCosts packing_iteration_costs(std::size_t circles,
                                               std::size_t walls = 3);

/// Value/metadata footprint for the transfer model.
devsim::GraphFootprint packing_footprint(std::size_t circles,
                                         std::size_t walls = 3);

}  // namespace paradmm::packing
