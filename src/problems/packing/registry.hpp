// Registry adapter: builds circle packing in a triangle by name
// ("packing").  BuiltProblem::owner holds a packing::PackingProblem.
#pragma once

#include "problems/packing/builder.hpp"
#include "runtime/problem_registry.hpp"

namespace paradmm::packing {

struct PackingJobParams {
  PackingConfig config;
};

/// Registers "packing" with `registry` (params: PackingJobParams).
void register_problem(runtime::ProblemRegistry& registry);

}  // namespace paradmm::packing
