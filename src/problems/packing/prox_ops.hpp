// Proximal operators for circle packing (Appendix A of the paper).
//
// Variables: each circle i contributes a 2-D center node c_i and a 1-D
// radius node r_i.  Three operator families build the packing objective:
//
//   * NoCollisionProx over (c_i, r_i, c_j, r_j): ||c_i - c_j|| >= r_i + r_j
//   * WallProx        over (c_i, r_i):           <Q, c_i - V> <= -r_i
//     (the disk stays on the inner side of a wall halfplane)
//   * RadiusRewardProx over (r_i):               f(r) = -(gain/2) r^2
//     (the non-convex term that inflates disks to maximize covered area)
//
// All three have closed forms.  Note: the paper's appendix prints the
// radius component of the no-collision solution with a '+' sign; the
// correct first-order conditions give a '-' (both radii shrink when
// resolving an overlap), which is what we implement and property-test
// against a numerical minimizer.
#pragma once

#include "core/prox.hpp"
#include "problems/packing/geometry.hpp"

namespace paradmm::packing {

/// No-collision constraint between two circles.  Factor edge order must be
/// (center_i, radius_i, center_j, radius_j) with dims (2, 1, 2, 1).
class NoCollisionProx final : public ProxOperator {
 public:
  /// With `three_weight` set, an *inactive* constraint emits zero-weight
  /// ("no opinion") messages instead of echoing its input — the TWA
  /// behaviour of the paper's refs [9]/[24] that speeds packing up.
  explicit NoCollisionProx(bool three_weight = false)
      : three_weight_(three_weight) {}

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "pack-no-collision"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  bool three_weight_;
};

/// Containment of one circle inside one wall halfplane.  Edge order
/// (center, radius), dims (2, 1).  The wall is <normal, p> <= offset with
/// unit outward normal (Triangle::walls() convention), so feasibility for
/// the disk is <normal, c> + r <= offset.
class WallProx final : public ProxOperator {
 public:
  explicit WallProx(Halfplane wall, bool three_weight = false);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "pack-wall"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  Halfplane wall_;
  bool three_weight_;
};

/// The radius-growing reward f(r) = -(gain/2) r^2 on a single 1-D edge.
/// Closed form: r = rho n / (rho - gain); requires rho > gain to stay a
/// well-posed (strongly convex) subproblem.
class RadiusRewardProx final : public ProxOperator {
 public:
  explicit RadiusRewardProx(double gain);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "pack-radius-reward"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  double gain_;
};

}  // namespace paradmm::packing
