// 2-D geometry helpers for the circle-packing problem.
#pragma once

#include <array>
#include <vector>

#include "support/rng.hpp"

namespace paradmm::packing {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct Circle {
  Point center;
  double radius = 0.0;
};

/// Halfplane { p : <normal, p> <= offset } with unit inward-facing normal
/// convention handled by the caller; `contains` answers the constraint side.
struct Halfplane {
  Point normal;   ///< unit vector pointing *out* of the feasible side
  double offset;  ///< <normal, p> <= offset is feasible

  bool contains(const Point& p, double slack = 0.0) const {
    return normal.x * p.x + normal.y * p.y <= offset + slack;
  }

  /// Signed distance of p to the boundary (positive = outside).
  double violation(const Point& p) const {
    return normal.x * p.x + normal.y * p.y - offset;
  }
};

/// A triangle given by three counter-clockwise vertices, with its three
/// bounding halfplanes (the paper's S = 3 walls).
class Triangle {
 public:
  Triangle(Point a, Point b, Point c);

  /// Unit triangle used throughout the paper-scale experiments:
  /// (0,0), (1,0), (0.5, sqrt(3)/2).
  static Triangle equilateral();

  const std::array<Point, 3>& vertices() const { return vertices_; }
  const std::array<Halfplane, 3>& walls() const { return walls_; }

  double area() const;
  bool contains(const Point& p, double slack = 0.0) const;

  /// True when the whole disk lies inside (every wall at distance >= r).
  bool contains_circle(const Circle& c, double slack = 0.0) const;

  /// Uniform random point inside the triangle.
  Point sample_interior(Rng& rng) const;

 private:
  std::array<Point, 3> vertices_;
  std::array<Halfplane, 3> walls_;
};

/// Amount by which two circles overlap (0 when disjoint).
double overlap_depth(const Circle& a, const Circle& b);

/// Largest pairwise overlap in a configuration (feasibility metric).
double max_overlap(const std::vector<Circle>& circles);

/// Largest wall violation over all circles (feasibility metric).
double max_wall_violation(const std::vector<Circle>& circles,
                          const Triangle& triangle);

/// Fraction of the triangle covered by the circles, estimated by Monte
/// Carlo with `samples` points (circles may overlap; covered-once counts).
double coverage_fraction(const std::vector<Circle>& circles,
                         const Triangle& triangle, Rng& rng,
                         int samples = 20000);

/// Sum of disk areas / triangle area (exact, ignores overlap).
double area_ratio(const std::vector<Circle>& circles,
                  const Triangle& triangle);

}  // namespace paradmm::packing
