#include "problems/packing/builder.hpp"

#include <fstream>

#include "support/error.hpp"

namespace paradmm::packing {

PackingProblem::PackingProblem(const PackingConfig& config)
    : config_(config) {
  require(config.circles >= 1, "packing needs at least one circle");
  require(config.rho > config.radius_gain,
          "packing requires rho > radius_gain (see RadiusRewardProx)");
  const std::size_t n = config.circles;

  centers_.reserve(n);
  radii_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    centers_.push_back(graph_.add_variable(2));
    radii_.push_back(graph_.add_variable(1));
  }

  // Shared stateless operators (one instance serves every factor).
  const auto collision =
      std::make_shared<NoCollisionProx>(config.use_three_weight);
  const auto radius_reward =
      std::make_shared<RadiusRewardProx>(config.radius_gain);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      graph_.add_factor(collision,
                        {centers_[i], radii_[i], centers_[j], radii_[j]});
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& wall : config.triangle.walls()) {
      graph_.add_factor(
          std::make_shared<WallProx>(wall, config.use_three_weight),
          {centers_[i], radii_[i]});
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph_.add_factor(radius_reward, {radii_[i]});
  }

  graph_.set_uniform_parameters(config.rho, config.alpha);
  Rng rng(config.seed);
  graph_.randomize_state(config.init_lo, config.init_hi, rng);
}

std::vector<Circle> PackingProblem::circles() const {
  std::vector<Circle> result;
  result.reserve(config_.circles);
  for (std::size_t i = 0; i < config_.circles; ++i) {
    const auto center = graph_.solution(centers_[i]);
    const auto radius = graph_.solution(radii_[i]);
    result.push_back(Circle{{center[0], center[1]}, radius[0]});
  }
  return result;
}

double PackingProblem::max_overlap() const {
  return packing::max_overlap(circles());
}

double PackingProblem::max_wall_violation() const {
  return packing::max_wall_violation(circles(), config_.triangle);
}

double PackingProblem::sum_radii_squared() const {
  double total = 0.0;
  for (const auto& circle : circles()) {
    total += circle.radius * circle.radius;
  }
  return total;
}

void write_svg(const std::vector<Circle>& circles, const Triangle& triangle,
               const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "write_svg: cannot open output file " + path);
  constexpr double kScale = 400.0;
  constexpr double kMargin = 20.0;
  const auto& v = triangle.vertices();
  double max_y = 0.0;
  for (const auto& p : v) max_y = std::max(max_y, p.y);

  auto sx = [&](double x) { return kMargin + x * kScale; };
  auto sy = [&](double y) { return kMargin + (max_y - y) * kScale; };

  out << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << kScale + 2 * kMargin << "' height='" << max_y * kScale + 2 * kMargin
      << "'>\n";
  out << "<polygon points='";
  for (const auto& p : v) out << sx(p.x) << ',' << sy(p.y) << ' ';
  out << "' fill='none' stroke='black' stroke-width='2'/>\n";
  for (const auto& circle : circles) {
    out << "<circle cx='" << sx(circle.center.x) << "' cy='"
        << sy(circle.center.y) << "' r='" << circle.radius * kScale
        << "' fill='steelblue' fill-opacity='0.55' stroke='navy'/>\n";
  }
  out << "</svg>\n";
}

}  // namespace paradmm::packing
