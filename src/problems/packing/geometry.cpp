#include "problems/packing/geometry.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace paradmm::packing {
namespace {

double cross(const Point& origin, const Point& a, const Point& b) {
  return (a.x - origin.x) * (b.y - origin.y) -
         (a.y - origin.y) * (b.x - origin.x);
}

}  // namespace

Triangle::Triangle(Point a, Point b, Point c) : vertices_{a, b, c} {
  require(std::fabs(cross(a, b, c)) > 1e-12,
          "Triangle vertices must not be collinear");
  // Ensure counter-clockwise order so outward normals are consistent.
  if (cross(a, b, c) < 0.0) std::swap(vertices_[1], vertices_[2]);

  for (int side = 0; side < 3; ++side) {
    const Point& p = vertices_[side];
    const Point& q = vertices_[(side + 1) % 3];
    // Edge direction (q - p); outward normal is its clockwise rotation for
    // a CCW polygon.
    Point normal{q.y - p.y, -(q.x - p.x)};
    const double length = std::hypot(normal.x, normal.y);
    normal.x /= length;
    normal.y /= length;
    walls_[side] = Halfplane{normal, normal.x * p.x + normal.y * p.y};
  }
}

Triangle Triangle::equilateral() {
  return Triangle({0.0, 0.0}, {1.0, 0.0}, {0.5, std::sqrt(3.0) / 2.0});
}

double Triangle::area() const {
  return 0.5 * std::fabs(cross(vertices_[0], vertices_[1], vertices_[2]));
}

bool Triangle::contains(const Point& p, double slack) const {
  for (const auto& wall : walls_) {
    if (!wall.contains(p, slack)) return false;
  }
  return true;
}

bool Triangle::contains_circle(const Circle& c, double slack) const {
  for (const auto& wall : walls_) {
    if (wall.violation(c.center) > -c.radius + slack) return false;
  }
  return true;
}

Point Triangle::sample_interior(Rng& rng) const {
  // Barycentric sampling with the square-root trick for uniformity.
  const double r1 = std::sqrt(rng.uniform());
  const double r2 = rng.uniform();
  const double a = 1.0 - r1;
  const double b = r1 * (1.0 - r2);
  const double c = r1 * r2;
  return {a * vertices_[0].x + b * vertices_[1].x + c * vertices_[2].x,
          a * vertices_[0].y + b * vertices_[1].y + c * vertices_[2].y};
}

double overlap_depth(const Circle& a, const Circle& b) {
  const double gap = std::hypot(a.center.x - b.center.x,
                                a.center.y - b.center.y) -
                     (a.radius + b.radius);
  return gap >= 0.0 ? 0.0 : -gap;
}

double max_overlap(const std::vector<Circle>& circles) {
  double worst = 0.0;
  for (std::size_t i = 0; i < circles.size(); ++i) {
    for (std::size_t j = i + 1; j < circles.size(); ++j) {
      worst = std::max(worst, overlap_depth(circles[i], circles[j]));
    }
  }
  return worst;
}

double max_wall_violation(const std::vector<Circle>& circles,
                          const Triangle& triangle) {
  double worst = 0.0;
  for (const auto& circle : circles) {
    for (const auto& wall : triangle.walls()) {
      worst = std::max(worst,
                       wall.violation(circle.center) + circle.radius);
    }
  }
  return worst;
}

double coverage_fraction(const std::vector<Circle>& circles,
                         const Triangle& triangle, Rng& rng, int samples) {
  require(samples > 0, "coverage_fraction needs samples > 0");
  int covered = 0;
  for (int s = 0; s < samples; ++s) {
    const Point p = triangle.sample_interior(rng);
    for (const auto& circle : circles) {
      const double dx = p.x - circle.center.x;
      const double dy = p.y - circle.center.y;
      if (dx * dx + dy * dy <= circle.radius * circle.radius) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(samples);
}

double area_ratio(const std::vector<Circle>& circles,
                  const Triangle& triangle) {
  double disks = 0.0;
  for (const auto& circle : circles) {
    disks += std::numbers::pi * circle.radius * circle.radius;
  }
  return disks / triangle.area();
}

}  // namespace paradmm::packing
