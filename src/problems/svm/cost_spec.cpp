#include "problems/svm/cost_spec.hpp"

#include <array>
#include <memory>
#include <vector>

#include "core/prox_library.hpp"
#include "problems/svm/prox_ops.hpp"
#include "support/error.hpp"

namespace paradmm::svm {
namespace {

using devsim::IterationCosts;
using devsim::MemoryPattern;
using devsim::PhaseCostSpec;
using devsim::TaskCost;

}  // namespace

devsim::IterationCosts svm_iteration_costs(std::size_t points,
                                           std::size_t dimension) {
  require(points >= 2, "svm_iteration_costs needs points >= 2");
  const std::size_t n = points;
  const auto plane_dim = static_cast<std::uint32_t>(dimension + 1);
  const std::size_t factors = 3 * n + (n - 1);
  const std::size_t edges = n + 2 * n + n + 2 * (n - 1);
  const std::size_t variables = 2 * n;

  // Representative operators for cost annotations.
  const auto norm = std::make_shared<PlaneNormProx>(
      dimension, 1.0 / static_cast<double>(n));
  const auto margin = std::make_shared<MarginProx>(
      std::vector<double>(dimension, 0.0), 1);
  const auto slack = std::make_shared<SlackCostProx>(1.0);
  const auto equality = std::make_shared<ConsensusEqualityProx>();

  const std::array<std::uint32_t, 1> plane_dims = {plane_dim};
  const std::array<std::uint32_t, 2> margin_dims = {plane_dim, 1};
  const std::array<std::uint32_t, 1> slack_dims = {1};
  const std::array<std::uint32_t, 2> equality_dims = {plane_dim, plane_dim};
  const TaskCost norm_cost = devsim::x_phase_task_cost(*norm, plane_dims);
  const TaskCost margin_cost =
      devsim::x_phase_task_cost(*margin, margin_dims);
  const TaskCost slack_cost = devsim::x_phase_task_cost(*slack, slack_dims);
  const TaskCost equality_cost =
      devsim::x_phase_task_cost(*equality, equality_dims);

  IterationCosts costs;
  costs.phases[0] = PhaseCostSpec{
      "x", factors, MemoryPattern::kGather,
      [n, norm_cost, margin_cost, slack_cost, equality_cost](std::size_t a) {
        if (a < n) return norm_cost;
        if (a < 2 * n) return margin_cost;
        if (a < 3 * n) return slack_cost;
        return equality_cost;
      }};
  costs.phases[1] = PhaseCostSpec{
      "m", edges, MemoryPattern::kCoalesced, [n, plane_dim](std::size_t e) {
        // Edge dims in creation order: n plane edges (norm), then per
        // margin factor (plane, slack), then n slack edges, then equality
        // pairs (plane, plane).
        std::uint32_t dim = plane_dim;
        if (e < n) {
          dim = plane_dim;
        } else if (e < 3 * n) {
          dim = (e - n) % 2 == 0 ? plane_dim : 1u;
        } else if (e < 4 * n) {
          dim = 1u;
        }
        return devsim::m_phase_cost(dim);
      }};
  costs.phases[2] = PhaseCostSpec{
      "z", variables, MemoryPattern::kGather, [n, plane_dim](std::size_t b) {
        if (b < n) {
          // Plane copy: norm + margin + chain links (1 at the ends, 2 in
          // the middle).
          std::uint32_t degree = 2;
          if (b > 0) ++degree;
          if (b + 1 < n) ++degree;
          return devsim::z_phase_cost(degree, plane_dim);
        }
        return devsim::z_phase_cost(2, 1);  // slack: margin + slack cost
      }};
  costs.phases[3] = PhaseCostSpec{
      "u", edges, MemoryPattern::kMixed,
      [m = costs.phases[1].cost_at, n, plane_dim](std::size_t e) {
        std::uint32_t dim = plane_dim;
        if (e >= n && e < 3 * n) {
          dim = (e - n) % 2 == 0 ? plane_dim : 1u;
        } else if (e >= 3 * n && e < 4 * n) {
          dim = 1u;
        }
        return devsim::u_phase_cost(dim);
      }};
  costs.phases[4] = PhaseCostSpec{
      "n", edges, MemoryPattern::kMixed, [n, plane_dim](std::size_t e) {
        std::uint32_t dim = plane_dim;
        if (e >= n && e < 3 * n) {
          dim = (e - n) % 2 == 0 ? plane_dim : 1u;
        } else if (e >= 3 * n && e < 4 * n) {
          dim = 1u;
        }
        return devsim::n_phase_cost(dim);
      }};
  return costs;
}

devsim::GraphFootprint svm_footprint(std::size_t points,
                                     std::size_t dimension) {
  const std::size_t n = points;
  const std::size_t plane_dim = dimension + 1;
  devsim::GraphFootprint footprint;
  footprint.edges = 6 * n - 2;
  footprint.edge_scalars = n * plane_dim        // norm edges
                           + n * (plane_dim + 1)  // margin edges
                           + n                    // slack-cost edges
                           + 2 * (n - 1) * plane_dim;  // equality edges
  footprint.variable_scalars = n * plane_dim + n;
  return footprint;
}

}  // namespace paradmm::svm
