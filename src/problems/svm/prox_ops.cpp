#include "problems/svm/prox_ops.hpp"

#include <cmath>
#include <limits>

#include "math/vec.hpp"
#include "support/error.hpp"

namespace paradmm::svm {
namespace {

double infinity() { return std::numeric_limits<double>::infinity(); }

}  // namespace

// ------------------------------------------------------------ PlaneNorm

PlaneNormProx::PlaneNormProx(std::size_t dimension, double curvature)
    : dimension_(dimension), curvature_(curvature) {
  require(dimension >= 1, "PlaneNormProx needs dimension >= 1");
  require(curvature > 0.0, "PlaneNormProx curvature must be positive");
}

void PlaneNormProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 1, "PlaneNormProx expects a single edge");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);
  affirm(input.size() == dimension_ + 1, "PlaneNormProx edge dim mismatch");
  const double rho = ctx.rho(0);
  const double blend = rho / (rho + curvature_);
  for (std::size_t i = 0; i < dimension_; ++i) output[i] = blend * input[i];
  output[dimension_] = input[dimension_];  // b is free
}

double PlaneNormProx::evaluate(
    std::span<const std::span<const double>> values) const {
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < dimension_; ++i) {
    norm_sq += values[0][i] * values[0][i];
  }
  return 0.5 * curvature_ * norm_sq;
}

ProxCost PlaneNormProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = 2.0 * scalars,
          .bytes = 8.0 * 2.0 * scalars + 16.0,
          .branch_class = 4001};
}

// ------------------------------------------------------------ SlackCost

SlackCostProx::SlackCostProx(double lambda) : lambda_(lambda) {
  require(lambda >= 0.0, "SlackCostProx lambda must be non-negative");
}

void SlackCostProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 1, "SlackCostProx expects a single edge");
  const double n = ctx.input(0)[0];
  ctx.output(0)[0] = std::max(0.0, n - lambda_ / ctx.rho(0));
}

double SlackCostProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const double xi = values[0][0];
  if (xi < -1e-9) return infinity();
  return lambda_ * xi;
}

ProxCost SlackCostProx::cost(std::span<const std::uint32_t>) const {
  return {.flops = 3.0, .bytes = 8.0 * 3.0 + 16.0, .branch_class = 4002};
}

// --------------------------------------------------------------- Margin

MarginProx::MarginProx(std::vector<double> point, int label)
    : point_(std::move(point)), label_(static_cast<double>(label)) {
  require(!point_.empty(), "MarginProx needs a data point");
  require(label == 1 || label == -1, "MarginProx label must be +1 or -1");
  point_norm_sq_ = vec::norm2_squared(point_);
}

void MarginProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 2, "MarginProx expects (plane, slack) edges");
  const auto plane_in = ctx.input(0);
  const auto slack_in = ctx.input(1);
  const auto plane_out = ctx.output(0);
  const auto slack_out = ctx.output(1);
  const std::size_t d = point_.size();
  affirm(plane_in.size() == d + 1 && slack_in.size() == 1,
         "MarginProx edge dims mismatch");

  // b + <w, point> — the dense inner product rides the dispatched kernels.
  const double margin = plane_in[d] + vec::dot(plane_in.first(d), point_);
  const double violation = 1.0 - label_ * margin - slack_in[0];
  if (violation <= 0.0) {
    vec::copy(plane_in, plane_out);
    vec::copy(slack_in, slack_out);
    return;
  }

  // Weighted projection onto y (w.x + b) + xi = 1 (Appendix C, with the
  // plane edge's rho covering both w and b).
  const double rho_plane = ctx.rho(0);
  const double rho_slack = ctx.rho(1);
  const double alpha = violation / (point_norm_sq_ / rho_plane +
                                    1.0 / rho_plane + 1.0 / rho_slack);
  const double plane_step = alpha * label_ / rho_plane;
  for (std::size_t i = 0; i < d; ++i) {
    plane_out[i] = plane_in[i] + plane_step * point_[i];
  }
  plane_out[d] = plane_in[d] + plane_step;
  slack_out[0] = slack_in[0] + alpha / rho_slack;
}

double MarginProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const std::size_t d = point_.size();
  double margin = values[0][d];
  for (std::size_t i = 0; i < d; ++i) margin += values[0][i] * point_[i];
  return label_ * margin + 1e-7 >= 1.0 - values[1][0] ? 0.0 : infinity();
}

ProxCost MarginProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  // Dot product + projection update, plus streaming the data point itself.
  return {.flops = 6.0 * scalars,
          .bytes = 8.0 * (2.0 * scalars + static_cast<double>(point_.size())) +
                   32.0,
          .branch_class = 4003};
}

}  // namespace paradmm::svm
