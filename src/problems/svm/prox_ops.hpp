// Proximal operators for soft-margin SVM training (Appendix C of the
// paper).
//
// Variables: one plane copy (w_i, b_i) in R^{d+1} per data point, plus one
// slack xi_i in R.  Four operator families:
//   * PlaneNormProx   f(w,b) = (1/2N)||w||^2       (b unpenalized)
//   * MarginProx      y_i (w.x_i + b) >= 1 - xi_i  (per data point)
//   * SlackCostProx   f(xi) = lambda xi + indicator(xi >= 0)
//   * ConsensusEqualityProx (from the core library) chains the copies
//     (w_i, b_i) = (w_{i+1}, b_{i+1}).
#pragma once

#include <vector>

#include "core/prox.hpp"

namespace paradmm::svm {

/// The "minimal norm two" operator: shrinks w toward the origin, leaves the
/// offset b untouched.  Single edge of dim d+1 (w stacked with b).
class PlaneNormProx final : public ProxOperator {
 public:
  PlaneNormProx(std::size_t dimension, double curvature);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "svm-plane-norm"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  std::size_t dimension_;
  double curvature_;
};

/// The "minimal error" operator (a semi-lasso): xi = max(0, n - lambda/rho).
class SlackCostProx final : public ProxOperator {
 public:
  explicit SlackCostProx(double lambda);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "svm-slack-cost"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  double lambda_;
};

/// The "one-point minimal margin" operator: projection onto the halfspace
/// y (w.x + b) >= 1 - xi over the stacked (w, b, xi).  Edge order must be
/// (plane, slack) with dims (d+1, 1).
class MarginProx final : public ProxOperator {
 public:
  MarginProx(std::vector<double> point, int label);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "svm-margin"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  std::vector<double> point_;
  double label_;
  double point_norm_sq_;
};

}  // namespace paradmm::svm
