// Registry adapter: builds soft-margin SVM training on Gaussian blobs by
// name ("svm").  BuiltProblem::owner holds an svm::SvmProblem.
#pragma once

#include "problems/svm/builder.hpp"
#include "runtime/problem_registry.hpp"

namespace paradmm::svm {

struct SvmJobParams {
  // Synthetic dataset (make_gaussian_blobs).
  std::size_t points = 64;
  std::size_t dimension = 4;
  double separation = 3.0;
  std::uint64_t data_seed = 42;
  // Graph construction.
  SvmConfig config;
};

/// Registers "svm" with `registry` (params: SvmJobParams).
void register_problem(runtime::ProblemRegistry& registry);

}  // namespace paradmm::svm
