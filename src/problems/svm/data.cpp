#include "problems/svm/data.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace paradmm::svm {

Dataset make_gaussian_blobs(std::size_t count, std::size_t dimension,
                            double separation, std::uint64_t seed) {
  require(count >= 2, "make_gaussian_blobs needs at least two points");
  require(dimension >= 1, "make_gaussian_blobs needs dimension >= 1");
  Dataset dataset;
  dataset.points.reserve(count);
  dataset.labels.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    std::vector<double> point = rng.gaussian_vector(dimension);
    point[0] += 0.5 * separation * label;
    dataset.points.push_back(std::move(point));
    dataset.labels.push_back(label);
  }
  return dataset;
}

double accuracy(const Dataset& dataset, std::span<const double> w, double b) {
  require(dataset.size() > 0, "accuracy of an empty dataset");
  require(w.size() == dataset.dimension(), "plane/dataset dim mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    double margin = b;
    for (std::size_t d = 0; d < w.size(); ++d) {
      margin += w[d] * dataset.points[i][d];
    }
    const int predicted = margin >= 0.0 ? 1 : -1;
    correct += predicted == dataset.labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double mean_hinge_loss(const Dataset& dataset, std::span<const double> w,
                       double b) {
  require(dataset.size() > 0, "hinge loss of an empty dataset");
  double total = 0.0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    double margin = b;
    for (std::size_t d = 0; d < w.size(); ++d) {
      margin += w[d] * dataset.points[i][d];
    }
    total += std::max(0.0, 1.0 - dataset.labels[i] * margin);
  }
  return total / static_cast<double>(dataset.size());
}

}  // namespace paradmm::svm
