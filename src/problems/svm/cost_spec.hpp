// Analytic iteration-cost descriptor for the SVM factor graph (the paper
// sweeps N up to 1e5 points and dimension up to 200).  Matches
// devsim::extract_iteration_costs on materialized graphs (tested).
#pragma once

#include "devsim/cost_model.hpp"

namespace paradmm::svm {

devsim::IterationCosts svm_iteration_costs(std::size_t points,
                                           std::size_t dimension);

devsim::GraphFootprint svm_footprint(std::size_t points,
                                     std::size_t dimension);

}  // namespace paradmm::svm
