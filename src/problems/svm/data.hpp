// Synthetic datasets and evaluation metrics for the SVM benchmark.
//
// The paper draws "N random data points from two Gaussian distributions
// with mean a certain distance apart" — reproduced here with a
// deterministic generator.
#pragma once

#include <span>
#include <vector>

#include "support/rng.hpp"

namespace paradmm::svm {

struct Dataset {
  std::vector<std::vector<double>> points;
  std::vector<int> labels;  ///< +1 / -1

  std::size_t size() const { return points.size(); }
  std::size_t dimension() const {
    return points.empty() ? 0 : points.front().size();
  }
};

/// Two Gaussian classes of `count/2` points each in `dimension` dims, unit
/// covariance, means +/- separation/2 along the first axis.
Dataset make_gaussian_blobs(std::size_t count, std::size_t dimension,
                            double separation, std::uint64_t seed);

/// Classification accuracy of the plane (w, b): sign(w.x + b) vs labels.
double accuracy(const Dataset& dataset, std::span<const double> w, double b);

/// Mean hinge loss (1/N) sum max(0, 1 - y (w.x + b)).
double mean_hinge_loss(const Dataset& dataset, std::span<const double> w,
                       double b);

}  // namespace paradmm::svm
