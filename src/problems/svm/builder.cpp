#include "problems/svm/builder.hpp"

#include <cmath>

#include "core/prox_library.hpp"
#include "support/error.hpp"

namespace paradmm::svm {

SvmProblem::SvmProblem(Dataset dataset, const SvmConfig& config)
    : dataset_(std::move(dataset)), config_(config) {
  require(dataset_.size() >= 2, "SVM needs at least two data points");
  require(dataset_.points.size() == dataset_.labels.size(),
          "points/labels size mismatch");
  const std::size_t n = dataset_.size();
  const std::size_t d = dataset_.dimension();
  const auto plane_dim = static_cast<std::uint32_t>(d + 1);

  planes_.reserve(n);
  slacks_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    planes_.push_back(graph_.add_variable(plane_dim));
  }
  for (std::size_t i = 0; i < n; ++i) {
    slacks_.push_back(graph_.add_variable(1));
  }

  // The norm term is split into N equal parts (1/2N ||w_i||^2 each) — the
  // paper's trick for a balanced degree distribution.
  const auto norm = std::make_shared<PlaneNormProx>(
      d, 1.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    graph_.add_factor(norm, {planes_[i]});
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph_.add_factor(
        std::make_shared<MarginProx>(dataset_.points[i], dataset_.labels[i]),
        {planes_[i], slacks_[i]});
  }
  const auto slack_cost = std::make_shared<SlackCostProx>(config.lambda);
  for (std::size_t i = 0; i < n; ++i) {
    graph_.add_factor(slack_cost, {slacks_[i]});
  }
  const auto equality = std::make_shared<ConsensusEqualityProx>();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph_.add_factor(equality, {planes_[i], planes_[i + 1]});
  }

  graph_.set_uniform_parameters(config.rho, config.alpha);
  Rng rng(config.seed);
  graph_.randomize_state(config.init_lo, config.init_hi, rng);
}

std::vector<double> SvmProblem::plane_w() const {
  const std::size_t d = dataset_.dimension();
  std::vector<double> w(d, 0.0);
  for (const VariableId plane : planes_) {
    const auto z = graph_.solution(plane);
    for (std::size_t i = 0; i < d; ++i) w[i] += z[i];
  }
  for (auto& v : w) v /= static_cast<double>(planes_.size());
  return w;
}

double SvmProblem::plane_b() const {
  const std::size_t d = dataset_.dimension();
  double b = 0.0;
  for (const VariableId plane : planes_) {
    b += graph_.solution(plane)[d];
  }
  return b / static_cast<double>(planes_.size());
}

double SvmProblem::max_copy_disagreement() const {
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < planes_.size(); ++i) {
    const auto a = graph_.solution(planes_[i]);
    const auto b = graph_.solution(planes_[i + 1]);
    for (std::size_t j = 0; j < a.size(); ++j) {
      worst = std::max(worst, std::fabs(a[j] - b[j]));
    }
  }
  return worst;
}

double SvmProblem::train_accuracy() const {
  return accuracy(dataset_, plane_w(), plane_b());
}

}  // namespace paradmm::svm
