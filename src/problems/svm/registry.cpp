#include "problems/svm/registry.hpp"

namespace paradmm::svm {

void register_problem(runtime::ProblemRegistry& registry) {
  registry.add(
      "svm",
      "soft-margin SVM training on two Gaussian blobs "
      "(params: svm::SvmJobParams)",
      [](const std::any& params) {
        const auto p = runtime::params_or_default<SvmJobParams>(params);
        Dataset dataset = make_gaussian_blobs(p.points, p.dimension,
                                              p.separation, p.data_seed);
        auto problem =
            std::make_shared<SvmProblem>(std::move(dataset), p.config);
        return runtime::BuiltProblem{problem, &problem->graph()};
      });
}

}  // namespace paradmm::svm
