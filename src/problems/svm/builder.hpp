// Factor-graph builder for soft-margin SVM training (§V-C of the paper).
//
// Per data point i: a plane copy (w_i, b_i) and a slack xi_i.  Factors are
// added by kind: N plane-norm, N margins, N slack costs, then the N-1
// consensus-equality links chaining the copies — 6N - 2 edges total,
// linear in N, with the copy trick keeping node degrees balanced (the
// paper's note about equilibrated edge-per-node distributions).
#pragma once

#include <memory>
#include <vector>

#include "core/factor_graph.hpp"
#include "problems/svm/data.hpp"
#include "problems/svm/prox_ops.hpp"

namespace paradmm::svm {

struct SvmConfig {
  /// Slack penalty weight (the paper's lambda).
  double lambda = 1.0;
  double rho = 1.0;
  double alpha = 1.0;
  std::uint64_t seed = 7;
  double init_lo = -0.5;
  double init_hi = 0.5;
};

class SvmProblem {
 public:
  SvmProblem(Dataset dataset, const SvmConfig& config);

  FactorGraph& graph() { return graph_; }
  const FactorGraph& graph() const { return graph_; }
  const Dataset& dataset() const { return dataset_; }
  const SvmConfig& config() const { return config_; }

  /// The trained separator: the average of the plane copies' consensus
  /// values (they coincide at convergence).
  std::vector<double> plane_w() const;
  double plane_b() const;

  /// Largest disagreement between consecutive plane copies (consensus
  /// quality metric).
  double max_copy_disagreement() const;

  double train_accuracy() const;

  VariableId plane_id(std::size_t i) const { return planes_.at(i); }
  VariableId slack_id(std::size_t i) const { return slacks_.at(i); }

 private:
  Dataset dataset_;
  SvmConfig config_;
  FactorGraph graph_;
  std::vector<VariableId> planes_;
  std::vector<VariableId> slacks_;
};

}  // namespace paradmm::svm
