// Registry adapter: builds a synthetic consensus-Lasso instance by name
// ("lasso").  BuiltProblem::owner holds a lasso::LassoProblem.
#pragma once

#include "problems/lasso/lasso.hpp"
#include "runtime/problem_registry.hpp"

namespace paradmm::lasso {

struct LassoJobParams {
  // Synthetic instance (make_lasso_instance).
  std::size_t rows = 40;
  std::size_t cols = 8;
  std::size_t sparsity = 2;
  double noise = 0.01;
  std::uint64_t seed = 3;
  // Graph construction.
  LassoConfig config;
};

/// Registers "lasso" with `registry` (params: LassoJobParams).
void register_problem(runtime::ProblemRegistry& registry);

}  // namespace paradmm::lasso
