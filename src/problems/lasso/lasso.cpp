#include "problems/lasso/lasso.hpp"

#include <cmath>

#include "core/prox_library.hpp"
#include "math/vec.hpp"
#include "support/error.hpp"

namespace paradmm::lasso {

BlockQuadraticProx::BlockQuadraticProx(const Matrix& a, std::vector<double> y,
                                       double rho)
    : a_(a), y_(std::move(y)), rho_(rho) {
  require(a_.rows() == y_.size(), "BlockQuadraticProx: A rows != y length");
  require(rho > 0.0, "BlockQuadraticProx: rho must be positive");
  const std::size_t d = a_.cols();
  Matrix gram = a_.transposed() * a_;
  for (std::size_t i = 0; i < d; ++i) gram(i, i) += rho;
  chol_ = cholesky_factor(gram);
  at_y_.assign(d, 0.0);
  for (std::size_t r = 0; r < a_.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) at_y_[c] += a_(r, c) * y_[r];
  }
}

void BlockQuadraticProx::apply(const ProxContext& ctx) const {
  affirm(ctx.edge_count() == 1, "BlockQuadraticProx expects a single edge");
  affirm(std::fabs(ctx.rho(0) - rho_) < 1e-12,
         "BlockQuadraticProx was factorized for a different rho; rebuild "
         "the problem when changing rho");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);
  std::vector<double> rhs(at_y_);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += rho_ * input[i];
  const std::vector<double> solved = cholesky_solve(chol_, rhs);
  for (std::size_t i = 0; i < solved.size(); ++i) output[i] = solved[i];
}

double BlockQuadraticProx::evaluate(
    std::span<const std::span<const double>> values) const {
  std::vector<double> image(a_.rows());
  a_.multiply(values[0], image);
  double total = 0.0;
  for (std::size_t r = 0; r < image.size(); ++r) {
    const double residual = image[r] - y_[r];
    total += 0.5 * residual * residual;
  }
  return total;
}

ProxCost BlockQuadraticProx::cost(std::span<const std::uint32_t> dims) const {
  double d = 0.0;
  for (const auto dim : dims) d += dim;
  // Two triangular solves: ~d^2 flops; streams the factor plus the edge.
  return {.flops = d * d + 4.0 * d,
          .bytes = 8.0 * (d * d / 2.0 + 3.0 * d),
          .branch_class = 5001};
}

LassoInstance make_lasso_instance(std::size_t rows, std::size_t cols,
                                  std::size_t sparsity, double noise,
                                  std::uint64_t seed) {
  require(rows >= 1 && cols >= 1, "lasso instance needs rows, cols >= 1");
  require(sparsity <= cols, "sparsity cannot exceed the dimension");
  Rng rng(seed);
  LassoInstance instance;
  instance.a = Matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      instance.a(r, c) = rng.gaussian() / std::sqrt(static_cast<double>(rows));
    }
  }
  instance.truth.assign(cols, 0.0);
  for (std::size_t k = 0; k < sparsity; ++k) {
    // Place spikes on distinct coordinates.
    std::size_t coordinate = rng.uniform_index(cols);
    while (instance.truth[coordinate] != 0.0) {
      coordinate = rng.uniform_index(cols);
    }
    instance.truth[coordinate] = rng.uniform() < 0.5 ? 2.0 : -2.0;
  }
  instance.y.assign(rows, 0.0);
  instance.a.multiply(instance.truth, instance.y);
  for (auto& v : instance.y) v += noise * rng.gaussian();
  return instance;
}

LassoProblem::LassoProblem(const LassoInstance& instance,
                           const LassoConfig& config) {
  require(config.blocks >= 1, "lasso needs at least one block");
  require(instance.a.rows() >= config.blocks,
          "lasso needs at least one row per block");
  const std::size_t d = instance.a.cols();
  x_ = graph_.add_variable(static_cast<std::uint32_t>(d));

  // Row-wise split into J contiguous blocks.
  const std::size_t rows = instance.a.rows();
  for (std::size_t j = 0; j < config.blocks; ++j) {
    const std::size_t begin = j * rows / config.blocks;
    const std::size_t end = (j + 1) * rows / config.blocks;
    Matrix block(end - begin, d);
    std::vector<double> y_block(end - begin);
    for (std::size_t r = begin; r < end; ++r) {
      for (std::size_t c = 0; c < d; ++c) block(r - begin, c) = instance.a(r, c);
      y_block[r - begin] = instance.y[r];
    }
    graph_.add_factor(std::make_shared<BlockQuadraticProx>(
                          block, std::move(y_block), config.rho),
                      {x_});
  }
  graph_.add_factor(std::make_shared<SoftThresholdProx>(config.lambda), {x_});
  graph_.set_uniform_parameters(config.rho, config.alpha);
}

std::vector<double> LassoProblem::solution() const {
  const auto z = graph_.solution(x_);
  return {z.begin(), z.end()};
}

double kkt_violation(const LassoInstance& instance, double lambda,
                     std::span<const double> x, double zero_tol) {
  const std::size_t d = instance.a.cols();
  require(x.size() == d, "kkt_violation dimension mismatch");
  std::vector<double> residual(instance.a.rows());
  instance.a.multiply(x, residual);
  for (std::size_t r = 0; r < residual.size(); ++r) {
    residual[r] -= instance.y[r];
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    double gradient = 0.0;
    for (std::size_t r = 0; r < instance.a.rows(); ++r) {
      gradient += instance.a(r, i) * residual[r];
    }
    if (std::fabs(x[i]) > zero_tol) {
      worst = std::max(worst,
                       std::fabs(gradient + lambda * (x[i] > 0 ? 1.0 : -1.0)));
    } else {
      worst = std::max(worst, std::max(0.0, std::fabs(gradient) - lambda));
    }
  }
  return worst;
}

}  // namespace paradmm::lasso
