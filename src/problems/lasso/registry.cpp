#include "problems/lasso/registry.hpp"

namespace paradmm::lasso {

void register_problem(runtime::ProblemRegistry& registry) {
  registry.add(
      "lasso",
      "consensus-form Lasso on a synthetic sparse instance "
      "(params: lasso::LassoJobParams)",
      [](const std::any& params) {
        const auto p = runtime::params_or_default<LassoJobParams>(params);
        const LassoInstance instance = make_lasso_instance(
            p.rows, p.cols, p.sparsity, p.noise, p.seed);
        auto problem = std::make_shared<LassoProblem>(instance, p.config);
        return runtime::BuiltProblem{problem, &problem->graph()};
      });
}

}  // namespace paradmm::lasso
