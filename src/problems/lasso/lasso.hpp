// Consensus-form Lasso on the factor graph (extension; the domain of the
// paper's refs [1] and [22]):
//
//   min 0.5 ||A x - y||^2 + lambda ||x||_1
//
// split row-wise into J blocks A_j, each contributing a quadratic factor
// 0.5 ||A_j x - y_j||^2, plus one soft-threshold factor — a star-shaped
// factor graph over the single variable node x (this is exactly the Boyd
// et al. distributed-Lasso decomposition expressed in parADMM form).
#pragma once

#include <memory>
#include <vector>

#include "core/factor_graph.hpp"
#include "core/prox.hpp"
#include "math/matrix.hpp"
#include "support/rng.hpp"

namespace paradmm::lasso {

/// Quadratic data-fit block: argmin 0.5||A s - y||^2 + rho/2 ||s - n||^2,
/// solved via a Cholesky factorization of (A'A + rho I) precomputed for the
/// build-time rho (apply() verifies the runtime rho matches).
class BlockQuadraticProx final : public ProxOperator {
 public:
  BlockQuadraticProx(const Matrix& a, std::vector<double> y, double rho);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "lasso-block-quadratic"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  Matrix a_;
  std::vector<double> y_;
  double rho_;
  Matrix chol_;                  // L with L L' = A'A + rho I
  std::vector<double> at_y_;     // A' y
};

/// A synthetic Lasso instance with a sparse ground truth.
struct LassoInstance {
  Matrix a;                     // n x d design
  std::vector<double> y;        // n observations
  std::vector<double> truth;    // sparse generating coefficients
};

LassoInstance make_lasso_instance(std::size_t rows, std::size_t cols,
                                  std::size_t sparsity, double noise,
                                  std::uint64_t seed);

struct LassoConfig {
  std::size_t blocks = 4;   ///< row-wise split count J
  double lambda = 0.1;
  double rho = 1.0;
  double alpha = 1.0;
};

/// Factor-graph Lasso problem over one d-dimensional variable node.
class LassoProblem {
 public:
  LassoProblem(const LassoInstance& instance, const LassoConfig& config);

  FactorGraph& graph() { return graph_; }
  const FactorGraph& graph() const { return graph_; }

  std::vector<double> solution() const;

  VariableId variable() const { return x_; }

 private:
  FactorGraph graph_;
  VariableId x_ = 0;
};

/// Max KKT violation of the Lasso optimality conditions at x:
///   g = A'(A x - y);  |g_i| <= lambda at zeros, g_i = -lambda sign(x_i)
/// at non-zeros.  Zero (to tolerance) iff x is the global optimum.
double kkt_violation(const LassoInstance& instance, double lambda,
                     std::span<const double> x, double zero_tol = 1e-6);

}  // namespace paradmm::lasso
