#include "core/factor_graph.hpp"

#include <algorithm>
#include <cmath>

namespace paradmm {

VariableId FactorGraph::add_variable(std::uint32_t dim) {
  require(dim > 0, "variable dimension must be positive");
  const auto id = static_cast<VariableId>(var_dim_.size());
  var_dim_.push_back(dim);
  var_offset_.push_back(z_.size());
  z_.resize(z_.size() + dim, 0.0);
  csr_valid_ = false;
  return id;
}

std::vector<VariableId> FactorGraph::add_variables(std::size_t count,
                                                   std::uint32_t dim) {
  std::vector<VariableId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(add_variable(dim));
  return ids;
}

FactorId FactorGraph::add_factor(std::shared_ptr<const ProxOperator> op,
                                 std::span<const VariableId> vars) {
  require(op != nullptr, "add_factor requires a proximal operator");
  require(!vars.empty(), "add_factor requires at least one variable");
  const auto factor = static_cast<FactorId>(ops_.size());
  ops_.push_back(std::move(op));
  factor_edge_begin_.push_back(static_cast<EdgeId>(edge_var_.size()));
  factor_degree_.push_back(static_cast<std::uint32_t>(vars.size()));

  for (const VariableId var : vars) {
    require(var < var_dim_.size(), "add_factor references unknown variable");
    const std::uint32_t dim = var_dim_[var];
    edge_var_.push_back(var);
    edge_factor_.push_back(factor);
    edge_offset_.push_back(edge_scalars_);
    edge_dim_.push_back(dim);
    edge_rho_.push_back(1.0);
    edge_alpha_.push_back(1.0);
    edge_weight_.push_back(Weight::kStandard);
    edge_scalars_ += dim;
  }
  x_.resize(edge_scalars_, 0.0);
  m_.resize(edge_scalars_, 0.0);
  u_.resize(edge_scalars_, 0.0);
  n_.resize(edge_scalars_, 0.0);
  csr_valid_ = false;
  return factor;
}

FactorId FactorGraph::add_factor(std::shared_ptr<const ProxOperator> op,
                                 std::initializer_list<VariableId> vars) {
  return add_factor(std::move(op),
                    std::span<const VariableId>(vars.begin(), vars.size()));
}

void FactorGraph::set_uniform_parameters(double rho, double alpha) {
  require(rho > 0.0, "rho must be positive");
  require(alpha > 0.0, "alpha must be positive");
  std::fill(edge_rho_.begin(), edge_rho_.end(), rho);
  std::fill(edge_alpha_.begin(), edge_alpha_.end(), alpha);
}

void FactorGraph::set_edge_rho(EdgeId edge, double rho) {
  require(edge < edge_rho_.size(), "edge id out of range");
  require(rho > 0.0, "rho must be positive");
  edge_rho_[edge] = rho;
}

void FactorGraph::set_edge_alpha(EdgeId edge, double alpha) {
  require(edge < edge_alpha_.size(), "edge id out of range");
  require(alpha > 0.0, "alpha must be positive");
  edge_alpha_[edge] = alpha;
}

void FactorGraph::reset_state() {
  std::fill(x_.begin(), x_.end(), 0.0);
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(u_.begin(), u_.end(), 0.0);
  std::fill(n_.begin(), n_.end(), 0.0);
  std::fill(z_.begin(), z_.end(), 0.0);
  std::fill(edge_weight_.begin(), edge_weight_.end(), Weight::kStandard);
}

void FactorGraph::randomize_state(double lo, double hi, Rng& rng) {
  require(lo <= hi, "randomize_state requires lo <= hi");
  for (auto& v : x_) v = rng.uniform(lo, hi);
  for (auto& v : m_) v = rng.uniform(lo, hi);
  for (auto& v : u_) v = rng.uniform(lo, hi);
  for (auto& v : n_) v = rng.uniform(lo, hi);
  for (auto& v : z_) v = rng.uniform(lo, hi);
}

std::span<const double> FactorGraph::solution(VariableId var) const {
  require(var < var_dim_.size(), "variable id out of range");
  return {z_.data() + var_offset_[var], var_dim_[var]};
}

std::span<double> FactorGraph::mutable_z(VariableId var) {
  require(var < var_dim_.size(), "variable id out of range");
  return {z_.data() + var_offset_[var], var_dim_[var]};
}

std::optional<double> FactorGraph::objective() const {
  double total = 0.0;
  std::vector<std::span<const double>> values;
  for (FactorId a = 0; a < num_factors(); ++a) {
    values.clear();
    const EdgeId begin = factor_edge_begin_[a];
    for (std::uint32_t k = 0; k < factor_degree_[a]; ++k) {
      const VariableId var = edge_var_[begin + k];
      values.emplace_back(z_.data() + var_offset_[var], var_dim_[var]);
    }
    const double term = ops_[a]->evaluate(values);
    if (std::isnan(term)) return std::nullopt;
    total += term;
  }
  return total;
}

std::uint32_t FactorGraph::variable_degree(VariableId var) const {
  return static_cast<std::uint32_t>(variable_edges(var).size());
}

std::uint32_t FactorGraph::factor_degree(FactorId factor) const {
  require(factor < factor_degree_.size(), "factor id out of range");
  return factor_degree_[factor];
}

std::uint32_t FactorGraph::max_variable_degree() const {
  ensure_variable_csr();
  std::uint32_t best = 0;
  for (VariableId b = 0; b < num_variables(); ++b) {
    best = std::max(best, variable_degree(b));
  }
  return best;
}

std::span<const EdgeId> FactorGraph::variable_edges(VariableId var) const {
  require(var < var_dim_.size(), "variable id out of range");
  ensure_variable_csr();
  const std::uint64_t begin = var_edges_offset_[var];
  const std::uint64_t end = var_edges_offset_[var + 1];
  return {var_edges_.data() + begin, end - begin};
}

void FactorGraph::ensure_variable_csr() const {
  if (csr_valid_) return;
  var_edges_offset_.assign(var_dim_.size() + 1, 0);
  for (const VariableId var : edge_var_) ++var_edges_offset_[var + 1];
  for (std::size_t b = 1; b < var_edges_offset_.size(); ++b) {
    var_edges_offset_[b] += var_edges_offset_[b - 1];
  }
  var_edges_.resize(edge_var_.size());
  std::vector<std::uint64_t> cursor(var_edges_offset_.begin(),
                                    var_edges_offset_.end() - 1);
  for (EdgeId e = 0; e < edge_var_.size(); ++e) {
    var_edges_[cursor[edge_var_[e]]++] = e;
  }
  csr_valid_ = true;
}

GraphSoa FactorGraph::soa() {
  GraphSoa soa;
  soa.n = n_.data();
  soa.x = x_.data();
  soa.edge_offset = edge_offset_.data();
  soa.edge_dim = edge_dim_.data();
  soa.edge_rho = edge_rho_.data();
  soa.edge_var = edge_var_.data();
  soa.edge_weight = edge_weight_.data();
  return soa;
}

}  // namespace paradmm
