#include "core/prox_library.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "math/vec.hpp"
#include "support/error.hpp"

namespace paradmm {
namespace {

double huge() { return std::numeric_limits<double>::infinity(); }

}  // namespace

// ---------------------------------------------------------------- ZeroProx

void ZeroProx::apply(const ProxContext& ctx) const {
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    vec::copy(ctx.input(k), ctx.output(k));
  }
}

ProxCost ZeroProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = scalars,
          .bytes = 2.0 * sizeof(double) * scalars,
          .branch_class = 1};
}

// ---------------------------------------------------------- SumSquaresProx

SumSquaresProx::SumSquaresProx(double curvature, std::vector<double> target)
    : curvature_(curvature), target_(std::move(target)) {
  require(curvature > 0.0, "SumSquaresProx curvature must be positive");
}

SumSquaresProx::SumSquaresProx(double curvature)
    : SumSquaresProx(curvature, {}) {}

void SumSquaresProx::apply(const ProxContext& ctx) const {
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const auto output = ctx.output(k);
    const double rho = ctx.rho(k);
    const double blend = rho / (rho + curvature_);
    if (target_.empty()) {
      for (std::size_t d = 0; d < input.size(); ++d) {
        output[d] = blend * input[d];
      }
    } else {
      affirm(target_.size() == input.size(),
             "SumSquaresProx target/edge dimension mismatch");
      for (std::size_t d = 0; d < input.size(); ++d) {
        output[d] = blend * input[d] + (1.0 - blend) * target_[d];
      }
    }
  }
}

double SumSquaresProx::evaluate(
    std::span<const std::span<const double>> values) const {
  double total = 0.0;
  for (const auto value : values) {
    if (target_.empty()) {
      total += 0.5 * curvature_ * vec::norm2_squared(value);
    } else {
      total += 0.5 * curvature_ *
               vec::distance_squared(value, std::span<const double>(target_));
    }
  }
  return total;
}

ProxCost SumSquaresProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = 4.0 * scalars,
          .bytes = 2.0 * sizeof(double) * scalars,
          .branch_class = 2};
}

// -------------------------------------------------------------- LinearProx

LinearProx::LinearProx(std::vector<double> gradient)
    : gradient_(std::move(gradient)) {
  require(!gradient_.empty(), "LinearProx needs a gradient vector");
}

void LinearProx::apply(const ProxContext& ctx) const {
  require(ctx.edge_count() == 1, "LinearProx expects a single edge");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);
  affirm(input.size() == gradient_.size(),
         "LinearProx gradient/edge dimension mismatch");
  const double inv_rho = 1.0 / ctx.rho(0);
  for (std::size_t d = 0; d < input.size(); ++d) {
    output[d] = input[d] - gradient_[d] * inv_rho;
  }
}

double LinearProx::evaluate(
    std::span<const std::span<const double>> values) const {
  affirm(values.size() == 1, "LinearProx evaluates one edge");
  return vec::dot(std::span<const double>(gradient_), values[0]);
}

// ------------------------------------------------------- SoftThresholdProx

SoftThresholdProx::SoftThresholdProx(double lambda) : lambda_(lambda) {
  require(lambda >= 0.0, "SoftThresholdProx lambda must be non-negative");
}

void SoftThresholdProx::apply(const ProxContext& ctx) const {
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const auto output = ctx.output(k);
    const double threshold = lambda_ / ctx.rho(k);
    for (std::size_t d = 0; d < input.size(); ++d) {
      const double v = input[d];
      if (v > threshold) {
        output[d] = v - threshold;
      } else if (v < -threshold) {
        output[d] = v + threshold;
      } else {
        output[d] = 0.0;
      }
    }
  }
}

double SoftThresholdProx::evaluate(
    std::span<const std::span<const double>> values) const {
  double total = 0.0;
  for (const auto value : values) {
    for (const double v : value) total += std::fabs(v);
  }
  return lambda_ * total;
}

ProxCost SoftThresholdProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = 4.0 * scalars,
          .bytes = 2.0 * sizeof(double) * scalars,
          .branch_class = 3};
}

// ----------------------------------------------------------------- BoxProx

BoxProx::BoxProx(double lo, double hi) : lo_(lo), hi_(hi) {
  require(lo <= hi, "BoxProx requires lo <= hi");
}

void BoxProx::apply(const ProxContext& ctx) const {
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const auto output = ctx.output(k);
    for (std::size_t d = 0; d < input.size(); ++d) {
      output[d] = std::min(hi_, std::max(lo_, input[d]));
    }
  }
}

double BoxProx::evaluate(
    std::span<const std::span<const double>> values) const {
  constexpr double kSlack = 1e-9;
  for (const auto value : values) {
    for (const double v : value) {
      if (v < lo_ - kSlack || v > hi_ + kSlack) return huge();
    }
  }
  return 0.0;
}

// ----------------------------------------------------------- HalfspaceProx

HalfspaceProx::HalfspaceProx(std::vector<double> normal, double offset)
    : normal_(std::move(normal)), offset_(offset) {
  require(!normal_.empty(), "HalfspaceProx needs a normal vector");
  require(vec::norm2(std::span<const double>(normal_)) > 0.0,
          "HalfspaceProx normal must be nonzero");
}

void HalfspaceProx::apply(const ProxContext& ctx) const {
  // Weighted projection onto <normal, s> <= offset:
  //   violation = <normal, n> - offset;  if <= 0 the input is feasible.
  //   x = n - violation * W^-1 normal / <normal, W^-1 normal>.
  double violation = -offset_;
  double scale_denominator = 0.0;
  std::size_t at = 0;
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const double inv_rho = 1.0 / ctx.rho(k);
    for (std::size_t d = 0; d < input.size(); ++d, ++at) {
      affirm(at < normal_.size(), "HalfspaceProx normal shorter than edges");
      violation += normal_[at] * input[d];
      scale_denominator += normal_[at] * normal_[at] * inv_rho;
    }
  }
  affirm(at == normal_.size(), "HalfspaceProx normal longer than edges");

  if (violation <= 0.0) {
    for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
      vec::copy(ctx.input(k), ctx.output(k));
    }
    return;
  }

  const double step = violation / scale_denominator;
  at = 0;
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const auto output = ctx.output(k);
    const double inv_rho = 1.0 / ctx.rho(k);
    for (std::size_t d = 0; d < input.size(); ++d, ++at) {
      output[d] = input[d] - step * normal_[at] * inv_rho;
    }
  }
}

double HalfspaceProx::evaluate(
    std::span<const std::span<const double>> values) const {
  double activation = -offset_;
  std::size_t at = 0;
  for (const auto value : values) {
    for (const double v : value) activation += normal_[at++] * v;
  }
  return activation <= 1e-9 ? 0.0 : huge();
}

// ------------------------------------------------------ AffineEqualityProx

AffineEqualityProx::AffineEqualityProx(Matrix a, std::vector<double> b)
    : a_(std::move(a)), b_(std::move(b)) {
  require(a_.rows() == b_.size(),
          "AffineEqualityProx: A row count must match b length");
  require(a_.rows() > 0, "AffineEqualityProx needs at least one constraint");
}

void AffineEqualityProx::apply(const ProxContext& ctx) const {
  const std::size_t constraints = a_.rows();
  const std::size_t total_dim = a_.cols();

  // Gather the stacked input and the per-scalar inverse weights.
  std::vector<double> stacked(total_dim);
  std::vector<double> inv_weight(total_dim);
  std::size_t at = 0;
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const double inv_rho = 1.0 / ctx.rho(k);
    for (std::size_t d = 0; d < input.size(); ++d, ++at) {
      affirm(at < total_dim, "AffineEqualityProx: A narrower than edges");
      stacked[at] = input[d];
      inv_weight[at] = inv_rho;
    }
  }
  affirm(at == total_dim, "AffineEqualityProx: A wider than edges");

  // residual = A n - b.
  std::vector<double> residual(constraints);
  a_.multiply(stacked, residual);
  for (std::size_t r = 0; r < constraints; ++r) residual[r] -= b_[r];

  // gram = A W^-1 A^T.
  Matrix gram(constraints, constraints);
  for (std::size_t r = 0; r < constraints; ++r) {
    for (std::size_t c = r; c < constraints; ++c) {
      double sum = 0.0;
      for (std::size_t j = 0; j < total_dim; ++j) {
        sum += a_(r, j) * inv_weight[j] * a_(c, j);
      }
      gram(r, c) = sum;
      gram(c, r) = sum;
    }
  }
  const std::vector<double> multipliers = solve_spd(gram, residual);

  // x = n - W^-1 A^T multipliers, scattered back per edge.
  at = 0;
  for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
    const auto input = ctx.input(k);
    const auto output = ctx.output(k);
    for (std::size_t d = 0; d < input.size(); ++d, ++at) {
      double correction = 0.0;
      for (std::size_t r = 0; r < constraints; ++r) {
        correction += a_(r, at) * multipliers[r];
      }
      output[d] = input[d] - inv_weight[at] * correction;
    }
  }
}

double AffineEqualityProx::evaluate(
    std::span<const std::span<const double>> values) const {
  std::vector<double> stacked;
  for (const auto value : values) {
    stacked.insert(stacked.end(), value.begin(), value.end());
  }
  std::vector<double> image(a_.rows());
  a_.multiply(stacked, image);
  for (std::size_t r = 0; r < image.size(); ++r) {
    if (std::fabs(image[r] - b_[r]) > 1e-7) return huge();
  }
  return 0.0;
}

ProxCost AffineEqualityProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  const auto rows = static_cast<double>(a_.rows());
  // Gram assembly dominates: rows^2 * dim, plus the rows^3 solve.
  return {.flops = rows * rows * scalars + rows * rows * rows / 3.0 +
                   4.0 * scalars,
          .bytes = 2.0 * sizeof(double) * (scalars + rows * scalars),
          .branch_class = 4};
}

// -------------------------------------------------- ConsensusEqualityProx

void ConsensusEqualityProx::apply(const ProxContext& ctx) const {
  require(ctx.edge_count() >= 2,
          "ConsensusEqualityProx needs at least two edges");
  const auto dim = ctx.input(0).size();
  for (std::uint32_t k = 1; k < ctx.edge_count(); ++k) {
    affirm(ctx.input(k).size() == dim,
           "ConsensusEqualityProx edges must share one dimension");
  }
  // x_k = (sum_j rho_j n_j) / (sum_j rho_j) for every edge k.
  for (std::size_t d = 0; d < dim; ++d) {
    double numerator = 0.0;
    double denominator = 0.0;
    for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
      const double rho = ctx.rho(k);
      numerator += rho * ctx.input(k)[d];
      denominator += rho;
    }
    const double average = numerator / denominator;
    for (std::uint32_t k = 0; k < ctx.edge_count(); ++k) {
      ctx.output(k)[d] = average;
    }
  }
}

double ConsensusEqualityProx::evaluate(
    std::span<const std::span<const double>> values) const {
  for (std::size_t k = 1; k < values.size(); ++k) {
    for (std::size_t d = 0; d < values[0].size(); ++d) {
      if (std::fabs(values[k][d] - values[0][d]) > 1e-7) return huge();
    }
  }
  return 0.0;
}

ProxCost ConsensusEqualityProx::cost(
    std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = 4.0 * scalars,
          .bytes = 2.0 * sizeof(double) * scalars,
          .branch_class = 5};
}

// ------------------------------------------------------------ SimplexProx

SimplexProx::SimplexProx(double total) : total_(total) {
  require(total > 0.0, "SimplexProx total must be positive");
}

void SimplexProx::apply(const ProxContext& ctx) const {
  require(ctx.edge_count() == 1, "SimplexProx expects a single edge");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);

  // Projection threshold tau: x_i = max(0, n_i - tau) with
  // sum max(0, n_i - tau) = total.  Standard scan (Duchi et al. 2008):
  // tau comes from the largest support size j whose running threshold
  // still keeps sorted[j-1] positive.
  std::vector<double> sorted(input.begin(), input.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double prefix = 0.0;
  double tau = 0.0;
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    prefix += sorted[j];
    const double candidate = (prefix - total_) / static_cast<double>(j + 1);
    if (sorted[j] - candidate > 0.0) tau = candidate;
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    output[i] = std::max(0.0, input[i] - tau);
  }
}

double SimplexProx::evaluate(
    std::span<const std::span<const double>> values) const {
  double sum = 0.0;
  for (const double v : values[0]) {
    if (v < -1e-9) return huge();
    sum += v;
  }
  return std::fabs(sum - total_) <= 1e-7 ? 0.0 : huge();
}

ProxCost SimplexProx::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  // Dominated by the sort: ~ d log d compare/swap work.
  const double sort_work =
      scalars * std::max(1.0, std::log2(std::max(2.0, scalars)));
  return {.flops = 4.0 * scalars + 3.0 * sort_work,
          .bytes = 2.0 * sizeof(double) * scalars + 16.0,
          .branch_class = 6};
}

// ---------------------------------------------------- SecondOrderConeProx

void SecondOrderConeProx::apply(const ProxContext& ctx) const {
  require(ctx.edge_count() == 1, "SecondOrderConeProx expects a single edge");
  const auto input = ctx.input(0);
  const auto output = ctx.output(0);
  require(input.size() >= 2, "SecondOrderConeProx needs dim >= 2 (v, t)");
  const std::size_t d = input.size() - 1;
  const std::span<const double> v = input.subspan(0, d);
  const double t = input[d];
  const double norm = vec::norm2(v);

  if (norm <= t) {  // already inside the cone
    vec::copy(input, output);
    return;
  }
  if (norm <= -t) {  // inside the polar cone: projects to the origin
    vec::fill(output, 0.0);
    return;
  }
  // Standard closed form: scale v to length (norm + t) / 2.
  const double target = 0.5 * (norm + t);
  const double scale = target / norm;
  for (std::size_t i = 0; i < d; ++i) output[i] = v[i] * scale;
  output[d] = target;
}

double SecondOrderConeProx::evaluate(
    std::span<const std::span<const double>> values) const {
  const auto value = values[0];
  const std::size_t d = value.size() - 1;
  return vec::norm2(value.subspan(0, d)) <= value[d] + 1e-7 ? 0.0 : huge();
}

ProxCost SecondOrderConeProx::cost(
    std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += d;
  return {.flops = 6.0 * scalars + 20.0,
          .bytes = 2.0 * sizeof(double) * scalars + 16.0,
          .branch_class = 7};
}

}  // namespace paradmm
