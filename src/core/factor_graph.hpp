// The bipartite factor graph G = (F, V, E) and its ADMM state.
//
// Mirrors parADMM's `graph` struct: all five auxiliary variable families
// live in flat arrays of doubles —
//
//   x, m, u, n : one slice per *edge*, laid out in edge-creation order
//                (exactly the paper's `Gpu_graph.x = [x(1,1), x(1,2), ...]`)
//   z          : one slice per *variable node*, in variable-creation order
//
// and a factor's edges are contiguous because `add_factor` creates them
// together (the paper's `addNode`).  This layout is what gives the x-phase
// coalesced reads on a GPU and is one of the design decisions the ablation
// bench `bench_naive_vs_flat` quantifies.
//
// Unlike parADMM (one global `number_of_dims_per_edge`), variables may have
// heterogeneous dimensions; a uniform dimension is simply the special case
// where every `add_variable` uses the same dim.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/prox.hpp"
#include "support/rng.hpp"

namespace paradmm {

class FactorGraph {
 public:
  FactorGraph() = default;

  // ---- Topology construction ------------------------------------------

  /// Adds a variable node w_b of the given dimension; returns its id.
  VariableId add_variable(std::uint32_t dim);

  /// Adds `count` variable nodes of equal dimension; returns their ids.
  std::vector<VariableId> add_variables(std::size_t count, std::uint32_t dim);

  /// Adds a function node f_a depending on the listed variables, creating
  /// one edge (a, b) per entry of `vars` (the paper's addNode).  The same
  /// `op` instance may back many factors — it must be stateless/const.
  FactorId add_factor(std::shared_ptr<const ProxOperator> op,
                      std::span<const VariableId> vars);

  FactorId add_factor(std::shared_ptr<const ProxOperator> op,
                      std::initializer_list<VariableId> vars);

  // ---- Parameters -------------------------------------------------------

  /// Sets every edge's rho and alpha (the paper's initialize_RHOS_ALPHAS).
  void set_uniform_parameters(double rho, double alpha);

  void set_edge_rho(EdgeId edge, double rho);
  void set_edge_alpha(EdgeId edge, double alpha);
  double edge_rho(EdgeId edge) const { return edge_rho_.at(edge); }
  double edge_alpha(EdgeId edge) const { return edge_alpha_.at(edge); }

  // ---- State ------------------------------------------------------------

  /// Zeroes x, m, z, u, n and resets TWA weights to kStandard.
  void reset_state();

  /// Uniform-random initialization of all five families in [lo, hi]
  /// (the paper's initialize_X_N_Z_M_U_rand).
  void randomize_state(double lo, double hi, Rng& rng);

  /// The consensus value z_b — the solution readout after convergence.
  std::span<const double> solution(VariableId var) const;
  std::span<double> mutable_z(VariableId var);

  /// Evaluates sum_a f_a(z_{∂a}) at the current consensus point.  Returns
  /// nullopt if any factor's PO does not implement `evaluate`.
  std::optional<double> objective() const;

  // ---- Introspection ------------------------------------------------------

  std::size_t num_variables() const { return var_dim_.size(); }
  std::size_t num_factors() const { return factor_edge_begin_.size(); }
  std::size_t num_edges() const { return edge_var_.size(); }

  /// Total scalars across all edge slices (length of x/m/u/n).
  std::size_t edge_scalars() const { return edge_scalars_; }
  /// Total scalars across all variable slices (length of z).
  std::size_t variable_scalars() const { return z_.size(); }

  /// Graph elements processed per iteration: |F| + 3|E| + |V| tasks.
  std::size_t elements() const {
    return num_factors() + 3 * num_edges() + num_variables();
  }

  std::uint32_t variable_dim(VariableId var) const { return var_dim_.at(var); }
  std::uint32_t variable_degree(VariableId var) const;
  std::uint32_t factor_degree(FactorId factor) const;
  std::uint32_t max_variable_degree() const;

  /// Edges of factor `a` are the contiguous range [begin, begin+degree).
  EdgeId factor_edge_begin(FactorId factor) const {
    return factor_edge_begin_.at(factor);
  }

  const ProxOperator& factor_op(FactorId factor) const {
    return *ops_.at(factor);
  }

  VariableId edge_variable(EdgeId edge) const { return edge_var_.at(edge); }
  FactorId edge_factor(EdgeId edge) const { return edge_factor_.at(edge); }
  std::uint32_t edge_dim(EdgeId edge) const { return edge_dim_.at(edge); }

  /// Incident edges of a variable (CSR, built lazily on first use).
  std::span<const EdgeId> variable_edges(VariableId var) const;

  // ---- Solver access -----------------------------------------------------

  /// Raw SoA view used by the solver's phase bodies and by ProxContext.
  /// Pointers are invalidated by any later add_variable/add_factor.
  GraphSoa soa();

  /// Direct array access (tests, recorders, device-transfer model).
  std::span<double> x_values() { return x_; }
  std::span<double> m_values() { return m_; }
  std::span<double> z_values() { return z_; }
  std::span<double> u_values() { return u_; }
  std::span<double> n_values() { return n_; }
  std::span<const double> x_values() const { return x_; }
  std::span<const double> m_values() const { return m_; }
  std::span<const double> z_values() const { return z_; }
  std::span<const double> u_values() const { return u_; }
  std::span<const double> n_values() const { return n_; }
  std::span<const Weight> edge_weights() const { return edge_weight_; }

  std::uint64_t edge_offset(EdgeId edge) const { return edge_offset_.at(edge); }
  std::uint64_t variable_offset(VariableId var) const {
    return var_offset_.at(var);
  }

 private:
  void ensure_variable_csr() const;

  // Variables.
  std::vector<std::uint32_t> var_dim_;
  std::vector<std::uint64_t> var_offset_;

  // Factors.
  std::vector<std::shared_ptr<const ProxOperator>> ops_;
  std::vector<EdgeId> factor_edge_begin_;
  std::vector<std::uint32_t> factor_degree_;

  // Edges (creation order).
  std::vector<VariableId> edge_var_;
  std::vector<FactorId> edge_factor_;
  std::vector<std::uint64_t> edge_offset_;
  std::vector<std::uint32_t> edge_dim_;
  std::vector<double> edge_rho_;
  std::vector<double> edge_alpha_;
  std::vector<Weight> edge_weight_;
  std::uint64_t edge_scalars_ = 0;

  // ADMM state.
  std::vector<double> x_, m_, u_, n_;  // edge-indexed slices
  std::vector<double> z_;              // variable-indexed slices

  // Lazy CSR of variable -> incident edges.
  mutable std::vector<std::uint64_t> var_edges_offset_;
  mutable std::vector<EdgeId> var_edges_;
  mutable bool csr_valid_ = false;
};

}  // namespace paradmm
