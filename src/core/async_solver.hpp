// Asynchronous (per-factor) ADMM — the paper's future-work item 1:
// "Use asynchronous implementations of the ADMM so that not all cores need
//  to wait for the busiest core."
//
// Instead of five globally-barriered phases, one *step* picks a single
// factor a and runs its whole local pipeline:
//
//   x(a,·) ← Prox_{f_a,ρ}(n(a,·))
//   m(a,b) ← x(a,b) + u(a,b)                for b ∈ ∂a
//   z_b    ← Σ_{a'∈∂b} ρ m(a',b) / Σ ρ      for b ∈ ∂a   (reads possibly
//                                                          stale m of other
//                                                          factors)
//   u(a,b) ← u(a,b) + α (x(a,b) − z_b)      for b ∈ ∂a
//   n(a,b) ← z_b − u(a,b)                   for b ∈ ∂a
//
// A fixed point of these per-factor steps is a fixed point of the
// synchronous Algorithm 2, and on convex problems the randomized sweep
// converges in practice (the cited asynchronous-ADMM results guarantee it
// for restricted topologies).  One "sweep" = |F| steps.
//
// This implementation is sequential (a correctness/behavior testbed for
// the scheme — the interesting property is *staleness tolerance*, which is
// what distinguishes async from the barriered engine, not raw speed).
#pragma once

#include <functional>

#include "core/factor_graph.hpp"
#include "core/residuals.hpp"
#include "support/rng.hpp"

namespace paradmm {

enum class AsyncOrder {
  kRoundRobin,  ///< factors visited 0, 1, ..., |F|-1 per sweep
  kRandomized,  ///< factors visited in a seeded random order per sweep
};

struct AsyncSolverOptions {
  int max_sweeps = 1000;
  int check_interval = 25;  ///< sweeps between residual checks
  double primal_tolerance = 1e-8;
  double dual_tolerance = 1e-8;
  AsyncOrder order = AsyncOrder::kRandomized;
  std::uint64_t shuffle_seed = 0x5eedULL;
};

struct AsyncSolverReport {
  int sweeps = 0;
  bool converged = false;
  Residuals final_residuals;
};

/// Runs asynchronous per-factor ADMM sweeps on the graph until both
/// residuals fall below tolerance or the sweep budget is exhausted.
AsyncSolverReport solve_async(
    FactorGraph& graph, const AsyncSolverOptions& options,
    const std::function<bool(int sweep, const Residuals&)>& callback = {});

}  // namespace paradmm
