#include "core/residuals.hpp"

#include <cmath>
#include <limits>

#include "core/factor_graph.hpp"
#include "support/error.hpp"

namespace paradmm {

Residuals compute_residuals(const FactorGraph& graph,
                            std::span<const double> z_previous) {
  Residuals residuals;

  const std::span<const double> x = graph.x_values();
  const std::span<const double> z = graph.z_values();

  double primal_sq = 0.0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const std::uint64_t edge_at = graph.edge_offset(e);
    const std::uint64_t var_at = graph.variable_offset(graph.edge_variable(e));
    const std::uint32_t dim = graph.edge_dim(e);
    for (std::uint32_t d = 0; d < dim; ++d) {
      const double gap = x[edge_at + d] - z[var_at + d];
      primal_sq += gap * gap;
    }
  }
  const auto edge_scalars = static_cast<double>(graph.edge_scalars());
  residuals.primal =
      edge_scalars == 0.0 ? 0.0 : std::sqrt(primal_sq / edge_scalars);

  if (z_previous.empty()) {
    residuals.dual = std::numeric_limits<double>::infinity();
    return residuals;
  }
  require(z_previous.size() == z.size(),
          "z_previous snapshot has the wrong length");

  // Mean rho as the dual scaling, standard practice for consensus ADMM.
  double rho_sum = 0.0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) rho_sum += graph.edge_rho(e);
  const double rho_mean =
      graph.num_edges() == 0
          ? 1.0
          : rho_sum / static_cast<double>(graph.num_edges());

  double dual_sq = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const double step = rho_mean * (z[i] - z_previous[i]);
    dual_sq += step * step;
  }
  const auto var_scalars = static_cast<double>(z.size());
  residuals.dual = var_scalars == 0.0 ? 0.0 : std::sqrt(dual_sq / var_scalars);
  return residuals;
}

}  // namespace paradmm
