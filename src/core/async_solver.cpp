#include "core/async_solver.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace paradmm {

AsyncSolverReport solve_async(
    FactorGraph& graph, const AsyncSolverOptions& options,
    const std::function<bool(int, const Residuals&)>& callback) {
  require(options.max_sweeps >= 0, "max_sweeps must be >= 0");
  const std::size_t factors = graph.num_factors();

  const GraphSoa soa = graph.soa();
  double* x = graph.x_values().data();
  double* m = graph.m_values().data();
  double* z = graph.z_values().data();
  double* u = graph.u_values().data();
  double* n = graph.n_values().data();

  std::vector<FactorId> order(factors);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(options.shuffle_seed);

  auto step = [&](FactorId a) {
    const EdgeId begin = graph.factor_edge_begin(a);
    const std::uint32_t degree = graph.factor_degree(a);

    // Local x-update.
    const ProxContext ctx(soa, begin, degree);
    graph.factor_op(a).apply(ctx);

    // Local m-update.
    for (std::uint32_t k = 0; k < degree; ++k) {
      const EdgeId e = begin + k;
      const std::uint64_t at = graph.edge_offset(e);
      const std::uint32_t dim = graph.edge_dim(e);
      for (std::uint32_t d = 0; d < dim; ++d) {
        m[at + d] = x[at + d] + u[at + d];
      }
    }

    // Refresh the consensus of the touched variables (reads neighbors'
    // possibly-stale m — that is the "async" part).
    for (std::uint32_t k = 0; k < degree; ++k) {
      const VariableId b = graph.edge_variable(begin + k);
      const std::uint64_t z_at = graph.variable_offset(b);
      const std::uint32_t dim = graph.variable_dim(b);
      const auto incident = graph.variable_edges(b);
      for (std::uint32_t d = 0; d < dim; ++d) {
        double numerator = 0.0;
        double denominator = 0.0;
        for (const EdgeId e : incident) {
          const double rho = graph.edge_rho(e);
          numerator += rho * m[graph.edge_offset(e) + d];
          denominator += rho;
        }
        if (denominator > 0.0) z[z_at + d] = numerator / denominator;
      }
    }

    // Local u- and n-updates.
    for (std::uint32_t k = 0; k < degree; ++k) {
      const EdgeId e = begin + k;
      const std::uint64_t at = graph.edge_offset(e);
      const std::uint64_t z_at =
          graph.variable_offset(graph.edge_variable(e));
      const std::uint32_t dim = graph.edge_dim(e);
      const double alpha = graph.edge_alpha(e);
      for (std::uint32_t d = 0; d < dim; ++d) {
        u[at + d] += alpha * (x[at + d] - z[z_at + d]);
        n[at + d] = z[z_at + d] - u[at + d];
      }
    }
  };

  AsyncSolverReport report;
  std::vector<double> z_snapshot;
  int sweep = 0;
  while (sweep < options.max_sweeps) {
    const int batch = options.check_interval > 0
                          ? std::min(options.check_interval,
                                     options.max_sweeps - sweep)
                          : options.max_sweeps - sweep;
    for (int s = 0; s < batch; ++s) {
      if (options.order == AsyncOrder::kRandomized) {
        std::shuffle(order.begin(), order.end(), rng);
      }
      if (s == batch - 1) {
        const auto current = graph.z_values();
        z_snapshot.assign(current.begin(), current.end());
      }
      for (const FactorId a : order) step(a);
    }
    sweep += batch;

    const Residuals residuals = compute_residuals(graph, z_snapshot);
    report.final_residuals = residuals;
    if (callback && !callback(sweep, residuals)) break;
    if (residuals.within(options.primal_tolerance,
                         options.dual_tolerance)) {
      report.converged = true;
      break;
    }
  }
  report.sweeps = sweep;
  return report;
}

}  // namespace paradmm
