#include "core/solver.hpp"

#include <algorithm>
#include <cmath>

#include "math/kernels.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace paradmm {

AdmmSolver::AdmmSolver(FactorGraph& graph, SolverOptions options)
    : graph_(graph), options_(options) {
  require(options_.max_iterations >= 0, "max_iterations must be >= 0");
  require(options_.threads >= 1, "threads must be >= 1");
  owned_backend_ = make_backend(options_.backend, options_.threads);
  backend_ = owned_backend_.get();
  build_phases();
}

AdmmSolver::AdmmSolver(FactorGraph& graph, SolverOptions options,
                       ExecutionBackend& backend)
    : graph_(graph), options_(options), backend_(&backend) {
  require(options_.max_iterations >= 0, "max_iterations must be >= 0");
  build_phases();
}

AdmmSolver::~AdmmSolver() = default;

namespace {

/// Flat, bounds-check-free mirrors of the graph used by the phase bodies.
/// Built once; valid while the graph topology is frozen.
struct PhaseData {
  GraphSoa soa;

  // Raw value arrays.
  double* x = nullptr;
  double* m = nullptr;
  double* z = nullptr;
  double* u = nullptr;
  double* n = nullptr;

  // Edges.
  const std::uint64_t* edge_offset = nullptr;
  const std::uint32_t* edge_dim = nullptr;
  const double* edge_rho = nullptr;
  const Weight* edge_weight = nullptr;
  std::vector<double> edge_alpha;              // copied from the graph
  std::vector<std::uint64_t> edge_var_offset;  // z slice start per edge

  // Factors.
  std::vector<const ProxOperator*> ops;
  std::vector<EdgeId> factor_begin;
  std::vector<std::uint32_t> factor_degree;

  // Variables (CSR over incident edges).
  std::vector<std::uint64_t> var_offset;
  std::vector<std::uint32_t> var_dim;
  std::vector<std::uint64_t> var_edges_begin;
  std::vector<EdgeId> var_edges;

  bool three_weight = false;
};

}  // namespace

// The PhaseData lives in the closures via shared_ptr so that the solver can
// be moved/destroyed independently of copies of the phase list.
void AdmmSolver::build_phases() {
  auto data = std::make_shared<PhaseData>();
  data->soa = graph_.soa();
  data->x = graph_.x_values().data();
  data->m = graph_.m_values().data();
  data->z = graph_.z_values().data();
  data->u = graph_.u_values().data();
  data->n = graph_.n_values().data();
  data->three_weight = options_.rho_policy == RhoPolicy::kThreeWeight;

  const std::size_t edges = graph_.num_edges();
  const std::size_t factors = graph_.num_factors();
  const std::size_t variables = graph_.num_variables();

  data->edge_offset = data->soa.edge_offset;
  data->edge_dim = data->soa.edge_dim;
  data->edge_rho = data->soa.edge_rho;
  data->edge_weight = data->soa.edge_weight;

  // The SoA view does not carry alpha (POs never see it); copy it out of
  // the graph once so the u-phase reads a flat array it owns.
  data->edge_alpha.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    data->edge_alpha.push_back(graph_.edge_alpha(e));
  }

  data->edge_var_offset.resize(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    data->edge_var_offset[e] = graph_.variable_offset(graph_.edge_variable(e));
  }

  data->ops.reserve(factors);
  data->factor_begin.reserve(factors);
  data->factor_degree.reserve(factors);
  for (FactorId a = 0; a < factors; ++a) {
    data->ops.push_back(&graph_.factor_op(a));
    data->factor_begin.push_back(graph_.factor_edge_begin(a));
    data->factor_degree.push_back(graph_.factor_degree(a));
  }

  data->var_offset.reserve(variables);
  data->var_dim.reserve(variables);
  data->var_edges_begin.assign(1, 0);
  for (VariableId b = 0; b < variables; ++b) {
    data->var_offset.push_back(graph_.variable_offset(b));
    data->var_dim.push_back(graph_.variable_dim(b));
    const auto incident = graph_.variable_edges(b);
    data->var_edges.insert(data->var_edges.end(), incident.begin(),
                           incident.end());
    data->var_edges_begin.push_back(data->var_edges.size());
  }

  phases_.clear();
  phases_.reserve(5);

  // Each phase carries two equivalent bodies: the per-index `apply` closure
  // (the reference implementation — kept verbatim, driven directly by tests
  // and the device models) and a chunked `apply_range` the backends prefer.
  // The range bodies run the dispatched SoA kernels (math/kernels.hpp); the
  // table is bound once here, so one solver uses one kernel mode for its
  // whole lifetime.  In scalar mode the range bodies are bitwise identical
  // to `apply` (same per-element operation sequence — see docs/kernels.md);
  // parity between the two paths is pinned by tests/core/test_kernels.cpp.
  const kernels::KernelTable* kt = &kernels::table(kernels::mode());

  // x-phase: one proximal operator per factor.
  phases_.push_back(Phase{
      "x", factors,
      [data](std::size_t a) {
        const ProxContext ctx(data->soa, data->factor_begin[a],
                              data->factor_degree[a]);
        data->ops[a]->apply(ctx);
      },
      [data](std::size_t begin, std::size_t end) {
        for (std::size_t a = begin; a < end; ++a) {
          const ProxContext ctx(data->soa, data->factor_begin[a],
                                data->factor_degree[a]);
          data->ops[a]->apply(ctx);
        }
      }});

  // m-phase: m <- x + u, per edge.  Edge slices are laid out back to back
  // in edge-creation order (FactorGraph's SoA invariant), so a whole chunk
  // of edges is one contiguous block and the range body is a single kernel
  // call over it.
  phases_.push_back(Phase{
      "m", edges,
      [data](std::size_t e) {
        const std::uint64_t at = data->edge_offset[e];
        const std::uint32_t dim = data->edge_dim[e];
        for (std::uint32_t d = 0; d < dim; ++d) {
          data->m[at + d] = data->x[at + d] + data->u[at + d];
        }
      },
      [data, kt](std::size_t begin, std::size_t end) {
        if (begin == end) return;
        const std::uint64_t from = data->edge_offset[begin];
        const std::uint64_t to =
            data->edge_offset[end - 1] + data->edge_dim[end - 1];
        kt->m_update(data->x + from, data->u + from, data->m + from,
                     static_cast<std::size_t>(to - from));
      }});

  // z-phase: weighted consensus average per variable node.
  phases_.push_back(Phase{"z", variables, [data](std::size_t b) {
    const std::uint64_t z_at = data->var_offset[b];
    const std::uint32_t dim = data->var_dim[b];
    const std::uint64_t first = data->var_edges_begin[b];
    const std::uint64_t last = data->var_edges_begin[b + 1];

    if (data->three_weight) {
      // TWA: infinite-weight messages override; zero-weight messages are
      // ignored; with no opinion at all, z keeps its previous value.
      std::uint32_t infinite_count = 0;
      for (std::uint64_t i = first; i < last; ++i) {
        if (data->edge_weight[data->var_edges[i]] == Weight::kInfinite) {
          ++infinite_count;
        }
      }
      for (std::uint32_t d = 0; d < dim; ++d) {
        double numerator = 0.0;
        double denominator = 0.0;
        for (std::uint64_t i = first; i < last; ++i) {
          const EdgeId e = data->var_edges[i];
          const Weight w = data->edge_weight[e];
          if (infinite_count > 0) {
            if (w != Weight::kInfinite) continue;
            numerator += data->m[data->edge_offset[e] + d];
            denominator += 1.0;
          } else {
            if (w == Weight::kZero) continue;
            const double rho = data->edge_rho[e];
            numerator += rho * data->m[data->edge_offset[e] + d];
            denominator += rho;
          }
        }
        if (denominator > 0.0) data->z[z_at + d] = numerator / denominator;
      }
      return;
    }

    for (std::uint32_t d = 0; d < dim; ++d) {
      double numerator = 0.0;
      double denominator = 0.0;
      for (std::uint64_t i = first; i < last; ++i) {
        const EdgeId e = data->var_edges[i];
        const double rho = data->edge_rho[e];
        numerator += rho * data->m[data->edge_offset[e] + d];
        denominator += rho;
      }
      if (denominator > 0.0) data->z[z_at + d] = numerator / denominator;
    }
  }, [data, kt](std::size_t begin, std::size_t end) {
    // Chunked z-phase, restructured d-inner so every accumulation runs a
    // dense kernel over the variable's contiguous z slice.  The denominator
    // is the same scalar for every dimension d, so it is computed once per
    // variable; accumulating edge contributions in CSR order and dividing
    // at the end performs the exact operation sequence of the reference
    // body per element — bitwise identical, reductions included.
    for (std::size_t b = begin; b < end; ++b) {
      double* z = data->z + data->var_offset[b];
      const std::uint32_t dim = data->var_dim[b];
      const std::uint64_t first = data->var_edges_begin[b];
      const std::uint64_t last = data->var_edges_begin[b + 1];

      if (data->three_weight) {
        std::uint32_t infinite_count = 0;
        for (std::uint64_t i = first; i < last; ++i) {
          if (data->edge_weight[data->var_edges[i]] == Weight::kInfinite) {
            ++infinite_count;
          }
        }
        double denominator = 0.0;
        for (std::uint64_t i = first; i < last; ++i) {
          const EdgeId e = data->var_edges[i];
          const Weight w = data->edge_weight[e];
          if (infinite_count > 0) {
            if (w == Weight::kInfinite) denominator += 1.0;
          } else if (w != Weight::kZero) {
            denominator += data->edge_rho[e];
          }
        }
        // Matches the reference's "denominator > 0.0" write guard: with no
        // opinion at all, z keeps its previous value.
        if (!(denominator > 0.0)) continue;
        kt->fill(z, 0.0, dim);
        for (std::uint64_t i = first; i < last; ++i) {
          const EdgeId e = data->var_edges[i];
          const Weight w = data->edge_weight[e];
          if (infinite_count > 0) {
            if (w != Weight::kInfinite) continue;
            kt->z_accumulate(1.0, data->m + data->edge_offset[e], z, dim);
          } else {
            if (w == Weight::kZero) continue;
            kt->z_accumulate(data->edge_rho[e],
                             data->m + data->edge_offset[e], z, dim);
          }
        }
        kt->z_divide(denominator, z, dim);
        continue;
      }

      double denominator = 0.0;
      for (std::uint64_t i = first; i < last; ++i) {
        denominator += data->edge_rho[data->var_edges[i]];
      }
      if (!(denominator > 0.0)) continue;
      kt->fill(z, 0.0, dim);
      for (std::uint64_t i = first; i < last; ++i) {
        const EdgeId e = data->var_edges[i];
        kt->z_accumulate(data->edge_rho[e], data->m + data->edge_offset[e], z,
                         dim);
      }
      kt->z_divide(denominator, z, dim);
    }
  }});

  // u-phase: u <- u + alpha (x - z_b), per edge.  The z gather offset
  // varies per edge, so the range body runs one dense kernel per edge slice
  // (still contiguous SoA blocks, just not merged across edges).
  phases_.push_back(Phase{
      "u", edges,
      [data](std::size_t e) {
        const std::uint64_t at = data->edge_offset[e];
        const std::uint64_t z_at = data->edge_var_offset[e];
        const std::uint32_t dim = data->edge_dim[e];
        if (data->three_weight && data->edge_weight[e] != Weight::kStandard) {
          // TWA: certain/no-opinion messages carry no running disagreement.
          for (std::uint32_t d = 0; d < dim; ++d) data->u[at + d] = 0.0;
          return;
        }
        const double alpha = data->edge_alpha[e];
        for (std::uint32_t d = 0; d < dim; ++d) {
          data->u[at + d] += alpha * (data->x[at + d] - data->z[z_at + d]);
        }
      },
      [data, kt](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          const std::uint64_t at = data->edge_offset[e];
          const std::uint32_t dim = data->edge_dim[e];
          if (data->three_weight &&
              data->edge_weight[e] != Weight::kStandard) {
            kt->fill(data->u + at, 0.0, dim);
            continue;
          }
          kt->u_update(data->edge_alpha[e], data->x + at,
                       data->z + data->edge_var_offset[e], data->u + at, dim);
        }
      }});

  // n-phase: n <- z_b - u, per edge.
  phases_.push_back(Phase{
      "n", edges,
      [data](std::size_t e) {
        const std::uint64_t at = data->edge_offset[e];
        const std::uint64_t z_at = data->edge_var_offset[e];
        const std::uint32_t dim = data->edge_dim[e];
        for (std::uint32_t d = 0; d < dim; ++d) {
          data->n[at + d] = data->z[z_at + d] - data->u[at + d];
        }
      },
      [data, kt](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          const std::uint64_t at = data->edge_offset[e];
          kt->n_update(data->z + data->edge_var_offset[e], data->u + at,
                       data->n + at, data->edge_dim[e]);
        }
      }});
}

void AdmmSolver::balance_rho(const Residuals& residuals) {
  // Boyd et al. §3.4.1: keep primal and dual residuals within a factor of
  // each other by scaling rho; the scaled dual variable u is rescaled to
  // keep the underlying multiplier lambda = rho * u unchanged.
  double scale = 1.0;
  if (residuals.primal > options_.balancing_threshold * residuals.dual) {
    scale = options_.balancing_factor;
  } else if (residuals.dual > options_.balancing_threshold * residuals.primal) {
    scale = 1.0 / options_.balancing_factor;
  }
  if (scale == 1.0) return;
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    graph_.set_edge_rho(e, graph_.edge_rho(e) * scale);
  }
  for (auto& value : graph_.u_values()) value /= scale;
}

SolverReport AdmmSolver::run(
    const std::function<bool(const IterationStatus&)>& callback) {
  WallTimer total;
  PhaseTimings timings(phases_.size());
  PhaseTimings* timings_ptr =
      options_.record_phase_timings ? &timings : nullptr;

  SolverReport report;
  const int interval =
      options_.check_interval > 0 ? options_.check_interval : 0;

  int iteration = 0;
  while (iteration < options_.max_iterations) {
    const int remaining = options_.max_iterations - iteration;
    const int batch = interval > 0 ? std::min(interval, remaining) : remaining;

    // Run batch-1 iterations blind, snapshot z, then one more iteration so
    // the dual residual sees exactly one z step.
    if (batch > 1) backend_->run(phases_, batch - 1, timings_ptr);
    const auto z = graph_.z_values();
    z_snapshot_.assign(z.begin(), z.end());
    backend_->run(phases_, 1, timings_ptr);
    iteration += batch;

    const Residuals residuals = compute_residuals(graph_, z_snapshot_);
    report.final_residuals = residuals;

    if (options_.rho_policy == RhoPolicy::kResidualBalancing) {
      balance_rho(residuals);
    }
    // Convergence is decided before the callback's verdict is honored, so a
    // stop request that lands on an already-converged interval still
    // reports converged (the documented contract).
    if (residuals.within(options_.primal_tolerance, options_.dual_tolerance)) {
      report.converged = true;
    }
    if (options_.on_residuals) {
      options_.on_residuals(IterationStatus{iteration, residuals});
    }
    if (callback && !callback(IterationStatus{iteration, residuals})) break;
    if (report.converged) break;
  }

  report.iterations = iteration;
  report.wall_seconds = total.seconds();
  if (options_.record_phase_timings) {
    report.phase_seconds.resize(phases_.size());
    for (std::size_t p = 0; p < phases_.size(); ++p) {
      report.phase_seconds[p] = timings.seconds(p);
    }
  }
  return report;
}

SolverReport solve(FactorGraph& graph, const SolverOptions& options) {
  AdmmSolver solver(graph, options);
  return solver.run();
}

}  // namespace paradmm
