// The message-passing ADMM engine (Algorithm 2 of the paper).
//
// One iteration is five phases with a barrier after each:
//
//   x-phase  per factor a :  x(a,·) <- Prox_{f_a, rho(a,·)}(n(a,·))
//   m-phase  per edge (a,b):  m <- x + u
//   z-phase  per variable b:  z_b <- sum_{a} rho m(a,b) / sum_a rho
//   u-phase  per edge (a,b):  u <- u + alpha (x - z_b)
//   n-phase  per edge (a,b):  n <- z_b - u
//
// Each phase's tasks are independent, which is the fine-grained parallelism
// the paper exploits; scheduling is delegated to an ExecutionBackend
// (serial / fork-join / persistent, std::thread or OpenMP) and every
// backend computes bit-identical trajectories.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/factor_graph.hpp"
#include "core/residuals.hpp"
#include "parallel/backend.hpp"

namespace paradmm {

/// Rho handling across iterations.
enum class RhoPolicy {
  kConstant,           ///< classical ADMM, fixed per-edge rho
  kResidualBalancing,  ///< grow/shrink rho to balance primal vs dual residual
  kThreeWeight,        ///< TWA (ref [9]): POs may emit 0 / standard / inf weights
};

/// Status handed to the iteration callback after every check interval.
struct IterationStatus {
  int iteration = 0;
  Residuals residuals;
};

struct SolverOptions {
  BackendKind backend = BackendKind::kSerial;
  std::size_t threads = 1;

  int max_iterations = 1000;
  /// Residuals/stopping are evaluated every `check_interval` iterations;
  /// between checks the backend runs uninterrupted (the paper runs "a fixed
  /// number of iterations" between criteria evaluations).
  int check_interval = 25;
  double primal_tolerance = 1e-8;
  double dual_tolerance = 1e-8;

  RhoPolicy rho_policy = RhoPolicy::kConstant;
  /// Residual-balancing parameters (Boyd et al. §3.4.1).
  double balancing_factor = 2.0;     ///< multiply/divide rho by this
  double balancing_threshold = 10.0; ///< act when residuals differ by this ratio

  /// Collect per-phase wall-clock timings (small overhead).
  bool record_phase_timings = true;

  /// Telemetry-only observer, invoked after every residual check (same
  /// cadence as the run() callback, just before it).  Unlike the callback
  /// it cannot stop the solve — the batch runtime wires a trace sink's
  /// per-iteration residual events here without touching control flow.
  std::function<void(const IterationStatus&)> on_residuals;
};

/// Result of AdmmSolver::run.
struct SolverReport {
  int iterations = 0;
  bool converged = false;
  Residuals final_residuals;
  double wall_seconds = 0.0;
  /// Accumulated seconds per phase (x, m, z, u, n), when enabled.
  std::vector<double> phase_seconds;
  static constexpr std::array<const char*, 5> kPhaseNames = {"x", "m", "z",
                                                             "u", "n"};
};

/// Runs Algorithm 2 on a FactorGraph.
///
/// The solver borrows the graph; topology must not change between
/// construction and the last `run` call (state arrays may be read/written
/// freely between runs).
class AdmmSolver {
 public:
  AdmmSolver(FactorGraph& graph, SolverOptions options);

  /// Constructs a solver that schedules its phases on `backend` instead of
  /// creating one of its own (options.backend / options.threads are
  /// ignored).  The backend is borrowed: it must outlive the solver, and
  /// the caller must not run two solves on it concurrently.  This is what
  /// lets the batch-solve runtime share one persistent worker pool across
  /// many solver instances instead of paying one backend per solve.
  AdmmSolver(FactorGraph& graph, SolverOptions options,
             ExecutionBackend& backend);

  ~AdmmSolver();

  AdmmSolver(const AdmmSolver&) = delete;
  AdmmSolver& operator=(const AdmmSolver&) = delete;

  /// Runs until convergence or options.max_iterations.  `callback`, when
  /// given, is invoked after every check interval; returning false stops
  /// the solve early (reported as not converged unless tolerances were met).
  SolverReport run(
      const std::function<bool(const IterationStatus&)>& callback = {});

  /// The five phases of one iteration — exposed so benches and the device
  /// models can schedule exactly what the solver runs.
  std::span<const Phase> phases() const { return phases_; }

  const SolverOptions& options() const { return options_; }

 private:
  void build_phases();
  void balance_rho(const Residuals& residuals);

  FactorGraph& graph_;
  SolverOptions options_;
  std::unique_ptr<ExecutionBackend> owned_backend_;  // empty when borrowed
  ExecutionBackend* backend_ = nullptr;
  std::vector<Phase> phases_;

  // Flat helpers captured by phase closures (precomputed once).
  std::vector<std::uint64_t> edge_var_offset_;  // z offset per edge
  std::vector<double> z_snapshot_;
};

/// Convenience: solve `graph` with the given options and no callback.
SolverReport solve(FactorGraph& graph, const SolverOptions& options = {});

}  // namespace paradmm
