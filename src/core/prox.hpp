// Proximal-operator framework.
//
// A `ProxOperator` is the only piece of problem-specific code a user writes:
// the serial solution of
//
//     Prox_{f,rho}(n) = argmin_s  f(s) + sum_e rho_e/2 ||s_e - n_e||^2
//
// for one factor `f` whose edges e = 0..edge_count-1 carry the per-edge
// inputs n_e and weights rho_e.  The engine calls `apply` once per factor
// per iteration, possibly from many threads at once, so implementations
// must be `const` and must not share mutable state.
//
// The `ProxContext` passed to `apply` is a zero-allocation view into the
// factor graph's flat arrays (the paper's Gpu_graph.x / .n / .rhos), scoped
// to one factor's contiguous block of edges.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "support/error.hpp"

namespace paradmm {

using VariableId = std::uint32_t;
using FactorId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Message weight classes of the three-weight algorithm (TWA, ref [9] of the
/// paper).  Standard ADMM uses kStandard everywhere; a PO may mark an output
/// edge kInfinite ("this value is certain") or kZero ("no opinion").
enum class Weight : std::uint8_t {
  kStandard = 0,
  kZero = 1,
  kInfinite = 2,
};

/// Borrowed pointers into the graph's structure-of-arrays storage.  Built by
/// FactorGraph; never outlives it.  All arrays are indexed by EdgeId except
/// where noted.
struct GraphSoa {
  // Edge-ordered value arrays (length = total edge dims).
  const double* n = nullptr;   ///< PO inputs, written by the n-phase.
  double* x = nullptr;         ///< PO outputs, written by the x-phase.
  // Per-edge metadata (length = edge count).
  const std::uint64_t* edge_offset = nullptr;  ///< slice start in n/x/m/u.
  const std::uint32_t* edge_dim = nullptr;     ///< slice length.
  const double* edge_rho = nullptr;
  const VariableId* edge_var = nullptr;
  Weight* edge_weight = nullptr;  ///< TWA weight of the x->z message.
};

/// View of one factor's edges during a proximal update.
class ProxContext {
 public:
  ProxContext(const GraphSoa& soa, EdgeId first_edge, std::uint32_t edges)
      : soa_(&soa), first_(first_edge), count_(edges) {}

  /// Number of edges (neighbor variables) of this factor.
  std::uint32_t edge_count() const { return count_; }

  /// Dimension of the variable on local edge k.
  std::uint32_t dim(std::uint32_t k) const {
    return soa_->edge_dim[first_ + k];
  }

  /// The ADMM input message n(a,b) for local edge k.
  std::span<const double> input(std::uint32_t k) const {
    const EdgeId e = first_ + k;
    return {soa_->n + soa_->edge_offset[e], soa_->edge_dim[e]};
  }

  /// The output slice x(a,b) the PO must write for local edge k.
  std::span<double> output(std::uint32_t k) const {
    const EdgeId e = first_ + k;
    return {soa_->x + soa_->edge_offset[e], soa_->edge_dim[e]};
  }

  /// Per-edge proximal weight rho(a,b).
  double rho(std::uint32_t k) const { return soa_->edge_rho[first_ + k]; }

  /// Graph variable behind local edge k (rarely needed by POs).
  VariableId variable(std::uint32_t k) const {
    return soa_->edge_var[first_ + k];
  }

  /// Sets the TWA weight of the outgoing message on local edge k.  Only
  /// meaningful when the solver runs with the three-weight policy; plain
  /// ADMM ignores it.
  void set_weight(std::uint32_t k, Weight weight) const {
    soa_->edge_weight[first_ + k] = weight;
  }

 private:
  const GraphSoa* soa_;
  EdgeId first_;
  std::uint32_t count_;
};

/// Static cost annotation consumed by the device models (src/devsim).
/// Numbers describe one `apply` call for a factor of the annotated shape.
struct ProxCost {
  double flops = 0.0;        ///< arithmetic work
  double bytes = 0.0;        ///< global-memory traffic (read + write)
  std::uint32_t branch_class = 0;  ///< POs with different classes diverge
                                   ///< when sharing a GPU warp
};

/// Interface for user proximal operators.
class ProxOperator {
 public:
  virtual ~ProxOperator() = default;

  /// Writes argmin_s f(s) + sum_k rho(k)/2 ||s_k - input(k)||^2 into the
  /// context's outputs.  Must be thread-safe (called concurrently for
  /// different factors).
  virtual void apply(const ProxContext& ctx) const = 0;

  /// Stable identifier used in diagnostics and as the default divergence
  /// class in the GPU model.
  virtual std::string_view name() const = 0;

  /// Evaluates f at the given per-edge variable values (one span per edge,
  /// same order as the factor's edges).  Optional — used for reporting the
  /// objective, not by the solver.  Returns NaN when not implemented.
  virtual double evaluate(std::span<const std::span<const double>> values) const;

  /// Cost of one `apply` for a factor with the given per-edge dims.
  /// The default assumes a cheap closed-form PO: ~25 flops per scalar and
  /// one read + one write per scalar.
  virtual ProxCost cost(std::span<const std::uint32_t> dims) const;
};

}  // namespace paradmm
