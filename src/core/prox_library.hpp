// General-purpose proximal operators.
//
// These cover the textbook pieces users compose factor graphs from —
// quadratic terms, L1, box/halfspace/affine constraints, consensus
// equality — each with a closed-form `apply`, an `evaluate` for objective
// reporting, and a calibrated cost annotation for the device models.
// Domain-specific operators (packing collisions, SVM margins, MPC dynamics)
// live with their problems under src/problems/.
#pragma once

#include <memory>
#include <vector>

#include "core/prox.hpp"
#include "math/matrix.hpp"

namespace paradmm {

/// f(s) = 0: the prox is the identity, x = n.  Useful to anchor variables
/// into the graph and in backend-equivalence tests.
class ZeroProx final : public ProxOperator {
 public:
  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "zero"; }
  double evaluate(std::span<const std::span<const double>>) const override {
    return 0.0;
  }
  ProxCost cost(std::span<const std::uint32_t> dims) const override;
};

/// f(s) = (curvature/2) ||s - target||^2 on a single edge.
/// Prox: x = (rho n + curvature * target) / (rho + curvature).
class SumSquaresProx final : public ProxOperator {
 public:
  SumSquaresProx(double curvature, std::vector<double> target);
  /// Convenience: target = 0.
  explicit SumSquaresProx(double curvature);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "sum-squares"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  double curvature_;
  std::vector<double> target_;  // empty means the origin
};

/// f(s) = <gradient, s> on a single edge.  Prox: x = n - gradient / rho.
class LinearProx final : public ProxOperator {
 public:
  explicit LinearProx(std::vector<double> gradient);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "linear"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;

 private:
  std::vector<double> gradient_;
};

/// f(s) = lambda ||s||_1 on a single edge.  Prox: soft-thresholding with
/// threshold lambda / rho.
class SoftThresholdProx final : public ProxOperator {
 public:
  explicit SoftThresholdProx(double lambda);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "soft-threshold"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  double lambda_;
};

/// Indicator of the box [lo, hi]^d on a single edge.  Prox: clamp(n).
class BoxProx final : public ProxOperator {
 public:
  BoxProx(double lo, double hi);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "box"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;

 private:
  double lo_;
  double hi_;
};

/// Indicator of the halfspace { s : <normal, s> <= offset } over the
/// concatenation of the factor's edges, with per-edge rho weighting:
///   argmin sum_k rho_k/2 ||s_k - n_k||^2  s.t.  <normal, s> <= offset.
class HalfspaceProx final : public ProxOperator {
 public:
  HalfspaceProx(std::vector<double> normal, double offset);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "halfspace"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;

 private:
  std::vector<double> normal_;
  double offset_;
};

/// Indicator of { s : A s = b } over the concatenation of the factor's
/// edges.  The weighted projection
///   x = n - W^-1 A^T (A W^-1 A^T)^-1 (A n - b),  W = diag(rho per scalar)
/// is computed with a dense solve; A is small (constraint count x total dim).
/// Note: because W depends on the per-edge rho at apply time, the solve is
/// performed per call — suitable for modest constraint counts.
class AffineEqualityProx final : public ProxOperator {
 public:
  AffineEqualityProx(Matrix a, std::vector<double> b);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "affine-equality"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  Matrix a_;
  std::vector<double> b_;
};

/// Indicator of { (s_1, ..., s_k) : s_1 = s_2 = ... = s_k } across the
/// factor's edges (all edges must share one dimension).  Prox: the
/// rho-weighted average, written to every edge.  This is the paper's SVM
/// "equality proximal operator" generalized to k copies.
class ConsensusEqualityProx final : public ProxOperator {
 public:
  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "consensus-equality"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;
};

/// Indicator of the probability simplex { s : s >= 0, sum s = total } on a
/// single edge.  Prox: Euclidean projection (Held/Wolfe/Crowder threshold
/// algorithm) — the building block of portfolio, assignment-relaxation and
/// mixture-weight factors.  Note the projection is rho-invariant on a
/// single edge (one uniform weight scales the whole objective).
class SimplexProx final : public ProxOperator {
 public:
  explicit SimplexProx(double total = 1.0);

  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "simplex"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;

 private:
  double total_;
};

/// Indicator of the second-order (Lorentz) cone { (v, t) : ||v|| <= t }
/// over a single edge whose last component is t.  Prox: the standard
/// closed-form SOC projection — the factor SCS-style conic solvers are
/// built from.
class SecondOrderConeProx final : public ProxOperator {
 public:
  void apply(const ProxContext& ctx) const override;
  std::string_view name() const override { return "second-order-cone"; }
  double evaluate(
      std::span<const std::span<const double>> values) const override;
  ProxCost cost(std::span<const std::uint32_t> dims) const override;
};

}  // namespace paradmm
