#include "core/prox.hpp"

#include <cmath>
#include <limits>

namespace paradmm {
namespace {

// FNV-1a over the operator name: a stable default divergence class so that
// distinct PO types land in distinct branch classes without registration.
std::uint32_t hash_name(std::string_view name) {
  std::uint32_t hash = 2166136261u;
  for (const char c : name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

}  // namespace

double ProxOperator::evaluate(
    std::span<const std::span<const double>>) const {
  return std::numeric_limits<double>::quiet_NaN();
}

ProxCost ProxOperator::cost(std::span<const std::uint32_t> dims) const {
  double scalars = 0.0;
  for (const auto d : dims) scalars += static_cast<double>(d);
  ProxCost cost;
  cost.flops = 25.0 * scalars;
  cost.bytes = 2.0 * sizeof(double) * scalars;
  cost.branch_class = hash_name(name());
  return cost;
}

}  // namespace paradmm
