// Primal/dual residuals for the factor-graph ADMM.
//
// The factor-graph scheme is a consensus ADMM: the primal residual measures
// edge-wise disagreement x(a,b) - z_b, the dual residual the movement of the
// consensus z between consecutive iterations (scaled by rho).  Both are
// reported as root-mean-square over scalars so tolerances are insensitive to
// problem size.
#pragma once

#include <span>

namespace paradmm {

class FactorGraph;

struct Residuals {
  double primal = 0.0;  ///< rms over edge scalars of (x - z)
  double dual = 0.0;    ///< rms over variable scalars of rho*(z - z_prev)

  bool within(double primal_tolerance, double dual_tolerance) const {
    return primal <= primal_tolerance && dual <= dual_tolerance;
  }
};

/// Computes both residuals.  `z_previous` must be a snapshot of the graph's
/// z array from the previous iteration (same length); pass an empty span to
/// skip the dual residual (it is reported as +inf).
Residuals compute_residuals(const FactorGraph& graph,
                            std::span<const double> z_previous);

}  // namespace paradmm
