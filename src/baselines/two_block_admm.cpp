#include "baselines/two_block_admm.hpp"

#include <cmath>

#include "support/error.hpp"

namespace paradmm::baselines {

TwoBlockResult solve_lasso_two_block(const lasso::LassoInstance& instance,
                                     const TwoBlockOptions& options) {
  require(options.rho > 0.0, "two-block ADMM needs rho > 0");
  const std::size_t d = instance.a.cols();

  Matrix gram = instance.a.transposed() * instance.a;
  for (std::size_t i = 0; i < d; ++i) gram(i, i) += options.rho;
  const Matrix chol = cholesky_factor(gram);

  std::vector<double> at_y(d, 0.0);
  for (std::size_t r = 0; r < instance.a.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      at_y[c] += instance.a(r, c) * instance.y[r];
    }
  }

  std::vector<double> x(d, 0.0), z(d, 0.0), u(d, 0.0), z_prev(d, 0.0);
  const double threshold = options.lambda / options.rho;

  TwoBlockResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // x-update: (A'A + rho I) x = A'y + rho (z - u).
    std::vector<double> rhs(at_y);
    for (std::size_t i = 0; i < d; ++i) {
      rhs[i] += options.rho * (z[i] - u[i]);
    }
    x = cholesky_solve(chol, rhs);

    // z-update: soft threshold.
    z_prev = z;
    for (std::size_t i = 0; i < d; ++i) {
      const double v = x[i] + u[i];
      if (v > threshold) {
        z[i] = v - threshold;
      } else if (v < -threshold) {
        z[i] = v + threshold;
      } else {
        z[i] = 0.0;
      }
    }

    // u-update.
    double primal = 0.0;
    double dual = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      u[i] += x[i] - z[i];
      primal = std::max(primal, std::fabs(x[i] - z[i]));
      dual = std::max(dual, options.rho * std::fabs(z[i] - z_prev[i]));
    }

    result.iterations = iter + 1;
    if (std::max(primal, dual) < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.solution = z;
  return result;
}

}  // namespace paradmm::baselines
