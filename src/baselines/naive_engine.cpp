#include "baselines/naive_engine.hpp"

#include "support/error.hpp"

namespace paradmm::baselines {

struct NaiveGraphEngine::Edge {
  std::vector<double> x, m, u, n;
  double rho = 1.0;
  double alpha = 1.0;
  Variable* variable = nullptr;
};

struct NaiveGraphEngine::Variable {
  std::vector<double> z;
  std::vector<Edge*> edges;  // insertion order, as in the flat engine
};

struct NaiveGraphEngine::Factor {
  const ProxOperator* op = nullptr;
  std::vector<Edge*> edges;
};

NaiveGraphEngine::NaiveGraphEngine(const FactorGraph& graph) {
  variables_.reserve(graph.num_variables());
  for (VariableId b = 0; b < graph.num_variables(); ++b) {
    auto variable = std::make_unique<Variable>();
    const auto z = graph.solution(b);
    variable->z.assign(z.begin(), z.end());
    variables_.push_back(std::move(variable));
  }

  edges_.reserve(graph.num_edges());
  const auto x = graph.x_values();
  const auto m = graph.m_values();
  const auto u = graph.u_values();
  const auto n = graph.n_values();
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto edge = std::make_unique<Edge>();
    const std::uint64_t at = graph.edge_offset(e);
    const std::uint32_t dim = graph.edge_dim(e);
    edge->x.assign(x.begin() + at, x.begin() + at + dim);
    edge->m.assign(m.begin() + at, m.begin() + at + dim);
    edge->u.assign(u.begin() + at, u.begin() + at + dim);
    edge->n.assign(n.begin() + at, n.begin() + at + dim);
    edge->rho = graph.edge_rho(e);
    edge->alpha = graph.edge_alpha(e);
    edge->variable = variables_[graph.edge_variable(e)].get();
    edge->variable->edges.push_back(edge.get());
    edges_.push_back(std::move(edge));
  }

  factors_.reserve(graph.num_factors());
  for (FactorId a = 0; a < graph.num_factors(); ++a) {
    auto factor = std::make_unique<Factor>();
    factor->op = &graph.factor_op(a);
    const EdgeId begin = graph.factor_edge_begin(a);
    for (std::uint32_t k = 0; k < graph.factor_degree(a); ++k) {
      factor->edges.push_back(edges_[begin + k].get());
    }
    factors_.push_back(std::move(factor));
  }
}

NaiveGraphEngine::~NaiveGraphEngine() = default;

void NaiveGraphEngine::run(int iterations) {
  for (int iter = 0; iter < iterations; ++iter) {
    // x-phase: gather each factor's inputs into a scratch SoA view, run the
    // operator, scatter the outputs back — buffer churn included.
    for (const auto& factor : factors_) {
      const std::size_t degree = factor->edges.size();
      std::vector<double> scratch_n, scratch_x;
      std::vector<std::uint64_t> offsets(degree);
      std::vector<std::uint32_t> dims(degree);
      std::vector<double> rhos(degree);
      std::vector<VariableId> vars(degree, 0);
      std::vector<Weight> weights(degree, Weight::kStandard);
      std::uint64_t at = 0;
      for (std::size_t k = 0; k < degree; ++k) {
        Edge* edge = factor->edges[k];
        offsets[k] = at;
        dims[k] = static_cast<std::uint32_t>(edge->n.size());
        rhos[k] = edge->rho;
        scratch_n.insert(scratch_n.end(), edge->n.begin(), edge->n.end());
        at += edge->n.size();
      }
      scratch_x.assign(at, 0.0);

      GraphSoa soa;
      soa.n = scratch_n.data();
      soa.x = scratch_x.data();
      soa.edge_offset = offsets.data();
      soa.edge_dim = dims.data();
      soa.edge_rho = rhos.data();
      soa.edge_var = vars.data();
      soa.edge_weight = weights.data();
      factor->op->apply(
          ProxContext(soa, 0, static_cast<std::uint32_t>(degree)));

      for (std::size_t k = 0; k < degree; ++k) {
        Edge* edge = factor->edges[k];
        for (std::size_t i = 0; i < edge->x.size(); ++i) {
          edge->x[i] = scratch_x[offsets[k] + i];
        }
      }
    }

    // m-phase.
    for (const auto& edge : edges_) {
      for (std::size_t i = 0; i < edge->m.size(); ++i) {
        edge->m[i] = edge->x[i] + edge->u[i];
      }
    }

    // z-phase.
    for (const auto& variable : variables_) {
      for (std::size_t i = 0; i < variable->z.size(); ++i) {
        double numerator = 0.0;
        double denominator = 0.0;
        for (Edge* edge : variable->edges) {
          numerator += edge->rho * edge->m[i];
          denominator += edge->rho;
        }
        if (denominator > 0.0) variable->z[i] = numerator / denominator;
      }
    }

    // u-phase.
    for (const auto& edge : edges_) {
      for (std::size_t i = 0; i < edge->u.size(); ++i) {
        edge->u[i] += edge->alpha * (edge->x[i] - edge->variable->z[i]);
      }
    }

    // n-phase.
    for (const auto& edge : edges_) {
      for (std::size_t i = 0; i < edge->n.size(); ++i) {
        edge->n[i] = edge->variable->z[i] - edge->u[i];
      }
    }
  }
}

std::vector<double> NaiveGraphEngine::solution(VariableId var) const {
  require(var < variables_.size(), "variable id out of range");
  return variables_[var]->z;
}

}  // namespace paradmm::baselines
