// A deliberately conventional message-passing ADMM implementation: every
// edge is its own heap object holding little vectors of x/m/u/n, variables
// and factors reach their edges through pointer indirection, and the
// x-phase gathers/scatters through temporary buffers.
//
// This mirrors how a straightforward (object-per-node) implementation of
// Algorithm 2 looks — the kind of structure the paper compares against when
// it reports that parADMM's flat-array engine is >4x faster per iteration
// on a single core than the tool of its ref [9].  It computes *identical*
// trajectories to AdmmSolver (asserted in tests); only the memory layout
// and traversal differ.  bench_naive_vs_flat quantifies the gap.
#pragma once

#include <memory>
#include <vector>

#include "core/factor_graph.hpp"

namespace paradmm::baselines {

class NaiveGraphEngine {
 public:
  /// Snapshots the graph's topology, parameters, and current ADMM state.
  explicit NaiveGraphEngine(const FactorGraph& graph);
  ~NaiveGraphEngine();

  NaiveGraphEngine(const NaiveGraphEngine&) = delete;
  NaiveGraphEngine& operator=(const NaiveGraphEngine&) = delete;

  /// Runs `iterations` sweeps of the five phases, serially.
  void run(int iterations);

  /// Consensus value of a variable (same readout as FactorGraph::solution).
  std::vector<double> solution(VariableId var) const;

 private:
  struct Edge;
  struct Variable;
  struct Factor;

  std::vector<std::unique_ptr<Edge>> edges_;
  std::vector<std::unique_ptr<Variable>> variables_;
  std::vector<std::unique_ptr<Factor>> factors_;
};

}  // namespace paradmm::baselines
