// Textbook two-block ADMM (the paper's Algorithm 1), specialized to Lasso:
//
//   min 0.5 ||A x - y||^2 + lambda ||z||_1   s.t.  x = z
//
//   x <- (A'A + rho I)^-1 (A'y + rho (z - u))
//   z <- soft_threshold(x + u, lambda / rho)
//   u <- u + x - z
//
// Serves as the independent correctness oracle for the factor-graph engine
// (the same optimum must come out of both formulations) and as the
// conventional-formulation baseline in benches.
#pragma once

#include <vector>

#include "math/matrix.hpp"
#include "problems/lasso/lasso.hpp"

namespace paradmm::baselines {

struct TwoBlockOptions {
  double rho = 1.0;
  double lambda = 0.1;
  int max_iterations = 5000;
  double tolerance = 1e-10;  ///< on max(||x-z||_inf, rho ||z-z_prev||_inf)
};

struct TwoBlockResult {
  std::vector<double> solution;  // z at termination
  int iterations = 0;
  bool converged = false;
};

TwoBlockResult solve_lasso_two_block(const lasso::LassoInstance& instance,
                                     const TwoBlockOptions& options);

}  // namespace paradmm::baselines
