// Mid-solve width renegotiation for the batch-solve runtime.
//
// The Scheduler fixes a fine-grained job's *planned* width at dispatch, but
// the paper's premise — fine-grained parallelism pays only while it keeps
// all lanes busy — cuts both ways at runtime: a wide solve that was planned
// against an empty queue wastes lanes the moment a backlog forms behind it,
// and a solve shrunk for a backlog that has since drained leaves lanes
// idle.  The WidthGovernor closes that loop.  The BatchRunner feeds it the
// number of solves waiting for a lane (jobs still in the priority queue
// plus jobs dispatched to the pool but not yet executing); between ADMM
// phase barriers, a running fine-grained solve consults it and
//
//   * shrinks its fork width by one lane per waiting job (never below
//     `min_width`), handing those lanes to the backlog,
//   * grows back toward its planned width once the backlog drains, and
//   * — the deadline-aware case — *claims* lanes up to the pool width
//     instead of yielding them when its projected finish would miss its
//     deadline (see below).
//
// Deadline boosting inverts the yield policy for jobs racing the clock.
// Every governed solve holds a `Lease` in the governor's lane ledger; at
// each phase barrier the governor timestamps the barrier on the runner's
// clock, learning the solve's per-phase wall-clock (normalized to
// lane-seconds so samples taken at different widths agree — the same
// telemetry RuntimeMetrics reports as phase seconds).  From the learned
// cost — or, before the first sample, from the lease's cost-model prior
// (runtime/calibration.hpp) or the cross-job EWMA — it projects the finish
// time at the width the backlog policy would assign; if that projection
// lands past the job's deadline, the lease
// claims the smallest width that is projected to meet it, bounded by the
// pool width and by the ledger: a boost may only take lanes no other
// governed solve currently holds, so boosting never pushes the governed
// total above the pool.  Boosts and yields are arbitrated by that single
// ledger — a racing job stops yielding to the backlog entirely.
//
// Renegotiation never changes numerics: the phase chunk partition depends
// only on (count, width) and every phase task owns its output slice, so a
// solve's trajectory is identical — bitwise — at any width schedule.  Only
// scheduling latitude changes.  Disable it (`enabled = false`) to pin every
// solve at its planned width, which reproduces the fixed-width runtime
// behavior exactly; disable `deadline_boost` alone to keep the yield policy
// but never exceed planned widths.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>

#include "parallel/backend.hpp"
#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"

namespace paradmm {
class ThreadPool;
}

namespace paradmm::runtime {

class OnlineRecalibrator;
class TraceRecorder;

struct WidthGovernorOptions {
  /// When false, advise() always returns the planned width (fixed-width
  /// scheduling, the pre-governor behavior).
  bool enabled = true;

  /// Floor a shrunken fork can reach.  1 lets a heavily backlogged wide
  /// solve fall back to running its phases serially, freeing every lane it
  /// was planned to use; raise it to keep shrunken solves fine-grained.
  /// Must be >= 1.
  std::size_t min_width = 1;

  /// Deadline-aware boosting: a governed solve whose projected finish
  /// (from the learned per-phase wall-clock) exceeds its deadline claims
  /// lanes up to the pool width instead of yielding them.  Needs the
  /// runner's clock (BatchRunnerOptions::clock axis — the same axis
  /// deadlines are expressed on); without one, or with `enabled == false`,
  /// no boost ever happens.
  bool deadline_boost = true;
};

/// Renegotiation counters, snapshot into RuntimeMetrics.  A "shrink" is a
/// phase barrier at which a solve's advised width dropped below the width
/// it last forked with; a "grow" is the reverse (back toward planned); a
/// "boost" is a grow that claimed lanes *above* the planned width for a
/// deadline-racing solve.  Several concurrent wide solves each count their
/// own transitions.
struct WidthGovernorStats {
  std::size_t shrinks = 0;
  std::size_t grows = 0;
  std::size_t boosts = 0;
  std::size_t waiting_jobs = 0;   ///< solves currently waiting for a lane
  std::size_t boosted_lanes = 0;  ///< lanes currently held above planned widths
  /// Cross-job EWMA of per-phase wall-clock, normalized to lane-seconds
  /// (phase seconds x fork width); seeds the projection of solves that have
  /// not produced a sample of their own yet.  0 until the first governed
  /// solve finishes a timed barrier.
  double learned_phase_seconds = 0.0;
};

/// Per-solve hints for make_governed_pool_backend: the deadline projection
/// needs to know how much work is left and where the finish line is.
struct GovernedSolveInfo {
  /// Deadline on the runner's clock axis; infinity (the default) disables
  /// the projection for this solve.
  double deadline = std::numeric_limits<double>::infinity();
  /// Phase barriers the solve has left to run (5 x remaining iterations
  /// for the ADMM engine); 0 disables the projection.
  std::size_t total_phases = 0;
  /// Cost-model prior for the deadline projection, in lane-seconds per
  /// phase barrier (see model_phase_lane_seconds in runtime/calibration.hpp
  /// — the runner prices each governed graph with its shared CostModel).
  /// Until the solve produces a measured sample of its own, the projection
  /// uses this prior; 0 (the default) falls back to the governor's
  /// cross-job EWMA, reproducing the un-calibrated behavior.  With a
  /// positive prior a solve can be boosted at its *first* barrier — no
  /// warm-up sample needed to notice an already-infeasible pace.
  double prior_phase_seconds = 0.0;
  /// Per-phase task counts of the governed graph (the x,m,z,u,n order of
  /// runtime/calibration.hpp's phase_counts).  Barrier timestamps carry
  /// these counts into the online re-calibrator so every measured phase
  /// becomes a (count, width, seconds) sample against the Amdahl form;
  /// all-zero (the default) disables sample capture for this solve.
  std::array<std::size_t, 5> phase_counts{};
  /// Observer invoked with every granted width (the runtime mirrors it
  /// into JobHandle::current_width).  Runs under no governor lock.
  std::function<void(std::size_t)> on_width;
  /// Observer invoked after every phase barrier with (phase index, fork
  /// width, wall seconds) — forwarded to the pool backend's PhaseObserver.
  /// The runtime's trace layer emits per-phase per-width spans from it.
  PhaseObserver on_phase;
};

/// Thread-safe: the BatchRunner feeds waiting-job counts from the submit
/// path and the dispatcher while governed backends call advise() from
/// whichever workers their solves landed on.
class WidthGovernor {
 public:
  /// One running governed solve's seat in the lane ledger.  Owned by the
  /// governor; callers treat it as an opaque token between open_lease()
  /// and close_lease().  After open_lease publishes it, every mutation
  /// happens under the governor's mutex_ (advise() and close_lease();
  /// not expressible as GUARDED_BY from a nested struct — the capability
  /// lives on a different object).  The solve thread that owns the lease
  /// — the only writer — may read fields without the lock.
  struct Lease {
    std::size_t planned = 0;       ///< scheduler-planned width (boost floor)
    std::size_t width = 0;         ///< last granted width (ledger holding)
    double deadline = std::numeric_limits<double>::infinity();
    std::size_t total_phases = 0;  ///< barriers the whole solve will run
    std::size_t phases_done = 0;   ///< barriers timestamped so far
    double cost_units = 0.0;       ///< sum of phase seconds x fork width
    double prior_phase_seconds = 0.0;  ///< cost-model prior (lane-seconds
                                       ///< per phase; 0 = none)
    std::array<std::size_t, 5> phase_counts{};  ///< graph task counts per
                                                ///< phase (all-zero = no
                                                ///< re-calibration samples)
    double last_barrier = 0.0;     ///< clock at the previous barrier
    bool timed = false;            ///< last_barrier is valid
    std::size_t boost_width = 0;   ///< held boost (0 = none); sticky between
                                   ///< fresh clock samples
  };
  using LeasePtr = std::shared_ptr<Lease>;

  /// Validates `options` (throws PreconditionError on min_width == 0).
  explicit WidthGovernor(WidthGovernorOptions options = {});

  /// Wires the governor to its runner: the pool width caps every boost and
  /// `clock` timestamps phase barriers (same axis as job deadlines).  The
  /// BatchRunner calls this once at construction; an unbound governor
  /// (unit tests, standalone backends) never times barriers and never
  /// boosts.
  void bind(std::size_t pool_width, std::function<double()> clock);

  /// Attaches (or detaches, with nullptr) a trace sink: every advise() that
  /// changes a leased solve's width emits a shrink/grow/boost instant event
  /// carrying the evidence behind the decision (backlog, per-phase
  /// lane-seconds estimate, deadline projection).  The recorder must
  /// outlive the governor's use of it; the BatchRunner attaches its sink at
  /// construction, before any governed solve can run.
  void bind_trace(TraceRecorder* trace);

  /// Attaches (or detaches, with nullptr) an online re-calibration sink:
  /// every timed phase barrier of a lease carrying phase counts feeds a
  /// (phase, count, width, wall seconds) sample into it — the governor is
  /// where measured per-phase wall-clock already exists, so calibration
  /// learns for free.  Samples are recorded after the governor's own lock
  /// is released (the recalibrator holds its own leaf mutex).  The sink
  /// must outlive the governor's use of it; the BatchRunner attaches it at
  /// construction, before any governed solve can run.
  void bind_recalibration(OnlineRecalibrator* recalibrator);

  /// A solve entered the waiting set (submitted, not yet executing).
  void job_waiting();
  /// A solve left the waiting set (started executing, or was finalized
  /// without running).  Must pair with a prior job_waiting().
  void job_done_waiting();

  /// A serial (whole-solve) job started/stopped executing.  Serial solves
  /// hold no lease, but they do occupy a lane each — the ledger subtracts
  /// them from the lanes a boost may claim, so a racing solve never grabs
  /// capacity that is actually busy running whole solves.
  void serial_started();
  void serial_finished();

  /// Registers a governed solve with the lane ledger at its planned width.
  /// `prior_phase_seconds` (lane-seconds per phase, 0 = none) seeds the
  /// deadline projection before the solve's first measured sample — see
  /// GovernedSolveInfo::prior_phase_seconds.  Throws PreconditionError on
  /// a negative or non-finite prior: a cost model that prices a phase
  /// below zero is broken, and silently clamping it would mask the bug
  /// while quietly disabling the first-barrier deadline boost.
  /// `phase_counts` (all-zero by default) enables re-calibration sample
  /// capture at this lease's barriers.
  LeasePtr open_lease(std::size_t planned_width, double deadline,
                      std::size_t total_phases,
                      double prior_phase_seconds = 0.0,
                      std::array<std::size_t, 5> phase_counts = {});
  /// Returns the lease's lanes to the ledger and folds its measured
  /// per-phase cost into the cross-job estimate.
  void close_lease(const LeasePtr& lease);

  /// Width the next phase fork of the leased solve should use: the backlog
  /// yield policy (planned minus one lane per waiting job, floored at
  /// min_width), overridden by a deadline boost when the projected finish
  /// at that width misses the lease's deadline.  `current_width` is the
  /// width the caller last forked with; changes tally as shrink/grow/boost.
  std::size_t advise(Lease& lease, std::size_t current_width);

  /// Stateless variant (no lease, no timing, no boost): planned width
  /// minus one lane per waiting job, floored at min_width — the pure yield
  /// policy, kept for callers outside the runner's ledger.
  std::size_t advise(std::size_t planned_width, std::size_t current_width);

  WidthGovernorStats stats() const;

  const WidthGovernorOptions& options() const { return options_; }

 private:
  std::size_t backlog_target(std::size_t planned_width) const;

  WidthGovernorOptions options_;
  std::size_t pool_width_ = 0;        // 0 until bind(): boosts disabled
  std::function<double()> clock_;
  TraceRecorder* trace_ = nullptr;    // set before concurrent use (bind_trace)
  OnlineRecalibrator* recal_ = nullptr;  // set before concurrent use
                                         // (bind_recalibration)

  std::atomic<std::size_t> waiting_{0};
  std::atomic<std::size_t> busy_serial_{0};
  std::atomic<std::size_t> shrinks_{0};
  std::atomic<std::size_t> grows_{0};
  std::atomic<std::size_t> boosts_{0};

  // Lane ledger (and the learned cost it feeds): sum of every open lease's
  // granted width, plus the lanes granted above planned.  One mutex guards
  // both — advise() runs once per phase, which is the unit of real solver
  // work, so contention here is negligible.  The governor lock is a leaf
  // in the runtime's lock hierarchy: advise() releases it before emitting
  // trace events, and nothing is acquired while it is held.
  mutable Mutex mutex_{"WidthGovernor"};
  std::size_t leased_width_ PARADMM_GUARDED_BY(mutex_) = 0;
  std::size_t boosted_lanes_ PARADMM_GUARDED_BY(mutex_) = 0;
  double learned_phase_seconds_ PARADMM_GUARDED_BY(mutex_) = 0.0;
};

/// A width-bounded fork/join backend over a borrowed ThreadPool (same
/// schedule and numerics as make_pool_backend) that holds a governor lease
/// and re-asks for its width before every phase fork — the hook that makes
/// width renegotiation (and deadline boosting) land exactly at the ADMM
/// phase barriers.  The pool and the governor must outlive the backend;
/// one backend still serves one solve at a time.  concurrency() reports
/// the planned width (a boost may temporarily fork wider).  The overload
/// without GovernedSolveInfo never boosts (no deadline, no projection).
std::unique_ptr<ExecutionBackend> make_governed_pool_backend(
    ThreadPool& pool, std::size_t planned_width, WidthGovernor& governor,
    GovernedSolveInfo info);
std::unique_ptr<ExecutionBackend> make_governed_pool_backend(
    ThreadPool& pool, std::size_t planned_width, WidthGovernor& governor);

}  // namespace paradmm::runtime
