// Mid-solve width renegotiation for the batch-solve runtime.
//
// The Scheduler fixes a fine-grained job's *planned* width at dispatch, but
// the paper's premise — fine-grained parallelism pays only while it keeps
// all lanes busy — cuts both ways at runtime: a wide solve that was planned
// against an empty queue wastes lanes the moment a backlog forms behind it,
// and a solve shrunk for a backlog that has since drained leaves lanes
// idle.  The WidthGovernor closes that loop.  The BatchRunner feeds it the
// number of solves waiting for a lane (jobs still in the priority queue
// plus jobs dispatched to the pool but not yet executing); between ADMM
// phase barriers, a running fine-grained solve consults it and
//
//   * shrinks its fork width by one lane per waiting job (never below
//     `min_width`), handing those lanes to the backlog, and
//   * grows back toward its planned width once the backlog drains.
//
// Renegotiation never changes numerics: the phase chunk partition depends
// only on (count, width) and every phase task owns its output slice, so a
// solve's trajectory is identical — bitwise — at any width schedule.  Only
// scheduling latitude changes.  Disable it (`enabled = false`) to pin every
// solve at its planned width, which reproduces the fixed-width runtime
// behavior exactly.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "parallel/backend.hpp"

namespace paradmm {
class ThreadPool;
}

namespace paradmm::runtime {

struct WidthGovernorOptions {
  /// When false, advise() always returns the planned width (fixed-width
  /// scheduling, the pre-governor behavior).
  bool enabled = true;

  /// Floor a shrunken fork can reach.  1 lets a heavily backlogged wide
  /// solve fall back to running its phases serially, freeing every lane it
  /// was planned to use; raise it to keep shrunken solves fine-grained.
  /// Must be >= 1.
  std::size_t min_width = 1;
};

/// Renegotiation counters, snapshot into RuntimeMetrics.  A "shrink" is a
/// phase barrier at which a solve's advised width dropped below the width
/// it last forked with; a "grow" is the reverse.  Several concurrent wide
/// solves each count their own transitions.
struct WidthGovernorStats {
  std::size_t shrinks = 0;
  std::size_t grows = 0;
  std::size_t waiting_jobs = 0;  ///< solves currently waiting for a lane
};

/// Thread-safe: the BatchRunner feeds waiting-job counts from the submit
/// path and the dispatcher while governed backends call advise() from
/// whichever workers their solves landed on.
class WidthGovernor {
 public:
  /// Validates `options` (throws PreconditionError on min_width == 0).
  explicit WidthGovernor(WidthGovernorOptions options = {});

  /// A solve entered the waiting set (submitted, not yet executing).
  void job_waiting();
  /// A solve left the waiting set (started executing, or was finalized
  /// without running).  Must pair with a prior job_waiting().
  void job_done_waiting();

  /// Width the next phase fork should use: `planned_width` minus one lane
  /// per waiting job, floored at min_width (or `planned_width` verbatim
  /// when disabled).  `current_width` is the width the caller last forked
  /// with; a change is tallied as a shrink or grow.
  std::size_t advise(std::size_t planned_width, std::size_t current_width);

  WidthGovernorStats stats() const;

  const WidthGovernorOptions& options() const { return options_; }

 private:
  WidthGovernorOptions options_;
  std::atomic<std::size_t> waiting_{0};
  std::atomic<std::size_t> shrinks_{0};
  std::atomic<std::size_t> grows_{0};
};

/// A width-bounded fork/join backend over a borrowed ThreadPool (same
/// schedule and numerics as make_pool_backend) that re-asks `governor` for
/// its width before every phase fork — the hook that makes width
/// renegotiation land exactly at the ADMM phase barriers.  The pool and the
/// governor must outlive the backend; one backend still serves one solve at
/// a time.  concurrency() reports the planned (maximum) width.
std::unique_ptr<ExecutionBackend> make_governed_pool_backend(
    ThreadPool& pool, std::size_t planned_width, WidthGovernor& governor);

}  // namespace paradmm::runtime
