#include "runtime/calibration.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "core/factor_graph.hpp"
#include "core/solver.hpp"
#include "devsim/cost_model.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/problem_registry.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace paradmm::runtime {

namespace {

constexpr std::array<const char*, 5> kPhaseNames = {"x", "m", "z", "u", "n"};

// The JSON reader itself lives in support/json.hpp (shared with the trace
// exporter and tools/trace_dump); what stays here is the profile-specific
// schema validation and its error wording.

const JsonValue& member(const JsonValue& object, const std::string& key) {
  const auto it = object.object.find(key);
  require(it != object.object.end(),
          "calibration profile JSON: missing required field \"" + key + "\"");
  return it->second;
}

double number_member(const JsonValue& object, const std::string& key) {
  const JsonValue& value = member(object, key);
  require(value.kind == JsonValue::Kind::kNumber,
          "calibration profile JSON: field \"" + key + "\" must be a number");
  return value.number;
}

}  // namespace

// ---------------------------------------------------------------------------
// CalibrationProfile
// ---------------------------------------------------------------------------

double PhaseCalibration::seconds(std::size_t count, std::size_t width) const {
  const double w = static_cast<double>(std::max<std::size_t>(width, 1));
  const double amdahl = (1.0 - serial_fraction) / w + serial_fraction;
  return static_cast<double>(count) * per_element_seconds * amdahl +
         fork_overhead_seconds * (w - 1.0);
}

double CalibrationProfile::iteration_seconds(
    std::span<const std::size_t> counts, std::size_t width) const {
  require(counts.size() == phases.size(),
          "CalibrationProfile prices exactly the five phase counts");
  double total = 0.0;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    total += phases[p].seconds(counts[p], width);
  }
  return total;
}

std::string CalibrationProfile::to_json() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"version\": " << version << ",\n"
      << "  \"host\": " << json_quote(host) << ",\n"
      << "  \"pool_threads\": " << pool_threads << ",\n"
      << "  \"phases\": [\n";
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const PhaseCalibration& phase = phases[p];
    out << "    {\"name\": " << json_quote(phase.name) << ", "
        << "\"per_element_seconds\": " << json_number(phase.per_element_seconds)
        << ", \"serial_fraction\": " << json_number(phase.serial_fraction)
        << ", \"fork_overhead_seconds\": "
        << json_number(phase.fork_overhead_seconds) << "}"
        << (p + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

CalibrationProfile CalibrationProfile::from_json(std::string_view text) {
  const JsonValue root = JsonParser(text, "calibration profile JSON").parse();
  require(root.kind == JsonValue::Kind::kObject,
          "calibration profile JSON: top level must be an object");

  CalibrationProfile profile;
  const double version = number_member(root, "version");
  profile.version = static_cast<int>(version);
  require(profile.version == kVersion &&
              version == static_cast<double>(profile.version),
          "calibration profile JSON: unsupported version (this build reads "
          "version " +
              std::to_string(kVersion) + ")");

  const auto host = root.object.find("host");
  if (host != root.object.end() &&
      host->second.kind == JsonValue::Kind::kString) {
    profile.host = host->second.string;
  }

  const double pool = number_member(root, "pool_threads");
  require(pool >= 1.0 && pool == std::floor(pool),
          "calibration profile JSON: pool_threads must be a positive integer");
  profile.pool_threads = static_cast<std::size_t>(pool);

  const JsonValue& phases = member(root, "phases");
  require(phases.kind == JsonValue::Kind::kArray &&
              phases.array.size() == profile.phases.size(),
          "calibration profile JSON: \"phases\" must be an array of the five "
          "phase models (x, m, z, u, n)");
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    const JsonValue& entry = phases.array[p];
    require(entry.kind == JsonValue::Kind::kObject,
            "calibration profile JSON: each phase entry must be an object");
    PhaseCalibration& phase = profile.phases[p];
    const JsonValue& name = member(entry, "name");
    require(name.kind == JsonValue::Kind::kString &&
                name.string == kPhaseNames[p],
            std::string("calibration profile JSON: phase ") +
                std::to_string(p) + " must be named \"" + kPhaseNames[p] +
                "\" (profiles are ordered x, m, z, u, n)");
    phase.name = name.string;
    phase.per_element_seconds = number_member(entry, "per_element_seconds");
    phase.serial_fraction = number_member(entry, "serial_fraction");
    phase.fork_overhead_seconds =
        number_member(entry, "fork_overhead_seconds");
    require(phase.per_element_seconds >= 0.0 &&
                phase.fork_overhead_seconds >= 0.0 &&
                phase.serial_fraction >= 0.0 && phase.serial_fraction <= 1.0,
            std::string("calibration profile JSON: phase \"") + phase.name +
                "\" constants out of range (costs >= 0, serial fraction in "
                "[0, 1])");
  }
  return profile;
}

void CalibrationProfile::save(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "cannot open calibration profile for writing: " + path);
  out << to_json();
  require(out.good(), "failed writing calibration profile: " + path);
}

CalibrationProfile CalibrationProfile::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot read calibration profile: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

// ---------------------------------------------------------------------------
// HostCalibrator
// ---------------------------------------------------------------------------

HostCalibrator::HostCalibrator() : HostCalibrator(Options{}) {}

HostCalibrator::HostCalibrator(Options options) : options_(std::move(options)) {
  require(options_.iterations >= 1,
          "HostCalibrator needs at least one timed iteration per sample");
  require(options_.warmup_iterations >= 0,
          "HostCalibrator warmup_iterations must be >= 0");
  require(!options_.problems.empty(),
          "HostCalibrator needs at least one problem to measure");
}

std::array<std::size_t, 5> phase_counts(const FactorGraph& graph) {
  return {graph.num_factors(), graph.num_edges(), graph.num_variables(),
          graph.num_edges(), graph.num_edges()};
}

std::vector<std::size_t> width_ladder(std::size_t pool) {
  std::vector<std::size_t> ladder{1};
  while (ladder.back() * 2 <= pool) ladder.push_back(ladder.back() * 2);
  return ladder;
}

namespace {

std::size_t resolve_pool_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// One measured data point: a phase's per-iteration seconds at a width, plus
// the task count it swept.
struct PhaseSample {
  std::size_t count = 0;
  std::size_t width = 1;
  double seconds = 0.0;  // per iteration
};

// Fits (serial_fraction, fork_overhead) for one phase by least squares over
// the width > 1 samples, given the serial per-element cost already
// recovered from the width-1 runs.  The model is linear in both unknowns:
//
//   s(count, w) - T1/w = sigma * T1 * (1 - 1/w) + overhead * (w - 1)
//
// with T1 = count * per_element.  Synthetic data generated from the model
// is recovered exactly; measured data lands on the least-squares plane.
// Results are clamped to their physical ranges.
PhaseCalibration fit_phase(const std::string& name, double per_element,
                           std::span<const PhaseSample> wide_samples) {
  PhaseCalibration fit;
  fit.name = name;
  fit.per_element_seconds = per_element;

  double a11 = 0.0, a12 = 0.0, a22 = 0.0, b1 = 0.0, b2 = 0.0;
  for (const PhaseSample& sample : wide_samples) {
    const double t1 = static_cast<double>(sample.count) * per_element;
    const double w = static_cast<double>(sample.width);
    const double x1 = t1 * (1.0 - 1.0 / w);
    const double x2 = w - 1.0;
    const double y = sample.seconds - t1 / w;
    a11 += x1 * x1;
    a12 += x1 * x2;
    a22 += x2 * x2;
    b1 += x1 * y;
    b2 += x2 * y;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) > 1e-30) {
    fit.serial_fraction = (b1 * a22 - b2 * a12) / det;
    fit.fork_overhead_seconds = (a11 * b2 - a12 * b1) / det;
  } else if (a11 > 0.0) {
    // Degenerate design (e.g. a single sample): attribute everything to the
    // serial fraction, the parameter that dominates width planning.
    fit.serial_fraction = b1 / a11;
    fit.fork_overhead_seconds = 0.0;
  }
  fit.serial_fraction = std::clamp(fit.serial_fraction, 0.0, 1.0);
  fit.fork_overhead_seconds = std::max(fit.fork_overhead_seconds, 0.0);
  return fit;
}

}  // namespace

CalibrationProfile HostCalibrator::calibrate() const {
  const std::size_t pool = resolve_pool_threads(options_.pool_threads);
  const std::vector<std::size_t> ladder = width_ladder(pool);
  const ProblemRegistry& registry =
      options_.registry ? *options_.registry : ProblemRegistry::global();
  const int iterations = options_.iterations;
  const int warmup = options_.warmup_iterations;

  // The default measurement hook: a real fixed-iteration solve on a
  // width-bounded borrowed-pool fork — the same backend family the runtime
  // schedules fine-grained jobs on, so the measured fork/join overheads are
  // the ones the runtime will actually pay.  Zero tolerances keep the
  // budget fixed (no early convergence), and the single end-of-run residual
  // check keeps callback overhead out of the phase timings.
  std::shared_ptr<ThreadPool> pool_threads;  // only for the default hook
  MeasureFn measure = options_.measure;
  if (!measure) {
    pool_threads = std::make_shared<ThreadPool>(pool);
    measure = [pool_threads, warmup](FactorGraph& graph, std::size_t width,
                                     int iters) {
      const auto run = [&](int budget) {
        SolverOptions options;
        options.max_iterations = budget;
        options.check_interval = budget;
        options.primal_tolerance = 0.0;
        options.dual_tolerance = 0.0;
        options.record_phase_timings = true;
        const auto backend = make_pool_backend(*pool_threads, width);
        AdmmSolver solver(graph, options, *backend);
        return solver.run();
      };
      if (warmup > 0) run(warmup);
      return run(iters).phase_seconds;
    };
  }

  // Measure: per problem, per ladder width, the five per-phase seconds.
  std::array<std::vector<PhaseSample>, 5> serial_samples;
  std::array<std::vector<PhaseSample>, 5> wide_samples;
  for (const std::string& problem : options_.problems) {
    for (const std::size_t width : ladder) {
      // A fresh instance per sample: every measurement sweeps the same
      // trajectory from the same initial state, so widths are comparable.
      BuiltProblem built = registry.build(problem);
      const std::array<std::size_t, 5> counts = phase_counts(*built.graph);
      const double measure_start =
          options_.trace != nullptr ? options_.trace->now() : 0.0;
      const std::vector<double> seconds =
          measure(*built.graph, width, iterations);
      if (options_.trace != nullptr) {
        // One span per ladder sample: the calibration run's own timeline.
        options_.trace->complete(
            problem, "calibration", measure_start,
            std::max(0.0, options_.trace->now() - measure_start),
            {TraceRecorder::arg("width", width),
             TraceRecorder::arg("iterations", iterations)});
      }
      require(seconds.size() == serial_samples.size(),
              "HostCalibrator measurement must return the five per-phase "
              "seconds (x, m, z, u, n)");
      for (std::size_t p = 0; p < serial_samples.size(); ++p) {
        require(std::isfinite(seconds[p]) && seconds[p] >= 0.0,
                "HostCalibrator measurement returned a non-finite or "
                "negative phase time");
        PhaseSample sample;
        sample.count = counts[p];
        sample.width = width;
        sample.seconds = seconds[p] / static_cast<double>(iterations);
        if (options_.sample_sink) {
          options_.sample_sink(p, sample.count, sample.width, sample.seconds);
        }
        (width == 1 ? serial_samples : wide_samples)[p].push_back(sample);
      }
    }
  }

  CalibrationProfile profile;
  profile.pool_threads = pool;
  profile.host = options_.host;
  for (std::size_t p = 0; p < profile.phases.size(); ++p) {
    // Serial per-element cost: mean over the width-1 runs of each problem
    // (counts differ across problems, so average the per-task rate, not
    // the raw seconds).
    double rate_sum = 0.0;
    std::size_t rates = 0;
    for (const PhaseSample& sample : serial_samples[p]) {
      if (sample.count == 0) continue;
      rate_sum += sample.seconds / static_cast<double>(sample.count);
      ++rates;
    }
    const double per_element = rates > 0 ? rate_sum / static_cast<double>(rates)
                                         : 0.0;
    profile.phases[p] = fit_phase(kPhaseNames[p], per_element, wide_samples[p]);
  }
  return profile;
}

// ---------------------------------------------------------------------------
// CostModel implementations
// ---------------------------------------------------------------------------

namespace {

class DevsimCostModel final : public CostModel {
 public:
  explicit DevsimCostModel(devsim::MulticoreSpec spec) : spec_(spec) {}

  std::string_view name() const override { return "devsim-opteron"; }

  std::vector<double> iteration_seconds(
      const FactorGraph& graph,
      std::span<const std::size_t> widths) const override {
    // One O(graph) cost extraction, reused for every candidate width (the
    // per-width model evaluation is just arithmetic).
    const devsim::IterationCosts costs =
        devsim::extract_iteration_costs(graph);
    std::vector<double> seconds;
    seconds.reserve(widths.size());
    for (const std::size_t threads : widths) {
      seconds.push_back(devsim::multicore_iteration_seconds(
          costs, spec_, static_cast<int>(threads),
          devsim::OmpStrategy::kForkJoinPerPhase));
    }
    return seconds;
  }

 private:
  devsim::MulticoreSpec spec_;
};

class CalibratedCostModel final : public CostModel {
 public:
  explicit CalibratedCostModel(CalibrationProfile profile)
      : profile_(std::move(profile)) {}

  std::string_view name() const override { return "calibrated"; }

  std::vector<double> iteration_seconds(
      const FactorGraph& graph,
      std::span<const std::size_t> widths) const override {
    const std::array<std::size_t, 5> counts = phase_counts(graph);
    std::vector<double> seconds;
    seconds.reserve(widths.size());
    for (const std::size_t width : widths) {
      seconds.push_back(profile_.iteration_seconds(counts, width));
    }
    return seconds;
  }

 private:
  CalibrationProfile profile_;
};

class FunctionCostModel final : public CostModel {
 public:
  FunctionCostModel(WidthCostModel fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  std::vector<double> iteration_seconds(
      const FactorGraph& graph,
      std::span<const std::size_t> widths) const override {
    return fn_(graph, widths);
  }

 private:
  WidthCostModel fn_;
  std::string name_;
};

}  // namespace

CostModelPtr make_devsim_cost_model(devsim::MulticoreSpec spec) {
  return std::make_shared<DevsimCostModel>(spec);
}

CostModelPtr make_calibrated_cost_model(CalibrationProfile profile) {
  return std::make_shared<CalibratedCostModel>(std::move(profile));
}

CostModelPtr make_function_cost_model(WidthCostModel fn, std::string name) {
  require(static_cast<bool>(fn),
          "make_function_cost_model needs a callable model");
  return std::make_shared<FunctionCostModel>(std::move(fn), std::move(name));
}

CostModelPtr default_cost_model() {
  // Explicit override: a configured-but-broken profile must fail loudly,
  // never silently fall back to the Opteron spec.
  if (const char* path = std::getenv(kCalibrationFileEnv)) {
    return make_calibrated_cost_model(CalibrationProfile::load(path));
  }
#ifdef PARADMM_CALIBRATION_DIR
  // The committed default profile is best-effort: present in a source
  // checkout, absent for a relocated binary — fall through to devsim then.
  try {
    return make_calibrated_cost_model(CalibrationProfile::load(
        std::string(PARADMM_CALIBRATION_DIR) + "/default_profile.json"));
  } catch (const Error&) {
  }
#endif
  return make_devsim_cost_model();
}

double phase_lane_seconds_from_serial(double serial_iteration_seconds) {
  if (!std::isfinite(serial_iteration_seconds) ||
      serial_iteration_seconds <= 0.0) {
    return 0.0;
  }
  return serial_iteration_seconds / static_cast<double>(kPhasesPerIteration);
}

double model_phase_lane_seconds(const CostModel& model,
                                const FactorGraph& graph) {
  const std::array<std::size_t, 1> serial{1};
  const std::vector<double> seconds =
      model.iteration_seconds(graph, serial);
  require(seconds.size() == 1,
          "cost model must return one prediction per candidate width");
  return phase_lane_seconds_from_serial(seconds[0]);
}

// ---------------------------------------------------------------------------
// OnlineRecalibrator
// ---------------------------------------------------------------------------

OnlineRecalibrator::OnlineRecalibrator(RecalibrationOptions options)
    : options_(std::move(options)) {
  require(options_.refit_interval >= 1,
          "RecalibrationOptions refit_interval must be >= 1");
  require(std::isfinite(options_.drift_tolerance) &&
              options_.drift_tolerance >= 0.0,
          "RecalibrationOptions drift_tolerance must be finite and >= 0");
  MutexLock lock(mutex_);
  profile_ = options_.baseline;
  // A default-constructed baseline has empty phase names and a zero
  // pool_threads ceiling; fill the invariants from_json enforces so the
  // re-fit profile always round-trips through save()/load().
  for (std::size_t p = 0; p < profile_.phases.size(); ++p) {
    if (profile_.phases[p].name.empty()) {
      profile_.phases[p].name = kPhaseNames[p];
    }
  }
}

bool OnlineRecalibrator::record_sample(std::size_t phase, std::size_t count,
                                       std::size_t width, double seconds) {
  if (phase >= accum_.size() || count == 0 || width == 0 ||
      !std::isfinite(seconds) || seconds <= 0.0) {
    return false;
  }
  MutexLock lock(mutex_);
  PhaseAccum& a = accum_[phase];
  const double c = static_cast<double>(count);
  const double w = static_cast<double>(width);
  const double x[3] = {c / w, c, w - 1.0};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.m[i][j] += x[i] * x[j];
    a.v[i] += x[i] * seconds;
  }
  ++a.samples;
  a.count_sum += c;
  a.seconds_sum += seconds;
  a.baseline_pred_sum += options_.baseline.phases[phase].seconds(count, width);
  if (a.first_width == 0) {
    a.first_width = width;
  } else if (a.first_width != width) {
    a.multi_width = true;
  }
  if (width == 1) {
    ++a.n1;
    a.rate1_sum += seconds / c;
  }
  max_width_seen_ = std::max(max_width_seen_, width);
  ++samples_;
  if (samples_ % options_.refit_interval == 0) return refit_locked();
  return false;
}

bool OnlineRecalibrator::refit_now() {
  MutexLock lock(mutex_);
  return refit_locked();
}

namespace {

// Solves the 3x3 normal equations by Cramer's rule; false on a (near-)
// singular design.
bool solve3(const double m[3][3], const double v[3], double out[3]) {
  const double det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                     m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                     m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  if (std::abs(det) < 1e-30) return false;
  const auto replace_det = [&](int col) {
    double r[3][3];
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) r[i][j] = j == col ? v[i] : m[i][j];
    }
    return r[0][0] * (r[1][1] * r[2][2] - r[1][2] * r[2][1]) -
           r[0][1] * (r[1][0] * r[2][2] - r[1][2] * r[2][0]) +
           r[0][2] * (r[1][0] * r[2][1] - r[1][1] * r[2][0]);
  };
  for (int col = 0; col < 3; ++col) out[col] = replace_det(col) / det;
  return true;
}

// Builds a PhaseCalibration from the substituted linear parameters
// (A = e*(1-sigma), B = e*sigma, o = fork overhead); false when the fit is
// physically meaningless (non-positive per-element cost).
bool phase_from_linear(double a, double b, double overhead,
                       const PhaseCalibration& baseline,
                       PhaseCalibration* out) {
  const double e = a + b;
  if (!std::isfinite(e) || e <= 0.0) return false;
  *out = baseline;
  out->per_element_seconds = e;
  out->serial_fraction = std::clamp(b / e, 0.0, 1.0);
  out->fork_overhead_seconds =
      std::isfinite(overhead) ? std::max(overhead, 0.0) : 0.0;
  return true;
}

}  // namespace

bool OnlineRecalibrator::refit_locked() {
  bool any_changed = false;
  double drift = 0.0;
  for (std::size_t p = 0; p < accum_.size(); ++p) {
    PhaseAccum& a = accum_[p];
    if (a.samples == 0) continue;
    const PhaseCalibration& baseline = options_.baseline.phases[p];
    PhaseCalibration fit = profile_.phases[p];  // keep name + fallbacks
    bool fitted = false;
    if (a.multi_width) {
      // Full 3-parameter fit; a rank-deficient design (e.g. one count at
      // two widths) falls back to the 2-parameter (A, B) subsystem with
      // the baseline's fork overhead held fixed.
      double abo[3];
      if (solve3(a.m, a.v, abo) &&
          phase_from_linear(abo[0], abo[1], abo[2], fit, &fit)) {
        fitted = true;
      } else {
        const double o = baseline.fork_overhead_seconds;
        const double b1 = a.v[0] - o * a.m[0][2];
        const double b2 = a.v[1] - o * a.m[1][2];
        const double det = a.m[0][0] * a.m[1][1] - a.m[0][1] * a.m[1][0];
        if (std::abs(det) > 1e-30) {
          const double fit_a = (b1 * a.m[1][1] - b2 * a.m[0][1]) / det;
          const double fit_b = (a.m[0][0] * b2 - a.m[1][0] * b1) / det;
          fitted = phase_from_linear(fit_a, fit_b, o, fit, &fit);
        }
      }
    } else if (a.first_width == 1 && a.n1 > 0 && a.rate1_sum > 0.0) {
      // Serial-only stream: at width 1 the observation is exactly
      // count * per_element, so only the per-element scale is
      // identifiable; sigma and overhead keep their current values.
      fit.per_element_seconds = a.rate1_sum / static_cast<double>(a.n1);
      fitted = true;
    } else if (a.baseline_pred_sum > 0.0 && a.seconds_sum > 0.0) {
      // Single wide width: rescale the baseline so its prediction matches
      // the observed mean at that width (shape unidentifiable).
      const double scale = a.seconds_sum / a.baseline_pred_sum;
      fit.per_element_seconds = baseline.per_element_seconds * scale;
      fit.serial_fraction = baseline.serial_fraction;
      fit.fork_overhead_seconds = baseline.fork_overhead_seconds * scale;
      fitted = fit.per_element_seconds > 0.0;
    }
    if (!fitted) continue;
    profile_.phases[p] = fit;
    a.fitted = true;
    any_changed = true;
    // Drift vs the loaded baseline, at the shapes actually observed: the
    // mean task count, widths 1 and the widest sample seen.
    const auto count_ref = static_cast<std::size_t>(
        std::max(1.0, a.count_sum / static_cast<double>(a.samples)));
    for (const std::size_t w :
         {std::size_t{1}, std::max<std::size_t>(max_width_seen_, 1)}) {
      const double base = baseline.seconds(count_ref, w);
      if (base <= 0.0) continue;
      const double live = fit.seconds(count_ref, w);
      drift = std::max(drift, std::abs(live - base) / base);
    }
  }
  if (!any_changed) return false;
  ++refits_;
  last_drift_ = drift;
  drifted_ = drift > options_.drift_tolerance;
  if (profile_.pool_threads == 0) {
    profile_.pool_threads = std::max<std::size_t>(max_width_seen_, 1);
  }
  if (profile_.host.empty()) profile_.host = "online-refit";
  // Priceable: every phase either re-fitted from live data or carrying a
  // usable baseline cost — a profile with silent zero phases would
  // underprice everything downstream.
  has_refit_ = true;
  for (std::size_t p = 0; p < accum_.size(); ++p) {
    if (!accum_[p].fitted && profile_.phases[p].per_element_seconds <= 0.0) {
      has_refit_ = false;
      break;
    }
  }
  return true;
}

bool OnlineRecalibrator::has_refit() const {
  MutexLock lock(mutex_);
  return has_refit_;
}

CalibrationProfile OnlineRecalibrator::current_profile() const {
  MutexLock lock(mutex_);
  return profile_;
}

RecalibrationStats OnlineRecalibrator::stats() const {
  MutexLock lock(mutex_);
  RecalibrationStats stats;
  stats.samples = samples_;
  stats.refits = refits_;
  stats.last_drift = last_drift_;
  stats.drifted = drifted_;
  return stats;
}

namespace {

class OnlineCostModel final : public CostModel {
 public:
  OnlineCostModel(CostModelPtr base,
                  std::shared_ptr<OnlineRecalibrator> recalibrator)
      : base_(std::move(base)), recalibrator_(std::move(recalibrator)) {}

  std::string_view name() const override { return "online-recalibrated"; }

  std::vector<double> iteration_seconds(
      const FactorGraph& graph,
      std::span<const std::size_t> widths) const override {
    if (recalibrator_->has_refit()) {
      const CalibrationProfile profile = recalibrator_->current_profile();
      const std::array<std::size_t, 5> counts = phase_counts(graph);
      std::vector<double> seconds;
      seconds.reserve(widths.size());
      for (const std::size_t width : widths) {
        seconds.push_back(profile.iteration_seconds(counts, width));
      }
      return seconds;
    }
    return base_->iteration_seconds(graph, widths);
  }

 private:
  CostModelPtr base_;
  std::shared_ptr<OnlineRecalibrator> recalibrator_;
};

}  // namespace

CostModelPtr make_online_cost_model(
    CostModelPtr base, std::shared_ptr<OnlineRecalibrator> recalibrator) {
  require(static_cast<bool>(base),
          "make_online_cost_model needs a base model to serve before the "
          "first re-fit");
  require(static_cast<bool>(recalibrator),
          "make_online_cost_model needs a recalibrator");
  return std::make_shared<OnlineCostModel>(std::move(base),
                                           std::move(recalibrator));
}

}  // namespace paradmm::runtime
