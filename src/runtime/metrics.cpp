#include "runtime/metrics.hpp"

#include <algorithm>
#include <string>

#include "support/format.hpp"
#include "support/table.hpp"

namespace paradmm::runtime {

void RuntimeMetrics::print(std::ostream& out) const {
  Table table({"metric", "value"});
  table.add_row({"workers", std::to_string(workers)});
  table.add_row({"submitted", std::to_string(submitted)});
  table.add_row({"completed", std::to_string(completed)});
  table.add_row({"cancelled", std::to_string(cancelled)});
  table.add_row({"failed", std::to_string(failed)});
  table.add_row({"fine-grained jobs", std::to_string(fine_grained_jobs)});
  table.add_row({"queue depth", std::to_string(queue_depth)});
  table.add_row({"peak queue depth", std::to_string(peak_queue_depth)});
  table.add_row({"elapsed", format_duration(elapsed_seconds)});
  table.add_row({"jobs/sec", format_fixed(jobs_per_second(), 2)});
  table.add_row({"job wall mean", format_duration(mean_job_seconds())});
  table.add_row({"job wall min", format_duration(min_job_seconds)});
  table.add_row({"job wall max", format_duration(max_job_seconds)});
  table.add_row(
      {"worker utilization", format_fixed(100.0 * worker_utilization(), 1) + "%"});
  table.add_row({"width renegotiations",
                 std::to_string(width_shrinks) + " shrinks, " +
                     std::to_string(width_grows) + " grows"});
  // Union of the three maps: a width whose first job is still mid-flight
  // must already show its running count.
  std::map<std::size_t, std::size_t> widths;
  const auto value_or_zero = [](const std::map<std::size_t, std::size_t>& map,
                                std::size_t width) {
    const auto it = map.find(width);
    return it == map.end() ? std::size_t{0} : it->second;
  };
  for (const auto& entry : finished_by_width) widths[entry.first];
  for (const auto& entry : running_by_width) widths[entry.first];
  for (const auto& entry : peak_running_by_width) widths[entry.first];
  for (const auto& entry : widths) {
    const std::size_t width = entry.first;
    table.add_row(
        {"width " + std::to_string(width) + " jobs",
         std::to_string(value_or_zero(finished_by_width, width)) +
             " finished, " +
             std::to_string(value_or_zero(running_by_width, width)) +
             " running, peak " +
             std::to_string(value_or_zero(peak_running_by_width, width)) +
             " concurrent"});
  }
  table.print(out);
}

void MetricsCollector::on_submit(std::size_t queue_depth) {
  std::lock_guard lock(mutex_);
  ++metrics_.submitted;
  metrics_.peak_queue_depth = std::max(metrics_.peak_queue_depth, queue_depth);
}

void MetricsCollector::on_start(std::size_t threads_used) {
  std::lock_guard lock(mutex_);
  const std::size_t running = ++metrics_.running_by_width[threads_used];
  auto& peak = metrics_.peak_running_by_width[threads_used];
  peak = std::max(peak, running);
}

void MetricsCollector::on_finish(JobState outcome, double wall_seconds,
                                 std::size_t threads_used, bool ran) {
  std::lock_guard lock(mutex_);
  switch (outcome) {
    case JobState::kDone: ++metrics_.completed; break;
    case JobState::kCancelled: ++metrics_.cancelled; break;
    case JobState::kFailed: ++metrics_.failed; break;
    default: break;
  }
  if (!ran) return;  // cancelled-while-queued: no solve to account for
  --metrics_.running_by_width[threads_used];
  ++metrics_.finished_by_width[threads_used];
  ++metrics_.ran_jobs;
  if (threads_used > 1) ++metrics_.fine_grained_jobs;
  metrics_.total_job_seconds += wall_seconds;
  metrics_.busy_seconds +=
      wall_seconds * static_cast<double>(std::max<std::size_t>(threads_used, 1));
  if (!any_finished_ || wall_seconds < metrics_.min_job_seconds) {
    metrics_.min_job_seconds = wall_seconds;
  }
  metrics_.max_job_seconds = std::max(metrics_.max_job_seconds, wall_seconds);
  any_finished_ = true;
}

RuntimeMetrics MetricsCollector::snapshot(double elapsed_seconds,
                                          std::size_t workers,
                                          std::size_t queue_depth,
                                          WidthGovernorStats governor) const {
  std::lock_guard lock(mutex_);
  RuntimeMetrics out = metrics_;
  out.elapsed_seconds = elapsed_seconds;
  out.workers = workers;
  out.queue_depth = queue_depth;
  out.peak_queue_depth = std::max(out.peak_queue_depth, queue_depth);
  out.width_shrinks = governor.shrinks;
  out.width_grows = governor.grows;
  out.waiting_jobs = governor.waiting_jobs;
  return out;
}

}  // namespace paradmm::runtime
