#include "runtime/metrics.hpp"

#include <algorithm>
#include <string>

#include "support/format.hpp"
#include "support/table.hpp"

namespace paradmm::runtime {

void RuntimeMetrics::print(std::ostream& out) const {
  // Counters render with thousands separators: under the 100-seed soak the
  // width/renegotiation counters cross four digits, and ungrouped digit
  // runs both misalign against their short siblings and misread easily.
  // The Table then sizes every column to its widest cell, so no value can
  // overflow its column whatever the magnitude.
  const auto count = [](std::size_t value) {
    return format_thousands(static_cast<long long>(value));
  };
  Table table({"metric", "value"});
  table.add_row({"workers", count(workers)});
  table.add_row({"submitted", count(submitted)});
  table.add_row({"completed", count(completed)});
  table.add_row({"cancelled", count(cancelled)});
  table.add_row({"failed", count(failed)});
  table.add_row({"admission rejected/degraded/shed",
                 count(rejected) + "/" + count(degraded) + "/" +
                     count(shed_late)});
  // Quota refusals only exist with tenants defined; the row appears only
  // then, so the tenant-free table is unchanged.
  if (quota_rejected > 0) {
    table.add_row({"quota rejected", count(quota_rejected)});
  }
  table.add_row({"fine-grained jobs", count(fine_grained_jobs)});
  table.add_row({"queue depth", count(queue_depth)});
  table.add_row({"peak queue depth", count(peak_queue_depth)});
  table.add_row({"elapsed", format_duration(elapsed_seconds)});
  table.add_row({"jobs/sec", format_fixed(jobs_per_second(), 2)});
  table.add_row({"job wall mean", format_duration(mean_job_seconds())});
  table.add_row({"job wall min", format_duration(min_job_seconds)});
  table.add_row({"job wall max", format_duration(max_job_seconds)});
  table.add_row(
      {"worker utilization", format_fixed(100.0 * worker_utilization(), 1) + "%"});
  // Percentile rows read from the log-scale histograms; rendered with the
  // same duration formatting as the wall rows so the alignment contract
  // (every printed line equal width) holds whatever the magnitudes.
  const auto percentiles = [&](const char* name,
                               const LatencyHistogram& histogram) {
    if (histogram.count() == 0) return;
    table.add_row({std::string(name) + " p50/p95/p99",
                   format_duration(histogram.p50()) + " / " +
                       format_duration(histogram.p95()) + " / " +
                       format_duration(histogram.p99())});
  };
  percentiles("queue wait", queue_wait);
  percentiles("solve wall", solve_wall);
  percentiles("end-to-end", end_to_end);
  // One row per named tenant (sorted — std::map — so the rendering is
  // deterministic), plus its end-to-end percentiles when any job finished.
  // The Table sizes columns to the widest cell, so the every-line-equal-
  // width contract holds with tenant rows present or absent.
  for (const auto& [name, tenant] : tenants) {
    const std::size_t other = tenant.cancelled + tenant.failed +
                              tenant.rejected + tenant.shed_late;
    table.add_row({"tenant " + name,
                   count(tenant.submitted) + " submitted, " +
                       count(tenant.completed) + " done, " +
                       count(tenant.quota_rejected) + " quota-rejected, " +
                       count(other) + " other"});
    percentiles(("tenant " + name + " e2e").c_str(), tenant.end_to_end);
  }
  table.add_row({"width renegotiations",
                 count(width_shrinks) + " shrinks, " + count(width_grows) +
                     " grows, " + count(width_boosts) + " boosts"});
  table.add_row({"boosted lanes now", count(boosted_lanes)});
  table.add_row({"dispatcher preemptions", count(dispatcher_preemptions)});
  table.add_row({"deadlines met/missed",
                 count(deadlines_met) + "/" + count(deadlines_missed)});
  if (learned_phase_seconds > 0.0) {
    table.add_row(
        {"learned phase cost", format_duration(learned_phase_seconds)});
  }
  if (recalibration_samples > 0) {
    table.add_row({"recalibration",
                   count(recalibration_samples) + " samples, " +
                       count(recalibration_refits) + " refits, drift " +
                       format_fixed(100.0 * recalibration_drift, 1) + "%" +
                       (recalibration_drifted ? " (drifted)" : "")});
  }
  if (!phase_seconds.empty()) {
    std::string cells;
    for (std::size_t p = 0; p < phase_seconds.size(); ++p) {
      if (p != 0) cells += ", ";
      const char* name = p < SolverReport::kPhaseNames.size()
                             ? SolverReport::kPhaseNames[p]
                             : "?";
      cells += std::string(name) + "=" + format_duration(phase_seconds[p]);
    }
    table.add_row({"phase seconds", cells});
  }
  // Union of the three maps: a width whose first job is still mid-flight
  // must already show its running count.
  std::map<std::size_t, std::size_t> widths;
  const auto value_or_zero = [](const std::map<std::size_t, std::size_t>& map,
                                std::size_t width) {
    const auto it = map.find(width);
    return it == map.end() ? std::size_t{0} : it->second;
  };
  for (const auto& entry : finished_by_width) widths[entry.first];
  for (const auto& entry : running_by_width) widths[entry.first];
  for (const auto& entry : peak_running_by_width) widths[entry.first];
  for (const auto& entry : widths) {
    const std::size_t width = entry.first;
    table.add_row(
        {"width " + std::to_string(width) + " jobs",
         count(value_or_zero(finished_by_width, width)) + " finished, " +
             count(value_or_zero(running_by_width, width)) +
             " running, peak " +
             count(value_or_zero(peak_running_by_width, width)) +
             " concurrent"});
  }
  table.print(out);
}

void MetricsCollector::on_submit(std::size_t queue_depth,
                                 const std::string& tenant) {
  MutexLock lock(mutex_);
  ++metrics_.submitted;
  if (!tenant.empty()) ++metrics_.tenants[tenant].submitted;
  metrics_.peak_queue_depth = std::max(metrics_.peak_queue_depth, queue_depth);
}

void MetricsCollector::on_degraded() {
  MutexLock lock(mutex_);
  ++metrics_.degraded;
}

void MetricsCollector::on_queue_depth(std::size_t queue_depth) {
  MutexLock lock(mutex_);
  metrics_.peak_queue_depth = std::max(metrics_.peak_queue_depth, queue_depth);
}

void MetricsCollector::on_start(std::size_t threads_used) {
  MutexLock lock(mutex_);
  const std::size_t running = ++metrics_.running_by_width[threads_used];
  auto& peak = metrics_.peak_running_by_width[threads_used];
  peak = std::max(peak, running);
}

void MetricsCollector::on_preempt(std::size_t threads_used) {
  MutexLock lock(mutex_);
  ++metrics_.dispatcher_preemptions;
  --metrics_.running_by_width[threads_used];
}

void MetricsCollector::on_finish(const JobFinish& finish) {
  MutexLock lock(mutex_);
  switch (finish.outcome) {
    case JobState::kDone: ++metrics_.completed; break;
    case JobState::kCancelled: ++metrics_.cancelled; break;
    case JobState::kFailed: ++metrics_.failed; break;
    case JobState::kRejected: ++metrics_.rejected; break;
    case JobState::kShedLate: ++metrics_.shed_late; break;
    case JobState::kQuotaRejected: ++metrics_.quota_rejected; break;
    default: break;
  }
  if (!finish.tenant.empty()) {
    RuntimeMetrics::TenantMetrics& tenant = metrics_.tenants[finish.tenant];
    switch (finish.outcome) {
      case JobState::kDone: ++tenant.completed; break;
      case JobState::kCancelled: ++tenant.cancelled; break;
      case JobState::kFailed: ++tenant.failed; break;
      case JobState::kRejected: ++tenant.rejected; break;
      case JobState::kShedLate: ++tenant.shed_late; break;
      case JobState::kQuotaRejected: ++tenant.quota_rejected; break;
      default: break;
    }
    if (finish.outcome == JobState::kDone && finish.ran &&
        finish.end_to_end_seconds >= 0.0) {
      tenant.end_to_end.record(finish.end_to_end_seconds);
    }
  }
  if (finish.outcome == JobState::kDone && finish.had_deadline) {
    if (finish.met_deadline) {
      ++metrics_.deadlines_met;
    } else {
      ++metrics_.deadlines_missed;
    }
  }
  if (finish.was_running) --metrics_.running_by_width[finish.threads_used];
  if (!finish.ran) return;  // cancelled-while-queued: no solve to account for
  if (finish.outcome == JobState::kDone) {
    // Latency percentiles describe served requests: cancelled / failed
    // outcomes would fold operator intervention and bugs into the tail.
    if (finish.queue_wait_seconds >= 0.0) {
      metrics_.queue_wait.record(finish.queue_wait_seconds);
    }
    metrics_.solve_wall.record(finish.wall_seconds);
    if (finish.end_to_end_seconds >= 0.0) {
      metrics_.end_to_end.record(finish.end_to_end_seconds);
    }
  }
  ++metrics_.finished_by_width[finish.threads_used];
  ++metrics_.ran_jobs;
  if (finish.threads_used > 1) ++metrics_.fine_grained_jobs;
  if (finish.phase_seconds != nullptr) {
    accumulate_phase_seconds(metrics_.phase_seconds, *finish.phase_seconds);
  }
  metrics_.total_job_seconds += finish.wall_seconds;
  metrics_.busy_seconds +=
      finish.wall_seconds *
      static_cast<double>(std::max<std::size_t>(finish.threads_used, 1));
  if (!any_finished_ || finish.wall_seconds < metrics_.min_job_seconds) {
    metrics_.min_job_seconds = finish.wall_seconds;
  }
  metrics_.max_job_seconds =
      std::max(metrics_.max_job_seconds, finish.wall_seconds);
  any_finished_ = true;
}

RuntimeMetrics MetricsCollector::snapshot(double elapsed_seconds,
                                          std::size_t workers,
                                          std::size_t queue_depth,
                                          WidthGovernorStats governor) const {
  MutexLock lock(mutex_);
  RuntimeMetrics out = metrics_;
  out.elapsed_seconds = elapsed_seconds;
  out.workers = workers;
  out.queue_depth = queue_depth;
  out.peak_queue_depth = std::max(out.peak_queue_depth, queue_depth);
  out.width_shrinks = governor.shrinks;
  out.width_grows = governor.grows;
  out.width_boosts = governor.boosts;
  out.waiting_jobs = governor.waiting_jobs;
  out.boosted_lanes = governor.boosted_lanes;
  out.learned_phase_seconds = governor.learned_phase_seconds;
  return out;
}

}  // namespace paradmm::runtime
