// Host-calibrated cost models for the batch-solve runtime.
//
// Every width decision the runtime makes — the Scheduler's knee search, the
// WidthGovernor's deadline projections, and the BatchRunner's admission
// check — prices ADMM work in seconds.  The devsim multicore model supplies
// those prices from the paper's 2016 Opteron spec, which is systematically
// wrong on any other host: fork/join overheads, per-core throughput, and
// bandwidth knees all moved.  This layer closes that gap with one shared
// interface:
//
//   * CostModel — "predicted seconds for one ADMM iteration of this graph
//     at each candidate width".  The devsim Opteron spec is one
//     implementation (make_devsim_cost_model), a measured host profile is
//     another (make_calibrated_cost_model), and tests inject arbitrary
//     functions (make_function_cost_model) — so width planning, boost
//     projections, and admission all price work with the same model.
//
//   * CalibrationProfile — the serialized form of a host measurement: for
//     each of the five phases (x, m, z, u, n), a per-element serial cost, an
//     Amdahl serial fraction, and a per-lane fork overhead, fitted from
//     micro-benchmarks and stored as versioned JSON.  Profiles are plain
//     data: tests build fakes directly, CI commits real ones as artifacts.
//
//   * HostCalibrator — produces a profile by micro-benchmarking the four
//     seed problems' phases at widths {1, 2, 4, ..., pool} on the actual
//     host.  Phase wall-clock is normalized to lane-seconds (seconds x fork
//     width), the same convention the WidthGovernor's ledger learns from,
//     so calibrated priors and measured samples live on one axis.  The
//     measurement hook is injectable, so tests calibrate against synthetic
//     (virtual-clock) timings deterministically.
//
// Resolution order for the runtime's default model (default_cost_model):
// the PARADMM_CALIBRATION_FILE environment override, then the committed
// default profile (calibration/default_profile.json, baked in at configure
// time), then the devsim Opteron spec.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "devsim/cpu_model.hpp"

namespace paradmm {
class FactorGraph;
}

namespace paradmm::runtime {

class ProblemRegistry;
class TraceRecorder;

/// Shared pricing interface: predicted seconds for one ADMM iteration of
/// `graph` at each candidate width in `widths` (result is index-parallel to
/// `widths`).  Only relative values matter to the width knee search, but
/// admission control and deadline projections consume the absolute scale,
/// so implementations should aim for honest seconds.  The whole ladder
/// comes in one call so a model can run its per-graph analysis (e.g. devsim
/// cost extraction, O(graph)) once and reuse it across every candidate.
/// Implementations must be thread-safe and treat the graph as const.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string_view name() const = 0;

  virtual std::vector<double> iteration_seconds(
      const FactorGraph& graph, std::span<const std::size_t> widths) const = 0;
};

using CostModelPtr = std::shared_ptr<const CostModel>;

/// Plain-function form of the pricing interface, kept for ad-hoc models in
/// tests and benches (wrap with make_function_cost_model).
using WidthCostModel = std::function<std::vector<double>(
    const FactorGraph& graph, std::span<const std::size_t> widths)>;

/// One phase's fitted host model.  Per-iteration seconds of a phase with
/// `count` tasks forked at width w:
///
///   seconds(count, w) = count * per_element_seconds
///                             * ((1 - serial_fraction) / w + serial_fraction)
///                       + fork_overhead_seconds * (w - 1)
///
/// i.e. Amdahl's law per phase plus a linear fork/join cost per extra lane —
/// the same mechanisms the devsim multicore model charges, reduced to three
/// measurable constants per phase.
struct PhaseCalibration {
  std::string name;                    ///< "x", "m", "z", "u", "n"
  double per_element_seconds = 0.0;    ///< serial seconds per phase task
  double serial_fraction = 0.0;        ///< Amdahl sigma in [0, 1]
  double fork_overhead_seconds = 0.0;  ///< seconds per lane above the first

  double seconds(std::size_t count, std::size_t width) const;
};

/// A fitted host profile: the five phase models plus provenance.  The JSON
/// form is versioned; from_json rejects unknown versions and structurally
/// invalid profiles loudly (a silently mis-parsed profile would skew every
/// width decision downstream).
struct CalibrationProfile {
  /// Format version this code writes; from_json accepts exactly this.
  static constexpr int kVersion = 1;

  int version = kVersion;
  std::string host;               ///< informational: where it was measured
  std::size_t pool_threads = 0;   ///< width ladder ceiling during calibration
  std::array<PhaseCalibration, 5> phases{};

  /// Predicted seconds for one iteration over the five phase counts
  /// (index-parallel to SolverReport::kPhaseNames) at `width`.
  double iteration_seconds(std::span<const std::size_t> counts,
                           std::size_t width) const;

  std::string to_json() const;
  /// Parses a profile; throws PreconditionError on malformed JSON, a
  /// version mismatch, or missing/invalid phase entries.
  static CalibrationProfile from_json(std::string_view text);

  void save(const std::string& path) const;
  /// Loads and validates `path`; throws PreconditionError when the file is
  /// unreadable or invalid.
  static CalibrationProfile load(const std::string& path);
};

/// Micro-benchmarks the seed problems' ADMM phases on the actual host and
/// fits a CalibrationProfile.  For each problem and each width in
/// {1, 2, 4, ..., pool}, the calibrator runs a short fixed-iteration solve
/// on a width-bounded pool fork and records per-phase wall-clock; the fit
/// then recovers, per phase, the serial per-element cost from the width-1
/// runs and the (serial fraction, fork overhead) pair by least squares over
/// the wider runs.  Deterministic given a deterministic `measure` hook.
class HostCalibrator {
 public:
  /// Measures `iterations` ADMM iterations of `graph` forked at `width` and
  /// returns the five accumulated per-phase wall-clock seconds.  The
  /// default hook runs the real engine on a borrowed ThreadPool backend;
  /// tests inject synthetic (virtual-clock) timings instead.
  using MeasureFn = std::function<std::vector<double>(
      FactorGraph& graph, std::size_t width, int iterations)>;

  struct Options {
    /// Width ladder ceiling; 0 = std::thread::hardware_concurrency().
    std::size_t pool_threads = 0;
    /// Timed iterations per (problem, width) sample.
    int iterations = 20;
    /// Untimed iterations run first so cold caches don't skew the fit.
    int warmup_iterations = 4;
    /// Registry names to measure; defaults to the four seed problems.
    std::vector<std::string> problems = {"lasso", "mpc", "packing", "svm"};
    /// Problem source; null = ProblemRegistry::global().
    const ProblemRegistry* registry = nullptr;
    /// Injectable measurement (see MeasureFn); empty = real measured run.
    MeasureFn measure;
    /// Informational host tag stored in the profile.
    std::string host;
    /// Optional trace sink (runtime/trace.hpp): calibrate() records one
    /// "calibration"-category span per (problem, width) measurement, so the
    /// measurement ladder itself can be inspected in Perfetto
    /// (calibrate_host --trace).  Borrowed; must outlive calibrate().
    TraceRecorder* trace = nullptr;
  };

  // Two overloads instead of one defaulted argument: gcc cannot parse a
  // `{}` default for a nested aggregate whose members carry their own
  // initializers at this point of the enclosing class.
  HostCalibrator();
  explicit HostCalibrator(Options options);

  /// Runs the micro-benchmarks and fits the profile.  Throws on an unknown
  /// problem name or a measurement hook returning the wrong arity.
  CalibrationProfile calibrate() const;

 private:
  Options options_;
};

/// The five per-phase task counts of one iteration of `graph`, in solver
/// phase order (x: |F|, m: |E|, z: |V|, u: |E|, n: |E|) — the shape every
/// CostModel implementation prices against.
std::array<std::size_t, 5> phase_counts(const FactorGraph& graph);

/// The candidate width ladder every pricing consumer walks: {1, 2, 4, ...}
/// up to `pool`.  One definition, three consumers — the calibrator's
/// sample grid, the Scheduler's knee search, and the admission check's
/// best-case floor — so they can never price different width sets.
std::vector<std::size_t> width_ladder(std::size_t pool);

/// CostModel backed by devsim's analytic multicore model (the paper's
/// fork/join strategy A on the 2016 Opteron spec unless `spec` says
/// otherwise) — the pre-calibration default, kept as the fallback when no
/// host profile exists.
CostModelPtr make_devsim_cost_model(devsim::MulticoreSpec spec = {});

/// CostModel backed by a fitted (or fake) host profile.
CostModelPtr make_calibrated_cost_model(CalibrationProfile profile);

/// CostModel wrapping a plain function — the test/bench escape hatch.
CostModelPtr make_function_cost_model(WidthCostModel fn,
                                      std::string name = "custom");

/// Environment variable naming a profile JSON to use as the default model.
inline constexpr const char* kCalibrationFileEnv = "PARADMM_CALIBRATION_FILE";

/// The runtime's default pricing: the profile named by
/// PARADMM_CALIBRATION_FILE when set (an unreadable or invalid override
/// throws — explicit configuration must never silently fall back), else the
/// committed default profile when present, else the devsim Opteron spec.
CostModelPtr default_cost_model();

/// Phase barriers per ADMM iteration (x, m, z, u, n) — the denominator of
/// every per-phase prior derived from an iteration prediction.
inline constexpr std::size_t kPhasesPerIteration = 5;

/// The per-phase lane-seconds prior implied by a serial (width-1)
/// iteration prediction: the iteration spread over its five barriers, or 0
/// when the prediction is unusable.  Lane-seconds (seconds x fork width)
/// is the governor's learning axis, so this value seeds a lease's deadline
/// projection before its first measured sample.  The single definition of
/// the prior convention — callers that already hold a serial prediction
/// (e.g. the BatchRunner's submit-time pricing) use this directly.
double phase_lane_seconds_from_serial(double serial_iteration_seconds);

/// Convenience: prices `graph` at width 1 under `model` and applies
/// phase_lane_seconds_from_serial.
double model_phase_lane_seconds(const CostModel& model,
                                const FactorGraph& graph);

}  // namespace paradmm::runtime
