// Host-calibrated cost models for the batch-solve runtime.
//
// Every width decision the runtime makes — the Scheduler's knee search, the
// WidthGovernor's deadline projections, and the BatchRunner's admission
// check — prices ADMM work in seconds.  The devsim multicore model supplies
// those prices from the paper's 2016 Opteron spec, which is systematically
// wrong on any other host: fork/join overheads, per-core throughput, and
// bandwidth knees all moved.  This layer closes that gap with one shared
// interface:
//
//   * CostModel — "predicted seconds for one ADMM iteration of this graph
//     at each candidate width".  The devsim Opteron spec is one
//     implementation (make_devsim_cost_model), a measured host profile is
//     another (make_calibrated_cost_model), and tests inject arbitrary
//     functions (make_function_cost_model) — so width planning, boost
//     projections, and admission all price work with the same model.
//
//   * CalibrationProfile — the serialized form of a host measurement: for
//     each of the five phases (x, m, z, u, n), a per-element serial cost, an
//     Amdahl serial fraction, and a per-lane fork overhead, fitted from
//     micro-benchmarks and stored as versioned JSON.  Profiles are plain
//     data: tests build fakes directly, CI commits real ones as artifacts.
//
//   * HostCalibrator — produces a profile by micro-benchmarking the four
//     seed problems' phases at widths {1, 2, 4, ..., pool} on the actual
//     host.  Phase wall-clock is normalized to lane-seconds (seconds x fork
//     width), the same convention the WidthGovernor's ledger learns from,
//     so calibrated priors and measured samples live on one axis.  The
//     measurement hook is injectable, so tests calibrate against synthetic
//     (virtual-clock) timings deterministically.
//
// Resolution order for the runtime's default model (default_cost_model):
// the PARADMM_CALIBRATION_FILE environment override, then the committed
// default profile (calibration/default_profile.json, baked in at configure
// time), then the devsim Opteron spec.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "devsim/cpu_model.hpp"
#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"

namespace paradmm {
class FactorGraph;
}

namespace paradmm::runtime {

class ProblemRegistry;
class TraceRecorder;

/// Shared pricing interface: predicted seconds for one ADMM iteration of
/// `graph` at each candidate width in `widths` (result is index-parallel to
/// `widths`).  Only relative values matter to the width knee search, but
/// admission control and deadline projections consume the absolute scale,
/// so implementations should aim for honest seconds.  The whole ladder
/// comes in one call so a model can run its per-graph analysis (e.g. devsim
/// cost extraction, O(graph)) once and reuse it across every candidate.
/// Implementations must be thread-safe and treat the graph as const.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string_view name() const = 0;

  virtual std::vector<double> iteration_seconds(
      const FactorGraph& graph, std::span<const std::size_t> widths) const = 0;
};

using CostModelPtr = std::shared_ptr<const CostModel>;

/// Plain-function form of the pricing interface, kept for ad-hoc models in
/// tests and benches (wrap with make_function_cost_model).
using WidthCostModel = std::function<std::vector<double>(
    const FactorGraph& graph, std::span<const std::size_t> widths)>;

/// One phase's fitted host model.  Per-iteration seconds of a phase with
/// `count` tasks forked at width w:
///
///   seconds(count, w) = count * per_element_seconds
///                             * ((1 - serial_fraction) / w + serial_fraction)
///                       + fork_overhead_seconds * (w - 1)
///
/// i.e. Amdahl's law per phase plus a linear fork/join cost per extra lane —
/// the same mechanisms the devsim multicore model charges, reduced to three
/// measurable constants per phase.
struct PhaseCalibration {
  std::string name;                    ///< "x", "m", "z", "u", "n"
  double per_element_seconds = 0.0;    ///< serial seconds per phase task
  double serial_fraction = 0.0;        ///< Amdahl sigma in [0, 1]
  double fork_overhead_seconds = 0.0;  ///< seconds per lane above the first

  double seconds(std::size_t count, std::size_t width) const;
};

/// A fitted host profile: the five phase models plus provenance.  The JSON
/// form is versioned; from_json rejects unknown versions and structurally
/// invalid profiles loudly (a silently mis-parsed profile would skew every
/// width decision downstream).
struct CalibrationProfile {
  /// Format version this code writes; from_json accepts exactly this.
  static constexpr int kVersion = 1;

  int version = kVersion;
  std::string host;               ///< informational: where it was measured
  std::size_t pool_threads = 0;   ///< width ladder ceiling during calibration
  std::array<PhaseCalibration, 5> phases{};

  /// Predicted seconds for one iteration over the five phase counts
  /// (index-parallel to SolverReport::kPhaseNames) at `width`.
  double iteration_seconds(std::span<const std::size_t> counts,
                           std::size_t width) const;

  std::string to_json() const;
  /// Parses a profile; throws PreconditionError on malformed JSON, a
  /// version mismatch, or missing/invalid phase entries.
  static CalibrationProfile from_json(std::string_view text);

  void save(const std::string& path) const;
  /// Loads and validates `path`; throws PreconditionError when the file is
  /// unreadable or invalid.
  static CalibrationProfile load(const std::string& path);
};

/// Micro-benchmarks the seed problems' ADMM phases on the actual host and
/// fits a CalibrationProfile.  For each problem and each width in
/// {1, 2, 4, ..., pool}, the calibrator runs a short fixed-iteration solve
/// on a width-bounded pool fork and records per-phase wall-clock; the fit
/// then recovers, per phase, the serial per-element cost from the width-1
/// runs and the (serial fraction, fork overhead) pair by least squares over
/// the wider runs.  Deterministic given a deterministic `measure` hook.
class HostCalibrator {
 public:
  /// Measures `iterations` ADMM iterations of `graph` forked at `width` and
  /// returns the five accumulated per-phase wall-clock seconds.  The
  /// default hook runs the real engine on a borrowed ThreadPool backend;
  /// tests inject synthetic (virtual-clock) timings instead.
  using MeasureFn = std::function<std::vector<double>(
      FactorGraph& graph, std::size_t width, int iterations)>;

  struct Options {
    /// Width ladder ceiling; 0 = std::thread::hardware_concurrency().
    std::size_t pool_threads = 0;
    /// Timed iterations per (problem, width) sample.
    int iterations = 20;
    /// Untimed iterations run first so cold caches don't skew the fit.
    int warmup_iterations = 4;
    /// Registry names to measure; defaults to the four seed problems.
    std::vector<std::string> problems = {"lasso", "mpc", "packing", "svm"};
    /// Problem source; null = ProblemRegistry::global().
    const ProblemRegistry* registry = nullptr;
    /// Injectable measurement (see MeasureFn); empty = real measured run.
    MeasureFn measure;
    /// Informational host tag stored in the profile.
    std::string host;
    /// Optional trace sink (runtime/trace.hpp): calibrate() records one
    /// "calibration"-category span per (problem, width) measurement, so the
    /// measurement ladder itself can be inspected in Perfetto
    /// (calibrate_host --trace).  Borrowed; must outlive calibrate().
    TraceRecorder* trace = nullptr;
    /// Optional per-sample observer, invoked once per (phase, task count,
    /// width, per-iteration seconds) measurement after validation — the
    /// same sample shape OnlineRecalibrator::record_sample consumes, so a
    /// caller can replay a calibration run through the online re-fit path
    /// (calibrate_host --refit-out).
    std::function<void(std::size_t phase, std::size_t count,
                       std::size_t width, double seconds)>
        sample_sink;
  };

  // Two overloads instead of one defaulted argument: gcc cannot parse a
  // `{}` default for a nested aggregate whose members carry their own
  // initializers at this point of the enclosing class.
  HostCalibrator();
  explicit HostCalibrator(Options options);

  /// Runs the micro-benchmarks and fits the profile.  Throws on an unknown
  /// problem name or a measurement hook returning the wrong arity.
  CalibrationProfile calibrate() const;

 private:
  Options options_;
};

/// The five per-phase task counts of one iteration of `graph`, in solver
/// phase order (x: |F|, m: |E|, z: |V|, u: |E|, n: |E|) — the shape every
/// CostModel implementation prices against.
std::array<std::size_t, 5> phase_counts(const FactorGraph& graph);

/// The candidate width ladder every pricing consumer walks: {1, 2, 4, ...}
/// up to `pool`.  One definition, three consumers — the calibrator's
/// sample grid, the Scheduler's knee search, and the admission check's
/// best-case floor — so they can never price different width sets.
std::vector<std::size_t> width_ladder(std::size_t pool);

/// CostModel backed by devsim's analytic multicore model (the paper's
/// fork/join strategy A on the 2016 Opteron spec unless `spec` says
/// otherwise) — the pre-calibration default, kept as the fallback when no
/// host profile exists.
CostModelPtr make_devsim_cost_model(devsim::MulticoreSpec spec = {});

/// CostModel backed by a fitted (or fake) host profile.
CostModelPtr make_calibrated_cost_model(CalibrationProfile profile);

/// CostModel wrapping a plain function — the test/bench escape hatch.
CostModelPtr make_function_cost_model(WidthCostModel fn,
                                      std::string name = "custom");

/// Environment variable naming a profile JSON to use as the default model.
inline constexpr const char* kCalibrationFileEnv = "PARADMM_CALIBRATION_FILE";

/// The runtime's default pricing: the profile named by
/// PARADMM_CALIBRATION_FILE when set (an unreadable or invalid override
/// throws — explicit configuration must never silently fall back), else the
/// committed default profile when present, else the devsim Opteron spec.
CostModelPtr default_cost_model();

/// Phase barriers per ADMM iteration (x, m, z, u, n) — the denominator of
/// every per-phase prior derived from an iteration prediction.
inline constexpr std::size_t kPhasesPerIteration = 5;

/// The per-phase lane-seconds prior implied by a serial (width-1)
/// iteration prediction: the iteration spread over its five barriers, or 0
/// when the prediction is unusable.  Lane-seconds (seconds x fork width)
/// is the governor's learning axis, so this value seeds a lease's deadline
/// projection before its first measured sample.  The single definition of
/// the prior convention — callers that already hold a serial prediction
/// (e.g. the BatchRunner's submit-time pricing) use this directly.
double phase_lane_seconds_from_serial(double serial_iteration_seconds);

/// Convenience: prices `graph` at width 1 under `model` and applies
/// phase_lane_seconds_from_serial.
double model_phase_lane_seconds(const CostModel& model,
                                const FactorGraph& graph);

// ---------------------------------------------------------------------------
// Online calibration re-fit
// ---------------------------------------------------------------------------

/// Options for the runtime's online calibration re-fit (the live half of
/// the calibration loop): measured per-phase barrier timings from governor
/// leases accumulate here, and every `refit_interval` samples the Amdahl
/// phase models are re-fitted by least squares against the live data.
struct RecalibrationOptions {
  /// Master switch (BatchRunnerOptions::recalibration).  Disabled (the
  /// default), no sample is ever recorded and pricing is byte-identical to
  /// the static-profile runtime.
  bool enabled = false;
  /// Samples between automatic re-fits.  Must be >= 1.
  std::size_t refit_interval = 64;
  /// Relative prediction change (re-fit vs the loaded baseline, at the
  /// observed phase shapes) above which the re-fit is flagged as drifted —
  /// the signal that the committed profile no longer describes this host.
  double drift_tolerance = 0.25;
  /// The profile re-fits start from and drift is measured against
  /// (typically the loaded PARADMM_CALIBRATION_FILE / committed profile).
  /// Phases the live data cannot identify keep their baseline constants.
  CalibrationProfile baseline;
};

/// Snapshot of the re-fit state (surfaced through RuntimeMetrics).
struct RecalibrationStats {
  std::size_t samples = 0;      ///< measured phase barriers folded in
  std::size_t refits = 0;       ///< least-squares re-fits performed
  double last_drift = 0.0;      ///< last re-fit's max relative prediction
                                ///< change vs the baseline profile
  bool drifted = false;         ///< last_drift exceeded drift_tolerance
};

/// Folds measured per-phase samples — (phase index, task count, fork
/// width, wall seconds for that one barrier) — into running least-squares
/// accumulators and periodically re-fits the five PhaseCalibration models
/// against the same functional form the HostCalibrator fits offline:
///
///   seconds(count, w) = count*(A/w + B) + overhead*(w - 1),
///   A = e*(1 - sigma), B = e*sigma
///
/// which is linear in (A, B, overhead), so the re-fit is a closed-form 3x3
/// normal-equation solve.  Identifiability degrades gracefully: with
/// samples at a single width the width terms cannot be separated, so a
/// width-1 stream re-fits only the per-element scale (sigma and overhead
/// keep their baseline values) and a single wide width rescales the
/// baseline to match the observed seconds.  Thread-safe behind a leaf
/// mutex; record_sample must not be called with any other paradmm lock
/// held (the WidthGovernor calls it after releasing its own).
class OnlineRecalibrator {
 public:
  explicit OnlineRecalibrator(RecalibrationOptions options);

  /// Records one measured phase barrier; returns true when this sample
  /// triggered an automatic re-fit (every refit_interval samples) that
  /// updated the profile.  Samples with a zero count, zero width, or
  /// non-positive/non-finite seconds are ignored.
  bool record_sample(std::size_t phase, std::size_t count, std::size_t width,
                     double seconds) PARADMM_EXCLUDES(mutex_);

  /// Forces a re-fit from the samples recorded so far; returns true when
  /// any phase model changed.  (record_sample calls this automatically on
  /// the refit_interval cadence.)
  bool refit_now() PARADMM_EXCLUDES(mutex_);

  /// True once a re-fit produced a fully priceable profile (every phase
  /// either re-fitted or carrying usable baseline constants) — the gate
  /// the online cost model checks before serving re-fit prices.
  bool has_refit() const PARADMM_EXCLUDES(mutex_);

  /// The live profile: the baseline until the first successful re-fit,
  /// then the re-fitted phases (un-identifiable phases keep baseline
  /// constants).  Safe to persist (CalibrationProfile::save) — the
  /// calibrate_host --refit-out round trip.
  CalibrationProfile current_profile() const PARADMM_EXCLUDES(mutex_);

  RecalibrationStats stats() const PARADMM_EXCLUDES(mutex_);

 private:
  // Running least-squares state of one phase, over x = [count/w, count,
  // w-1] (normal equations), plus the degenerate-design fallbacks.
  struct PhaseAccum {
    double m[3][3] = {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
    double v[3] = {0.0, 0.0, 0.0};
    std::size_t samples = 0;
    double count_sum = 0.0;
    double seconds_sum = 0.0;
    double baseline_pred_sum = 0.0;  // baseline predictions at the samples
    std::size_t first_width = 0;
    bool multi_width = false;
    std::size_t n1 = 0;        // width-1 samples
    double rate1_sum = 0.0;    // sum of seconds/count at width 1
    bool fitted = false;       // at least one successful re-fit
  };

  bool refit_locked() PARADMM_REQUIRES(mutex_);

  RecalibrationOptions options_;

  // Leaf lock: nothing else is ever acquired while it is held.
  mutable Mutex mutex_{"OnlineRecalibrator"};
  std::array<PhaseAccum, 5> accum_ PARADMM_GUARDED_BY(mutex_);
  CalibrationProfile profile_ PARADMM_GUARDED_BY(mutex_);
  bool has_refit_ PARADMM_GUARDED_BY(mutex_) = false;
  std::size_t max_width_seen_ PARADMM_GUARDED_BY(mutex_) = 0;
  std::size_t samples_ PARADMM_GUARDED_BY(mutex_) = 0;
  std::size_t refits_ PARADMM_GUARDED_BY(mutex_) = 0;
  double last_drift_ PARADMM_GUARDED_BY(mutex_) = 0.0;
  bool drifted_ PARADMM_GUARDED_BY(mutex_) = false;
};

/// CostModel that serves `base` prices until `recalibrator` produces its
/// first usable re-fit profile, then the live re-fit prices — so width
/// planning, boost priors, admission, and re-projection all migrate to the
/// measured host behavior together, atomically per pricing call.
CostModelPtr make_online_cost_model(
    CostModelPtr base, std::shared_ptr<OnlineRecalibrator> recalibrator);

}  // namespace paradmm::runtime
