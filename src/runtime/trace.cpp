#include "runtime/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <utility>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/timer.hpp"

namespace paradmm::runtime {

namespace {

std::uint64_t next_recorder_serial() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

const char* phase_letter(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kComplete: return "X";
    case TraceEvent::Kind::kInstant: return "i";
    case TraceEvent::Kind::kAsyncBegin: return "b";
    case TraceEvent::Kind::kAsyncEnd: return "e";
  }
  return "i";
}

}  // namespace

TraceRecorder::TraceRecorder() : serial_(next_recorder_serial()) {
  auto since_construction = std::make_shared<WallTimer>();
  clock_ = [since_construction] { return since_construction->seconds(); };
}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::set_clock(std::function<double()> clock) {
  require(static_cast<bool>(clock), "TraceRecorder clock must be callable");
  clock_ = std::move(clock);
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // One cached buffer per thread, keyed by the recorder's serial so a
  // recorder allocated at a recycled address never inherits a stale entry.
  // The registry mutex is only taken on a cache miss — once per
  // (thread, recorder) pair — so steady-state recording touches nothing
  // shared across threads.
  thread_local std::uint64_t cached_serial = 0;
  thread_local std::shared_ptr<ThreadBuffer> cached;
  if (!cached || cached_serial != serial_) {
    auto buffer = std::make_shared<ThreadBuffer>();
    {
      MutexLock lock(registry_mutex_);
      buffer->tid = buffers_.size();
      buffers_.push_back(buffer);
    }
    cached = std::move(buffer);
    cached_serial = serial_;
  }
  return *cached;
}

void TraceRecorder::record(ThreadBuffer& buffer, TraceEvent event) {
  event.tid = buffer.tid;
  MutexLock lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::complete(std::string name, std::string category,
                             double start, double duration,
                             std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kComplete;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start = start;
  event.duration = duration;
  event.args = std::move(args);
  record(local_buffer(), std::move(event));
}

void TraceRecorder::instant(std::string name, std::string category,
                            std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start = now();
  event.args = std::move(args);
  record(local_buffer(), std::move(event));
}

void TraceRecorder::async_begin(std::string name, std::string category,
                                std::uint64_t id, std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kAsyncBegin;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start = now();
  event.id = id;
  event.args = std::move(args);
  record(local_buffer(), std::move(event));
}

void TraceRecorder::async_end(std::string name, std::string category,
                              std::uint64_t id, std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kAsyncEnd;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start = now();
  event.id = id;
  event.args = std::move(args);
  record(local_buffer(), std::move(event));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  // Stable: per-thread recording order breaks (start, tid) ties, so for a
  // fixed clock the merged order — and therefore the export — is
  // deterministic.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.tid < b.tid;
                   });
  return events;
}

std::size_t TraceRecorder::event_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(registry_mutex_);
    buffers = buffers_;
  }
  std::size_t count = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

void TraceRecorder::export_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << "{\"name\":" << json_quote(event.name)
        << ",\"cat\":" << json_quote(event.category) << ",\"ph\":\""
        << phase_letter(event.kind) << "\",\"ts\":"
        << json_number(event.start * 1e6);
    if (event.kind == TraceEvent::Kind::kComplete) {
      out << ",\"dur\":" << json_number(event.duration * 1e6);
    }
    if (event.kind == TraceEvent::Kind::kInstant) {
      out << ",\"s\":\"t\"";  // thread-scoped instant marker
    }
    if (event.kind == TraceEvent::Kind::kAsyncBegin ||
        event.kind == TraceEvent::Kind::kAsyncEnd) {
      out << ",\"id\":" << event.id;
    }
    out << ",\"pid\":1,\"tid\":" << event.tid;
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t a = 0; a < event.args.size(); ++a) {
        if (a != 0) out << ",";
        out << json_quote(event.args[a].key) << ":" << event.args[a].value;
      }
      out << "}";
    }
    out << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "]}\n";
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "cannot open trace output file: " + path);
  export_chrome_trace(out);
  out.flush();
  require(out.good(), "failed writing trace output file: " + path);
}

TraceArg TraceRecorder::arg(std::string key, double value) {
  return {std::move(key),
          std::isfinite(value) ? json_number(value) : std::string("null")};
}

TraceArg TraceRecorder::arg(std::string key, long long value) {
  return {std::move(key), std::to_string(value)};
}

TraceArg TraceRecorder::arg(std::string key, unsigned long long value) {
  return {std::move(key), std::to_string(value)};
}

TraceArg TraceRecorder::arg(std::string key, std::size_t value) {
  return {std::move(key), std::to_string(value)};
}

TraceArg TraceRecorder::arg(std::string key, int value) {
  return {std::move(key), std::to_string(value)};
}

TraceArg TraceRecorder::arg(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false"};
}

TraceArg TraceRecorder::arg(std::string key, const std::string& value) {
  return {std::move(key), json_quote(value)};
}

TraceArg TraceRecorder::arg(std::string key, std::string_view value) {
  return {std::move(key), json_quote(std::string(value))};
}

TraceArg TraceRecorder::arg(std::string key, const char* value) {
  return {std::move(key), json_quote(std::string(value))};
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void LatencyHistogram::record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) return;
  std::size_t index = 0;
  if (seconds > kMinSeconds) {
    // Bucket i > 0 covers (upper(i-1), upper(i)]; a sample exactly on a
    // bucket's upper bound lands in that bucket, which is what makes
    // percentile() exact on boundary-valued distributions.
    const double position = 4.0 * std::log2(seconds / kMinSeconds);
    const double raw = std::ceil(position);
    index = raw <= 0.0 ? 1
                       : std::min<std::size_t>(static_cast<std::size_t>(raw),
                                               kBuckets - 1);
  }
  ++counts_[index];
  ++count_;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(clamped / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

double LatencyHistogram::bucket_upper_bound(std::size_t index) {
  return kMinSeconds * std::exp2(static_cast<double>(index) / 4.0);
}

}  // namespace paradmm::runtime
