// Throughput and utilization metrics of a BatchRunner, reported through
// support/table so they render next to the bench tables.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <ostream>
#include <vector>

#include "runtime/solve_job.hpp"
#include "runtime/trace.hpp"
#include "runtime/width_governor.hpp"
#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"

namespace paradmm::runtime {

/// A consistent snapshot of the runner's counters (see
/// BatchRunner::metrics()).
struct RuntimeMetrics {
  std::size_t workers = 0;          ///< shared-pool concurrency
  std::size_t submitted = 0;
  std::size_t completed = 0;        ///< reached kDone
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  /// Admission-control outcomes (BatchRunnerOptions::admission): jobs
  /// refused at submit with a provably infeasible deadline, and jobs
  /// admitted anyway as flagged best-effort under the degrade policy.
  std::size_t rejected = 0;
  std::size_t degraded = 0;
  /// Continuous-admission outcome (BatchRunnerOptions::reprojection): jobs
  /// admitted at submit but shed from the ready queue mid-wait when a
  /// re-projection proved their deadline unmeetable (JobState::kShedLate).
  /// Mid-queue degrades count in `degraded` alongside submit-time ones.
  std::size_t shed_late = 0;
  /// Tenant-quota outcome (runtime/tenant_registry.hpp): submissions
  /// refused because their tenant was at its max_queued quota
  /// (JobState::kQuotaRejected).  0 whenever no tenants are defined.
  std::size_t quota_rejected = 0;
  std::size_t queue_depth = 0;      ///< jobs waiting right now
  std::size_t peak_queue_depth = 0;
  std::size_t fine_grained_jobs = 0;  ///< jobs the scheduler ran intra-parallel
  std::size_t ran_jobs = 0;  ///< finished jobs that actually executed a solve

  /// Per-width occupancy: how many solves of each intra-solve width are
  /// running right now, the most that ever ran at once, and how many have
  /// finished.  Two width-2 jobs sharing a 4-thread pool show up here as
  /// running_by_width[2] == 2 — the observable signature of partial-width
  /// scheduling (the PR-1 dispatcher could never exceed 1 for any width
  /// above 1).
  std::map<std::size_t, std::size_t> running_by_width;
  std::map<std::size_t, std::size_t> peak_running_by_width;
  std::map<std::size_t, std::size_t> finished_by_width;

  /// Mid-solve width renegotiation activity (see runtime/width_governor.hpp):
  /// phase barriers at which a running fine-grained solve gave lanes to a
  /// backlog (shrinks), took them back (grows), or claimed lanes above its
  /// planned width because its projected finish missed its deadline
  /// (boosts); plus the solves waiting for a lane right now and the lanes
  /// currently held above planned widths.
  std::size_t width_shrinks = 0;
  std::size_t width_grows = 0;
  std::size_t width_boosts = 0;
  std::size_t waiting_jobs = 0;
  std::size_t boosted_lanes = 0;
  /// The governor's learned per-phase wall-clock (lane-seconds per phase
  /// barrier, cross-job EWMA) — the estimate behind deadline projections.
  double learned_phase_seconds = 0.0;

  /// Dispatcher-lane preemption: solves the helping dispatcher yielded
  /// back to the ready queue mid-solve so a newly arrived job could be
  /// dispatched within one progress barrier.
  std::size_t dispatcher_preemptions = 0;

  /// Deadline outcomes of finished (kDone) jobs that carried a finite
  /// deadline, judged as finished_at <= deadline on the runner clock.
  std::size_t deadlines_met = 0;
  std::size_t deadlines_missed = 0;

  /// Online calibration re-fit activity (BatchRunnerOptions::recalibration,
  /// see OnlineRecalibrator): measured phase samples folded in, re-fits
  /// performed, and the last re-fit's drift vs the loaded baseline profile
  /// (max relative prediction change; `recalibration_drifted` flags a
  /// drift beyond the configured tolerance).  All zero when disabled.
  std::size_t recalibration_samples = 0;
  std::size_t recalibration_refits = 0;
  double recalibration_drift = 0.0;
  bool recalibration_drifted = false;

  /// Accumulated wall seconds per ADMM phase (x, m, z, u, n) across every
  /// job that executed with phase timing enabled — the per-phase wall-clock
  /// telemetry the governor's estimator mirrors.
  std::vector<double> phase_seconds;

  double elapsed_seconds = 0.0;     ///< since the runner started
  double busy_seconds = 0.0;        ///< sum over jobs of wall * threads used
  double total_job_seconds = 0.0;   ///< sum of per-job wall time
  double min_job_seconds = 0.0;
  double max_job_seconds = 0.0;

  /// Latency distributions over completed (kDone, ran) jobs, on the runner
  /// clock: time from submit to first dispatch, executed solve wall time,
  /// and submit-to-terminal end-to-end.  Log-scale fixed buckets; the p50 /
  /// p95 / p99 rows in print() and the bench percentile JSON fields read
  /// from here.
  LatencyHistogram queue_wait;
  LatencyHistogram solve_wall;
  LatencyHistogram end_to_end;

  /// Per-tenant slice of the tallies above, keyed by tenant name; only
  /// named tenants appear (jobs of the implicit "" tenant leave the map
  /// empty, so the tenant-free snapshot is unchanged by this field).
  struct TenantMetrics {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t cancelled = 0;
    std::size_t failed = 0;
    std::size_t rejected = 0;       ///< admission-rejected at submit
    std::size_t quota_rejected = 0; ///< refused by the max_queued quota
    std::size_t shed_late = 0;
    /// Submit-to-terminal latency of the tenant's completed (kDone, ran)
    /// jobs — the per-tenant percentile source the arrival-rate bench and
    /// print() read.
    LatencyHistogram end_to_end;
  };
  std::map<std::string, TenantMetrics> tenants;

  /// Jobs in a terminal state (rejected-at-submit, quota-refused, and
  /// shed-mid-queue included — every handle is settled).
  std::size_t finished() const {
    return completed + cancelled + failed + rejected + shed_late +
           quota_rejected;
  }

  /// Throughput of jobs the runner actually served.  Rejected and shed
  /// jobs are terminal but never delivered a solve — counting them would
  /// inflate jobs/sec exactly when admission control is turning work away.
  double jobs_per_second() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(completed + cancelled + failed) /
                     elapsed_seconds
               : 0.0;
  }

  double mean_job_seconds() const {
    return ran_jobs > 0 ? total_job_seconds / static_cast<double>(ran_jobs)
                        : 0.0;
  }

  /// Fraction of pool capacity spent inside solves.  Approximate: a
  /// fine-grained job is charged wall * intra_threads even while some of
  /// those threads were finishing interleaved small jobs (also charged),
  /// so the raw ratio can exceed 1 under mixed load — clamped here.
  double worker_utilization() const {
    const double capacity = elapsed_seconds * static_cast<double>(workers);
    if (capacity <= 0.0) return 0.0;
    return std::min(1.0, busy_seconds / capacity);
  }

  /// Renders a two-column metric table.
  void print(std::ostream& out) const;
};

/// Element-wise accumulation of per-phase wall seconds, growing `into` to
/// fit: shared by the job-level slice stitching (resumed solves) and the
/// collector's cross-job totals so the two can never drift.
inline void accumulate_phase_seconds(std::vector<double>& into,
                                     const std::vector<double>& slice) {
  if (into.size() < slice.size()) into.resize(slice.size(), 0.0);
  for (std::size_t p = 0; p < slice.size(); ++p) into[p] += slice[p];
}

/// Everything BatchRunner::finalize knows about a finished job, for the
/// collector's tallies.
struct JobFinish {
  JobState outcome = JobState::kDone;
  double wall_seconds = 0.0;
  std::size_t threads_used = 1;
  /// False for jobs finalized without executing (cancelled while queued or
  /// dropped at dispatch): they count toward their outcome tally but not
  /// toward the wall-time / busy / per-width statistics.  A `ran` job must
  /// have been announced via on_start.
  bool ran = false;
  /// Whether the job occupies the per-width running gauge right now (true
  /// for a solve finishing normally; false for one finalized while parked
  /// back in the ready queue after a preemption — on_preempt already
  /// released its gauge slot).
  bool was_running = false;
  /// The job carried a finite deadline, and whether it was met (kDone jobs
  /// only — a cancelled or failed job delivered nothing to judge).
  bool had_deadline = false;
  bool met_deadline = false;
  /// Per-phase wall seconds of the executed solve (empty when timing was
  /// off or the job never ran).
  const std::vector<double>* phase_seconds = nullptr;
  /// Latencies on the runner clock for the histograms (negative =
  /// unmeasured; only kDone jobs that ran contribute).  queue_wait is the
  /// submit-to-first-dispatch wait; end_to_end is submit-to-terminal.
  double queue_wait_seconds = -1.0;
  double end_to_end_seconds = -1.0;
  /// The job's tenant; empty (the implicit tenant) records no per-tenant
  /// tallies.
  std::string tenant;
};

/// Thread-safe accumulator behind BatchRunner::metrics().
class MetricsCollector {
 public:
  /// `tenant` non-empty also bumps that tenant's submitted tally.
  void on_submit(std::size_t queue_depth, const std::string& tenant = {});
  /// A submission was admitted as flagged best-effort (degrade policy,
  /// provably infeasible deadline).  Rejections need no hook: a rejected
  /// job reaches on_finish with outcome kRejected.
  void on_degraded();
  /// Folds an instantaneous ready-queue depth into the peak (requeues
  /// after a preemption can push the depth above any submit-time value).
  void on_queue_depth(std::size_t queue_depth);
  /// A solve of `threads_used` intra-width just started executing; bumps
  /// the per-width running gauge (and its peak).
  void on_start(std::size_t threads_used);
  /// The dispatcher yielded a solve of `threads_used` intra-width back to
  /// the ready queue so a waiting job could be dispatched; releases its
  /// per-width running-gauge slot (a resumed slice re-announces itself via
  /// on_start).
  void on_preempt(std::size_t threads_used);
  void on_finish(const JobFinish& finish);

  /// Snapshot with the runner-supplied instantaneous values filled in.
  RuntimeMetrics snapshot(double elapsed_seconds, std::size_t workers,
                          std::size_t queue_depth,
                          WidthGovernorStats governor = {}) const;

 private:
  // Leaf lock: nothing else is ever acquired while it is held.
  mutable Mutex mutex_{"MetricsCollector"};
  RuntimeMetrics metrics_ PARADMM_GUARDED_BY(mutex_);
  bool any_finished_ PARADMM_GUARDED_BY(mutex_) = false;
};

}  // namespace paradmm::runtime
