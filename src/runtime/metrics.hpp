// Throughput and utilization metrics of a BatchRunner, reported through
// support/table so they render next to the bench tables.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <mutex>
#include <ostream>

#include "runtime/solve_job.hpp"
#include "runtime/width_governor.hpp"

namespace paradmm::runtime {

/// A consistent snapshot of the runner's counters (see
/// BatchRunner::metrics()).
struct RuntimeMetrics {
  std::size_t workers = 0;          ///< shared-pool concurrency
  std::size_t submitted = 0;
  std::size_t completed = 0;        ///< reached kDone
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t queue_depth = 0;      ///< jobs waiting right now
  std::size_t peak_queue_depth = 0;
  std::size_t fine_grained_jobs = 0;  ///< jobs the scheduler ran intra-parallel
  std::size_t ran_jobs = 0;  ///< finished jobs that actually executed a solve

  /// Per-width occupancy: how many solves of each intra-solve width are
  /// running right now, the most that ever ran at once, and how many have
  /// finished.  Two width-2 jobs sharing a 4-thread pool show up here as
  /// running_by_width[2] == 2 — the observable signature of partial-width
  /// scheduling (the PR-1 dispatcher could never exceed 1 for any width
  /// above 1).
  std::map<std::size_t, std::size_t> running_by_width;
  std::map<std::size_t, std::size_t> peak_running_by_width;
  std::map<std::size_t, std::size_t> finished_by_width;

  /// Mid-solve width renegotiation activity (see runtime/width_governor.hpp):
  /// phase barriers at which a running fine-grained solve gave lanes to a
  /// backlog (shrinks) or took them back (grows), and the solves waiting
  /// for a lane right now.
  std::size_t width_shrinks = 0;
  std::size_t width_grows = 0;
  std::size_t waiting_jobs = 0;

  double elapsed_seconds = 0.0;     ///< since the runner started
  double busy_seconds = 0.0;        ///< sum over jobs of wall * threads used
  double total_job_seconds = 0.0;   ///< sum of per-job wall time
  double min_job_seconds = 0.0;
  double max_job_seconds = 0.0;

  std::size_t finished() const { return completed + cancelled + failed; }

  double jobs_per_second() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(finished()) / elapsed_seconds
               : 0.0;
  }

  double mean_job_seconds() const {
    return ran_jobs > 0 ? total_job_seconds / static_cast<double>(ran_jobs)
                        : 0.0;
  }

  /// Fraction of pool capacity spent inside solves.  Approximate: a
  /// fine-grained job is charged wall * intra_threads even while some of
  /// those threads were finishing interleaved small jobs (also charged),
  /// so the raw ratio can exceed 1 under mixed load — clamped here.
  double worker_utilization() const {
    const double capacity = elapsed_seconds * static_cast<double>(workers);
    if (capacity <= 0.0) return 0.0;
    return std::min(1.0, busy_seconds / capacity);
  }

  /// Renders a two-column metric table.
  void print(std::ostream& out) const;
};

/// Thread-safe accumulator behind BatchRunner::metrics().
class MetricsCollector {
 public:
  void on_submit(std::size_t queue_depth);
  /// A solve of `threads_used` intra-width just started executing; bumps
  /// the per-width running gauge (and its peak).
  void on_start(std::size_t threads_used);
  /// `ran` is false for jobs finalized without executing (cancelled while
  /// queued or dropped at dispatch): they count toward their outcome tally
  /// but not toward the wall-time / busy / per-width statistics.  A `ran`
  /// job must have been announced via on_start.
  void on_finish(JobState outcome, double wall_seconds,
                 std::size_t threads_used, bool ran);

  /// Snapshot with the runner-supplied instantaneous values filled in.
  RuntimeMetrics snapshot(double elapsed_seconds, std::size_t workers,
                          std::size_t queue_depth,
                          WidthGovernorStats governor = {}) const;

 private:
  mutable std::mutex mutex_;
  RuntimeMetrics metrics_;
  bool any_finished_ = false;
};

}  // namespace paradmm::runtime
