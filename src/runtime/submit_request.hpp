// The one submission schema of the batch runtime: a fluent builder for
// SolveJobs that the C++ API and the solver service's wire format share.
//
// The submission surface grew field by field across the runtime PRs
// (priority, deadline, check_interval, tenant, ...), leaving callers to
// make_job() a SolveJob and then assign fields.  SubmitRequest consolidates
// that into one chainable value —
//
//   runner.submit(SubmitRequest("lasso").priority(10).deadline(5.0)
//                     .tenant("alpha"));
//
// — and doubles as the newline-delimited JSON wire schema of
// tools/solve_server (to_json / from_json round-trip exactly the fields
// below), so a job submitted over the socket and one submitted in-process
// are literally the same request.  The pre-existing
// submit(problem, params, ...) overloads delegate through here
// (bitwise-tested), so there is exactly one construction path.
#pragma once

#include <any>
#include <string>
#include <string_view>

#include "runtime/problem_registry.hpp"
#include "runtime/solve_job.hpp"
#include "support/json.hpp"

namespace paradmm::runtime {

class SubmitRequest {
 public:
  SubmitRequest() = default;
  explicit SubmitRequest(std::string problem) : problem_(std::move(problem)) {}

  /// Registry name of the problem to build (required before build()).
  SubmitRequest& problem(std::string name) {
    problem_ = std::move(name);
    return *this;
  }
  const std::string& problem() const { return problem_; }

  /// Type-erased problem parameters (see params_or_default); not part of
  /// the wire schema — service submissions build registry defaults.
  SubmitRequest& params(std::any params) {
    params_ = std::move(params);
    return *this;
  }
  const std::any& params() const { return params_; }

  /// Whole-struct solver options; the fluent max_iterations() /
  /// check_interval() below edit the same struct.
  SubmitRequest& options(SolverOptions options) {
    options_ = std::move(options);
    return *this;
  }
  const SolverOptions& options() const { return options_; }

  SubmitRequest& max_iterations(int iterations) {
    options_.max_iterations = iterations;
    return *this;
  }
  int max_iterations() const { return options_.max_iterations; }

  SubmitRequest& check_interval(int interval) {
    options_.check_interval = interval;
    return *this;
  }
  int check_interval() const { return options_.check_interval; }

  SubmitRequest& priority(int priority) {
    priority_ = priority;
    return *this;
  }
  int priority() const { return priority_; }

  SubmitRequest& deadline(double deadline) {
    deadline_ = deadline;
    return *this;
  }
  double deadline() const { return deadline_; }

  SubmitRequest& tenant(std::string tenant) {
    tenant_ = std::move(tenant);
    return *this;
  }
  const std::string& tenant() const { return tenant_; }

  /// Display label; defaults to the problem name when left empty.
  SubmitRequest& label(std::string label) {
    label_ = std::move(label);
    return *this;
  }
  const std::string& label() const { return label_; }

  SubmitRequest& progress(ProgressFn progress) {
    progress_ = std::move(progress);
    return *this;
  }
  const ProgressFn& progress() const { return progress_; }

  /// Builds the problem from `registry` (ProblemRegistry::global() when
  /// null) and materializes the SolveJob this request describes; the built
  /// instance rides along in job.owner.
  SolveJob build(const ProblemRegistry* registry = nullptr) const;

  /// The wire form: one JSON object with only the non-default fields set
  /// ({"problem": ..., "tenant": ..., "priority": ..., "deadline": ...,
  /// "max_iterations": ..., "check_interval": ..., "label": ...}).
  std::string to_json() const;

  /// Parses the wire form back; unknown keys and wrong types are
  /// PreconditionErrors naming the key (`context` prefixes the message).
  static SubmitRequest from_json(const JsonValue& value,
                                 const std::string& context = "SubmitRequest");
  static SubmitRequest from_json_text(
      std::string_view text, const std::string& context = "SubmitRequest");

 private:
  std::string problem_;
  std::any params_;
  SolverOptions options_;
  int priority_ = 0;
  double deadline_ = kNoDeadline;
  std::string tenant_;
  std::string label_;
  ProgressFn progress_;
};

}  // namespace paradmm::runtime
