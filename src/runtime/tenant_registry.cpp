#include "runtime/tenant_registry.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace paradmm::runtime {

namespace {
const TenantQuota kDefaultQuota{};
}  // namespace

TenantRegistry& TenantRegistry::define(const std::string& name,
                                       TenantQuota quota) {
  require(std::isfinite(quota.weight) && quota.weight > 0.0,
          "tenant weight must be finite and > 0");
  state(name).quota = quota;
  active_ = true;
  return *this;
}

const TenantQuota& TenantRegistry::quota(const std::string& name) const {
  const State* found = find(name);
  return found != nullptr ? found->quota : kDefaultQuota;
}

const TenantRegistry::State* TenantRegistry::find(
    const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : &it->second;
}

bool TenantRegistry::queue_full(const std::string& name) const {
  const State* found = find(name);
  if (found == nullptr || found->quota.max_queued == 0) return false;
  return found->queued >= found->quota.max_queued;
}

std::size_t TenantRegistry::queued(const std::string& name) const {
  const State* found = find(name);
  return found != nullptr ? found->queued : 0;
}

bool TenantRegistry::dispatchable(const std::string& name) const {
  const State* found = find(name);
  if (found == nullptr || found->quota.max_in_flight == 0) return true;
  return found->in_flight < found->quota.max_in_flight;
}

double TenantRegistry::on_submit(const std::string& name) {
  State& tenant = state(name);
  // Start-time fair queuing: an idle tenant re-enters at the current
  // virtual time (no banked credit), a backlogged one queues behind its
  // own last virtual finish — so sustained backlogs interleave in weight
  // proportion whatever their arrival pattern.
  const double vstart = std::max(virtual_now_, tenant.virtual_finish);
  tenant.virtual_finish = vstart + 1.0 / tenant.quota.weight;
  ++tenant.queued;
  return vstart;
}

void TenantRegistry::on_dispatch(const std::string& name, double vstart) {
  State& tenant = state(name);
  --tenant.queued;
  ++tenant.in_flight;
  virtual_now_ = std::max(virtual_now_, vstart);
}

void TenantRegistry::on_requeue(const std::string& name) {
  State& tenant = state(name);
  --tenant.in_flight;
  ++tenant.queued;
}

void TenantRegistry::on_shed(const std::string& name) { --state(name).queued; }

void TenantRegistry::on_finalize(const std::string& name) {
  --state(name).in_flight;
}

}  // namespace paradmm::runtime
