// Structured runtime tracing: a lock-cheap, per-thread-buffered event
// recorder plus a Chrome trace-event JSON exporter, and the log-scale
// latency histogram the runtime's percentile metrics are built on.
//
// The runtime makes rich adaptive decisions — priority aging, mid-solve
// width renegotiation, deadline boosting, admission control — and the
// counter table (RuntimeMetrics) can say *how many* happened but never
// *when* or *why*.  A TraceRecorder attached as
// BatchRunnerOptions::trace_sink captures the whole decision surface as
// timestamped events: job lifecycle spans (submit -> queued -> slices ->
// finish, preemptions and admission verdicts included, each carrying the
// numbers that justified it), governor shrink/grow/boost instants with
// their lane-seconds evidence, per-phase per-width barrier spans (the
// paper's per-phase timeline, recovered from a live mixed workload),
// ThreadPool steal/help events, and per-iteration residual telemetry.
//
// Design constraints, in order:
//
//  * Near-zero cost when absent.  Every instrumentation site null-checks a
//    raw pointer; with no sink attached the runtime's scheduling, results,
//    and counters are bitwise identical to the untraced build (property-
//    tested in tests/runtime/test_trace.cpp).
//  * Lock-cheap when present.  Each recording thread appends to its own
//    buffer under its own mutex (found via a thread_local cache), so
//    steady-state recording never contends across threads; the recorder-
//    wide registry mutex is touched once per thread ever, and at export.
//  * Deterministic under virtual clocks.  Events are timestamped on the
//    recorder's injectable clock — the BatchRunner binds its own runner
//    clock (BatchRunnerOptions::clock) to an attached sink, so a test
//    driving a virtual clock gets bit-identical trace output run to run.
//
// Export is the Chrome trace-event JSON format ("traceEvents" array of
// ph: X/i/b/e records, microsecond timestamps), loadable in Perfetto or
// chrome://tracing and summarized offline by tools/trace_dump.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"

namespace paradmm::runtime {

/// One key/value annotation on a trace event.  `value` is a pre-rendered
/// JSON literal (a quoted string, a number, true/false/null) — rendering
/// happens at the recording site via TraceRecorder::arg so export is a
/// straight concatenation.
struct TraceArg {
  std::string key;
  std::string value;
};

/// One recorded event.  `start`/`duration` are seconds on the recorder's
/// clock; `tid` is the recorder-assigned index of the recording thread
/// (registration order); `id` pairs async begin/end events.
struct TraceEvent {
  enum class Kind { kComplete, kInstant, kAsyncBegin, kAsyncEnd };
  Kind kind = Kind::kInstant;
  std::string name;
  std::string category;
  double start = 0.0;
  double duration = 0.0;  // kComplete only
  std::uint64_t id = 0;   // kAsyncBegin / kAsyncEnd only
  std::uint64_t tid = 0;
  std::vector<TraceArg> args;
};

/// Thread-safe structured event recorder.  Events buffer in memory until
/// exported; a recorder is cheap to create and is typically dropped (or
/// exported) after one workload.
class TraceRecorder {
 public:
  /// Default clock: wall seconds since construction.
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Rebinds the timestamp clock (any monotone non-decreasing function of
  /// time).  The BatchRunner binds its runner clock here when the recorder
  /// is attached as a trace sink, so trace timestamps live on the same
  /// axis as deadlines — and virtual-clock tests get deterministic traces.
  /// Must be called before events are recorded from other threads (the
  /// runner does it at construction, before any job can run).
  void set_clock(std::function<double()> clock);

  /// Current reading of the recorder's clock.
  double now() const { return clock_(); }

  /// A span that already happened: [start, start + duration] on the
  /// recorder's clock.
  void complete(std::string name, std::string category, double start,
                double duration, std::vector<TraceArg> args = {});
  /// A point-in-time marker, stamped with now().
  void instant(std::string name, std::string category,
               std::vector<TraceArg> args = {});
  /// Async span pair: begin/end may land on different threads; matched by
  /// (category, name, id).  The runtime uses one per job, id = sequence.
  void async_begin(std::string name, std::string category, std::uint64_t id,
                   std::vector<TraceArg> args = {});
  void async_end(std::string name, std::string category, std::uint64_t id,
                 std::vector<TraceArg> args = {});

  /// All events recorded so far, merged across threads and stably sorted
  /// by (start, tid, per-thread order).
  std::vector<TraceEvent> snapshot() const;

  std::size_t event_count() const;

  /// Writes the Chrome trace-event JSON ({"traceEvents": [...]}) for
  /// everything recorded so far.  Timestamps are clock seconds x 1e6
  /// (the format's microsecond unit).  Output is a pure function of the
  /// recorded events, so virtual-clock runs export byte-identical files.
  void export_chrome_trace(std::ostream& out) const;

  /// export_chrome_trace to `path`; throws PreconditionError on I/O error.
  void write_chrome_trace(const std::string& path) const;

  /// Argument constructors: render once at the recording site.
  static TraceArg arg(std::string key, double value);
  static TraceArg arg(std::string key, long long value);
  static TraceArg arg(std::string key, unsigned long long value);
  static TraceArg arg(std::string key, std::size_t value);
  static TraceArg arg(std::string key, int value);
  static TraceArg arg(std::string key, bool value);
  static TraceArg arg(std::string key, const std::string& value);
  static TraceArg arg(std::string key, std::string_view value);
  static TraceArg arg(std::string key, const char* value);

 private:
  // Both trace locks are leaves in the runtime's lock hierarchy: record()
  // and the registry only ever hold one of them at a time, and no other
  // paradmm lock is acquired underneath (emission sites may hold the pool
  // or runner mutex above them — see ROADMAP "Lock hierarchy").
  struct ThreadBuffer {
    Mutex mutex{"TraceRecorder::buffer"};
    // Recorder-assigned thread index: written once (under the registry
    // lock, before the buffer pointer is published through the
    // thread_local cache) and immutable afterwards, so record() reads it
    // without the buffer lock.
    std::uint64_t tid = 0;
    std::vector<TraceEvent> events PARADMM_GUARDED_BY(mutex);
  };

  ThreadBuffer& local_buffer();
  void record(ThreadBuffer& buffer, TraceEvent event);

  // Distinguishes recorders in the thread_local buffer cache: a recorder
  // allocated at a recycled address must not inherit the old cache entry.
  const std::uint64_t serial_;
  std::function<double()> clock_;

  mutable Mutex registry_mutex_{"TraceRecorder::registry"};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_
      PARADMM_GUARDED_BY(registry_mutex_);
};

/// Fixed-bucket log-scale latency histogram: ~quarter-octave buckets
/// (successive upper bounds a factor 2^(1/4) apart) from 1 microsecond up
/// to about an hour, so any latency the runtime can plausibly see lands in
/// a bucket within ~19% relative width.  percentile() returns the upper
/// bound of the bucket holding the requested rank — an overestimate by at
/// most one bucket width, and *exact* for samples that sit on a bucket
/// boundary (what the percentile-exactness tests pin).  Not internally
/// synchronized; MetricsCollector guards its histograms with its own lock.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 128;
  static constexpr double kMinSeconds = 1e-6;

  /// Folds one sample in.  Non-finite and negative samples are dropped
  /// (latencies are differences of one monotone clock, so they indicate a
  /// caller bug, not a tail).
  void record(double seconds);

  std::size_t count() const { return count_; }

  /// Upper bound of the bucket containing the p-th percentile sample
  /// (p in [0, 100]); 0 when empty.
  double percentile(double p) const;

  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  /// Upper bound of bucket `index`: kMinSeconds * 2^(index / 4).
  static double bucket_upper_bound(std::size_t index);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
};

}  // namespace paradmm::runtime
