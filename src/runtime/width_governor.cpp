#include "runtime/width_governor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "parallel/thread_pool.hpp"
#include "runtime/calibration.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {

WidthGovernor::WidthGovernor(WidthGovernorOptions options)
    : options_(options) {
  require(options_.min_width >= 1,
          "WidthGovernor min_width must be >= 1: a zero-width fork cannot "
          "run its phase at all");
}

void WidthGovernor::bind(std::size_t pool_width,
                         std::function<double()> clock) {
  pool_width_ = pool_width;
  clock_ = std::move(clock);
}

void WidthGovernor::bind_trace(TraceRecorder* trace) { trace_ = trace; }

void WidthGovernor::bind_recalibration(OnlineRecalibrator* recalibrator) {
  recal_ = recalibrator;
}

void WidthGovernor::job_waiting() {
  waiting_.fetch_add(1, std::memory_order_relaxed);
}

void WidthGovernor::job_done_waiting() {
  waiting_.fetch_sub(1, std::memory_order_relaxed);
}

void WidthGovernor::serial_started() {
  busy_serial_.fetch_add(1, std::memory_order_relaxed);
}

void WidthGovernor::serial_finished() {
  busy_serial_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t WidthGovernor::backlog_target(std::size_t planned_width) const {
  std::size_t target = planned_width;
  if (options_.enabled && planned_width > options_.min_width) {
    // One lane reclaimed per waiting solve: the backlog can absorb exactly
    // that many freed lanes (each waiting job needs at least one), and the
    // formula depends only on the instantaneous backlog — a drained queue
    // restores the planned width with no hysteresis state to carry.
    const std::size_t backlog = waiting_.load(std::memory_order_relaxed);
    const std::size_t reclaimable = planned_width - options_.min_width;
    target = planned_width - std::min(backlog, reclaimable);
  }
  return target;
}

WidthGovernor::LeasePtr WidthGovernor::open_lease(
    std::size_t planned_width, double deadline, std::size_t total_phases,
    double prior_phase_seconds, std::array<std::size_t, 5> phase_counts) {
  // A prior below zero (or NaN/inf) means the cost model that priced it is
  // broken; clamping it to "no prior" here would silently disable the
  // first-barrier deadline boost for exactly the solves that asked for it.
  // Zero stays the documented "no prior" sentinel, and genuinely tiny
  // positive priors pass through untouched so they still arm the boost.
  require(std::isfinite(prior_phase_seconds) && prior_phase_seconds >= 0.0,
          "open_lease prior_phase_seconds must be finite and >= 0 (0 = no "
          "prior); a negative or non-finite prior means the cost model that "
          "priced this solve is broken");
  auto lease = std::make_shared<Lease>();
  lease->planned = planned_width;
  lease->width = planned_width;
  lease->deadline = deadline;
  lease->total_phases = total_phases;
  lease->prior_phase_seconds = prior_phase_seconds;
  lease->phase_counts = phase_counts;
  MutexLock lock(mutex_);
  leased_width_ += planned_width;
  return lease;
}

void WidthGovernor::close_lease(const LeasePtr& lease) {
  if (!lease) return;
  MutexLock lock(mutex_);
  leased_width_ -= lease->width;
  if (lease->width > lease->planned) {
    boosted_lanes_ -= lease->width - lease->planned;
  }
  // Fold the solve's measured per-phase lane-seconds into the cross-job
  // estimate that seeds future leases before their own first sample.
  if (lease->phases_done > 0 && lease->cost_units > 0.0) {
    const double per_phase =
        lease->cost_units / static_cast<double>(lease->phases_done);
    learned_phase_seconds_ = learned_phase_seconds_ > 0.0
                                 ? 0.75 * learned_phase_seconds_ + 0.25 * per_phase
                                 : per_phase;
  }
}

std::size_t WidthGovernor::advise(Lease& lease, std::size_t current_width) {
  std::size_t target = 0;
  // Decision evidence, captured under the lock and emitted as a trace
  // event after it (the recorder's buffer mutex must stay a leaf lock):
  // the per-phase lane-seconds estimate the projection would use, the
  // projected finish at the yield-policy width (NaN when no projection
  // ran), and the instantaneous backlog.
  double evidence_per_phase = 0.0;
  double projected = std::numeric_limits<double>::quiet_NaN();
  std::size_t backlog = 0;
  // Re-calibration sample, captured under the lock and recorded after it
  // (the recalibrator's mutex must stay a leaf, never nested under ours).
  double sample_seconds = 0.0;
  std::size_t sample_phase = 0;
  std::size_t sample_count = 0;
  {
    MutexLock lock(mutex_);

    // Timestamp the barrier: the interval since the previous one is the
    // wall clock of exactly one phase, normalized to lane-seconds by the
    // width it forked with so samples at different widths agree.
    bool fresh_sample = false;
    double now = 0.0;
    const bool timed = static_cast<bool>(clock_);
    if (timed) {
      now = clock_();
      if (lease.timed) {
        const double delta = now - lease.last_barrier;
        if (delta > 0.0) {
          lease.cost_units += delta * static_cast<double>(current_width);
          fresh_sample = true;
          // The interval times the phase the solve just finished: barrier
          // k closes phase (k-1) mod 5 in the fixed x,m,z,u,n rotation,
          // and phases_done (pre-increment) is exactly that index mod 5.
          sample_phase = lease.phases_done % lease.phase_counts.size();
          sample_count = lease.phase_counts[sample_phase];
          sample_seconds = delta;
        }
        ++lease.phases_done;
      } else {
        lease.timed = true;
      }
      lease.last_barrier = now;
    }

    backlog = waiting_.load(std::memory_order_relaxed);
    target = backlog_target(lease.planned);

    // The per-phase cost estimate: the lease's own measured samples when it
    // has any, else its cost-model prior (priced by the runner's shared
    // CostModel — a calibrated host profile when one is loaded), else the
    // cross-job EWMA.
    const bool own_samples = lease.phases_done > 0 && lease.cost_units > 0.0;
    const double per_phase =
        own_samples
            ? lease.cost_units / static_cast<double>(lease.phases_done)
            : (lease.prior_phase_seconds > 0.0 ? lease.prior_phase_seconds
                                               : learned_phase_seconds_);
    evidence_per_phase = per_phase;

    // Deadline boost: project the finish at the width the yield policy
    // would assign; past the deadline, claim the smallest width projected
    // to meet it instead of yielding.  Re-evaluated only on new
    // information: a fresh clock sample, or — with a prior — the first
    // timed barrier, so an already-infeasible solve boosts before producing
    // any sample of its own.  Between evaluations the held boost stays put
    // rather than decaying on an optimistic cost estimate, and the claim is
    // always bounded by the lane ledger so the governed total never exceeds
    // the pool.
    if (options_.enabled && options_.deadline_boost && timed &&
        pool_width_ > 0 && std::isfinite(lease.deadline) &&
        lease.total_phases > lease.phases_done) {
      const bool first_barrier_with_prior =
          lease.phases_done == 0 && lease.prior_phase_seconds > 0.0;
      if ((fresh_sample || first_barrier_with_prior) && per_phase > 0.0) {
        const auto remaining =
            static_cast<double>(lease.total_phases - lease.phases_done);
        const double at_target =
            now + remaining * per_phase /
                      static_cast<double>(std::max<std::size_t>(target, 1));
        projected = at_target;
        if (at_target > lease.deadline) {
          const double slack = lease.deadline - now;
          std::size_t needed = pool_width_;
          if (slack > 0.0) {
            const double raw = std::ceil(remaining * per_phase / slack);
            needed = raw >= static_cast<double>(pool_width_)
                         ? pool_width_
                         : static_cast<std::size_t>(raw);
          }
          lease.boost_width = std::clamp(needed, lease.planned, pool_width_);
        } else {
          lease.boost_width = 0;  // projection clears the deadline: stop
        }
      }
    } else {
      lease.boost_width = 0;
    }

    if (lease.boost_width > 0) {
      // The ledger cap: a boost may only claim lanes nobody else holds —
      // neither another governed solve's granted width nor a lane pinned by
      // a running serial whole-solve (its own planned width is always
      // available to it).
      const std::size_t occupied =
          (leased_width_ - lease.width) +
          busy_serial_.load(std::memory_order_relaxed);
      const std::size_t extra_cap =
          pool_width_ > occupied + lease.planned
              ? pool_width_ - occupied - lease.planned
              : 0;
      target = std::max(
          target, std::min(lease.boost_width, lease.planned + extra_cap));
    }

    if (target < current_width) {
      shrinks_.fetch_add(1, std::memory_order_relaxed);
    } else if (target > current_width) {
      if (target > lease.planned) {
        boosts_.fetch_add(1, std::memory_order_relaxed);
      } else {
        grows_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Ledger update, including the lanes-above-planned gauge.
    const std::size_t old_extra =
        lease.width > lease.planned ? lease.width - lease.planned : 0;
    const std::size_t new_extra =
        target > lease.planned ? target - lease.planned : 0;
    leased_width_ += target;
    leased_width_ -= lease.width;
    boosted_lanes_ += new_extra;
    boosted_lanes_ -= old_extra;
    lease.width = target;
  }

  if (trace_ != nullptr && target != current_width) {
    const char* kind = target < current_width  ? "shrink"
                       : target > lease.planned ? "boost"
                                                 : "grow";
    std::vector<TraceArg> args;
    args.push_back(TraceRecorder::arg("from", current_width));
    args.push_back(TraceRecorder::arg("to", target));
    args.push_back(TraceRecorder::arg("planned", lease.planned));
    args.push_back(TraceRecorder::arg("waiting", backlog));
    if (evidence_per_phase > 0.0) {
      args.push_back(
          TraceRecorder::arg("phase_lane_seconds", evidence_per_phase));
    }
    if (std::isfinite(lease.deadline)) {
      args.push_back(TraceRecorder::arg("deadline", lease.deadline));
      if (std::isfinite(projected)) {
        args.push_back(TraceRecorder::arg("projected", projected));
      }
    }
    trace_->instant(kind, "governor", std::move(args));
  }

  // Feed the measured phase into the online re-calibrator (a leaf mutex of
  // its own, acquired with no governor lock held).  A true return means
  // this sample triggered a periodic re-fit — surface it in the trace so
  // the drift story is visible next to the width decisions it will change.
  if (recal_ != nullptr && sample_seconds > 0.0 && sample_count > 0) {
    const bool refit = recal_->record_sample(sample_phase, sample_count,
                                             current_width, sample_seconds);
    if (refit && trace_ != nullptr) {
      const RecalibrationStats stats = recal_->stats();
      std::vector<TraceArg> args;
      args.push_back(TraceRecorder::arg("samples", stats.samples));
      args.push_back(TraceRecorder::arg("refits", stats.refits));
      args.push_back(TraceRecorder::arg("drift", stats.last_drift));
      args.push_back(TraceRecorder::arg("drifted", stats.drifted));
      trace_->instant("refit", "calibration", std::move(args));
    }
  }
  return target;
}

std::size_t WidthGovernor::advise(std::size_t planned_width,
                                  std::size_t current_width) {
  const std::size_t target = backlog_target(planned_width);
  if (target < current_width) {
    shrinks_.fetch_add(1, std::memory_order_relaxed);
  } else if (target > current_width) {
    grows_.fetch_add(1, std::memory_order_relaxed);
  }
  return target;
}

WidthGovernorStats WidthGovernor::stats() const {
  WidthGovernorStats stats;
  stats.shrinks = shrinks_.load(std::memory_order_relaxed);
  stats.grows = grows_.load(std::memory_order_relaxed);
  stats.boosts = boosts_.load(std::memory_order_relaxed);
  stats.waiting_jobs = waiting_.load(std::memory_order_relaxed);
  MutexLock lock(mutex_);
  stats.boosted_lanes = boosted_lanes_;
  stats.learned_phase_seconds = learned_phase_seconds_;
  return stats;
}

namespace {

// Holds the lease for the lifetime of one solve's backend; the fixed-width
// pool backend still owns the fork loop, so the governed and plain paths
// can never diverge numerically.
class GovernedBackend final : public ExecutionBackend {
 public:
  GovernedBackend(ThreadPool& pool, std::size_t planned_width,
                  WidthGovernor& governor, GovernedSolveInfo info)
      : governor_(governor),
        lease_(governor.open_lease(
            std::min(planned_width == 0 ? pool.concurrency() : planned_width,
                     pool.concurrency()),
            info.deadline, info.total_phases, info.prior_phase_seconds,
            info.phase_counts)),
        on_width_(std::move(info.on_width)),
        inner_(make_pool_backend(
            pool, planned_width,
            [this](std::size_t, std::size_t current) {
              const std::size_t width = governor_.advise(*lease_, current);
              if (on_width_) on_width_(width);
              return width;
            },
            std::move(info.on_phase))) {}

  ~GovernedBackend() override { governor_.close_lease(lease_); }

  void run(std::span<const Phase> phases, int iterations,
           PhaseTimings* timings) override {
    inner_->run(phases, iterations, timings);
  }

  std::size_t concurrency() const override { return inner_->concurrency(); }
  std::string_view name() const override { return inner_->name(); }

 private:
  WidthGovernor& governor_;
  WidthGovernor::LeasePtr lease_;
  std::function<void(std::size_t)> on_width_;
  std::unique_ptr<ExecutionBackend> inner_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_governed_pool_backend(
    ThreadPool& pool, std::size_t planned_width, WidthGovernor& governor,
    GovernedSolveInfo info) {
  return std::make_unique<GovernedBackend>(pool, planned_width, governor,
                                           std::move(info));
}

std::unique_ptr<ExecutionBackend> make_governed_pool_backend(
    ThreadPool& pool, std::size_t planned_width, WidthGovernor& governor) {
  return make_governed_pool_backend(pool, planned_width, governor,
                                    GovernedSolveInfo{});
}

}  // namespace paradmm::runtime
