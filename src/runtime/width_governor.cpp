#include "runtime/width_governor.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {

WidthGovernor::WidthGovernor(WidthGovernorOptions options)
    : options_(options) {
  require(options_.min_width >= 1,
          "WidthGovernor min_width must be >= 1: a zero-width fork cannot "
          "run its phase at all");
}

void WidthGovernor::job_waiting() {
  waiting_.fetch_add(1, std::memory_order_relaxed);
}

void WidthGovernor::job_done_waiting() {
  waiting_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t WidthGovernor::advise(std::size_t planned_width,
                                  std::size_t current_width) {
  std::size_t target = planned_width;
  if (options_.enabled && planned_width > options_.min_width) {
    // One lane reclaimed per waiting solve: the backlog can absorb exactly
    // that many freed lanes (each waiting job needs at least one), and the
    // formula depends only on the instantaneous backlog — a drained queue
    // restores the planned width with no hysteresis state to carry.
    const std::size_t backlog = waiting_.load(std::memory_order_relaxed);
    const std::size_t reclaimable = planned_width - options_.min_width;
    target = planned_width - std::min(backlog, reclaimable);
  }
  if (target < current_width) {
    shrinks_.fetch_add(1, std::memory_order_relaxed);
  } else if (target > current_width) {
    grows_.fetch_add(1, std::memory_order_relaxed);
  }
  return target;
}

WidthGovernorStats WidthGovernor::stats() const {
  WidthGovernorStats stats;
  stats.shrinks = shrinks_.load(std::memory_order_relaxed);
  stats.grows = grows_.load(std::memory_order_relaxed);
  stats.waiting_jobs = waiting_.load(std::memory_order_relaxed);
  return stats;
}

std::unique_ptr<ExecutionBackend> make_governed_pool_backend(
    ThreadPool& pool, std::size_t planned_width, WidthGovernor& governor) {
  // The fixed-width pool backend already owns the fork loop; governing it
  // is just a width provider, so both paths share one implementation and
  // can never diverge.
  return make_pool_backend(
      pool, planned_width,
      [&governor](std::size_t planned, std::size_t current) {
        return governor.advise(planned, current);
      });
}

}  // namespace paradmm::runtime
