// The unit of work of the batch-solve runtime (SolveJob) and the
// future-like handle (JobHandle) callers hold while it runs.
//
// A job is a factor graph plus solve options; the BatchRunner decides where
// and how parallel it runs (see runtime/scheduler.hpp).  The handle exposes
// state, blocking wait, cooperative cancellation (takes effect at the
// solver's next check interval), and the final SolverReport.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "runtime/scheduler.hpp"
#include "support/error.hpp"
#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"

namespace paradmm::runtime {

enum class JobState {
  kQueued,     ///< waiting in the ready queue — submitted and not yet
               ///< dispatched, or preempted off the dispatcher lane and
               ///< waiting to resume (keeps its partial progress)
  kRunning,    ///< a worker is iterating
  kDone,       ///< finished (converged or iteration budget exhausted)
  kCancelled,  ///< stopped early by request_cancel()
  kFailed,     ///< the solve threw; see JobHandle::error()
  kRejected,   ///< refused at submit: the deadline was provably infeasible
               ///< under BatchRunnerOptions::admission (never dispatched)
  kShedLate,   ///< shed from the ready queue mid-wait: a re-projection
               ///< proved the deadline unmeetable after admission (see
               ///< BatchRunnerOptions::reprojection); a preempted job shed
               ///< while parked keeps the progress it already made
  kQuotaRejected,  ///< refused at submit: the job's tenant was already at
                   ///< its max_queued quota (see runtime/tenant_registry.hpp;
                   ///< never dispatched — evidence on the handle via
                   ///< JobHandle::terminal_reason())
};

std::string_view to_string(JobState state);

inline bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kCancelled ||
         state == JobState::kFailed || state == JobState::kRejected ||
         state == JobState::kShedLate || state == JobState::kQuotaRejected;
}

/// The runner's submit-time admission decision for a job (see
/// BatchRunnerOptions::admission).  Jobs submitted under the accept policy,
/// or without a finite deadline, are always kAdmitted.
enum class AdmissionVerdict {
  kAdmitted,    ///< deadline projected feasible (or never checked)
  kBestEffort,  ///< projected infeasible, admitted anyway (degrade policy):
                ///< the job runs, but its hopeless deadline no longer arms
                ///< deadline-aware width boosting
  kRejected,    ///< projected infeasible, refused at submit (reject policy):
                ///< the job goes terminal (JobState::kRejected) immediately
};

std::string_view to_string(AdmissionVerdict verdict);

/// Invoked from the executing thread after every solver check interval.
using ProgressFn = std::function<void(const IterationStatus&)>;

/// "No deadline": sorts after every finite deadline of the same priority.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// One solve for the BatchRunner.  `graph` is required and must stay valid
/// until the job reaches a terminal state; `owner` optionally keeps the
/// object that owns the graph alive for the job's lifetime (this is how
/// registry-built problems are submitted — see runtime/problem_registry.hpp).
struct SolveJob {
  FactorGraph* graph = nullptr;
  std::shared_ptr<void> owner;
  SolverOptions options;  ///< backend/threads are overridden by the scheduler
  ProgressFn progress;
  std::string label;

  /// Dispatch order is (priority desc, deadline asc, submit order asc):
  /// higher-priority jobs always dispatch first; within a priority class,
  /// earlier deadlines dispatch first and deadline ties keep FIFO order —
  /// so scheduling is deterministic for a fixed arrival set.  Priority and
  /// deadline never preempt a solve already executing (but a backlog they
  /// create does shrink running wide solves — see runtime/width_governor.hpp).
  int priority = 0;

  /// Soft deadline on the runner's clock axis (BatchRunnerOptions::clock;
  /// by default wall seconds since the runner was constructed).  Earliest-
  /// deadline-first within a priority class; kNoDeadline sorts last.
  /// (With priority aging enabled, same-priority jobs submitted at
  /// different clock readings have distinct aged keys, so the deadline
  /// tiebreak only orders jobs whose keys tie exactly — aging trades EDF
  /// ordering for starvation-freedom; see BatchRunnerOptions::aging_rate.)
  /// A
  /// finite deadline also arms deadline-aware width boosting: a running
  /// fine-grained solve whose projected finish misses this value claims
  /// lanes instead of yielding them (see runtime/width_governor.hpp), and
  /// the job counts toward metrics().deadlines_met / deadlines_missed.
  double deadline = kNoDeadline;

  /// The traffic class the job is accounted against (see
  /// runtime/tenant_registry.hpp): its weight orders same-priority dispatch
  /// by weighted-fair virtual time, and its quotas can refuse the
  /// submission (JobState::kQuotaRejected) or hold it queued.  Empty (the
  /// default) is the implicit tenant; with no tenants defined on the
  /// runner the field is inert and dispatch is bitwise tenant-free.
  std::string tenant;
};

namespace detail {

/// Shared state between a JobHandle and the runner (internal).
struct JobControl {
  // Fixed at submission.
  FactorGraph* graph = nullptr;
  std::shared_ptr<void> owner;
  SolverOptions options;
  ProgressFn progress;
  std::string label;
  int priority = 0;
  double deadline = kNoDeadline;
  std::string tenant;
  std::uint64_t sequence = 0;   // runner-assigned submit order (FIFO ties)
  double submit_time = 0.0;     // runner clock at submit (priority aging)
  // Weighted-fair virtual-start tag (runtime/tenant_registry.hpp), fixed
  // when the job enters the ready queue; orders same-priority dispatch.
  // 0 whenever no tenants are defined, which keeps the tenant-free
  // dispatch order bitwise.
  double vstart = 0.0;
  // Quota evidence (kQuotaRejected only): the tenant's ready-queue
  // occupancy and its max_queued limit at the refused submit.
  std::size_t quota_queued = 0;
  std::size_t quota_limit = 0;
  // Admission bookkeeping: the verdict, and the job's cost-model price
  // (serial seconds per iteration — later submissions' projections charge
  // it for the job's *remaining* budget while it waits ahead of them, so a
  // preempted job parked mid-solve is only charged for the work it
  // actually has left; 0 when the runner has no model).  The verdict is
  // atomic because continuous admission (BatchRunnerOptions::reprojection,
  // degrade policy) may flip an admitted queued job to kBestEffort while
  // handle readers poll it; every other field here is still fixed before
  // the handle is returned.
  std::atomic<AdmissionVerdict> admission{AdmissionVerdict::kAdmitted};
  double serial_seconds_per_iteration = 0.0;
  // Best-case seconds per iteration across the runner's width ladder (the
  // floor the admission projection charges the job for its own remaining
  // work); equals serial_seconds_per_iteration unless the model says a
  // wider fork is cheaper.  0 when the runner never priced the ladder.
  double best_seconds_per_iteration = 0.0;
  // The admission check's projected finish (runner clock; NaN when the
  // verdict was kAdmitted without a projection) — surfaced so rejection /
  // degradation trace events carry the projected-vs-deadline numbers that
  // justified the verdict.
  double admission_projected = std::numeric_limits<double>::quiet_NaN();
  // Cost-model prior for the governor's deadline projection (lane-seconds
  // per phase barrier; 0 when the runner has no model).
  double prior_phase_lane_seconds = 0.0;
  // Re-projection evidence (continuous admission): the projected finish
  // and the queued-ahead serial seconds that proved the job late.  Written
  // under the runner mutex by the re-projection pass and read by the same
  // thread's settle step (trace + terminal bookkeeping) — never
  // concurrently.  NaN until a re-projection verdict lands.
  double reprojection_projected = std::numeric_limits<double>::quiet_NaN();
  double reprojection_ahead_seconds =
      std::numeric_limits<double>::quiet_NaN();

  std::atomic<bool> cancel_requested{false};

  /// Width of the most recent phase fork (1 for whole-solve jobs, 0 until
  /// the first fork); read by JobHandle::current_width.
  std::atomic<std::size_t> current_width{0};

  // Resumable-execution bookkeeping (dispatcher-lane preemption): a solve
  // that yielded back to the ready queue keeps its progress here and picks
  // up where it left off on the next dispatch.  Written only by the thread
  // executing the job, ordered against re-dispatch by the runner mutex.
  bool started = false;        // on_start / kRunning happened
  int iterations_done = 0;     // across all slices so far
  double wall_so_far = 0.0;    // executed wall seconds across slices
  // Latency bookkeeping (runner clock): when the current wait in the ready
  // queue began (submit time, then each requeue), and when the job first
  // started executing (NaN until then).  queue-wait = first start − submit;
  // end-to-end = finish − submit.  Same write/ordering discipline as the
  // slice bookkeeping above.
  double queued_since = 0.0;
  double first_start_time = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> phase_seconds_so_far;
  // The most recent slice's solver report (residuals after the last
  // completed check): a preempted job cancelled while parked still
  // reports the progress it actually made.
  SolverReport last_report;

  // The job lock is a leaf in the runtime's lock hierarchy: it is never
  // held while acquiring another paradmm lock (the runner releases it
  // before touching its own mutex, the pool's, or the governor's).
  mutable Mutex mutex{"JobControl"};
  mutable CondVar changed;
  JobState state PARADMM_GUARDED_BY(mutex) = JobState::kQueued;
  // Set when the scheduler has decided `plan`.
  bool planned PARADMM_GUARDED_BY(mutex) = false;
  // Valid once `planned`.
  JobPlan plan PARADMM_GUARDED_BY(mutex);
  // Valid in kDone/kCancelled.
  SolverReport report PARADMM_GUARDED_BY(mutex);
  // Non-empty in kFailed.
  std::string error PARADMM_GUARDED_BY(mutex);
  double wall_seconds PARADMM_GUARDED_BY(mutex) = 0.0;
  // Runner clock value when the job went terminal (NaN until then).
  double finished_at PARADMM_GUARDED_BY(mutex) =
      std::numeric_limits<double>::quiet_NaN();
};

}  // namespace detail

/// Everything the runner knows about why a job reached its terminal state,
/// in one struct: the state itself, the admission verdict, the projection
/// evidence that justified a rejection / shed / degrade, and the tenant
/// quota evidence behind a kQuotaRejected.  Unifies the per-PR evidence
/// accessors (admission_verdict, reprojection_projected /
/// reprojection_ahead_seconds, quota fields) behind one call —
/// JobHandle::terminal_reason(); the old getters remain as thin reads of
/// the same fields.
struct TerminalReason {
  JobState state = JobState::kQueued;
  AdmissionVerdict verdict = AdmissionVerdict::kAdmitted;
  /// The projected finish that justified the verdict: the re-projection's
  /// when one landed (kShedLate / mid-queue degrade), else the submit-time
  /// admission projection; NaN when the job was never projected.
  double projected_finish = std::numeric_limits<double>::quiet_NaN();
  double deadline = kNoDeadline;
  /// Queued-ahead serial seconds the re-projection charged (NaN unless a
  /// re-projection verdict landed).
  double queued_ahead_seconds = std::numeric_limits<double>::quiet_NaN();
  std::string tenant;
  /// Quota evidence (kQuotaRejected only, both 0 otherwise): the tenant's
  /// ready-queue occupancy at the refused submit, and its max_queued limit.
  std::size_t quota_queued = 0;
  std::size_t quota_limit = 0;
};

/// Future-like handle to a submitted job.  Copyable; all copies observe the
/// same job.  Outliving the BatchRunner is safe for reads — the runner
/// drives every job to a terminal state before its destructor returns.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return static_cast<bool>(control_); }

  JobState state() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    return c.state;
  }

  /// Blocks until the job reaches a terminal state and returns it.
  JobState wait() const {
    const detail::JobControl& c = *control();
    UniqueLock lock(c.mutex);
    while (!is_terminal(c.state)) c.changed.wait(lock);
    return c.state;
  }

  /// Requests cooperative cancellation; the solve stops at its next check
  /// interval.  A job that finishes before noticing still reports kDone.
  void request_cancel() {
    control()->cancel_requested.store(true, std::memory_order_relaxed);
  }

  /// Final report; call after wait().  Valid in kDone, kCancelled, and
  /// kShedLate (a cancelled or shed job reports the iterations it
  /// completed — possibly zero); kFailed and kRejected jobs have no report
  /// — a rejected job never ran at all.
  const SolverReport& report() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    require(is_terminal(c.state), "job has not finished");
    require(c.state != JobState::kFailed,
            "job failed; see JobHandle::error()");
    require(c.state != JobState::kRejected,
            "job was rejected at submit (infeasible deadline) and never "
            "ran; see JobHandle::admission_verdict()");
    require(c.state != JobState::kQuotaRejected,
            "job was refused at submit (tenant max_queued quota) and never "
            "ran; see JobHandle::terminal_reason()");
    return c.report;
  }

  /// What the solve threw (empty unless kFailed).
  const std::string& error() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    return c.error;
  }

  /// The scheduler's decision for this job; valid once the dispatcher has
  /// planned it (before that, a PreconditionError).
  JobPlan plan() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    require(c.planned, "job has not been planned yet");
    return c.plan;
  }

  /// The job's graph (solution readout lives in graph().solution(...)).
  FactorGraph& graph() const { return *control()->graph; }

  const std::string& label() const { return control()->label; }

  /// Dispatch priority / deadline / tenant, as submitted (fixed for the
  /// job's life).
  int priority() const { return control()->priority; }
  double deadline() const { return control()->deadline; }
  const std::string& tenant() const { return control()->tenant; }

  /// Runner clock value when the job was submitted (fixed before submit()
  /// returned the handle).  finished_at() - submitted_at() is the job's
  /// end-to-end latency on the axis the latency histograms use.
  double submitted_at() const { return control()->submit_time; }

  /// The one-stop terminal evidence record: state, admission verdict, the
  /// projection that justified a rejection / shed / degrade, and the
  /// tenant quota evidence behind a kQuotaRejected.  Call after wait().
  /// Prefer this over the per-field getters below (admission_verdict,
  /// reprojection_projected, reprojection_ahead_seconds), which predate it
  /// and remain only for source compatibility.
  TerminalReason terminal_reason() const {
    const detail::JobControl& c = *control();
    TerminalReason reason;
    MutexLock lock(c.mutex);
    require(is_terminal(c.state), "job has not finished");
    reason.state = c.state;
    reason.verdict = c.admission.load(std::memory_order_relaxed);
    // The freshest projection wins: a re-projection verdict supersedes the
    // submit-time one it re-checked.
    reason.projected_finish = !std::isnan(c.reprojection_projected)
                                  ? c.reprojection_projected
                                  : c.admission_projected;
    reason.deadline = c.deadline;
    reason.queued_ahead_seconds = c.reprojection_ahead_seconds;
    reason.tenant = c.tenant;
    reason.quota_queued = c.quota_queued;
    reason.quota_limit = c.quota_limit;
    return reason;
  }

  /// The runner's admission decision: kAdmitted unless an admission or
  /// re-projection check projected the job's finite deadline as infeasible
  /// — then kRejected (job is already terminal in JobState::kRejected) or
  /// kBestEffort (job runs, deadline boosting disarmed), by policy.  Fixed
  /// before submit() returned except under continuous admission
  /// (BatchRunnerOptions::reprojection, degrade policy), which may flip an
  /// admitted queued job to kBestEffort mid-wait.
  /// Deprecated in favor of terminal_reason().verdict (kept for source
  /// compatibility; this one is also readable before the job is terminal).
  AdmissionVerdict admission_verdict() const {
    return control()->admission.load(std::memory_order_relaxed);
  }

  /// Width of the solve's most recent phase fork: 0 before the first fork,
  /// 1 for whole-solve jobs, and above plan().intra_threads while the
  /// governor is boosting a deadline-racing solve.
  std::size_t current_width() const {
    return control()->current_width.load(std::memory_order_relaxed);
  }

  /// Runner clock value (BatchRunnerOptions::clock axis — the axis
  /// deadlines live on) when the job reached a terminal state; NaN until
  /// then.  finished_at() <= deadline() is the runner's definition of a
  /// met deadline.
  double finished_at() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    return c.finished_at;
  }

  /// Continuous-admission evidence (BatchRunnerOptions::reprojection): the
  /// re-projected finish and the queued-ahead serial seconds that proved
  /// this job late mid-queue.  NaN unless a re-projection verdict (shed or
  /// degrade) landed on the job.  Valid once the job is terminal — the
  /// evidence is written before the terminal state (or the re-dispatch)
  /// it justified, so the terminal wait orders the read.  Deprecated in
  /// favor of terminal_reason().projected_finish / .queued_ahead_seconds
  /// (kept for source compatibility).
  double reprojection_projected() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    require(is_terminal(c.state), "job has not finished");
    return c.reprojection_projected;
  }
  double reprojection_ahead_seconds() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    require(is_terminal(c.state), "job has not finished");
    return c.reprojection_ahead_seconds;
  }

  /// Wall-clock seconds of the solve; valid in terminal states.
  double wall_seconds() const {
    const detail::JobControl& c = *control();
    MutexLock lock(c.mutex);
    return c.wall_seconds;
  }

 private:
  friend class BatchRunner;
  explicit JobHandle(std::shared_ptr<detail::JobControl> control)
      : control_(std::move(control)) {}

  const std::shared_ptr<detail::JobControl>& control() const {
    require(static_cast<bool>(control_), "JobHandle is empty");
    return control_;
  }

  std::shared_ptr<detail::JobControl> control_;
};

}  // namespace paradmm::runtime
