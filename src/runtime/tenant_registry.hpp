// Per-tenant quotas and weighted-fair dispatch state for the BatchRunner.
//
// A tenant is a named traffic class (SolveJob::tenant / SubmitRequest::
// tenant): jobs of one tenant share a dispatch weight and two quotas —
// max_queued bounds ready-queue occupancy at submit (excess submissions go
// terminal as JobState::kQuotaRejected with evidence on the handle), and
// max_in_flight bounds how many of the tenant's jobs may be dispatched at
// once (excess stays in the ready queue; other tenants dispatch past it).
//
// Weighted fairness uses start-time fair queuing on a virtual time axis:
// each submission is tagged vstart = max(V, tenant's last virtual finish)
// and advances the tenant's virtual finish by 1 / weight; V itself advances
// to the largest tag ever dispatched.  The ready queue orders same-priority
// jobs by that tag, so a backlogged weight-3 tenant dispatches three jobs
// for every one of a backlogged weight-1 tenant, while an idle tenant
// re-enters at the current V instead of hoarding credit.  With no tenants
// defined (the default) every tag is 0 and nothing here is ever consulted —
// the runner reproduces the tenant-free dispatch order bitwise.
//
// The registry is configuration plus accounting, not a concurrent object:
// callers define tenants before handing it to BatchRunnerOptions, and the
// runner mutates the accounting side only under its own mutex.
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace paradmm::runtime {

/// Per-tenant dispatch weight and admission quotas.
struct TenantQuota {
  /// Weighted-fair dispatch share relative to other tenants (a backlogged
  /// weight-3 tenant gets 3x the dispatches of a backlogged weight-1
  /// tenant).  Must be finite and > 0.
  double weight = 1.0;
  /// Max jobs of this tenant in the ready queue; a submission that would
  /// exceed it goes terminal as JobState::kQuotaRejected.  0 = unlimited.
  std::size_t max_queued = 0;
  /// Max jobs of this tenant dispatched (popped, not yet terminal) at
  /// once; excess stays queued while other tenants dispatch past it.
  /// 0 = unlimited.
  std::size_t max_in_flight = 0;
};

class TenantRegistry {
 public:
  /// Declares `name` with its quota (replacing any earlier definition).
  /// Any define() call activates tenant-aware dispatch for the whole
  /// runner; tenants that are never defined (including the implicit ""
  /// tenant) get the default TenantQuota — weight 1, unlimited.
  TenantRegistry& define(const std::string& name, TenantQuota quota);

  /// Whether any tenant was defined: false (the default) disables every
  /// quota check and keeps all virtual-time tags at 0, reproducing the
  /// tenant-free dispatch order bitwise.
  bool active() const { return active_; }

  /// The quota `name` is held to (the default quota when never defined).
  const TenantQuota& quota(const std::string& name) const;

  // Accounting, driven by the runner under its own mutex. ---------------

  /// Whether a submission by `name` would exceed its max_queued quota.
  bool queue_full(const std::string& name) const;

  /// Jobs of `name` in the ready queue right now (quota evidence).
  std::size_t queued(const std::string& name) const;

  /// Whether a queued job of `name` may dispatch now (max_in_flight
  /// headroom).
  bool dispatchable(const std::string& name) const;

  /// A job of `name` entered the ready queue; returns its virtual-start
  /// tag and advances the tenant's virtual finish by 1 / weight.
  double on_submit(const std::string& name);

  /// A queued job of `name` was popped for dispatch; `vstart` is the tag
  /// on_submit() issued it (advances the global virtual time).
  void on_dispatch(const std::string& name, double vstart);

  /// A dispatched job of `name` was preempted back into the ready queue
  /// (it keeps its original tag — yielding never costs queue position).
  void on_requeue(const std::string& name);

  /// A queued job of `name` left the queue without dispatching (shed by a
  /// re-projection pass, never cancelled-at-dispatch — those pop first).
  void on_shed(const std::string& name);

  /// A dispatched job of `name` reached a terminal state.
  void on_finalize(const std::string& name);

 private:
  struct State {
    TenantQuota quota;
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    /// Virtual finish of the tenant's last-tagged submission.
    double virtual_finish = 0.0;
  };

  State& state(const std::string& name) { return tenants_[name]; }
  const State* find(const std::string& name) const;

  std::map<std::string, State> tenants_;
  bool active_ = false;
  /// Global virtual time V: the largest virtual-start tag ever dispatched.
  double virtual_now_ = 0.0;
};

}  // namespace paradmm::runtime
