// Per-job parallelism policy for the batch-solve runtime.
//
// The paper's multicore results (Figs. 8, 11, 14) show fine-grained
// parallelism only paying once a graph is large enough that the per-phase
// fork/join and barrier costs are amortized over the phase work; below that
// threshold a solve runs fastest on a single core.  The batch runtime
// exploits exactly this: small jobs run whole-solve-per-worker (many solves
// concurrently, zero intra-solve synchronization), large jobs get
// *partial* fine-grained parallelism — a width k <= pool proportional to
// how far past the threshold the graph is, so two medium jobs can each
// fork over half the pool side by side instead of one maximal-width solve
// serializing everything behind it.
//
// The width can also be driven by a CostModel (runtime/calibration.hpp): a
// model reports predicted per-iteration seconds at each candidate width,
// and the scheduler keeps doubling the width while each doubling still buys
// a meaningful speedup (the knee of the paper's speedup curves).  The model
// is the *shared* pricing interface — the same instance prices the
// governor's deadline projections and the runner's admission check, so
// every width decision agrees on what work costs.  Implementations: the
// devsim Opteron spec (make_devsim_cost_model), a measured host profile
// (make_calibrated_cost_model), or any injected function.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/factor_graph.hpp"
#include "runtime/calibration.hpp"

namespace paradmm::runtime {

struct SchedulerOptions {
  /// Graphs with fewer elements (|F| + 3|E| + |V|, the per-iteration task
  /// count) than this run whole-solve-on-one-worker; at or above it they
  /// get intra-solve fine-grained parallelism.  Must be >= 1 — a zero
  /// threshold would classify even empty graphs as fine-grained and
  /// serialize the whole batch.
  std::size_t fine_grained_threshold = 16384;

  /// Upper bound on any job's intra-solve width (0 = the whole pool).
  std::size_t max_intra_threads = 0;

  /// Force every job to run serial-per-worker (throughput mode) regardless
  /// of size — useful when the submitter knows all jobs are independent
  /// and latency of any single job does not matter.
  bool disable_fine_grained = false;

  /// Optional cost model for width selection.  When set, a fine-grained
  /// job's width is chosen by doubling from 1 while each doubling is
  /// predicted to cut iteration time by >= ~25% (past the knee of the
  /// speedup curve, extra threads are better spent on other jobs); a job
  /// the model says gains nothing from 2 threads stays serial.  When null,
  /// the BatchRunner substitutes its own cost model if it has one
  /// (BatchRunnerOptions::cost_model), and otherwise width defaults to
  /// elements / fine_grained_threshold (clamped to [2, pool]).
  CostModelPtr cost_model;
};

/// The scheduler's decision for one job.
struct JobPlan {
  /// 1 = whole solve on one worker; k > 1 = fine-grained phase parallelism
  /// bounded to k threads of the shared pool.
  std::size_t intra_threads = 1;
  /// Graph elements the decision was based on.
  std::size_t elements = 0;

  bool fine_grained() const { return intra_threads > 1; }
};

class Scheduler {
 public:
  /// Validates `options` (throws PreconditionError on a zero threshold).
  /// `pool_threads` is the number of threads a fine-grained fork can
  /// actually occupy — the BatchRunner passes its full pool concurrency,
  /// since its idle dispatcher lane serves fork chunks too (ThreadPool::
  /// help_until), so even a lone wide job can use every lane.
  Scheduler(SchedulerOptions options, std::size_t pool_threads);

  /// Decides how much of the pool a solve of `graph` should use.
  JobPlan plan(const FactorGraph& graph) const;

  const SchedulerOptions& options() const { return options_; }

 private:
  std::size_t width_cap() const;

  SchedulerOptions options_;
  std::size_t pool_threads_;
};

/// The devsim-backed width model (the paper's fork/join strategy A on the
/// Opteron spec): extracts the graph's per-phase cost profile and predicts
/// seconds for one iteration on `threads` cores — e.g. memory-bound graphs
/// stop scaling at the node bandwidth and get narrower widths than
/// compute-bound ones of the same size.  Alias of make_devsim_cost_model
/// (runtime/calibration.hpp), kept under the historical name used by the
/// width-policy docs.
inline CostModelPtr devsim_width_model(devsim::MulticoreSpec spec = {}) {
  return make_devsim_cost_model(spec);
}

}  // namespace paradmm::runtime
