// Per-job parallelism policy for the batch-solve runtime.
//
// The paper's multicore results (Figs. 8, 11, 14) show fine-grained
// parallelism only paying once a graph is large enough that the per-phase
// fork/join and barrier costs are amortized over the phase work; below that
// threshold a solve runs fastest on a single core.  The batch runtime
// exploits exactly this: small jobs run whole-solve-per-worker (many solves
// concurrently, zero intra-solve synchronization), large jobs get the
// shared pool's fine-grained phase parallelism to themselves.
#pragma once

#include <cstddef>

#include "core/factor_graph.hpp"

namespace paradmm::runtime {

struct SchedulerOptions {
  /// Graphs with fewer elements (|F| + 3|E| + |V|, the per-iteration task
  /// count) than this run whole-solve-on-one-worker; at or above it they
  /// get intra-solve fine-grained parallelism.
  std::size_t fine_grained_threshold = 16384;

  /// Force every job to run serial-per-worker (throughput mode) regardless
  /// of size — useful when the submitter knows all jobs are independent
  /// and latency of any single job does not matter.
  bool disable_fine_grained = false;
};

/// The scheduler's decision for one job.
struct JobPlan {
  /// 1 = whole solve on one worker; >1 = fine-grained phase parallelism
  /// over that many threads of the shared pool.
  std::size_t intra_threads = 1;
  /// Graph elements the decision was based on.
  std::size_t elements = 0;

  bool fine_grained() const { return intra_threads > 1; }
};

class Scheduler {
 public:
  Scheduler(SchedulerOptions options, std::size_t pool_threads);

  /// Decides how much of the pool a solve of `graph` should use.
  JobPlan plan(const FactorGraph& graph) const;

  const SchedulerOptions& options() const { return options_; }

 private:
  SchedulerOptions options_;
  std::size_t pool_threads_;
};

}  // namespace paradmm::runtime
