#include "runtime/problem_registry.hpp"

#include <sstream>

#include "problems/lasso/registry.hpp"
#include "problems/mpc/registry.hpp"
#include "problems/packing/registry.hpp"
#include "problems/svm/registry.hpp"

namespace paradmm::runtime {

void ProblemRegistry::add(const std::string& name, std::string description,
                          Builder builder) {
  require(!name.empty(), "problem name must be non-empty");
  require(static_cast<bool>(builder), "problem builder must be callable");
  require(entries_.find(name) == entries_.end(),
          "problem name is already registered");
  entries_.emplace(name, Entry{std::move(description), std::move(builder)});
}

bool ProblemRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

const ProblemRegistry::Entry& ProblemRegistry::find(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream message;
    message << "unknown problem \"" << name << "\"; registered:";
    for (const auto& [registered, entry] : entries_) {
      message << ' ' << registered;
    }
    throw PreconditionError(message.str());
  }
  return it->second;
}

BuiltProblem ProblemRegistry::build(const std::string& name,
                                    const std::any& params) const {
  BuiltProblem built = find(name).builder(params);
  affirm(built.graph != nullptr, "problem builder returned no graph");
  return built;
}

const std::string& ProblemRegistry::description(const std::string& name) const {
  return find(name).description;
}

std::vector<std::string> ProblemRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

ProblemRegistry ProblemRegistry::with_builtin() {
  ProblemRegistry registry;
  lasso::register_problem(registry);
  mpc::register_problem(registry);
  packing::register_problem(registry);
  svm::register_problem(registry);
  return registry;
}

const ProblemRegistry& ProblemRegistry::global() {
  static const ProblemRegistry registry = with_builtin();
  return registry;
}

}  // namespace paradmm::runtime
