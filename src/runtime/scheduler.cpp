#include "runtime/scheduler.hpp"

#include "support/error.hpp"

namespace paradmm::runtime {

Scheduler::Scheduler(SchedulerOptions options, std::size_t pool_threads)
    : options_(options), pool_threads_(pool_threads) {
  require(pool_threads >= 1, "Scheduler needs at least one pool thread");
}

JobPlan Scheduler::plan(const FactorGraph& graph) const {
  JobPlan plan;
  plan.elements = graph.elements();
  const bool large = plan.elements >= options_.fine_grained_threshold;
  if (large && !options_.disable_fine_grained && pool_threads_ > 1) {
    plan.intra_threads = pool_threads_;
  }
  return plan;
}

}  // namespace paradmm::runtime
