#include "runtime/scheduler.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace paradmm::runtime {

Scheduler::Scheduler(SchedulerOptions options, std::size_t pool_threads)
    : options_(std::move(options)), pool_threads_(pool_threads) {
  require(pool_threads >= 1, "Scheduler needs at least one pool thread");
  require(options_.fine_grained_threshold >= 1,
          "fine_grained_threshold must be >= 1: a zero threshold would "
          "classify every job (even an empty graph) as fine-grained and "
          "serialize the whole batch");
}

std::size_t Scheduler::width_cap() const {
  return options_.max_intra_threads == 0
             ? pool_threads_
             : std::min(options_.max_intra_threads, pool_threads_);
}

JobPlan Scheduler::plan(const FactorGraph& graph) const {
  JobPlan plan;
  plan.elements = graph.elements();
  const bool large = plan.elements >= options_.fine_grained_threshold;
  const std::size_t cap = width_cap();
  if (!large || options_.disable_fine_grained || cap < 2) return plan;

  if (options_.cost_model) {
    // Double the width while each doubling is predicted to cut iteration
    // time by >= 25%; past that knee the extra threads help other jobs
    // more than this one.  A graph the model says does not even benefit
    // from 2 threads stays serial-per-worker despite its size.
    const std::vector<std::size_t> ladder = width_ladder(cap);
    const std::vector<double> seconds =
        options_.cost_model->iteration_seconds(graph, ladder);
    require(seconds.size() == ladder.size(),
            "cost model must return one prediction per candidate width");
    std::size_t pick = 0;
    while (pick + 1 < ladder.size() &&
           seconds[pick + 1] <= 0.75 * seconds[pick]) {
      ++pick;
    }
    plan.intra_threads = ladder[pick];
  } else {
    // Size-proportional default: one thread per threshold's worth of
    // elements, at least 2 (it crossed the threshold), at most the cap —
    // so a job twice the threshold gets 2 threads and leaves the rest of
    // the pool to its neighbors.
    plan.intra_threads = std::clamp<std::size_t>(
        plan.elements / options_.fine_grained_threshold, 2, cap);
  }
  return plan;
}

}  // namespace paradmm::runtime
