#include "runtime/scheduler.hpp"

#include <algorithm>

#include "devsim/cost_model.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {

Scheduler::Scheduler(SchedulerOptions options, std::size_t pool_threads)
    : options_(std::move(options)), pool_threads_(pool_threads) {
  require(pool_threads >= 1, "Scheduler needs at least one pool thread");
  require(options_.fine_grained_threshold >= 1,
          "fine_grained_threshold must be >= 1: a zero threshold would "
          "classify every job (even an empty graph) as fine-grained and "
          "serialize the whole batch");
}

std::size_t Scheduler::width_cap() const {
  return options_.max_intra_threads == 0
             ? pool_threads_
             : std::min(options_.max_intra_threads, pool_threads_);
}

JobPlan Scheduler::plan(const FactorGraph& graph) const {
  JobPlan plan;
  plan.elements = graph.elements();
  const bool large = plan.elements >= options_.fine_grained_threshold;
  const std::size_t cap = width_cap();
  if (!large || options_.disable_fine_grained || cap < 2) return plan;

  if (options_.cost_model) {
    // Double the width while each doubling is predicted to cut iteration
    // time by >= 25%; past that knee the extra threads help other jobs
    // more than this one.  A graph the model says does not even benefit
    // from 2 threads stays serial-per-worker despite its size.
    std::vector<std::size_t> ladder{1};
    while (ladder.back() * 2 <= cap) ladder.push_back(ladder.back() * 2);
    const std::vector<double> seconds = options_.cost_model(graph, ladder);
    require(seconds.size() == ladder.size(),
            "cost model must return one prediction per candidate width");
    std::size_t pick = 0;
    while (pick + 1 < ladder.size() &&
           seconds[pick + 1] <= 0.75 * seconds[pick]) {
      ++pick;
    }
    plan.intra_threads = ladder[pick];
  } else {
    // Size-proportional default: one thread per threshold's worth of
    // elements, at least 2 (it crossed the threshold), at most the cap —
    // so a job twice the threshold gets 2 threads and leaves the rest of
    // the pool to its neighbors.
    plan.intra_threads = std::clamp<std::size_t>(
        plan.elements / options_.fine_grained_threshold, 2, cap);
  }
  return plan;
}

WidthCostModel devsim_width_model(devsim::MulticoreSpec spec) {
  return [spec](const FactorGraph& graph,
                std::span<const std::size_t> widths) {
    // One O(graph) cost extraction per plan() call, reused for every
    // candidate width (the per-width model evaluation is just arithmetic).
    const devsim::IterationCosts costs =
        devsim::extract_iteration_costs(graph);
    std::vector<double> seconds;
    seconds.reserve(widths.size());
    for (const std::size_t threads : widths) {
      seconds.push_back(devsim::multicore_iteration_seconds(
          costs, spec, static_cast<int>(threads),
          devsim::OmpStrategy::kForkJoinPerPhase));
    }
    return seconds;
  };
}

}  // namespace paradmm::runtime
