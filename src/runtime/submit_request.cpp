#include "runtime/submit_request.hpp"

#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace paradmm::runtime {

SolveJob SubmitRequest::build(const ProblemRegistry* registry) const {
  require(!problem_.empty(), "SubmitRequest needs a problem name");
  const ProblemRegistry& source =
      registry != nullptr ? *registry : ProblemRegistry::global();
  BuiltProblem built = source.build(problem_, params_);
  SolveJob job;
  job.graph = built.graph;
  job.owner = std::move(built.owner);
  job.options = options_;
  job.progress = progress_;
  job.label = label_.empty() ? problem_ : label_;
  job.priority = priority_;
  job.deadline = deadline_;
  job.tenant = tenant_;
  return job;
}

std::string SubmitRequest::to_json() const {
  // Only non-default fields go on the wire, so a request round-trips to
  // the minimal line a human would have written.  The defaults compared
  // against are SolverOptions{} — the same ones from_json fills in.
  const SolverOptions defaults;
  std::string out = "{\"problem\": " + json_quote(problem_);
  if (!tenant_.empty()) out += ", \"tenant\": " + json_quote(tenant_);
  if (priority_ != 0) {
    out += ", \"priority\": " + json_number(static_cast<double>(priority_));
  }
  if (std::isfinite(deadline_)) {
    out += ", \"deadline\": " + json_number(deadline_);
  }
  if (options_.max_iterations != defaults.max_iterations) {
    out += ", \"max_iterations\": " +
           json_number(static_cast<double>(options_.max_iterations));
  }
  if (options_.check_interval != defaults.check_interval) {
    out += ", \"check_interval\": " +
           json_number(static_cast<double>(options_.check_interval));
  }
  if (!label_.empty()) out += ", \"label\": " + json_quote(label_);
  out += "}";
  return out;
}

namespace {

double number_field(const JsonValue& value, const std::string& key,
                    const std::string& context) {
  require(value.kind == JsonValue::Kind::kNumber,
          context + ": field \"" + key + "\" must be a number");
  return value.number;
}

int int_field(const JsonValue& value, const std::string& key,
              const std::string& context) {
  const double number = number_field(value, key, context);
  require(number == std::floor(number),
          context + ": field \"" + key + "\" must be an integer");
  return static_cast<int>(number);
}

std::string string_field(const JsonValue& value, const std::string& key,
                         const std::string& context) {
  require(value.kind == JsonValue::Kind::kString,
          context + ": field \"" + key + "\" must be a string");
  return value.string;
}

}  // namespace

SubmitRequest SubmitRequest::from_json(const JsonValue& value,
                                       const std::string& context) {
  require(value.kind == JsonValue::Kind::kObject,
          context + ": a submit request must be a JSON object");
  SubmitRequest request;
  for (const auto& [key, field] : value.object) {
    if (key == "problem") {
      request.problem(string_field(field, key, context));
    } else if (key == "tenant") {
      request.tenant(string_field(field, key, context));
    } else if (key == "priority") {
      request.priority(int_field(field, key, context));
    } else if (key == "deadline") {
      request.deadline(number_field(field, key, context));
    } else if (key == "max_iterations") {
      request.max_iterations(int_field(field, key, context));
    } else if (key == "check_interval") {
      request.check_interval(int_field(field, key, context));
    } else if (key == "label") {
      request.label(string_field(field, key, context));
    } else {
      // Loud, not lenient: a typo'd field silently ignored would submit a
      // different job than the caller wrote.
      require(false, context + ": unknown field \"" + key + "\"");
    }
  }
  require(!request.problem().empty(),
          context + ": field \"problem\" is required");
  return request;
}

SubmitRequest SubmitRequest::from_json_text(std::string_view text,
                                            const std::string& context) {
  JsonParser parser(text, context);
  return from_json(parser.parse(), context);
}

}  // namespace paradmm::runtime
