// String-keyed registry of buildable problems, so a solve job can be
// specified as {"svm", params} instead of hand-assembling a factor graph
// (the pattern of libskylark's prox-operator registry, applied to whole
// problems).  Each library problem contributes an adapter that lives next
// to it (src/problems/<name>/registry.{hpp,cpp}); the adapters for the four
// seed problems — "lasso", "mpc", "packing", "svm" — are pre-registered in
// ProblemRegistry::global().
//
// Builders are deterministic: the same name + params always produce an
// identical graph, so a registry-built solve matches a hand-built one
// bit for bit.
#pragma once

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/factor_graph.hpp"
#include "support/error.hpp"

namespace paradmm::runtime {

/// A built problem instance: the graph plus a keep-alive for the concrete
/// problem object that owns it.  Readout helpers (accuracies, trajectories,
/// circle layouts) stay reachable by std::static_pointer_cast-ing `owner`
/// back to the concrete type named by the adapter's documentation.
struct BuiltProblem {
  std::shared_ptr<void> owner;
  FactorGraph* graph = nullptr;
};

class ProblemRegistry {
 public:
  /// Builds an instance from type-erased params (see params_or_default).
  using Builder = std::function<BuiltProblem(const std::any& params)>;

  /// Registers `name`; re-registering an existing name is a precondition
  /// error (adapters own their names).
  void add(const std::string& name, std::string description, Builder builder);

  bool contains(const std::string& name) const;

  /// Builds `name` with `params` (empty any = the adapter's defaults).
  /// Unknown names raise PreconditionError listing what is registered.
  BuiltProblem build(const std::string& name,
                     const std::any& params = {}) const;

  const std::string& description(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// A fresh registry pre-seeded with the four library problems.
  static ProblemRegistry with_builtin();

  /// Shared read-only instance of with_builtin().
  static const ProblemRegistry& global();

 private:
  struct Entry {
    std::string description;
    Builder builder;
  };
  const Entry& find(const std::string& name) const;

  std::map<std::string, Entry> entries_;
};

/// Adapter helper: unwraps a std::any into the adapter's param struct.
/// An empty any yields default-constructed params; a type mismatch is a
/// precondition error.
template <typename Params>
Params params_or_default(const std::any& params) {
  if (!params.has_value()) return Params{};
  const Params* typed = std::any_cast<Params>(&params);
  require(typed != nullptr,
          "problem params hold the wrong type for this problem");
  return *typed;
}

}  // namespace paradmm::runtime
