// Multi-problem batch-solve runtime: many independent ADMM solves
// scheduled over one shared persistent worker pool.
//
// The paper parallelizes *within* one solve (five barriered phases over the
// factor graph); serving throughput means running many solves at once on
// the same hardware.  The BatchRunner accepts SolveJobs, and a Scheduler
// picks each job's execution mode by graph size:
//
//   * small graphs — whole-solve-per-worker: the solve runs serially on
//     one worker, so independent small solves fill all cores with zero
//     intra-solve synchronization;
//   * large graphs — fine-grained with a *partial* width k <= pool (the
//     paper's fork/join strategy bounded to k threads), sized to the graph
//     so that two medium jobs fork over half the pool each, side by side.
//
// Every solve — serial or fine-grained — runs as a task on the pool's
// work-stealing per-worker run queues; a fine-grained solve forks each of
// its five phases over a width-k group from whatever thread its task
// landed on.  The dispatcher thread only plans widths and forwards jobs
// (dropping ones already cancelled), so a wide job never head-of-line
// blocks the queue behind it.
//
// Jobs are dispatched in submission order; handles expose state, blocking
// wait, cooperative cancellation, and the final report.  Runtime counters
// (jobs/sec, queue depth, utilization, per-width occupancy) are available
// via metrics().
#pragma once

#include <any>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "parallel/thread_pool.hpp"
#include "runtime/metrics.hpp"
#include "runtime/problem_registry.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/solve_job.hpp"
#include "support/timer.hpp"

namespace paradmm::runtime {

struct BatchRunnerOptions {
  /// Shared pool concurrency; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  SchedulerOptions scheduler;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchRunnerOptions options = {});

  /// Drains the queue, waits for every in-flight job to reach a terminal
  /// state, then stops the pool.  Handles stay valid afterwards.
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Enqueues a job; returns immediately.
  JobHandle submit(SolveJob job);

  /// Builds `problem` from `registry` (ProblemRegistry::global() when
  /// null) and enqueues it; the built instance is owned by the job.
  JobHandle submit(const std::string& problem, const std::any& params = {},
                   SolverOptions options = {}, ProgressFn progress = {},
                   const ProblemRegistry* registry = nullptr);

  /// Blocks until every job submitted so far is terminal.
  void wait_all();

  /// Snapshot of throughput counters.
  RuntimeMetrics metrics() const;

  /// Shared-pool concurrency (workers + dispatcher participant).
  std::size_t threads() const { return pool_.concurrency(); }

  const Scheduler& scheduler() const { return scheduler_; }

 private:
  void dispatcher_loop();
  void execute(const std::shared_ptr<detail::JobControl>& job);
  void finalize(const std::shared_ptr<detail::JobControl>& job,
                JobState outcome, SolverReport report, std::string error,
                double wall_seconds, bool ran);

  ThreadPool pool_;
  Scheduler scheduler_;
  MetricsCollector collector_;
  WallTimer since_start_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::shared_ptr<detail::JobControl>> queue_;
  std::size_t unfinished_ = 0;
  bool stopping_ = false;

  std::thread dispatcher_;  // last member: joins before the rest tears down
};

}  // namespace paradmm::runtime
