// Multi-problem batch-solve runtime: many independent ADMM solves
// scheduled over one shared persistent worker pool.
//
// The paper parallelizes *within* one solve (five barriered phases over the
// factor graph); serving throughput means running many solves at once on
// the same hardware.  The BatchRunner accepts SolveJobs, and a Scheduler
// picks each job's execution mode by graph size:
//
//   * small graphs — whole-solve-per-worker: the solve runs serially on
//     one worker, so independent small solves fill all cores with zero
//     intra-solve synchronization;
//   * large graphs — fine-grained with a *partial* width k <= pool (the
//     paper's fork/join strategy bounded to k threads), sized to the graph
//     so that two medium jobs fork over half the pool each, side by side.
//
// Every solve — serial or fine-grained — runs as a task on the pool's
// work-stealing per-worker run queues; a fine-grained solve forks each of
// its five phases over a width-k group from whatever thread its task
// landed on.  The dispatcher thread only plans widths and forwards jobs
// (dropping ones already cancelled), so a wide job never head-of-line
// blocks the queue behind it — and while its own queue is empty it lends
// itself to the pool as a full lane (fork chunks first, then backlogged
// tasks), so a lone wide job can fork over all `threads` lanes instead of
// topping out at the worker count.
//
// Jobs are dispatched by (priority desc, deadline asc, submit order asc) —
// see SolveJob::priority — so a queue backlog never makes urgent work wait
// behind bulk work, and scheduling stays deterministic for a fixed arrival
// set.  With a nonzero aging_rate the priority term becomes *effective*
// priority — priority + aging_rate x queue wait on the runner clock — so a
// sustained stream of high-priority arrivals can never starve the tail:
// every waiting job eventually outranks fresh arrivals.  Dispatch is
// *bounded*: at most `threads` jobs are in flight on the pool at once, and
// the rest wait in the priority queue — forwarding the whole backlog
// eagerly would bury a late-arriving urgent job in the pool's FIFO run
// queues, where priority no longer applies.  Between phase barriers,
// running fine-grained solves renegotiate their width against the shared
// WidthGovernor: a backlog shrinks them so waiting jobs get lanes, a
// drained queue grows them back, and a solve projected to miss its
// deadline claims lanes up to the pool width instead of yielding
// (numerics are width-independent, so none of this ever changes results).
// With admission control enabled (BatchRunnerOptions::admission), submit
// itself becomes deadline-aware: a job whose finite deadline is provably
// unmeetable under the runner's cost model — width planning, boost
// projections, and admission all price work with the same CostModel
// (runtime/calibration.hpp; host-calibrated when a profile is loaded) — is
// rejected at the door or degraded to best-effort instead of admitted to
// miss.  The dispatcher's pool-helping stint is preemption-aware: a whole solve
// it picked up yields back to the ready queue at its next progress
// barrier whenever dispatch work appears, so a job arriving mid-solve
// waits at most one barrier instead of the rest of the solve.  Handles
// expose state, blocking wait, cooperative cancellation, and the final
// report.  Runtime counters (jobs/sec, queue depth, utilization,
// per-width occupancy, renegotiations, boosts, preemptions, deadline
// outcomes) are available via metrics().
#pragma once

#include <any>
#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "runtime/calibration.hpp"
#include "runtime/metrics.hpp"
#include "runtime/problem_registry.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/solve_job.hpp"
#include "runtime/submit_request.hpp"
#include "runtime/tenant_registry.hpp"
#include "runtime/trace.hpp"
#include "runtime/width_governor.hpp"
#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"
#include "support/timer.hpp"

namespace paradmm::runtime {

/// What submit() does with a job whose finite deadline is provably
/// unmeetable under the runner's cost model (see
/// BatchRunnerOptions::admission).  "Provably" is model-relative and
/// optimistic: the projection assumes the job starts immediately at its
/// best width and charges only queued work that must dispatch ahead of it,
/// spread perfectly over the pool — so a rejection means even the most
/// favorable schedule the model can imagine misses the deadline.
enum class AdmissionPolicy {
  /// No admission check; every submission is queued (the default — this
  /// reproduces the pre-admission runtime bitwise).
  kAccept,
  /// Infeasible-deadline jobs go terminal at submit (JobState::kRejected,
  /// AdmissionVerdict::kRejected) without ever occupying the queue.
  kRejectInfeasible,
  /// Infeasible-deadline jobs run anyway, flagged
  /// AdmissionVerdict::kBestEffort: they keep their queue position (the
  /// deadline still orders dispatch) but their hopeless deadline no longer
  /// arms deadline-aware width boosting — no lanes are burned racing a
  /// provably lost cause.
  kDegradeToBestEffort,
};

std::string_view to_string(AdmissionPolicy policy);

struct BatchRunnerOptions {
  /// Shared pool concurrency; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  SchedulerOptions scheduler;
  /// Mid-solve width renegotiation policy (enabled by default; set
  /// `governor.enabled = false` to pin fine-grained jobs at their planned
  /// width for the whole solve, `governor.deadline_boost = false` to keep
  /// the yield policy but never exceed planned widths).
  WidthGovernorOptions governor;

  /// The clock deadlines, priority aging, and deadline-boost projections
  /// are evaluated against: any thread-safe, monotone non-decreasing
  /// function of time.  Empty (the default) means wall seconds since the
  /// runner was constructed; tests inject virtual clocks to make
  /// scheduling scenarios deterministic.
  std::function<double()> clock;

  /// Priority aging: a queued job's effective priority is
  /// priority + aging_rate x (now - submit time) on the runner clock, so
  /// waiting jobs gain rank and sustained high-priority load cannot starve
  /// the tail (a priority-0 job outranks fresh priority-P arrivals after
  /// waiting P / aging_rate).  0 (the default) reproduces the pure
  /// (priority, deadline, submit order) policy bitwise.  Nonzero rates
  /// trade the EDF tiebreak for starvation-freedom: same-priority jobs
  /// submitted at different clock readings get distinct aged keys, so
  /// deadlines only order exact key ties (deadline-aware width *boosting*
  /// still honors every deadline at runtime).  Must be finite and >= 0.
  double aging_rate = 0.0;

  /// Deadline-aware admission control (see AdmissionPolicy): under
  /// kRejectInfeasible / kDegradeToBestEffort, submit() projects every
  /// finite-deadline job's finish from the cost model plus the queued load
  /// ahead of it and rejects / flags the provably unmeetable ones.  The
  /// default kAccept skips the check entirely.
  AdmissionPolicy admission = AdmissionPolicy::kAccept;

  /// Continuous admission — the mid-queue counterpart of `admission`: a
  /// submit-time verdict goes stale the moment the queue changes shape, so
  /// on every queue-shape change (a dispatch, a finish, a preemption
  /// requeue — rate-limited by `reprojection_interval`) the runner
  /// re-projects each still-admitted finite-deadline job waiting in the
  /// ready queue with the *same* shared-CostModel formula submit-time
  /// admission used (queued-ahead serial work spread perfectly over the
  /// pool, plus the job's own best-case solve time), so the two checks can
  /// never disagree.  A job whose re-projection is now provably late is
  /// shed to the terminal JobState::kShedLate (kRejectInfeasible) or
  /// flagged AdmissionVerdict::kBestEffort in place (kDegradeToBestEffort
  /// — it keeps its queue position but stops arming deadline boosts); the
  /// evidence (projected finish, queued-ahead seconds) lands in the trace
  /// and RuntimeMetrics either way.  The default kAccept disables
  /// re-projection entirely, reproducing the reprojection-free runtime
  /// bitwise.
  AdmissionPolicy reprojection = AdmissionPolicy::kAccept;

  /// Minimum runner-clock seconds between two re-projection passes (each
  /// pass walks the ready queue under the runner mutex, so a hot queue
  /// should not pay it on every event).  0 (the default) re-projects on
  /// every queue-shape change — the right setting for virtual-clock tests
  /// and modest queues.  Must be finite and >= 0.
  double reprojection_interval = 0.0;

  /// Online calibration re-fit (see OnlineRecalibrator in
  /// runtime/calibration.hpp): with `recalibration.enabled`, every timed
  /// phase barrier of a governed solve feeds its measured (phase, count,
  /// width, seconds) sample into a live least-squares re-fit of the Amdahl
  /// cost form, and the runner's shared cost model serves the re-fitted
  /// profile once one exists — width planning, boost priors, admission,
  /// and re-projection all track the live machine instead of a static
  /// profile.  `recalibration.baseline` seeds the fit (and the drift
  /// comparison); disabled (the default) records nothing and changes
  /// nothing.
  RecalibrationOptions recalibration;

  /// The shared pricing model (runtime/calibration.hpp) behind width
  /// planning (when scheduler.cost_model is unset), the governor's
  /// deadline-boost projections (as the pre-sample prior), and the
  /// admission check — one model, so every decision agrees on what work
  /// costs.  Null: resolved via default_cost_model() (the
  /// PARADMM_CALIBRATION_FILE profile, the committed default profile, or
  /// the devsim Opteron spec, in that order) when admission is enabled;
  /// left empty otherwise, which reproduces the un-priced runtime —
  /// size-proportional widths, projections from measured samples only.
  CostModelPtr cost_model;

  /// Per-tenant weights and quotas (runtime/tenant_registry.hpp).  With
  /// any tenant defined, same-priority dispatch is ordered by weighted-
  /// fair virtual time (a backlogged weight-3 tenant dispatches 3 jobs per
  /// backlogged weight-1 job), a submission past its tenant's max_queued
  /// quota goes terminal as JobState::kQuotaRejected with evidence on the
  /// handle, and a tenant at its max_in_flight quota holds its queued jobs
  /// while other tenants dispatch past them.  The default (no tenants
  /// defined) keeps every virtual tag at 0 and skips every quota check —
  /// dispatch order, trajectories, and metrics are bitwise identical to
  /// the tenant-free runtime (property-tested).
  TenantRegistry tenants;

  /// Structured-event trace sink (runtime/trace.hpp).  When set, the
  /// runner binds its clock to the recorder and instruments the whole
  /// decision surface: job lifecycle spans (submit -> queued -> slices ->
  /// finish, admission verdicts and preemptions included), governor
  /// shrink/grow/boost events with their evidence, per-phase per-width
  /// spans of fine-grained solves, pool steal/help events, and
  /// per-iteration residual telemetry.  Export the recorder after
  /// wait_all() (or after destroying the runner) with
  /// TraceRecorder::write_chrome_trace.  Null (the default): every
  /// instrumentation site is a null pointer check — dispatch order, solve
  /// results, and RuntimeMetrics counters are bitwise identical to the
  /// untraced runtime (property-tested).
  std::shared_ptr<TraceRecorder> trace_sink;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchRunnerOptions options = {});

  /// Drains the queue, waits for every in-flight job to reach a terminal
  /// state, then stops the pool.  Handles stay valid afterwards.
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Enqueues a job; returns immediately.  Dispatch order among queued
  /// jobs is (priority desc, tenant virtual time asc, deadline asc, submit
  /// order asc) — the virtual-time term is 0 for every job unless
  /// options.tenants defines a tenant, collapsing the order to the classic
  /// (priority, deadline, submit order).
  JobHandle submit(SolveJob job) PARADMM_EXCLUDES(mutex_);

  /// The one submission schema (runtime/submit_request.hpp): builds the
  /// request's problem from `registry` (ProblemRegistry::global() when
  /// null) and enqueues it.  The service wire format submits through this
  /// same call.
  JobHandle submit(const SubmitRequest& request,
                   const ProblemRegistry* registry = nullptr) {
    return submit(request.build(registry));
  }

  /// Builds `problem` from `registry` (ProblemRegistry::global() when
  /// null) and enqueues it; the built instance is owned by the job.  Thin
  /// wrapper over submit(SubmitRequest) — kept for source compatibility
  /// (bitwise-tested against the builder path).
  JobHandle submit(const std::string& problem, const std::any& params = {},
                   SolverOptions options = {}, ProgressFn progress = {},
                   const ProblemRegistry* registry = nullptr);

  /// Builds `problem` like submit(problem, ...) but returns the job
  /// unsubmitted, so callers can set priority / deadline / progress before
  /// handing it over (the built instance rides along in job.owner).
  static SolveJob make_job(const std::string& problem,
                           const std::any& params = {},
                           SolverOptions options = {},
                           const ProblemRegistry* registry = nullptr);

  /// Blocks until every job submitted so far is terminal.
  void wait_all() PARADMM_EXCLUDES(mutex_);

  /// Snapshot of throughput counters.
  RuntimeMetrics metrics() const PARADMM_EXCLUDES(mutex_);

  /// Shared-pool concurrency (workers + dispatcher participant).
  std::size_t threads() const { return pool_.concurrency(); }

  const Scheduler& scheduler() const { return scheduler_; }

  /// Shared renegotiation state (read stats() for shrink/grow counters).
  const WidthGovernor& governor() const { return governor_; }

  /// The model pricing width planning, boost projections, and admission
  /// (null when admission is off and no model was supplied).
  const CostModelPtr& cost_model() const { return cost_model_; }

  /// The online re-fit state (null unless recalibration.enabled): live
  /// profile, sample/refit counters, drift vs the loaded baseline.
  const std::shared_ptr<OnlineRecalibrator>& recalibrator() const {
    return recalibrator_;
  }

 private:
  // Priority order for the ready queue: (effective) priority desc, then
  // tenant virtual-start tag asc, then deadline asc, then submit sequence
  // asc.  The sequence is unique, so this is a strict total order —
  // dispatch is deterministic for a fixed arrival set.  Aging needs no
  // clock here: every queued job ages at the same rate, so the
  // time-dependent effective priorities priority + rate x (now - submit)
  // order exactly like the static keys priority - rate x submit — `now`
  // cancels (the runner clock is monotone, so the wait is never negative),
  // and the sorted set stays valid because every key component is fixed at
  // submit.  rate == 0 keeps the integer compare, reproducing the
  // pure-priority order bitwise.  The virtual-start tag (weighted-fair
  // dispatch, runtime/tenant_registry.hpp) is 0 for every job unless a
  // tenant is defined, so the tenant-free order is reproduced bitwise too;
  // with tenants active it interleaves same-priority backlogs in weight
  // proportion, ahead of the EDF tiebreak (fairness is the contract
  // between tenants; deadlines still order jobs whose tags tie).
  struct JobOrder {
    double aging_rate = 0.0;

    bool operator()(const std::shared_ptr<detail::JobControl>& a,
                    const std::shared_ptr<detail::JobControl>& b) const {
      return before(*a, *b);
    }

    bool before(const detail::JobControl& a,
                const detail::JobControl& b) const {
      if (aging_rate > 0.0) {
        const double key_a =
            static_cast<double>(a.priority) - aging_rate * a.submit_time;
        const double key_b =
            static_cast<double>(b.priority) - aging_rate * b.submit_time;
        if (key_a != key_b) return key_a > key_b;
      } else if (a.priority != b.priority) {
        return a.priority > b.priority;
      }
      if (a.vstart != b.vstart) return a.vstart < b.vstart;
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.sequence < b.sequence;
    }
  };

  using ReadyQueue = std::set<std::shared_ptr<detail::JobControl>, JobOrder>;

  void dispatcher_loop() PARADMM_EXCLUDES(mutex_);
  void execute(const std::shared_ptr<detail::JobControl>& job)
      PARADMM_EXCLUDES(mutex_);
  // `ran`: the job executed at least one slice (wall/occupancy stats
  // apply).  `was_running`: it still occupies the running gauge — false
  // when it was finalized while parked in the ready queue after a
  // preemption (the yield already released its slot).
  void finalize(const std::shared_ptr<detail::JobControl>& job,
                JobState outcome, SolverReport report, std::string error,
                bool ran, bool was_running) PARADMM_EXCLUDES(mutex_);
  // Returns the yielded job to the ready queue (dispatcher preemption).
  // `width` is the yielded slice's planned fork width (for the preempt
  // gauge release and trace event).
  void requeue(const std::shared_ptr<detail::JobControl>& job,
               std::size_t width) PARADMM_EXCLUDES(mutex_);
  // Whether the solve `running` (on the dispatcher lane) should yield: a
  // job is queued and either a dispatch lane is free or the queued job
  // outranks the running one under the current policy.
  bool dispatch_pressure(const detail::JobControl& running)
      PARADMM_EXCLUDES(mutex_);
  // Prices `control`'s graph with the cost model (fills
  // serial_seconds_per_iteration and the governor prior) and returns the
  // job's best-case solve seconds: the full iteration budget at the
  // model's best ladder width.
  double price_job(detail::JobControl& control) const;
  // The submit-time admission projection for a finite-deadline job, and
  // the terminal bookkeeping of a rejected one.
  AdmissionVerdict admit(const std::shared_ptr<detail::JobControl>& control,
                         double best_case_seconds, double now)
      PARADMM_REQUIRES(mutex_);
  void reject(const std::shared_ptr<detail::JobControl>& control, double now);
  // Terminal bookkeeping of a submission refused by its tenant's
  // max_queued quota (JobState::kQuotaRejected): the quota analog of
  // reject() — no queue slot, no governor waiting entry, no wait_all()
  // obligation.
  void reject_quota(const std::shared_ptr<detail::JobControl>& control,
                    double now);

  // Continuous admission: one rate-limited pass over the ready queue (in
  // dispatch order) re-running the submit-time projection for every
  // still-admitted finite-deadline job.  Provably-late jobs are erased
  // from queue_ into `shed` (kRejectInfeasible) or flagged best-effort in
  // place into `degraded` (kDegradeToBestEffort); their evidence fields
  // (reprojection_projected / reprojection_ahead_seconds) are filled here,
  // under the runner mutex.  No-op under the rate limit or with
  // reprojection disabled.
  void reproject_locked(double now,
                        std::vector<std::shared_ptr<detail::JobControl>>* shed,
                        std::vector<std::shared_ptr<detail::JobControl>>*
                            degraded) PARADMM_REQUIRES(mutex_);
  // Settles the jobs a re-projection pass shed or degraded, outside the
  // runner mutex: metrics, trace evidence, terminal kShedLate state, and
  // — last, because releasing the final unfinished_ counts may let a
  // wait_all() caller destroy this runner — the shed jobs' queue
  // accounting.  Callers must hold live unfinished_ coverage of their own
  // (the dispatcher thread, or a finalize that has not yet released its
  // job's count) so the runner outlives every earlier statement.
  void settle_reprojected(
      double now, const std::vector<std::shared_ptr<detail::JobControl>>& shed,
      const std::vector<std::shared_ptr<detail::JobControl>>& degraded,
      std::size_t depth) PARADMM_EXCLUDES(mutex_);

  ThreadPool pool_;
  // Before cost_model_: the resolved model may wrap the recalibrator.
  std::shared_ptr<OnlineRecalibrator> recalibrator_;
  CostModelPtr cost_model_;  // before scheduler_: it may feed its options
  Scheduler scheduler_;
  WidthGovernor governor_;
  // Trace sink, fixed at construction (before the dispatcher starts, so no
  // recording site ever races the install).  The raw pointer is the hot
  // null-check at every instrumentation site; the shared_ptr keeps the
  // caller's recorder alive for the runner's lifetime.
  std::shared_ptr<TraceRecorder> trace_keepalive_;
  TraceRecorder* trace_ = nullptr;
  MetricsCollector collector_;
  WallTimer since_start_;
  std::function<double()> clock_;
  double aging_rate_ = 0.0;
  AdmissionPolicy admission_ = AdmissionPolicy::kAccept;
  AdmissionPolicy reprojection_ = AdmissionPolicy::kAccept;
  double reprojection_interval_ = 0.0;

  // The runner mutex is the root of the runtime's lock hierarchy: the
  // pool's mutex (via notify_helpers in finalize) and the trace locks may
  // be acquired below it, never above — see ROADMAP "Lock hierarchy".
  mutable Mutex mutex_{"BatchRunner"};
  CondVar all_done_;
  // Per-tenant quotas and weighted-fair virtual-time accounting; inert
  // (active() == false) unless options.tenants defined a tenant.
  TenantRegistry tenants_ PARADMM_GUARDED_BY(mutex_);
  ReadyQueue queue_ PARADMM_GUARDED_BY(mutex_);
  std::uint64_t next_sequence_ PARADMM_GUARDED_BY(mutex_) = 0;
  std::size_t unfinished_ PARADMM_GUARDED_BY(mutex_) = 0;
  // Jobs popped from queue_ but not yet finalized.  Dispatch stalls at
  // pool concurrency so the backlog stays in the priority queue (ordered)
  // rather than in the pool's FIFO run queues (not).
  std::size_t inflight_ PARADMM_GUARDED_BY(mutex_) = 0;
  // Runner-clock timestamp of the last re-projection pass; -infinity so
  // the first queue-shape change always re-projects.
  double last_reprojection_ PARADMM_GUARDED_BY(mutex_) =
      -std::numeric_limits<double>::infinity();
  bool stopping_ PARADMM_GUARDED_BY(mutex_) = false;
  // True whenever the dispatcher has something to look at (a submission,
  // a freed lane, or shutdown); its pool-helping stint polls this to know
  // when to return.  Both flags use seq_cst: wake is stored before
  // helping is read (and vice versa on the dispatcher side), and that
  // store-load pattern loses wakeups under weaker orderings.
  std::atomic<bool> dispatcher_wake_{false};
  // True while the dispatcher is inside pool_.help_until — the only time
  // notify_helpers() is needed (it wakes the whole pool, so skip it when
  // nobody is helping).
  std::atomic<bool> dispatcher_helping_{false};

  std::thread dispatcher_;  // last member: joins before the rest tears down
  // Fixed at construction; execute() compares against it to arm the yield
  // check (reading dispatcher_.get_id() instead would race the join in the
  // destructor while workers still finish in-flight solves).
  std::thread::id dispatcher_id_;
};

}  // namespace paradmm::runtime
