#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <utility>

#include "parallel/backend.hpp"

namespace paradmm::runtime {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

BatchRunner::BatchRunner(BatchRunnerOptions options)
    : pool_(resolve_threads(options.threads)),
      // Solves run as tasks on the pool's workers, but the idle dispatcher
      // lends itself to the pool as a fork-chunk lane (help_until in the
      // dispatcher loop), so a fine-grained fork can occupy the full pool
      // concurrency: the forking worker self-serves, the other workers and
      // the dispatcher claim the rest.  Planning wider than that would
      // split phases into more chunks than threads able to run them,
      // inflating phase latency.
      scheduler_(options.scheduler, pool_.concurrency()),
      governor_(options.governor) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  dispatcher_wake_.store(true, std::memory_order_release);
  pool_.notify_helpers();
  dispatcher_.join();  // drains the queue before exiting
  wait_all();
}

JobHandle BatchRunner::submit(SolveJob job) {
  require(job.graph != nullptr, "SolveJob needs a graph");
  // NaN never orders against anything, which would corrupt the ready
  // queue's strict weak ordering — reject it at the door.
  require(job.deadline == job.deadline, "SolveJob deadline must not be NaN");
  auto control = std::make_shared<detail::JobControl>();
  control->graph = job.graph;
  control->owner = std::move(job.owner);
  control->options = job.options;
  control->progress = std::move(job.progress);
  control->label = std::move(job.label);
  control->priority = job.priority;
  control->deadline = job.deadline;

  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    require(!stopping_, "BatchRunner is shutting down");
    control->sequence = next_sequence_++;
    // Into the governor's waiting set under the same lock that publishes
    // the job: the dispatcher needs this mutex to pop it, so the paired
    // job_done_waiting() can never run first and underflow the counter.
    governor_.job_waiting();
    queue_.insert(control);
    ++unfinished_;
    depth = queue_.size();
  }
  collector_.on_submit(depth);
  // The dispatcher may be lending itself to the pool; the wake flag plus
  // notify_helpers() pulls it back to dispatch this job.  The notify
  // wakes the whole pool, so it is skipped unless the dispatcher is
  // actually helping (wake is stored first — seq_cst — so either the
  // helping dispatcher's stop poll sees it or this load sees helping).
  dispatcher_wake_.store(true);
  if (dispatcher_helping_.load()) pool_.notify_helpers();
  return JobHandle(control);
}

JobHandle BatchRunner::submit(const std::string& problem,
                              const std::any& params, SolverOptions options,
                              ProgressFn progress,
                              const ProblemRegistry* registry) {
  SolveJob job = make_job(problem, params, options, registry);
  job.progress = std::move(progress);
  return submit(std::move(job));
}

SolveJob BatchRunner::make_job(const std::string& problem,
                               const std::any& params, SolverOptions options,
                               const ProblemRegistry* registry) {
  const ProblemRegistry& source =
      registry ? *registry : ProblemRegistry::global();
  BuiltProblem built = source.build(problem, params);
  SolveJob job;
  job.graph = built.graph;
  job.owner = std::move(built.owner);
  job.options = options;
  job.label = problem;
  return job;
}

void BatchRunner::wait_all() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

RuntimeMetrics BatchRunner::metrics() const {
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    depth = queue_.size();
  }
  return collector_.snapshot(since_start_.seconds(), pool_.concurrency(),
                             depth, governor_.stats());
}

void BatchRunner::dispatcher_loop() {
  for (;;) {
    std::shared_ptr<detail::JobControl> job;
    {
      std::unique_lock lock(mutex_);
      const bool lanes_full = inflight_ >= pool_.concurrency();
      const bool queue_drained = queue_.empty();
      if (queue_drained || lanes_full) {
        if (queue_drained && stopping_) return;  // nothing left to dispatch
        // Clearing the flag while holding the mutex cannot lose a wakeup:
        // submit() and finalize() set it only after changing queue_ /
        // inflight_ under this same mutex, so a set that races this clear
        // comes with a state change we'll see on the next loop.
        dispatcher_wake_.store(false);
        dispatcher_helping_.store(true);
        lock.unlock();
        // Lend this thread to the pool so all `threads` lanes do solver
        // work.  Fork chunks are served first — this is the lane that
        // lets a lone wide job fork over the whole pool.  Whole tasks
        // (each a whole solve) are picked up only while the dispatch
        // queue is empty: with jobs waiting, getting pinned inside one
        // solve would stall every dispatch behind it.  (A task picked up
        // while idle can still pin the dispatcher when a job arrives
        // mid-solve — the residual cost of lending a non-preemptible
        // lane; see ROADMAP.)
        pool_.help_until([this] { return dispatcher_wake_.load(); },
                         /*serve_tasks=*/queue_drained);
        dispatcher_helping_.store(false);
        continue;
      }
      // Highest priority first; deadline, then submit order break ties.
      const auto front = queue_.begin();
      job = *front;
      queue_.erase(front);
      ++inflight_;
    }

    // A job cancelled while queued is finalized here instead of being
    // handed to the pool: shipping it to execute() just to notice the
    // cancel would occupy a worker slot ahead of live jobs.
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      {
        std::lock_guard job_lock(job->mutex);
        job->plan = JobPlan{};
        job->planned = true;
      }
      governor_.job_done_waiting();
      finalize(job, JobState::kCancelled, SolverReport{}, {}, 0.0,
               /*ran=*/false);
      continue;
    }

    // plan() may run a user-supplied cost model; a throw must fail the one
    // job, not escape this thread and terminate the process (execute()
    // gives user code on workers the same containment).
    JobPlan plan;
    std::string plan_error;
    try {
      plan = scheduler_.plan(*job->graph);
    } catch (const std::exception& caught) {
      plan_error = caught.what();
    } catch (...) {
      plan_error = "unknown exception from Scheduler::plan";
    }
    {
      std::lock_guard job_lock(job->mutex);
      job->plan = plan;
      job->planned = true;
    }
    if (!plan_error.empty()) {
      governor_.job_done_waiting();
      finalize(job, JobState::kFailed, SolverReport{}, std::move(plan_error),
               0.0, /*ran=*/false);
      continue;
    }

    // Every job — serial or fine-grained — runs as a pool task; the
    // dispatcher only assigns widths, so a wide job never blocks dispatch
    // of the jobs behind it.  A fine-grained solve forks width-bounded
    // groups from its worker; idle workers claim the chunks, so two
    // width-k jobs genuinely overlap when 2k <= pool.  The job stays in
    // the governor's waiting set until execute() actually starts it — a
    // solve parked in a pool run queue is backlog a wide job should make
    // room for, exactly like one still in queue_.
    pool_.submit([this, job] { execute(job); });
  }
}

void BatchRunner::execute(const std::shared_ptr<detail::JobControl>& job) {
  {
    std::unique_lock lock(job->mutex);
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      lock.unlock();
      governor_.job_done_waiting();
      finalize(job, JobState::kCancelled, SolverReport{}, {}, 0.0,
               /*ran=*/false);
      return;
    }
    job->state = JobState::kRunning;
  }
  // Off the waiting set the moment a lane is actually running it: running
  // solves are capacity in use, not backlog for the governor to relieve.
  governor_.job_done_waiting();
  collector_.on_start(job->plan.intra_threads);
  job->changed.notify_all();

  WallTimer timer;
  SolverReport report;
  std::string error;
  bool failed = false;
  bool saw_cancel = false;

  const auto callback = [&](const IterationStatus& status) {
    if (job->progress) job->progress(status);
    saw_cancel = job->cancel_requested.load(std::memory_order_relaxed);
    return !saw_cancel;
  };

  try {
    SolverOptions options = job->options;
    if (job->plan.fine_grained()) {
      // Width-governed borrowed-pool backend: the solve's five phases fork
      // over at most intra_threads lanes, renegotiated against the shared
      // governor at every phase barrier (shrink under backlog, grow back
      // when the queue drains).  The backend is per-job and cheap (no
      // threads of its own).
      const auto backend = make_governed_pool_backend(
          pool_, job->plan.intra_threads, governor_);
      AdmmSolver solver(*job->graph, options, *backend);
      report = solver.run(callback);
    } else {
      options.backend = BackendKind::kSerial;
      options.threads = 1;
      AdmmSolver solver(*job->graph, options);
      report = solver.run(callback);
    }
  } catch (const std::exception& caught) {
    failed = true;
    error = caught.what();
  } catch (...) {
    // Non-std exceptions (e.g. from a user progress callback) must not
    // escape onto a pool worker — that would terminate the process.
    failed = true;
    error = "unknown exception";
  }

  JobState outcome = JobState::kDone;
  if (failed) {
    outcome = JobState::kFailed;
  } else if (saw_cancel && !report.converged) {
    outcome = JobState::kCancelled;
  }
  finalize(job, outcome, std::move(report), std::move(error), timer.seconds(),
           /*ran=*/true);
}

void BatchRunner::finalize(const std::shared_ptr<detail::JobControl>& job,
                           JobState outcome, SolverReport report,
                           std::string error, double wall_seconds, bool ran) {
  // Record metrics before the state flips to terminal, so a waiter woken by
  // wait() immediately observes this job in metrics().
  collector_.on_finish(outcome, wall_seconds, job->plan.intra_threads, ran);
  {
    std::lock_guard lock(job->mutex);
    job->report = std::move(report);
    job->error = std::move(error);
    job->wall_seconds = wall_seconds;
    job->state = outcome;
  }
  job->changed.notify_all();
  {
    // Everything below stays under the lock: a wait_all() caller
    // (including the destructor) may destroy this runner the moment
    // unfinished_ hits zero and this lock is released, so nothing may
    // touch the runner afterwards.  The freed lane may unblock a bounded
    // dispatch stall, so the dispatcher is pulled back from its helping
    // stint too (runner-mutex -> pool-mutex is the only nesting of the
    // two locks anywhere, so notify_helpers() here cannot deadlock).
    std::lock_guard lock(mutex_);
    --unfinished_;
    --inflight_;  // a dispatch lane freed up
    dispatcher_wake_.store(true);
    if (dispatcher_helping_.load()) pool_.notify_helpers();
    all_done_.notify_all();
  }
}

}  // namespace paradmm::runtime
